// Cyclic (diamond) queries on the YAGO-like graph: the paper's CQ_D
// workload (Fig. 4). Shows the three cyclic configurations:
//   - node burnback only            (spurious edges may remain),
//   - + triangulation (chords)      (the paper's experimental setup),
//   - + edge burnback               (ideal answer graph; paper §4/§6).
//
// Usage: diamond_knowledge [--scale=0.1] [--seed=42] [--query=6..10]

#include <iostream>

#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.1);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t query_index =
      static_cast<size_t>(flags.GetInt("query", 8)) - 1;
  if (query_index < 5 || query_index >= 10) {
    std::cerr << "--query must be 6..10 (diamond rows of Table 1)\n";
    return 1;
  }

  std::cout << "generating YAGO-like graph (scale " << config.scale
            << ") ...\n";
  YagoLikeInfo info;
  Database db = MakeYagoLike(config, &info);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "  " << db.store().NumTriples() << " triples\n\n";

  const std::string text = Table1Queries()[query_index];
  std::cout << "diamond query " << (query_index + 1) << " ("
            << Table1RowLabel(query_index) << "):\n  " << text << "\n\n";
  auto query = SparqlParser::ParseAndBind(text, db);
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  struct Mode {
    const char* name;
    WireframeOptions options;
  };
  Mode modes[3];
  modes[0].name = "node burnback only";
  modes[0].options.triangulate = false;
  modes[1].name = "chordified (paper's experiments)";
  modes[1].options.triangulate = true;
  modes[2].name = "chordified + edge burnback (ideal AG)";
  modes[2].options.triangulate = true;
  modes[2].options.edge_burnback = true;

  uint64_t embeddings = 0;
  for (const Mode& mode : modes) {
    WireframeEngine engine(mode.options);
    CountingSink sink;
    EngineOptions run_options;
    run_options.deadline = Deadline::AfterSeconds(120);
    auto detail =
        engine.RunDetailed(db, catalog, *query, run_options, &sink);
    if (!detail.ok()) {
      std::cout << mode.name << ": " << detail.status().ToString() << "\n";
      continue;
    }
    if (embeddings == 0) {
      embeddings = detail->stats.output_tuples;
    } else if (embeddings != detail->stats.output_tuples) {
      std::cerr << "BUG: modes disagree on the embedding count!\n";
      return 1;
    }
    std::cout << mode.name << ":\n";
    std::cout << "  |AG| = " << detail->stats.ag_pairs
              << "  (chord pairs: " << detail->chord_pairs << ")\n";
    std::cout << "  phase1 " << detail->stats.phase1_seconds << " s, phase2 "
              << detail->stats.phase2_seconds << " s, total "
              << detail->stats.seconds << " s\n";
    std::cout << "  pairs burned back: " << detail->pairs_burned << "\n\n";
  }
  std::cout << "|embeddings| = " << embeddings
            << " (identical in every mode — the AG is an evaluation\n"
               "artifact; only its tightness changes)\n";
  return 0;
}
