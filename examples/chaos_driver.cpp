// Chaos driver: the fault-tolerance acceptance gate, run by the CI
// `chaos` job under ASan+UBSan:
//
//   $ chaos_driver [--seeds=20] [--seed_base=1] [--scale=0.01]
//                  [--store_seed=42] [--verbose]
//
// It stands up a socket server over a deterministic YAGO-like store,
// then sweeps seeded fault schedules (net/fault_injection.h): for each
// seed, a RetryingClient with that seed's schedule armed runs the full
// Table-1 query mix plus a factorized aggregate. The contract checked
// for EVERY query under EVERY schedule:
//
//   - it either completes with rows BIT-IDENTICAL to the in-process
//     RunBatch reference (as sets — emission order is parallel), or
//   - it fails with a TYPED error (kConnectionReset, kFrameCorrupt,
//     kRetryExhausted, kStreamBroken, ...) the caller can branch on;
//   - never a hang (everything is deadline-bounded), never a crash,
//     never a duplicated or missing row, never a wrong aggregate.
//
// Exit code 0 iff every seed upholds the contract.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "net/client.h"
#include "net/fault_injection.h"
#include "net/retry_client.h"
#include "net/server.h"
#include "runtime/server.h"
#include "util/flags.h"

using namespace wireframe;

namespace {

std::vector<std::vector<NodeId>> Sorted(
    std::vector<std::vector<NodeId>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool SameAggregate(const AggregateResult& a, const AggregateResult& b) {
  if (a.kind != b.kind || a.ask != b.ask || a.value.lo != b.value.lo ||
      a.value.hi != b.value.hi ||
      a.value.saturated != b.value.saturated ||
      a.groups.size() != b.groups.size()) {
    return false;
  }
  std::vector<AggregateGroup> ga = a.groups, gb = b.groups;
  auto by_key = [](const AggregateGroup& x, const AggregateGroup& y) {
    return x.key < y.key;
  };
  std::sort(ga.begin(), ga.end(), by_key);
  std::sort(gb.begin(), gb.end(), by_key);
  for (size_t i = 0; i < ga.size(); ++i) {
    if (ga[i].key != gb[i].key || ga[i].value.lo != gb[i].value.lo ||
        ga[i].value.hi != gb[i].value.hi) {
      return false;
    }
  }
  return true;
}

/// The failure modes a faulted query is ALLOWED to end in. Anything
/// else (untyped kInternal, a wrong-row completion, a hang) breaks the
/// chaos contract.
bool IsTypedFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kConnectionRefused:
    case StatusCode::kConnectionReset:
    case StatusCode::kFrameCorrupt:
    case StatusCode::kOverloaded:
    case StatusCode::kRetryExhausted:
    case StatusCode::kStreamBroken:
    case StatusCode::kTimedOut:
      return true;
    default:
      return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.GetInt("seeds", 20));
  const uint64_t seed_base =
      static_cast<uint64_t>(flags.GetInt("seed_base", 1));
  const bool verbose = flags.GetBool("verbose", false);

  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.01);
  config.seed = static_cast<uint64_t>(flags.GetInt("store_seed", 42));
  std::cout << "chaos: building store (scale " << config.scale << ", seed "
            << config.seed << ")...\n";
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());

  // In-process reference: the ground truth every faulted stream must
  // reproduce bit-exactly (or fail typed trying).
  std::vector<std::string> queries = Table1Queries();
  queries.push_back(
      "select (count(*) as ?n) where { ?x livesIn ?c . "
      "?c isLocatedIn ?k . }");
  runtime::Server reference(db, catalog);
  std::vector<CollectingSink> sinks(queries.size());
  std::vector<Sink*> sink_ptrs;
  for (auto& sink : sinks) sink_ptrs.push_back(&sink);
  const std::vector<runtime::QueryReport> expect =
      reference.RunBatch(queries, &sink_ptrs);
  std::vector<std::vector<std::vector<NodeId>>> expect_rows;
  for (auto& sink : sinks) expect_rows.push_back(Sorted(sink.rows()));

  // The server under attack. Tight liveness bounds so blackholed bytes
  // cost milliseconds, not the default multi-second timeouts — the
  // sweep must stay fast enough for a sanitizer CI job.
  runtime::Server victim(db, catalog);
  net::SocketServerOptions server_options;
  server_options.read_timeout_ms = 2'000;
  server_options.idle_timeout_ms = 2'000;
  // A write-blackhole can swallow the HELLO outright; without this the
  // server pins each such connect for the default 10 s handshake bound.
  server_options.hello_timeout_ms = 2'000;
  net::SocketServer server(&victim, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 2;
  }

  uint64_t completed = 0, typed_failures = 0, violations = 0;
  uint64_t reconnects = 0, retries = 0, faults_fired = 0;
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(s);
    const net::FaultSchedule schedule = net::FaultSchedule::Random(seed);
    net::FaultInjector injector(schedule);
    net::ClientOptions client_options;
    client_options.fault_injector = &injector;
    client_options.io_timeout_ms = 5'000;
    client_options.ping_interval_ms = 200;
    client_options.ping_timeout_ms = 1'500;
    // Bounds the swallowed-QUERY livelock: the server answers our pings
    // forever while waiting for a query it never received, so only a
    // whole-query deadline can force the retry (seed 13 finds this).
    client_options.query_timeout_ms = 8'000;
    net::RetryPolicy policy;
    policy.max_attempts = 6;
    policy.base_backoff_ms = 2;
    policy.max_backoff_ms = 50;
    policy.retry_budget_seconds = 30.0;
    policy.seed = seed;
    net::RetryingClient client(server.address().ToString(),
                               client_options, policy);
    if (verbose) {
      std::cout << "seed " << seed << ": " << schedule.ToString() << "\n";
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto start = std::chrono::steady_clock::now();
      auto result = client.Run(queries[i]);
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start);
      // Deadline-bounded everywhere: anything this slow counts as a
      // hang even if it eventually returned.
      if (elapsed.count() > 60'000) {
        ++violations;
        std::cout << "  VIOLATION seed " << seed << " query " << i
                  << ": took " << elapsed.count() << " ms\n";
        continue;
      }
      if (!result.ok()) {
        if (IsTypedFailure(result.status())) {
          ++typed_failures;
          if (verbose) {
            std::cout << "  typed: query " << i << " "
                      << result.status().ToString() << "\n";
          }
        } else {
          ++violations;
          std::cout << "  VIOLATION seed " << seed << " query " << i
                    << ": untyped failure "
                    << result.status().ToString() << "\n";
        }
        continue;
      }
      // A delivered result must be indistinguishable from the
      // fault-free reference: same outcome, same rows (no duplicates,
      // no gaps), same aggregate.
      bool identical =
          result->report.outcome == expect[i].outcome &&
          Sorted(result->rows) == expect_rows[i];
      if (identical && expect[i].has_aggregate) {
        identical = result->report.has_aggregate &&
                    SameAggregate(result->report.aggregate,
                                  expect[i].aggregate);
      }
      if (identical) {
        ++completed;
      } else {
        ++violations;
        std::cout << "  VIOLATION seed " << seed << " query " << i
                  << ": completed with WRONG result ("
                  << result->rows.size() << " rows vs "
                  << expect_rows[i].size() << ")\n";
      }
    }
    reconnects += client.stats().connects > 0
                      ? client.stats().connects - 1
                      : 0;
    retries += client.stats().transport_retries +
               client.stats().rejection_retries;
    faults_fired += injector.counters().total();
    (void)client.Goodbye();
  }
  server.Stop();

  const uint64_t total = static_cast<uint64_t>(seeds) * queries.size();
  std::cout << "chaos: " << total << " queries over " << seeds
            << " seeds — " << completed << " bit-identical, "
            << typed_failures << " typed failures, " << violations
            << " violations (" << faults_fired << " faults fired, "
            << reconnects << " reconnects, " << retries << " retries)\n";
  if (violations == 0 && completed > 0) {
    std::cout << "chaos: contract holds\n";
    return 0;
  }
  std::cout << "chaos: CONTRACT BROKEN\n";
  return 1;
}
