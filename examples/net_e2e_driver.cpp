// End-to-end driver of the socket front-end, run by the CI net-e2e job
// against a live wf_server:
//
//   $ net_e2e_driver --connect=ADDR [--scale=0.02] [--seed=42]
//                    [--expect_cache_hit=true]
//
// It rebuilds the server's store locally (MakeYagoLike is deterministic
// in --scale/--seed, which MUST match the server's), runs the Table-1
// query mix — plus an aggregate and a verbatim cache-hit repeat — both
// in-process through runtime::Server::RunBatch and streamed over the
// socket, and exits nonzero unless:
//   - streamed rows are bit-identical (as sets: parallel emission order
//     is nondeterministic) to the in-process rows for every query,
//   - the aggregate answers match exactly,
//   - fault paths behave: a malformed frame draws a typed ERROR, an
//     oversized frame draws a typed ERROR, a client killed mid-stream
//     leaves the server healthy for the next connection.

#include <algorithm>
#include <iostream>
#include <thread>

#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/server.h"
#include "util/flags.h"

using namespace wireframe;

namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  std::cout << (ok ? "  ok: " : "  FAIL: ") << what << "\n";
  if (!ok) ++g_failures;
}

std::vector<std::vector<NodeId>> Sorted(
    std::vector<std::vector<NodeId>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool SameAggregate(const AggregateResult& a, const AggregateResult& b) {
  if (a.kind != b.kind || a.ask != b.ask ||
      a.value.lo != b.value.lo || a.value.hi != b.value.hi ||
      a.value.saturated != b.value.saturated ||
      a.groups.size() != b.groups.size()) {
    return false;
  }
  auto key = [](const AggregateGroup& g) { return g.key; };
  std::vector<AggregateGroup> ga = a.groups, gb = b.groups;
  std::sort(ga.begin(), ga.end(),
            [&](const auto& x, const auto& y) { return key(x) < key(y); });
  std::sort(gb.begin(), gb.end(),
            [&](const auto& x, const auto& y) { return key(x) < key(y); });
  for (size_t i = 0; i < ga.size(); ++i) {
    if (ga[i].key != gb[i].key || ga[i].value.lo != gb[i].value.lo ||
        ga[i].value.hi != gb[i].value.hi) {
      return false;
    }
  }
  return true;
}

/// Raw-socket handshake for the fault-path probes (the typed Client
/// refuses to send broken frames, so these speak bytes directly).
Result<net::Socket> RawHandshake(const net::SocketAddress& address) {
  WF_ASSIGN_OR_RETURN(net::Socket sock,
                      net::Socket::Connect(address, 5000));
  std::string hello;
  net::AppendFrame(net::FrameType::kHello, net::EncodeHello({""}), &hello);
  WF_RETURN_NOT_OK(sock.WriteAll(hello.data(), hello.size(), 5000));
  char header[net::kFrameHeaderBytes];
  WF_RETURN_NOT_OK(
      sock.ReadExact(header, net::kFrameHeaderBytes, 5000));
  WF_ASSIGN_OR_RETURN(
      net::FrameHeader decoded,
      net::DecodeFrameHeader(header, net::kDefaultMaxFrameBytes));
  std::string payload(decoded.payload_length, '\0');
  if (decoded.payload_length > 0) {
    WF_RETURN_NOT_OK(
        sock.ReadExact(payload.data(), payload.size(), 5000));
  }
  if (decoded.type != net::FrameType::kHelloAck) {
    return Status::Internal("handshake did not return HELLO-ACK");
  }
  return sock;
}

/// Reads one frame and expects a typed ERROR carrying `code`.
bool ExpectError(net::Socket& sock, StatusCode code, std::string* got) {
  char header[net::kFrameHeaderBytes];
  if (!sock.ReadExact(header, net::kFrameHeaderBytes, 5000).ok()) {
    *got = "connection closed before any ERROR frame";
    return false;
  }
  auto decoded =
      net::DecodeFrameHeader(header, net::kDefaultMaxFrameBytes);
  if (!decoded.ok()) {
    *got = "unparseable reply header";
    return false;
  }
  std::string payload(decoded->payload_length, '\0');
  if (!payload.empty() &&
      !sock.ReadExact(payload.data(), payload.size(), 5000).ok()) {
    *got = "truncated reply payload";
    return false;
  }
  if (decoded->type != net::FrameType::kError) {
    *got = std::string("got ") + net::FrameTypeName(decoded->type);
    return false;
  }
  auto error = net::DecodeError(payload);
  if (!error.ok()) {
    *got = "undecodable ERROR payload";
    return false;
  }
  *got = error->ToStatus().ToString();
  return error->code == code;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (!flags.Has("connect")) {
    std::cerr << "usage: net_e2e_driver --connect=ADDR [--scale=..] "
                 "[--seed=..] [--expect_cache_hit=true]\n";
    return 2;
  }
  const std::string address_text = flags.GetString("connect", "");
  auto address = net::SocketAddress::Parse(address_text);
  if (!address.ok()) {
    std::cerr << address.status().ToString() << "\n";
    return 2;
  }

  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.02);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  std::cout << "building reference store (scale " << config.scale
            << ", seed " << config.seed << ")...\n";
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());

  // The query mix: all ten Table-1 queries, one factorized aggregate,
  // and a verbatim repeat of a diamond query (an AgCache hit when the
  // server runs with --ag_cache_mb > 0).
  std::vector<std::string> queries = Table1Queries();
  const std::string aggregate_query =
      "select (count(*) as ?n) where { ?x livesIn ?c . "
      "?c isLocatedIn ?k . }";
  queries.push_back(aggregate_query);
  const size_t repeat_index = 5;
  queries.push_back(queries[repeat_index]);

  // In-process reference run on the same runtime configuration the
  // socket path uses (cache on, so the repeat exercises the same path).
  runtime::ServerOptions server_options;
  server_options.runtime.admission.ag_cache_bytes = 64u << 20;
  runtime::Server reference(db, catalog, server_options);
  std::vector<CollectingSink> sinks(queries.size());
  std::vector<Sink*> sink_ptrs;
  for (auto& sink : sinks) sink_ptrs.push_back(&sink);
  std::vector<runtime::QueryReport> reference_reports =
      reference.RunBatch(queries, &sink_ptrs);

  std::cout << "querying " << address_text << "...\n";
  auto client = net::Client::Connect(address_text);
  if (!client.ok()) {
    std::cerr << client.status().ToString() << "\n";
    return 1;
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    auto streamed = (*client)->Run(queries[i]);
    if (!streamed.ok()) {
      Check(false, "query " + std::to_string(i) + ": " +
                       streamed.status().ToString());
      continue;
    }
    const runtime::QueryReport& expect = reference_reports[i];
    const runtime::QueryReport& got = streamed->report;
    Check(got.outcome == expect.outcome &&
              got.admitted == expect.admitted,
          "query " + std::to_string(i) + " outcome " +
              runtime::QueryOutcomeName(got.outcome));
    Check(Sorted(streamed->rows) == Sorted(sinks[i].rows()),
          "query " + std::to_string(i) + " rows bit-identical (" +
              std::to_string(streamed->rows.size()) + " rows)");
    if (expect.has_aggregate) {
      Check(got.has_aggregate &&
                SameAggregate(got.aggregate, expect.aggregate),
            "query " + std::to_string(i) + " aggregate answer");
    }
    if (i + 1 == queries.size() &&
        flags.GetBool("expect_cache_hit", false)) {
      Check(got.cache_hit, "verbatim repeat served from the AG cache");
    }
  }

  // Fault path 1: malformed frame (bad wire version) draws a typed
  // ERROR before the connection closes.
  {
    std::string got;
    auto sock = RawHandshake(*address);
    if (!sock.ok()) {
      Check(false, "fault raw handshake: " + sock.status().ToString());
    } else {
      char bad[net::kFrameHeaderBytes] = {0};
      bad[4] = 99;  // version
      bad[5] = static_cast<char>(net::FrameType::kQuery);
      const bool typed =
          sock->WriteAll(bad, sizeof bad, 5000).ok() &&
          ExpectError(*sock, StatusCode::kFrameCorrupt, &got);
      Check(typed, "malformed frame drew a typed ERROR (" + got + ")");
    }
  }

  // Fault path 2: oversized frame (hostile length prefix) draws a typed
  // ERROR without the server allocating or reading the payload.
  {
    std::string got;
    auto sock = RawHandshake(*address);
    if (!sock.ok()) {
      Check(false, "fault raw handshake: " + sock.status().ToString());
    } else {
      net::FrameHeader huge;
      huge.payload_length = 0xffffffff;
      huge.version = net::kWireVersion;
      huge.type = net::FrameType::kQuery;
      char bytes[net::kFrameHeaderBytes];
      net::EncodeFrameHeader(huge, bytes);
      const bool typed =
          sock->WriteAll(bytes, sizeof bytes, 5000).ok() &&
          ExpectError(*sock, StatusCode::kFrameCorrupt, &got);
      Check(typed, "oversized frame drew a typed ERROR (" + got + ")");
    }
  }

  // Fault path 3: client killed mid-stream (RST) — the server must
  // cancel that query and keep serving other connections.
  {
    // Kill during the densest stream so at least one ROW-BATCH frame is
    // guaranteed to be in flight when the connection resets.
    size_t big = 0;
    for (size_t i = 0; i < sinks.size(); ++i) {
      if (sinks[i].rows().size() > sinks[big].rows().size()) big = i;
    }
    auto victim = net::Client::Connect(address_text);
    if (!victim.ok()) {
      Check(false, "victim connect: " + victim.status().ToString());
    } else {
      bool killed = false;
      auto run = (*victim)->Run(
          queries[big], [&](const net::RowBatchFrame&) {
            if (!killed) {
              killed = true;
              (*victim)->socket().Reset();  // simulate kill -9
            }
          });
      Check(killed && !run.ok(),
            "victim stream interrupted by hard close");
    }
    // The server must still be healthy for a fresh connection.
    auto after = net::Client::Connect(address_text);
    bool healthy = false;
    if (after.ok()) {
      auto rerun = (*after)->Run(queries[repeat_index]);
      healthy = rerun.ok() &&
                Sorted(rerun->rows) == Sorted(sinks[repeat_index].rows());
      (void)(*after)->Goodbye();
    }
    Check(healthy, "server healthy after mid-stream client kill");
  }

  // Drain contract: GOODBYE comes back after everything else.
  Check((*client)->Goodbye().ok(), "GOODBYE drain completed");

  if (g_failures == 0) {
    std::cout << "net-e2e: all checks passed\n";
    return 0;
  }
  std::cout << "net-e2e: " << g_failures << " check(s) FAILED\n";
  return 1;
}
