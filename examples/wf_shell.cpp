// Interactive Wireframe shell: load or generate a graph, then type SPARQL
// conjunctive queries against it. Demonstrates the full public API —
// N-Triples import, binary snapshots, catalog statistics, EXPLAIN, and
// engine selection.
//
//   $ wf_shell [--scale=0.1] [--nt=FILE] [--db=FILE.wfdb]
//   $ wf_shell --connect=HOST:PORT [--service_class=NAME]
//
// With --connect the shell speaks the net/wire.h protocol to a running
// wf_server instead of executing locally: queries stream back as
// ROW-BATCH frames (node ids, not terms — the dictionary lives server
// side) and .quit sends GOODBYE and waits for the drain.
//
// Commands:
//   select ...            run a CQ on the Wireframe engine (default)
//   select (count(*) as ?c) ... / ask { ... } / ... group by ?v
//                         factorized aggregates — counted on the frozen
//                         AG without enumerating embeddings
//   .engine WF|PG|VT|MD|NJ  switch engines
//   .explain select ...   show shape + both phase plans
//   .load FILE.nt         import N-Triples (replaces current graph)
//   .open FILE.wfdb       open a binary snapshot
//   .save FILE.wfdb       write a binary snapshot
//   .stats                database and catalog summary
//   .limit N              cap printed rows (default 10)
//   .timeout SECONDS      per-query budget (default 60)
//   .help                 this text
//   .quit                 exit

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>

#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/yago_like.h"
#include "exec/aggregate_executor.h"
#include "exec/engine.h"
#include "net/client.h"
#include "query/parser.h"
#include "storage/ntriples.h"
#include "storage/serializer.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

struct ShellState {
  std::unique_ptr<Database> db;
  std::unique_ptr<Catalog> catalog;
  std::string engine_name = "WF";
  uint64_t print_limit = 10;
  double timeout_seconds = 60;

  void Adopt(Database fresh) {
    db = std::make_unique<Database>(std::move(fresh));
    catalog = std::make_unique<Catalog>(Catalog::Build(db->store()));
  }
};

void PrintStats(const ShellState& state) {
  std::cout << "triples    : " << state.db->store().NumTriples() << "\n"
            << "nodes      : " << state.db->store().NumNodes() << "\n"
            << "predicates : " << state.db->store().NumPredicates() << "\n"
            << "catalog    : " << state.catalog->MemoryBytes() / 1024
            << " KiB of 1-/2-gram statistics\n"
            << "engine     : " << state.engine_name << "\n";
}

/// COUNT/ASK/GROUP BY: the WF engine answers with the factorized DP
/// over the frozen AG (no embedding materialized); baseline engines
/// enumerate their rows through the folding sink for comparison.
void RunAggregateQuery(ShellState& state, const QueryGraph& query) {
  EngineOptions options;
  options.deadline = Deadline::AfterSeconds(state.timeout_seconds);
  Stopwatch watch;
  AggregateResult result;
  uint64_t ag_pairs = 0;
  if (state.engine_name == "WF") {
    WireframeEngine engine;
    CollectingAggregateSink sink;
    auto detail = engine.RunDetailed(*state.db, *state.catalog, query,
                                     options, &sink);
    if (!detail.ok()) {
      std::cout << "error: " << detail.status().ToString() << "\n";
      return;
    }
    result = detail->aggregate;
    ag_pairs = detail->stats.ag_pairs;
  } else {
    auto engine = MakeEngine(state.engine_name);
    EnumeratingAggregateSink fold(query.aggregate());
    auto stats = engine->Run(*state.db, *state.catalog, query, options,
                             &fold);
    if (!stats.ok()) {
      std::cout << "error: " << stats.status().ToString() << "\n";
      return;
    }
    result = fold.TakeResult();
  }
  const double seconds = watch.ElapsedSeconds();

  const AggregateSpec& spec = query.aggregate();
  if (spec.kind == AggregateKind::kAsk) {
    std::cout << (result.ask ? "yes" : "no");
  } else if (spec.group_var != kInvalidVar) {
    TablePrinter table(
        {"?" + query.VarName(spec.group_var),
         "?" + (spec.alias.empty() ? std::string("count") : spec.alias)});
    uint64_t shown = 0;
    for (const AggregateGroup& group : result.groups) {
      if (shown == state.print_limit) break;
      table.AddRow({state.db->nodes().Term(group.key),
                    group.value.ToString()});
      ++shown;
    }
    table.Print(std::cout);
    if (result.groups.size() > shown) {
      std::cout << "... and " << (result.groups.size() - shown)
                << " more groups\n";
    }
    std::cout << result.groups.size() << " group(s), total "
              << result.value.ToString();
  } else {
    std::cout << "?" << (spec.alias.empty() ? std::string("c") : spec.alias)
              << " = " << result.value.ToString();
  }
  std::cout << "  [" << (result.factorized ? "factorized, no enumeration"
                                           : "enumerated") << "] in "
            << TablePrinter::FormatSeconds(seconds) << " s";
  if (ag_pairs > 0) std::cout << "  |AG| = " << ag_pairs;
  std::cout << "\n";
}

void RunQuery(ShellState& state, const std::string& text) {
  auto query = SparqlParser::ParseAndBind(text, *state.db);
  if (!query.ok()) {
    std::cout << "error: " << query.status().ToString() << "\n";
    return;
  }
  if (query->aggregate().kind != AggregateKind::kNone) {
    RunAggregateQuery(state, *query);
    return;
  }
  auto engine = MakeEngine(state.engine_name);
  CollectingSink rows;
  LimitSink probe(state.print_limit);
  // Collect up to the print limit, but count everything: run twice only
  // if the user raised the limit above what fits comfortably.
  CountingSink counter;
  EngineOptions options;
  options.deadline = Deadline::AfterSeconds(state.timeout_seconds);

  Stopwatch watch;
  auto stats = engine->Run(*state.db, *state.catalog, *query, options,
                           &counter);
  const double seconds = watch.ElapsedSeconds();
  if (!stats.ok()) {
    std::cout << "error: " << stats.status().ToString() << "\n";
    return;
  }
  // Re-run to materialize the first rows for display (cheap relative to
  // the counting run; skipped when there is nothing to show).
  if (counter.count() > 0 && state.print_limit > 0) {
    class FirstRows : public Sink {
     public:
      FirstRows(uint64_t limit, std::vector<std::vector<NodeId>>* out)
          : limit_(limit), out_(out) {}
      bool Emit(const std::vector<NodeId>& binding) override {
        out_->push_back(binding);
        return out_->size() < limit_;
      }
      uint64_t count() const override { return out_->size(); }

     private:
      uint64_t limit_;
      std::vector<std::vector<NodeId>>* out_;
    };
    std::vector<std::vector<NodeId>> first;
    FirstRows sink(state.print_limit, &first);
    (void)engine->Run(*state.db, *state.catalog, *query, options, &sink);

    std::vector<std::string> header;
    for (VarId v = 0; v < query->NumVars(); ++v) {
      header.push_back("?" + query->VarName(v));
    }
    TablePrinter table(std::move(header));
    for (const auto& row : first) {
      std::vector<std::string> cells;
      for (NodeId n : row) cells.push_back(state.db->nodes().Term(n));
      table.AddRow(std::move(cells));
    }
    table.Print(std::cout);
    if (counter.count() > first.size()) {
      std::cout << "... and " << (counter.count() - first.size())
                << " more rows\n";
    }
  }
  std::cout << counter.count() << " embedding(s) in "
            << TablePrinter::FormatSeconds(seconds) << " s";
  if (stats->ag_pairs > 0) std::cout << "  |AG| = " << stats->ag_pairs;
  std::cout << "\n";
}

/// --connect mode: every query goes over the wire to a wf_server; the
/// shell is a thin net::Client REPL. Rows print as node ids — the term
/// dictionary lives on the server.
int RunRemoteShell(const Flags& flags) {
  net::ClientOptions options;
  options.service_class = flags.GetString("service_class", "");
  auto client =
      net::Client::Connect(flags.GetString("connect", ""), options);
  if (!client.ok()) {
    std::cerr << "connect: " << client.status().ToString() << "\n";
    return 1;
  }
  std::cout << "connected (service class '"
            << (*client)->hello().resolved_service_class
            << "', row batches of " << (*client)->hello().rows_per_batch
            << "); type a query, .limit N, or .quit\n";
  uint64_t print_limit = 10;
  std::string line;
  while (std::cout << "wf> " << std::flush, std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line.rfind(".limit", 0) == 0) {
      print_limit = std::strtoull(line.c_str() + 6, nullptr, 10);
      continue;
    }
    Stopwatch watch;
    auto result = (*client)->Run(line);
    const double seconds = watch.ElapsedSeconds();
    if (!result.ok()) {
      // Protocol-level failure: the connection is gone.
      std::cerr << "connection error: " << result.status().ToString()
                << "\n";
      return 1;
    }
    const runtime::QueryReport& report = result->report;
    if (!report.status.ok()) {
      std::cout << "error: " << report.status.ToString() << "\n";
      continue;
    }
    if (report.has_aggregate) {
      const AggregateResult& aggregate = report.aggregate;
      if (aggregate.kind == AggregateKind::kAsk) {
        std::cout << (aggregate.ask ? "yes" : "no");
      } else if (!aggregate.groups.empty()) {
        std::cout << aggregate.groups.size() << " group(s), total "
                  << aggregate.value.ToString();
      } else {
        std::cout << "count = " << aggregate.value.ToString();
      }
    } else {
      uint64_t shown = 0;
      for (const auto& row : result->rows) {
        if (shown == print_limit) break;
        for (size_t i = 0; i < row.size(); ++i) {
          std::cout << (i == 0 ? "" : "\t") << row[i];
        }
        std::cout << "\n";
        ++shown;
      }
      if (result->rows.size() > shown) {
        std::cout << "... and " << (result->rows.size() - shown)
                  << " more rows\n";
      }
      std::cout << report.rows << " embedding(s)";
    }
    std::cout << "  [" << runtime::QueryOutcomeName(report.outcome)
              << (report.cache_hit ? ", cache hit" : "") << "] in "
              << TablePrinter::FormatSeconds(seconds) << " s\n";
  }
  Status bye = (*client)->Goodbye();
  if (!bye.ok()) {
    std::cerr << "goodbye: " << bye.ToString() << "\n";
    return 1;
  }
  return 0;
}

void HandleCommand(ShellState& state, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  std::string arg;
  std::getline(in, arg);
  if (!arg.empty() && arg.front() == ' ') arg.erase(0, 1);

  if (cmd == ".help") {
    std::cout << "commands: .engine .explain .load .open .save .stats "
                 ".limit .timeout .quit;\nanything else runs as a query — "
                 "select ..., select (count(*) as ?c) ..., ask { ... }\n";
  } else if (cmd == ".engine") {
    if (MakeEngine(arg) == nullptr) {
      std::cout << "unknown engine '" << arg << "' (WF PG VT MD NJ)\n";
    } else {
      state.engine_name = arg;
      std::cout << "engine = " << arg << "\n";
    }
  } else if (cmd == ".explain") {
    auto query = SparqlParser::ParseAndBind(arg, *state.db);
    if (!query.ok()) {
      std::cout << "error: " << query.status().ToString() << "\n";
      return;
    }
    WireframeEngine engine;
    auto text = engine.Explain(*state.db, *state.catalog, *query);
    std::cout << (text.ok() ? *text : text.status().ToString()) << "\n";
  } else if (cmd == ".load") {
    DatabaseBuilder builder;
    auto count = NTriples::ReadFile(arg, &builder);
    if (!count.ok()) {
      std::cout << "error: " << count.status().ToString() << "\n";
      return;
    }
    state.Adopt(std::move(builder).Build());
    std::cout << "loaded " << *count << " triples\n";
  } else if (cmd == ".open") {
    auto db = Serializer::LoadFile(arg);
    if (!db.ok()) {
      std::cout << "error: " << db.status().ToString() << "\n";
      return;
    }
    state.Adopt(std::move(db).value());
    std::cout << "opened " << state.db->store().NumTriples()
              << " triples\n";
  } else if (cmd == ".save") {
    Status st = Serializer::SaveFile(*state.db, arg);
    std::cout << (st.ok() ? "saved " + arg : "error: " + st.ToString())
              << "\n";
  } else if (cmd == ".stats") {
    PrintStats(state);
  } else if (cmd == ".limit") {
    state.print_limit = std::strtoull(arg.c_str(), nullptr, 10);
  } else if (cmd == ".timeout") {
    state.timeout_seconds = std::atof(arg.c_str());
  } else {
    std::cout << "unknown command " << cmd << " (try .help)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("connect")) return RunRemoteShell(flags);
  ShellState state;

  if (flags.Has("nt")) {
    DatabaseBuilder builder;
    auto count = NTriples::ReadFile(flags.GetString("nt", ""), &builder);
    if (!count.ok()) {
      std::cerr << count.status().ToString() << "\n";
      return 1;
    }
    state.Adopt(std::move(builder).Build());
  } else if (flags.Has("db")) {
    auto db = Serializer::LoadFile(flags.GetString("db", ""));
    if (!db.ok()) {
      std::cerr << db.status().ToString() << "\n";
      return 1;
    }
    state.Adopt(std::move(db).value());
  } else {
    YagoLikeConfig config;
    config.scale = flags.GetDouble("scale", 0.1);
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    std::cout << "generating YAGO-like graph (scale " << config.scale
              << ") ...\n";
    state.Adopt(MakeYagoLike(config));
  }
  PrintStats(state);
  std::cout << "type a query or .help\n";

  std::string line;
  while (std::cout << "wf> " << std::flush, std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line[0] == '.') {
      HandleCommand(state, line);
    } else {
      RunQuery(state, line);
    }
  }
  return 0;
}
