// Snowflake analytics on the YAGO-like knowledge graph: the paper's CQ_S
// workload (Fig. 3) — a 9-edge, 10-variable star-of-stars around a person
// hub. Demonstrates why factorization matters: the answer graph stays tiny
// while the embedding count explodes multiplicatively.
//
// Usage: snowflake_movies [--scale=0.1] [--seed=42] [--query=1..5]

#include <iostream>

#include "benchlib/harness.h"
#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.1);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t query_index =
      static_cast<size_t>(flags.GetInt("query", 2)) - 1;
  if (query_index >= 5) {
    std::cerr << "--query must be 1..5 (snowflake rows of Table 1)\n";
    return 1;
  }

  std::cout << "generating YAGO-like graph (scale " << config.scale
            << ") ...\n";
  Stopwatch gen_watch;
  YagoLikeInfo info;
  Database db = MakeYagoLike(config, &info);
  std::cout << "  " << db.store().NumTriples() << " triples, "
            << db.store().NumPredicates() << " predicates, "
            << db.store().NumNodes() << " nodes ("
            << gen_watch.ElapsedMillis() << " ms)\n";

  Stopwatch cat_watch;
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "  catalog built in " << cat_watch.ElapsedMillis()
            << " ms (" << catalog.MemoryBytes() / 1024 << " KiB)\n\n";

  const std::string text = Table1Queries()[query_index];
  std::cout << "snowflake query " << (query_index + 1) << " ("
            << Table1RowLabel(query_index) << "):\n  " << text << "\n\n";
  auto query = SparqlParser::ParseAndBind(text, db);
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  WireframeEngine engine;
  auto explain = engine.Explain(db, catalog, *query);
  if (explain.ok()) std::cout << *explain << "\n";

  CountingSink sink;
  EngineOptions options;
  options.deadline = Deadline::AfterSeconds(120);
  auto detail = engine.RunDetailed(db, catalog, *query, options, &sink);
  if (!detail.ok()) {
    std::cerr << "run failed: " << detail.status().ToString() << "\n";
    return 1;
  }

  const auto& stats = detail->stats;
  std::cout << "phase 1 (answer graph): " << detail->stats.phase1_seconds
            << " s, |AG| = " << stats.ag_pairs << "\n";
  std::cout << "phase 2 (embeddings)  : " << detail->stats.phase2_seconds
            << " s, |embeddings| = " << stats.output_tuples << "\n";
  if (stats.ag_pairs > 0) {
    std::cout << "factorization ratio   : "
              << static_cast<double>(stats.output_tuples) / stats.ag_pairs
              << "x\n";
  }
  std::cout << "\nper-edge answer-graph sizes:\n";
  auto ag_stats = detail->ag->Stats();
  for (uint32_t e = 0; e < query->NumEdges(); ++e) {
    const QueryEdge& qe = query->Edge(e);
    std::cout << "  ?" << query->VarName(qe.src) << " --"
              << db.labels().Term(qe.label) << "--> ?"
              << query->VarName(qe.dst) << " : " << ag_stats[e].pairs
              << " pairs\n";
  }

  // Contrast with the PostgreSQL-like baseline regime.
  std::cout << "\ncomparing against the PG-like baseline ...\n";
  auto pg = MakeEngine("PG");
  CountingSink pg_sink;
  EngineOptions pg_options;
  pg_options.deadline = Deadline::AfterSeconds(60);
  Stopwatch pg_watch;
  auto pg_stats = pg->Run(db, catalog, *query, pg_options, &pg_sink);
  if (pg_stats.ok()) {
    std::cout << "  PG-like: " << pg_watch.ElapsedSeconds() << " s, peak "
              << pg_stats->peak_intermediate
              << " materialized intermediate tuples\n";
  } else {
    std::cout << "  PG-like: " << pg_stats.status().ToString()
              << " (prints as '*' in Table 1)\n";
  }
  std::cout << "  WF     : " << detail->stats.seconds << " s, peak "
            << stats.ag_pairs << " AG pairs\n";
  return 0;
}
