// Standalone Wireframe query server: loads or generates a graph, then
// serves the net/wire.h frame protocol until SIGINT/SIGTERM.
//
//   $ wf_server [--listen=127.0.0.1:0|unix:/tmp/wf.sock]
//               [--scale=0.05] [--seed=42] [--nt=FILE] [--db=FILE.wfdb]
//               [--addr_file=PATH]         # resolved address, for scripts
//               [--ag_cache_mb=0]          # answer-graph cache per tenant
//               [--pool_threads=0] [--max_inflight=4] [--max_queued=64]
//               [--timeout=0] [--row_budget=0]
//               [--brownout_watermark=0]   # queue depth that starts
//               [--brownout_retry_after_ms=250]   # shedding, + hint
//               [--send_buffer_kb=1024] [--rows_per_batch=1024]
//               [--read_timeout_ms=300000] [--write_timeout_ms=30000]
//               [--idle_timeout_ms=15000] [--hello_timeout_ms=10000]
//
// The CI net-e2e job starts this on a loopback socket, reads the
// "listening on ..." line (and --addr_file), and drives the Table-1 mix
// through net_e2e_driver against it.

#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "net/server.h"
#include "storage/ntriples.h"
#include "storage/serializer.h"
#include "util/flags.h"

using namespace wireframe;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  std::unique_ptr<Database> db;
  if (flags.Has("nt")) {
    DatabaseBuilder builder;
    auto count = NTriples::ReadFile(flags.GetString("nt", ""), &builder);
    if (!count.ok()) {
      std::cerr << count.status().ToString() << "\n";
      return 1;
    }
    db = std::make_unique<Database>(std::move(builder).Build());
  } else if (flags.Has("db")) {
    auto loaded = Serializer::LoadFile(flags.GetString("db", ""));
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    db = std::make_unique<Database>(std::move(loaded).value());
  } else {
    YagoLikeConfig config;
    config.scale = flags.GetDouble("scale", 0.05);
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    db = std::make_unique<Database>(MakeYagoLike(config));
  }
  Catalog catalog = Catalog::Build(db->store());

  runtime::ServerOptions server_options;
  server_options.runtime.pool_threads =
      static_cast<uint32_t>(flags.GetInt("pool_threads", 0));
  server_options.runtime.admission.max_inflight =
      static_cast<uint32_t>(flags.GetInt("max_inflight", 4));
  server_options.runtime.admission.default_timeout_seconds =
      flags.GetDouble("timeout", 0.0);
  server_options.runtime.admission.default_row_budget =
      static_cast<uint64_t>(flags.GetInt("row_budget", 0));
  server_options.runtime.admission.ag_cache_bytes =
      static_cast<uint64_t>(flags.GetInt("ag_cache_mb", 0)) * (1 << 20);
  server_options.runtime.admission.max_queued = static_cast<uint32_t>(
      flags.GetInt("max_queued",
                   server_options.runtime.admission.max_queued));
  // Graceful brownout: past this queue depth, queries from the
  // lowest-weight service classes are shed with a typed kOverloaded
  // carrying the retry-after hint below. 0 (default) disables shedding.
  server_options.runtime.admission.brownout_queue_watermark =
      static_cast<uint32_t>(flags.GetInt("brownout_watermark", 0));
  server_options.runtime.admission.brownout_retry_after_ms =
      static_cast<uint32_t>(flags.GetInt(
          "brownout_retry_after_ms",
          server_options.runtime.admission.brownout_retry_after_ms));
  runtime::Server server(*db, catalog, server_options);

  net::SocketServerOptions net_options;
  net_options.listen = flags.GetString("listen", "127.0.0.1:0");
  net_options.send_buffer_bytes =
      static_cast<uint64_t>(flags.GetInt("send_buffer_kb", 1024)) << 10;
  net_options.rows_per_batch =
      static_cast<uint32_t>(flags.GetInt("rows_per_batch", 1024));
  net_options.read_timeout_ms =
      static_cast<int>(flags.GetInt("read_timeout_ms", 300'000));
  net_options.write_timeout_ms =
      static_cast<int>(flags.GetInt("write_timeout_ms", 30'000));
  // Idle reaping: a session that sends NO frame (not even a PING) for
  // this long is closed. Clients that ping keep their connection for
  // free; silent half-dead peers stop pinning a session thread.
  net_options.idle_timeout_ms = static_cast<int>(
      flags.GetInt("idle_timeout_ms", net_options.idle_timeout_ms));
  net_options.hello_timeout_ms = static_cast<int>(
      flags.GetInt("hello_timeout_ms", net_options.hello_timeout_ms));
  // Handlers go in BEFORE the address is announced: a supervisor that
  // reads addr_file and signals immediately must never hit the window
  // where SIGINT still has its inherited disposition (background shells
  // inherit SIG_IGN — the kill would be silently ignored, forever).
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  net::SocketServer net_server(&server, net_options);
  Status started = net_server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }

  const std::string address = net_server.address().ToString();
  std::cout << "serving " << db->store().NumTriples()
            << " triples; listening on " << address << std::endl;
  if (flags.Has("addr_file")) {
    std::ofstream out(flags.GetString("addr_file", ""));
    out << address << "\n";
  }
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "draining..." << std::endl;
  net_server.Stop();
  const runtime::RuntimeStats stats = net_server.stats();
  std::cout << "served " << stats.completed << " queries over "
            << stats.connections_accepted << " connections ("
            << stats.net_malformed_frames << " malformed frames, "
            << stats.net_aborted_streams << " aborted streams)"
            << std::endl;
  return 0;
}
