// The paper's query miner (§5): instantiate query templates (snowflake,
// diamond, chains) over the YAGO-like graph's 104 predicates, prune with
// catalog 2-grams, and keep valid, non-empty queries. The paper mined
// 218,014 snowflakes and 18,743 diamonds on YAGO2s; here the search is
// capped to stay laptop-sized while exercising the same procedure.
//
// Usage: query_miner_demo [--scale=0.05] [--max_queries=200]
//                         [--max_candidates=2000000]

#include <iostream>

#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "query/miner.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

void MineAndReport(const Database& db, const Catalog& catalog,
                   const QueryTemplate& tmpl, const MinerOptions& options) {
  QueryMiner miner(db, catalog);
  MinerReport report;
  Stopwatch watch;
  auto mined = miner.Mine(tmpl, options, &report);
  if (!mined.ok()) {
    std::cerr << tmpl.name << ": " << mined.status().ToString() << "\n";
    return;
  }
  std::cout << tmpl.name << " (" << tmpl.num_slots << " slots):\n";
  std::cout << "  mined " << report.mined << " valid queries in "
            << watch.ElapsedMillis() << " ms"
            << (report.exhausted ? " (search exhausted)" : " (capped)")
            << "\n";
  std::cout << "  candidates considered : " << report.candidates << "\n";
  std::cout << "  pruned by 2-grams     : " << report.pruned_by_2gram
            << "\n";
  std::cout << "  rejected empty        : " << report.rejected_empty
            << "\n";
  // Show a few samples.
  const size_t show = std::min<size_t>(3, mined->size());
  for (size_t i = 0; i < show; ++i) {
    std::cout << "  e.g.";
    for (LabelId label : (*mined)[i].labels) {
      std::cout << " " << db.labels().Term(label);
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.05);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "generating YAGO-like graph ...\n";
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "  " << db.store().NumTriples() << " triples, "
            << db.store().NumPredicates() << " predicates\n\n";

  MinerOptions options;
  options.max_queries =
      static_cast<uint64_t>(flags.GetInt("max_queries", 200));
  options.max_candidates =
      static_cast<uint64_t>(flags.GetInt("max_candidates", 2'000'000));
  options.deadline = Deadline::AfterSeconds(60);

  MineAndReport(db, catalog, ChainTemplate(2), options);
  MineAndReport(db, catalog, ChainTemplate(3), options);
  MineAndReport(db, catalog, DiamondTemplate(), options);
  MineAndReport(db, catalog, SnowflakeTemplate(), options);
  return 0;
}
