// Quickstart: build a small RDF graph, run a SPARQL conjunctive query
// through the Wireframe two-phase evaluator, and inspect the plans.
//
// This is the paper's Fig. 1 example end to end:
//   1. load triples into a Database,
//   2. build the statistics Catalog (1-grams/2-grams),
//   3. parse + bind a chain CQ,
//   4. EXPLAIN the plan, then run it, collecting embeddings.

#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "query/parser.h"
#include "storage/database.h"

using namespace wireframe;

int main() {
  // 1. A small movie-ish graph: the Fig. 1 shape — A-edges fan in to a
  //    hub, C-edges fan out of another, and one doomed branch (n4 -> n6)
  //    that burnback removes.
  DatabaseBuilder builder;
  builder.Add("n1", "A", "n5");
  builder.Add("n2", "A", "n5");
  builder.Add("n3", "A", "n5");
  builder.Add("n4", "A", "n6");
  builder.Add("n5", "B", "n9");
  builder.Add("n6", "B", "n10");
  for (const char* z : {"n12", "n13", "n14", "n15"}) {
    builder.Add("n9", "C", z);
  }
  Database db = std::move(builder).Build();

  // 2. Offline statistics (shared across all queries on this database).
  Catalog catalog = Catalog::Build(db.store());

  // 3. The chain query CQ_C from the paper's Fig. 1.
  const char* kQuery =
      "select ?w ?x ?y ?z where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  auto query = SparqlParser::ParseAndBind(kQuery, db);
  if (!query.ok()) {
    std::cerr << "parse failed: " << query.status().ToString() << "\n";
    return 1;
  }

  // 4. EXPLAIN, then run.
  WireframeEngine engine;
  auto explain = engine.Explain(db, catalog, *query);
  if (explain.ok()) std::cout << *explain << "\n";

  CollectingSink sink;
  auto detail =
      engine.RunDetailed(db, catalog, *query, EngineOptions{}, &sink);
  if (!detail.ok()) {
    std::cerr << "run failed: " << detail.status().ToString() << "\n";
    return 1;
  }

  std::cout << "answer graph edges : " << detail->stats.ag_pairs
            << "   (the factorized result)\n";
  std::cout << "embeddings         : " << detail->stats.output_tuples
            << "\n";
  std::cout << "edge walks         : " << detail->stats.edge_walks << "\n\n";

  std::cout << "embeddings (w, x, y, z):\n";
  for (const auto& row : sink.rows()) {
    std::cout << "  ";
    for (VarId v = 0; v < query->NumVars(); ++v) {
      std::cout << db.nodes().Term(row[v]) << " ";
    }
    std::cout << "\n";
  }
  return 0;
}
