#!/usr/bin/env python3
"""Diff two BENCH_*.json trajectory files per (engine, query, threads) cell.

The bench drivers emit per-cell records with --json (either a bare array,
the legacy shape, or {"meta": {...}, "records": [...]}). This script joins
two such files on the cell key and summarizes what moved:

    scripts/bench_diff.py BENCH_pr2.json BENCH_pr3.json
    scripts/bench_diff.py old.json new.json --min-seconds 0.05

Output: one row per cell present in either file (old seconds, new seconds,
speedup new-vs-old, status flips), then a geometric-mean speedup over the
cells timed in both files. Cells faster in the new file show speedup > 1.
"""

import argparse
import json
import math
import sys


def load_records(path):
    """Returns (meta_dict, record_list) for either JSON shape."""
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, dict):
        return data.get("meta", {}), data.get("records", [])
    return {}, data


def cell_key(record):
    return (
        record.get("engine", "?"),
        record.get("query", "?"),
        record.get("threads", 1),
    )


def cell_status(record):
    if record.get("timed_out"):
        return "timeout"
    return "ok" if record.get("ok") else "fail"


def format_seconds(value):
    return "-" if value is None else f"{value:.3f}"


PHASE_FIELDS = (
    ("phase1", "phase1_seconds"),
    ("burnback", "burnback_seconds"),
    ("freeze", "freeze_seconds"),
    ("phase2", "phase2_seconds"),
)

# Meta keys that make two recordings incomparable when they disagree:
# different machines (hardware_threads), a different AG storage form
# (frozen), a different span-kernel dispatch (cpu_features — e.g. one
# recording ran AVX2 and the other the scalar fallback), or a different
# result transport (a loopback-socket recording against an in-process
# one measures the wire, not the engine) move every cell for reasons
# that are not the code under test. Same for retry: a recording taken
# through the retrying-client wrapper only compares against another one
# (bench_net --retry).
COMPARABILITY_KEYS = ("hardware_threads", "frozen", "cpu_features",
                      "transport", "retry")


def print_comparability_warnings(old_meta, new_meta):
    mismatched = [
        (key, old_meta[key], new_meta[key])
        for key in COMPARABILITY_KEYS
        if key in old_meta and key in new_meta
        and old_meta[key] != new_meta[key]
    ]
    for key, old_value, new_value in mismatched:
        print(
            f"!!! WARNING: meta.{key} differs "
            f"(old={old_value}, new={new_value}) — the recordings are "
            "not comparable; speedups below measure the environment, "
            "not the code !!!"
        )
    return bool(mismatched)


def phase_breakdown(old, new):
    """One indented line diffing the per-phase wall times, or None.

    Only emitted when both recordings carry phase data for the cell
    (some phase field nonzero on each side — baselines and old
    recordings have all-zero phases)."""
    if old is None or new is None:
        return None
    if not any(old.get(f, 0.0) for _, f in PHASE_FIELDS):
        return None
    if not any(new.get(f, 0.0) for _, f in PHASE_FIELDS):
        return None
    parts = []
    for label, field in PHASE_FIELDS:
        old_s = old.get(field, 0.0) or 0.0
        new_s = new.get(field, 0.0) or 0.0
        if old_s == 0.0 and new_s == 0.0:
            continue
        ratio = f" ({old_s / new_s:.2f}x)" if old_s > 0 and new_s > 0 else ""
        parts.append(f"{label} {old_s:.3f}->{new_s:.3f}{ratio}")
    if not parts:
        return None
    return "    phases: " + "  ".join(parts)


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files per cell."
    )
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.0,
        help="ignore cells faster than this in both files (noise floor)",
    )
    args = parser.parse_args()

    old_meta, old_records = load_records(args.old)
    new_meta, new_records = load_records(args.new)
    for label, meta in (("old", old_meta), ("new", new_meta)):
        if meta:
            rendered = ", ".join(f"{k}={v}" for k, v in meta.items())
            print(f"{label} meta: {rendered}")
    warned = print_comparability_warnings(old_meta, new_meta)

    old_cells = {cell_key(r): r for r in old_records}
    new_cells = {cell_key(r): r for r in new_records}
    keys = sorted(set(old_cells) | set(new_cells))

    header = f"{'cell':<40} {'old (s)':>9} {'new (s)':>9} {'speedup':>8}  note"
    print(header)
    print("-" * len(header))

    ratios = []
    for key in keys:
        old = old_cells.get(key)
        new = new_cells.get(key)
        old_s = old.get("seconds") if old else None
        new_s = new.get("seconds") if new else None
        label = f"{key[0]}/{key[1]}@t{key[2]}"

        notes = []
        if old is None:
            notes.append("new cell")
        elif new is None:
            notes.append("removed")
        else:
            old_st, new_st = cell_status(old), cell_status(new)
            if old_st != new_st:
                notes.append(f"{old_st} -> {new_st}")
        speedup = ""
        if (
            old is not None
            and new is not None
            and old.get("ok")
            and new.get("ok")
            and old_s is not None
            and new_s is not None
        ):
            if min(old_s, new_s) <= 0.0:
                notes.append("zero-time cell")
            elif max(old_s, new_s) >= args.min_seconds:
                ratio = old_s / new_s
                ratios.append(ratio)
                speedup = f"{ratio:.2f}x"
            else:
                notes.append("below floor")
        print(
            f"{label:<40} {format_seconds(old_s):>9} "
            f"{format_seconds(new_s):>9} {speedup:>8}  {'; '.join(notes)}"
        )
        phases = phase_breakdown(old, new)
        if phases is not None:
            print(phases)

    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        print(f"\ngeomean speedup over {len(ratios)} comparable cells: "
              f"{geomean:.2f}x")
    else:
        print("\nno comparable cells")
    if warned:
        # Repeat after the table so the flag cannot scroll out of view.
        print_comparability_warnings(old_meta, new_meta)
    return 0


if __name__ == "__main__":
    sys.exit(main())
