#include "query/miner.h"

#include "core/wireframe.h"
#include "exec/sink.h"
#include "util/logging.h"

namespace wireframe {

namespace {

/// Pre-resolved join constraint between the edge being assigned and an
/// earlier-assigned edge: the two labels must share at least one node
/// between `new_end` of the new label and `old_end` of the old.
struct JoinCheck {
  uint32_t old_slot;
  End new_end;
  End old_end;
};

}  // namespace

Result<std::vector<MinedQuery>> QueryMiner::Mine(const QueryTemplate& tmpl,
                                                 const MinerOptions& options,
                                                 MinerReport* report) const {
  const Catalog& cat = *catalog_;
  MinerReport local_report;
  MinerReport& rep = report ? *report : local_report;
  rep = MinerReport{};

  // Slot assignment follows template-edge order; templates list edges so
  // every prefix is connected.
  const uint32_t n = static_cast<uint32_t>(tmpl.edges.size());
  WF_CHECK(n == tmpl.num_slots) << "templates use one slot per edge";

  // Precompute, per edge, the join checks against all earlier edges.
  std::vector<std::vector<JoinCheck>> checks(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < i; ++j) {
      auto end_of = [](const TemplateEdge& e, const std::string& v) {
        return e.src == v ? End::kSubject : End::kObject;
      };
      for (const std::string* var : {&tmpl.edges[i].src, &tmpl.edges[i].dst}) {
        if (tmpl.edges[j].src == *var || tmpl.edges[j].dst == *var) {
          checks[i].push_back({tmpl.edges[j].slot, end_of(tmpl.edges[i], *var),
                               end_of(tmpl.edges[j], *var)});
        }
      }
    }
  }

  // Labels worth trying at all.
  std::vector<LabelId> alphabet;
  for (LabelId p = 0; p < cat.num_labels(); ++p) {
    if (cat.EdgeCount(p) > 0) alphabet.push_back(p);
  }

  std::vector<MinedQuery> mined;
  std::vector<LabelId> assignment(n, kInvalidLabel);
  WireframeEngine probe_engine;
  bool budget_hit = false;

  // Iterative DFS over slots.
  std::vector<size_t> cursor(n + 1, 0);
  uint32_t depth = 0;
  while (true) {
    if (mined.size() >= options.max_queries ||
        rep.candidates >= options.max_candidates ||
        options.deadline.Expired()) {
      budget_hit = true;
      break;
    }
    if (cursor[depth] >= alphabet.size()) {
      if (depth == 0) break;  // exhausted
      cursor[depth] = 0;
      --depth;
      ++cursor[depth];
      continue;
    }
    const LabelId label = alphabet[cursor[depth]];
    assignment[tmpl.edges[depth].slot] = label;
    ++rep.candidates;

    bool viable = true;
    for (const JoinCheck& check : checks[depth]) {
      if (cat.SharedDistinct(label, check.new_end, assignment[check.old_slot],
                             check.old_end) == 0) {
        viable = false;
        break;
      }
    }
    if (!viable) {
      ++rep.pruned_by_2gram;
      ++cursor[depth];
      continue;
    }
    if (depth + 1 < n) {
      ++depth;
      cursor[depth] = 0;
      continue;
    }

    // Complete assignment surviving all 2-gram checks.
    bool keep = true;
    if (options.verify_nonempty) {
      QueryGraph query = tmpl.Instantiate(assignment);
      LimitSink sink(1);
      EngineOptions engine_options;
      engine_options.deadline = options.deadline;
      Result<EngineStats> result =
          probe_engine.Run(*db_, cat, query, engine_options, &sink);
      if (!result.ok()) {
        if (result.status().IsTimedOut()) {
          budget_hit = true;
          break;
        }
        return result.status();
      }
      keep = sink.count() > 0;
      if (!keep) ++rep.rejected_empty;
    }
    if (keep) mined.push_back(MinedQuery{assignment});
    ++cursor[depth];
  }

  rep.mined = mined.size();
  rep.exhausted = !budget_hit;
  return mined;
}

}  // namespace wireframe
