#include "query/canonical.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"

namespace wireframe {
namespace {

/// Isomorphism-invariant vertex colors by Weisfeiler-Leman refinement:
/// the initial color hashes each variable's sorted (label, direction)
/// incidence multiset, and each round folds in the sorted colors of the
/// neighbors across each incident edge. Colors are used only to seed and
/// prune the ordering search — key equality never depends on them, so a
/// hash collision costs nothing but search time.
std::vector<uint64_t> RefineColors(const QueryGraph& q) {
  const uint32_t n = q.NumVars();
  std::vector<uint64_t> colors(n);
  std::vector<uint64_t> scratch;
  for (VarId v = 0; v < n; ++v) {
    scratch.clear();
    for (const QueryEdge& e : q.edges()) {
      if (e.src == v) scratch.push_back((uint64_t{e.label} << 1) | 0);
      if (e.dst == v) scratch.push_back((uint64_t{e.label} << 1) | 1);
    }
    std::sort(scratch.begin(), scratch.end());
    uint64_t h = Mix64(scratch.size());
    for (uint64_t s : scratch) h = Mix64(h ^ Mix64(s));
    colors[v] = h;
  }
  std::vector<uint64_t> next(n);
  for (uint32_t round = 0; round < n; ++round) {
    for (VarId v = 0; v < n; ++v) {
      scratch.clear();
      for (const QueryEdge& e : q.edges()) {
        if (e.src == v) {
          scratch.push_back(Mix64((uint64_t{e.label} << 1) | 0) ^
                            colors[e.dst]);
        }
        if (e.dst == v) {
          scratch.push_back(Mix64((uint64_t{e.label} << 1) | 1) ^
                            colors[e.src]);
        }
      }
      std::sort(scratch.begin(), scratch.end());
      uint64_t h = Mix64(colors[v]);
      for (uint64_t s : scratch) h = Mix64(h ^ Mix64(s));
      next[v] = h;
    }
    if (next == colors) break;
    colors.swap(next);
  }
  return colors;
}

constexpr uint32_t kUnranked = std::numeric_limits<uint32_t>::max();

/// Branch-and-bound search for the variable order with the
/// lexicographically smallest step encoding.
///
/// The encoding of an order places one variable per step; step k
/// contributes a separator followed by the sorted tuples
/// (rank of the already-placed endpoint, direction, label) of every edge
/// whose second endpoint is placed at step k. Each edge appears exactly
/// once, so the encoding determines the canonical graph, and every
/// complete order yields an encoding of identical length — prefixes are
/// directly comparable across branches.
class OrderSearch {
 public:
  OrderSearch(const QueryGraph& q, const std::vector<uint64_t>& colors)
      : q_(q), colors_(colors), n_(q.NumVars()) {
    rank_.assign(n_, kUnranked);
    order_.reserve(n_);
  }

  /// Runs the search and returns the best order found (rank -> var).
  std::vector<VarId> Run() {
    if (n_ == 0) return {};
    // Seed candidates: the minimal refinement color class (invariant
    // under isomorphism, so both copies of a query start the same way).
    uint64_t min_color = *std::min_element(colors_.begin(), colors_.end());
    std::vector<VarId> seeds;
    for (VarId v = 0; v < n_; ++v) {
      if (colors_[v] == min_color) seeds.push_back(v);
    }
    for (VarId v : seeds) {
      Place(v);
      Descend(/*strictly_less=*/false);
      Unplace(v);
      if (expansions_ > kMaxExpansions) break;
    }
    WF_CHECK(!best_order_.empty()) << "order search found no ordering";
    return best_order_;
  }

 private:
  /// Expansion budget: queries with huge automorphism groups (all
  /// orderings tie) stop here with the best — typically the only —
  /// encoding found. A cutoff can cost cross-naming cache hits, never
  /// correctness (see CanonicalQuery).
  static constexpr size_t kMaxExpansions = 20000;

  /// Encoded profile tuple of one edge completed by placing a variable:
  /// earlier endpoint's rank, direction, label. +1 reserves 0 for the
  /// step separator.
  static uint64_t Tuple(uint32_t other_rank, uint32_t dir, LabelId label) {
    return ((uint64_t{other_rank} << 35) | (uint64_t{dir} << 33) |
            uint64_t{label}) +
           1;
  }

  /// Sorted tuples of the edges whose second endpoint would be v, were v
  /// placed next (at rank order_.size()).
  std::vector<uint64_t> Profile(VarId v) const {
    std::vector<uint64_t> profile;
    const uint32_t here = static_cast<uint32_t>(order_.size());
    for (const QueryEdge& e : q_.edges()) {
      if (e.src == v && e.dst == v) {
        profile.push_back(Tuple(here, 2, e.label));
      } else if (e.src == v && rank_[e.dst] != kUnranked) {
        profile.push_back(Tuple(rank_[e.dst], 1, e.label));
      } else if (e.dst == v && rank_[e.src] != kUnranked) {
        profile.push_back(Tuple(rank_[e.src], 0, e.label));
      }
    }
    std::sort(profile.begin(), profile.end());
    return profile;
  }

  void Place(VarId v) {
    const std::vector<uint64_t> profile = Profile(v);
    rank_[v] = static_cast<uint32_t>(order_.size());
    encoding_.push_back(0);  // step separator
    encoding_.insert(encoding_.end(), profile.begin(), profile.end());
    order_.push_back(v);
  }

  void Unplace(VarId v) {
    order_.pop_back();
    // Rewind the encoding to where this step began: profile tuples are
    // >= 1, so pop back to (and including) the step's 0 separator.
    while (encoding_.back() != 0) encoding_.pop_back();
    encoding_.pop_back();
    rank_[v] = kUnranked;
  }

  /// Compares the current partial encoding's newest step against the
  /// best encoding at the same positions. Returns -1 / 0 / +1.
  int CompareTailToBest(size_t from) const {
    if (best_encoding_.empty()) return -1;
    for (size_t i = from; i < encoding_.size(); ++i) {
      if (encoding_[i] < best_encoding_[i]) return -1;
      if (encoding_[i] > best_encoding_[i]) return 1;
    }
    return 0;
  }

  void Descend(bool strictly_less) {
    ++expansions_;
    if (order_.size() == n_) {
      if (best_encoding_.empty() || strictly_less) {
        best_encoding_ = encoding_;
        best_order_ = order_;
      }
      return;
    }
    // Candidates: only the unplaced vars with the minimal prospective
    // (profile, color). The step's encoding segment is exactly the
    // separator plus the profile, so a larger profile here loses the
    // lexicographic comparison at this very segment no matter how either
    // branch completes — minimal-profile candidates strictly dominate.
    // The color restriction inside a profile tie is equally safe: the
    // restricted set is isomorphism-invariant (both namings of a query
    // narrow to corresponding vars), so the search still returns the
    // same key for isomorphic inputs, which is all canonicality needs.
    // Branching therefore survives only between invariant-tied vars —
    // automorphic ones, in practice.
    struct Cand {
      std::vector<uint64_t> profile;
      uint64_t color;
      VarId v;
    };
    std::vector<Cand> cands;
    for (VarId v = 0; v < n_; ++v) {
      if (rank_[v] != kUnranked) continue;
      cands.push_back(Cand{Profile(v), colors_[v], v});
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.profile != b.profile) return a.profile < b.profile;
      if (a.color != b.color) return a.color < b.color;
      return a.v < b.v;
    });
    size_t tied = 1;
    while (tied < cands.size() && cands[tied].profile == cands[0].profile &&
           cands[tied].color == cands[0].color) {
      ++tied;
    }
    cands.resize(tied);
    for (const Cand& cand : cands) {
      if (expansions_ > kMaxExpansions && !best_order_.empty()) return;
      const size_t step_from = encoding_.size();
      Place(cand.v);
      bool child_strictly_less = strictly_less;
      bool prune = false;
      if (!strictly_less) {
        const int cmp = CompareTailToBest(step_from);
        if (cmp > 0) prune = true;
        if (cmp < 0) child_strictly_less = true;
      }
      if (!prune) Descend(child_strictly_less);
      Unplace(cand.v);
    }
  }

  const QueryGraph& q_;
  const std::vector<uint64_t>& colors_;
  const uint32_t n_;
  std::vector<uint32_t> rank_;       // var -> rank, kUnranked if unplaced
  std::vector<VarId> order_;         // rank -> var
  std::vector<uint64_t> encoding_;   // partial step encoding
  std::vector<uint64_t> best_encoding_;
  std::vector<VarId> best_order_;
  size_t expansions_ = 0;
};

}  // namespace

CanonicalQuery CanonicalizeQuery(const QueryGraph& query) {
  const std::vector<uint64_t> colors = RefineColors(query);
  OrderSearch search(query, colors);
  const std::vector<VarId> order = search.Run();

  CanonicalQuery out;
  out.to_canonical.assign(query.NumVars(), kInvalidVar);
  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    out.to_canonical[order[rank]] = rank;
  }

  struct CanonEdge {
    VarId src;
    VarId dst;
    LabelId label;
  };
  std::vector<CanonEdge> edges;
  edges.reserve(query.NumEdges());
  for (const QueryEdge& e : query.edges()) {
    edges.push_back(CanonEdge{out.to_canonical[e.src],
                              out.to_canonical[e.dst], e.label});
  }
  std::sort(edges.begin(), edges.end(),
            [](const CanonEdge& a, const CanonEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.label < b.label;
            });

  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    out.query.AddVar("c" + std::to_string(rank));
  }
  out.key = "v" + std::to_string(query.NumVars()) + "|";
  for (const CanonEdge& e : edges) {
    out.query.AddEdge(e.src, e.label, e.dst);
    out.key += std::to_string(e.src) + "-" + std::to_string(e.label) + ">" +
               std::to_string(e.dst) + ";";
  }
  return out;
}

}  // namespace wireframe
