#ifndef WIREFRAME_QUERY_SHAPE_H_
#define WIREFRAME_QUERY_SHAPE_H_

#include <vector>

#include "query/query_graph.h"

namespace wireframe {

/// A simple cycle of the query graph: vars[i] -- edges[i] -- vars[i+1],
/// wrapping around (edges[n-1] connects vars[n-1] and vars[0]). Edge
/// direction is ignored; Length() >= 2 (two parallel patterns between the
/// same variable pair already form a cycle for planning purposes).
struct QueryCycle {
  std::vector<VarId> vars;
  std::vector<uint32_t> edges;

  uint32_t Length() const { return static_cast<uint32_t>(vars.size()); }
};

/// Structural classification of a query graph, driving planner choices:
/// acyclic queries need only node burnback; cyclic ones are triangulated.
struct QueryShape {
  bool connected = false;
  /// True iff the underlying undirected multigraph has no cycle, i.e. the
  /// CQ is tree-shaped (snowflakes, chains, stars).
  bool acyclic = false;
  /// A fundamental cycle basis (one cycle per non-tree edge of a BFS
  /// spanning forest). Empty iff acyclic.
  std::vector<QueryCycle> cycles;
};

/// Analyzes connectivity and cycle structure of `query`.
QueryShape AnalyzeShape(const QueryGraph& query);

/// True iff the undirected query graph is connected (engines require it;
/// disconnected CQs are cross products the paper does not consider).
bool IsConnected(const QueryGraph& query);

/// True iff the query graph is tree-shaped.
bool IsAcyclic(const QueryGraph& query);

}  // namespace wireframe

#endif  // WIREFRAME_QUERY_SHAPE_H_
