#include "query/query_graph.h"

#include <functional>
#include <numeric>

#include "util/logging.h"

namespace wireframe {

VarId QueryGraph::AddVar(std::string_view name) {
  WF_CHECK(FindVar(name) == kInvalidVar)
      << "duplicate variable ?" << std::string(name);
  var_names_.emplace_back(name);
  incident_.emplace_back();
  return static_cast<VarId>(var_names_.size() - 1);
}

VarId QueryGraph::VarByName(std::string_view name) {
  VarId v = FindVar(name);
  return v != kInvalidVar ? v : AddVar(name);
}

VarId QueryGraph::FindVar(std::string_view name) const {
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<VarId>(i);
  }
  return kInvalidVar;
}

uint32_t QueryGraph::AddEdge(VarId src, LabelId label, VarId dst) {
  WF_CHECK(src < NumVars() && dst < NumVars());
  WF_CHECK(src != dst) << "self-loop patterns are not supported";
  const uint32_t e = static_cast<uint32_t>(edges_.size());
  edges_.push_back(QueryEdge{src, label, dst});
  incident_[src].push_back(e);
  incident_[dst].push_back(e);
  return e;
}

std::vector<VarId> QueryGraph::OutputVars() const {
  if (!projection_.empty()) return projection_;
  std::vector<VarId> all(NumVars());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

std::string QueryGraph::ToString(
    const std::function<std::string(LabelId)>& label_name) const {
  std::string out = "select ";
  if (distinct_) out += "distinct ";
  for (VarId v : OutputVars()) {
    out += "?" + var_names_[v] + " ";
  }
  out += "where { ";
  for (const QueryEdge& e : edges_) {
    out += "?" + var_names_[e.src] + " " + label_name(e.label) + " ?" +
           var_names_[e.dst] + " . ";
  }
  out += "}";
  return out;
}

}  // namespace wireframe
