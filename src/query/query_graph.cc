#include "query/query_graph.h"

#include <functional>
#include <numeric>

#include "util/logging.h"

namespace wireframe {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kNone:
      return "none";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kCountDistinct:
      return "count-distinct";
    case AggregateKind::kAsk:
      return "ask";
  }
  return "?";
}

VarId QueryGraph::AddVar(std::string_view name) {
  WF_CHECK(FindVar(name) == kInvalidVar)
      << "duplicate variable ?" << std::string(name);
  var_names_.emplace_back(name);
  incident_.emplace_back();
  return static_cast<VarId>(var_names_.size() - 1);
}

VarId QueryGraph::VarByName(std::string_view name) {
  VarId v = FindVar(name);
  return v != kInvalidVar ? v : AddVar(name);
}

VarId QueryGraph::FindVar(std::string_view name) const {
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<VarId>(i);
  }
  return kInvalidVar;
}

uint32_t QueryGraph::AddEdge(VarId src, LabelId label, VarId dst) {
  WF_CHECK(src < NumVars() && dst < NumVars());
  WF_CHECK(src != dst) << "self-loop patterns are not supported";
  const uint32_t e = static_cast<uint32_t>(edges_.size());
  edges_.push_back(QueryEdge{src, label, dst});
  incident_[src].push_back(e);
  incident_[dst].push_back(e);
  return e;
}

std::vector<VarId> QueryGraph::OutputVars() const {
  if (!projection_.empty()) return projection_;
  std::vector<VarId> all(NumVars());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

std::string QueryGraph::ToString(
    const std::function<std::string(LabelId)>& label_name) const {
  std::string out;
  if (aggregate_.kind == AggregateKind::kAsk) {
    out = "ask ";
  } else {
    out = "select ";
    if (distinct_) out += "distinct ";
    switch (aggregate_.kind) {
      case AggregateKind::kCount:
        if (aggregate_.group_var != kInvalidVar) {
          out += "?" + var_names_[aggregate_.group_var] + " ";
        }
        out += "(count(*) as ?" + aggregate_.alias + ") ";
        break;
      case AggregateKind::kCountDistinct:
        out += "(count(distinct ?" + var_names_[aggregate_.distinct_var] +
               ") as ?" + aggregate_.alias + ") ";
        break;
      default:
        for (VarId v : OutputVars()) {
          out += "?" + var_names_[v] + " ";
        }
        break;
    }
  }
  out += "where { ";
  for (const QueryEdge& e : edges_) {
    out += "?" + var_names_[e.src] + " " + label_name(e.label) + " ?" +
           var_names_[e.dst] + " . ";
  }
  out += "}";
  if (aggregate_.group_var != kInvalidVar) {
    out += " group by ?" + var_names_[aggregate_.group_var];
  }
  return out;
}

}  // namespace wireframe
