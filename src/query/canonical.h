#ifndef WIREFRAME_QUERY_CANONICAL_H_
#define WIREFRAME_QUERY_CANONICAL_H_

#include <string>
#include <vector>

#include "query/query_graph.h"

namespace wireframe {

/// The canonical form of a conjunctive query's *shape*: variables renamed
/// to a structure-determined order, edges sorted, plus the permutation
/// back to the submitted query.
///
/// Two queries that are isomorphic as labeled directed multigraphs —
/// identical up to variable naming and triple-pattern order — produce the
/// same `key` and the same `query`. The key deliberately ignores
/// projection and DISTINCT: answer-graph generation depends only on the
/// edge structure and labels, which is exactly what the runtime's AG
/// cache needs (engines emit full bindings; projection is a sink
/// concern).
///
/// Correctness does not rest on the canonicalization being perfect: the
/// key is the exact edge-list encoding of `query`, so equal keys imply
/// structurally identical canonical queries — a search cutoff (huge
/// automorphism groups) can only cost cache hits, never correctness.
struct CanonicalQuery {
  /// Exact textual encoding of the canonical edge list, e.g.
  /// "v4|0-17>1;1-3>2;2-5>3;". Equal keys <=> identical canonical form.
  std::string key;
  /// The query rewritten over canonical variables c0..c{n-1} with edges
  /// in sorted order. Projection is empty and DISTINCT is off: callers
  /// execute this form and remap full bindings back themselves.
  QueryGraph query;
  /// Maps each submitted-query variable to its canonical variable:
  /// canonical var `to_canonical[v]` plays the role of v. A binding
  /// `row` emitted by the canonical form translates back as
  /// `orig[v] = row[to_canonical[v]]`.
  std::vector<VarId> to_canonical;
};

/// Canonicalizes `query` (see CanonicalQuery). Cost: color refinement
/// plus a bounded branch-and-bound over the refinement's symmetric
/// candidates — microseconds for the paper's template-sized queries.
CanonicalQuery CanonicalizeQuery(const QueryGraph& query);

}  // namespace wireframe

#endif  // WIREFRAME_QUERY_CANONICAL_H_
