#ifndef WIREFRAME_QUERY_PARSER_H_
#define WIREFRAME_QUERY_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "query/query_graph.h"
#include "storage/database.h"
#include "util/result.h"

namespace wireframe {

/// A parsed-but-unresolved conjunctive query: predicates are still strings
/// because binding them to LabelIds requires a database dictionary.
struct ParsedQuery {
  struct Pattern {
    std::string subject_var;  // without the leading '?'
    std::string predicate;    // IRI or bare name, as written
    std::string object_var;
  };
  std::vector<std::string> projection;  // empty means SELECT *
  bool distinct = false;
  std::vector<Pattern> patterns;
  // Aggregate clause, when present (see query_graph.h AggregateSpec).
  AggregateKind aggregate = AggregateKind::kNone;
  std::string aggregate_alias;     // "c" for (... AS ?c); empty for ASK
  std::string distinct_count_var;  // COUNT(DISTINCT ?v)
  std::string group_by_var;        // GROUP BY ?v
};

/// Recursive-descent parser for the SPARQL fragment the paper uses:
///
///   SELECT [DISTINCT] (?var... | *) WHERE { ?s <p> ?o . ... }
///
/// plus the aggregate subset served by the factorized aggregate
/// executor:
///
///   SELECT (COUNT(*) AS ?c) WHERE { ... }
///   SELECT (COUNT(DISTINCT ?v) AS ?c) WHERE { ... }
///   SELECT ?g (COUNT(*) AS ?c) WHERE { ... } GROUP BY ?g
///   ASK { ... }
///
/// Unsupported combinations (SUM/AVG/MIN/MAX, plain COUNT(?v), DISTINCT
/// with aggregates, multi-variable GROUP BY, HAVING) are rejected with
/// precise messages. Predicates may be written `<full-iri>`,
/// `prefix:name`, or bare names. Keywords are case-insensitive; the
/// final '.' of the last pattern is optional, matching the paper's
/// listings.
class SparqlParser {
 public:
  /// Parses the textual query. ParseError statuses carry a byte offset.
  static Result<ParsedQuery> Parse(std::string_view text);

  /// Resolves predicate strings against `db` (exact term first, then a
  /// match ignoring surrounding <>), producing an executable QueryGraph.
  /// Unknown predicates yield NotFound.
  static Result<QueryGraph> Bind(const ParsedQuery& parsed,
                                 const Database& db);

  /// Parse + Bind in one step.
  static Result<QueryGraph> ParseAndBind(std::string_view text,
                                         const Database& db);
};

}  // namespace wireframe

#endif  // WIREFRAME_QUERY_PARSER_H_
