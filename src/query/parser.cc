#include "query/parser.h"

#include <cctype>

namespace wireframe {

namespace {

/// Character-level cursor with offset tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  /// Consumes `kw` case-insensitively if it is the next word.
  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(kw[i]))) {
        return false;
      }
    }
    // Keywords must end at a word boundary.
    size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Reads a ?variable; empty result means the next token is not one.
  std::string ConsumeVar() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '?') return {};
    size_t start = ++pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Reads a predicate token: <iri>, prefix:name, or a bare name.
  std::string ConsumePredicate() {
    SkipSpace();
    if (pos_ >= text_.size()) return {};
    if (text_[pos_] == '<') {
      auto close = text_.find('>', pos_);
      if (close == std::string_view::npos) return {};
      std::string out(text_.substr(pos_, close - pos_ + 1));
      pos_ = close + 1;
      return out;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == ':' || text_[pos_] == '-')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status ErrorAt(const Cursor& c, const std::string& what) {
  return Status::ParseError(what + " (at offset " + std::to_string(c.pos()) +
                            ")");
}

}  // namespace

Result<ParsedQuery> SparqlParser::Parse(std::string_view text) {
  Cursor c(text);
  ParsedQuery q;

  if (!c.ConsumeKeyword("select")) return ErrorAt(c, "expected SELECT");
  if (c.ConsumeKeyword("distinct")) q.distinct = true;

  if (c.ConsumeChar('*')) {
    // SELECT *: empty projection.
  } else {
    for (;;) {
      std::string var = c.ConsumeVar();
      if (var.empty()) break;
      q.projection.push_back(var);
      c.ConsumeChar(',');  // commas between projection vars are optional
    }
    if (q.projection.empty()) {
      return ErrorAt(c, "expected '*' or at least one ?variable");
    }
  }

  if (!c.ConsumeKeyword("where")) return ErrorAt(c, "expected WHERE");
  if (!c.ConsumeChar('{')) return ErrorAt(c, "expected '{'");

  while (!c.ConsumeChar('}')) {
    ParsedQuery::Pattern pat;
    pat.subject_var = c.ConsumeVar();
    if (pat.subject_var.empty()) {
      return ErrorAt(c, "expected subject ?variable");
    }
    pat.predicate = c.ConsumePredicate();
    if (pat.predicate.empty()) return ErrorAt(c, "expected predicate");
    pat.object_var = c.ConsumeVar();
    if (pat.object_var.empty()) {
      return ErrorAt(c, "expected object ?variable");
    }
    q.patterns.push_back(std::move(pat));
    c.ConsumeChar('.');  // trailing '.' optional before '}'
    if (c.AtEnd()) return ErrorAt(c, "unterminated WHERE block");
  }

  if (q.patterns.empty()) return ErrorAt(c, "empty WHERE block");
  return q;
}

Result<QueryGraph> SparqlParser::Bind(const ParsedQuery& parsed,
                                      const Database& db) {
  QueryGraph graph;
  graph.SetDistinct(parsed.distinct);

  auto resolve = [&db](const std::string& pred) -> std::optional<LabelId> {
    if (auto id = db.LabelOf(pred)) return id;
    // Accept both "<iri>" in the query vs "iri" in the dictionary and the
    // reverse, plus bare local names against ":name"-style dictionaries.
    if (pred.size() >= 2 && pred.front() == '<' && pred.back() == '>') {
      if (auto id = db.LabelOf(pred.substr(1, pred.size() - 2))) return id;
    } else {
      if (auto id = db.LabelOf("<" + pred + ">")) return id;
      if (auto id = db.LabelOf(":" + pred)) return id;
    }
    return std::nullopt;
  };

  for (const auto& pat : parsed.patterns) {
    auto label = resolve(pat.predicate);
    if (!label) {
      return Status::NotFound("unknown predicate: " + pat.predicate);
    }
    VarId s = graph.VarByName(pat.subject_var);
    VarId o = graph.VarByName(pat.object_var);
    if (s == o) {
      return Status::InvalidArgument("self-loop pattern on ?" +
                                     pat.subject_var);
    }
    graph.AddEdge(s, *label, o);
  }

  std::vector<VarId> projection;
  for (const std::string& name : parsed.projection) {
    VarId v = graph.FindVar(name);
    if (v == kInvalidVar) {
      return Status::InvalidArgument("projected variable ?" + name +
                                     " does not appear in WHERE");
    }
    projection.push_back(v);
  }
  graph.SetProjection(std::move(projection));
  return graph;
}

Result<QueryGraph> SparqlParser::ParseAndBind(std::string_view text,
                                              const Database& db) {
  WF_ASSIGN_OR_RETURN(ParsedQuery parsed, Parse(text));
  return Bind(parsed, db);
}

}  // namespace wireframe
