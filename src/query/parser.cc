#include "query/parser.h"

#include <cctype>

namespace wireframe {

namespace {

/// Character-level cursor with offset tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  /// Consumes `kw` case-insensitively if it is the next word.
  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(kw[i]))) {
        return false;
      }
    }
    // Keywords must end at a word boundary.
    size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Reads a ?variable; empty result means the next token is not one.
  std::string ConsumeVar() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '?') return {};
    size_t start = ++pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Reads a predicate token: <iri>, prefix:name, or a bare name.
  std::string ConsumePredicate() {
    SkipSpace();
    if (pos_ >= text_.size()) return {};
    if (text_[pos_] == '<') {
      auto close = text_.find('>', pos_);
      if (close == std::string_view::npos) return {};
      std::string out(text_.substr(pos_, close - pos_ + 1));
      pos_ = close + 1;
      return out;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == ':' || text_[pos_] == '-')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status ErrorAt(const Cursor& c, const std::string& what) {
  return Status::ParseError(what + " (at offset " + std::to_string(c.pos()) +
                            ")");
}

/// Parses one parenthesized projection item after its '(' was consumed:
/// `COUNT(*) AS ?alias` or `COUNT(DISTINCT ?v) AS ?alias`, closing ')'.
Status ParseAggregateItem(Cursor& c, ParsedQuery& q) {
  for (const char* fn : {"sum", "avg", "min", "max", "sample",
                         "group_concat"}) {
    if (c.ConsumeKeyword(fn)) {
      return ErrorAt(c, std::string("unsupported aggregate ") + fn +
                            "; only COUNT(*) and COUNT(DISTINCT ?var) are"
                            " supported");
    }
  }
  if (!c.ConsumeKeyword("count")) {
    return ErrorAt(c, "expected an aggregate function after '('");
  }
  if (q.aggregate != AggregateKind::kNone) {
    return ErrorAt(c, "at most one aggregate per query");
  }
  if (!c.ConsumeChar('(')) return ErrorAt(c, "expected '(' after COUNT");
  if (c.ConsumeChar('*')) {
    q.aggregate = AggregateKind::kCount;
  } else if (c.ConsumeKeyword("distinct")) {
    q.distinct_count_var = c.ConsumeVar();
    if (q.distinct_count_var.empty()) {
      return ErrorAt(c, "expected ?variable after COUNT(DISTINCT");
    }
    q.aggregate = AggregateKind::kCountDistinct;
  } else if (!c.ConsumeVar().empty()) {
    return ErrorAt(c, "plain COUNT(?var) is not supported; use COUNT(*) or"
                      " COUNT(DISTINCT ?var)");
  } else {
    return ErrorAt(c, "expected '*' or DISTINCT ?variable inside COUNT");
  }
  if (!c.ConsumeChar(')')) return ErrorAt(c, "expected ')' closing COUNT");
  if (!c.ConsumeKeyword("as")) {
    return ErrorAt(c, "expected AS ?alias after COUNT(...)");
  }
  q.aggregate_alias = c.ConsumeVar();
  if (q.aggregate_alias.empty()) {
    return ErrorAt(c, "expected ?alias after AS");
  }
  if (!c.ConsumeChar(')')) {
    return ErrorAt(c, "expected ')' closing the aggregate");
  }
  return Status::OK();
}

}  // namespace

Result<ParsedQuery> SparqlParser::Parse(std::string_view text) {
  Cursor c(text);
  ParsedQuery q;

  if (c.ConsumeKeyword("ask")) {
    q.aggregate = AggregateKind::kAsk;
    c.ConsumeKeyword("where");  // ASK { ... } and ASK WHERE { ... }
  } else {
    if (!c.ConsumeKeyword("select")) {
      return ErrorAt(c, "expected SELECT or ASK");
    }
    if (c.ConsumeKeyword("distinct")) q.distinct = true;

    if (c.ConsumeChar('*')) {
      // SELECT *: empty projection.
    } else {
      for (;;) {
        if (c.ConsumeChar('(')) {
          Status item = ParseAggregateItem(c, q);
          if (!item.ok()) return item;
        } else {
          std::string var = c.ConsumeVar();
          if (var.empty()) break;
          q.projection.push_back(var);
        }
        c.ConsumeChar(',');  // commas between projection items are optional
      }
      if (q.projection.empty() && q.aggregate == AggregateKind::kNone) {
        return ErrorAt(c, "expected '*', a ?variable, or an aggregate");
      }
    }
    if (q.distinct && q.aggregate != AggregateKind::kNone) {
      return ErrorAt(c, "SELECT DISTINCT cannot be combined with"
                        " aggregates; use COUNT(DISTINCT ?var)");
    }
    if (!c.ConsumeKeyword("where")) return ErrorAt(c, "expected WHERE");
  }
  if (!c.ConsumeChar('{')) return ErrorAt(c, "expected '{'");

  while (!c.ConsumeChar('}')) {
    ParsedQuery::Pattern pat;
    pat.subject_var = c.ConsumeVar();
    if (pat.subject_var.empty()) {
      return ErrorAt(c, "expected subject ?variable");
    }
    pat.predicate = c.ConsumePredicate();
    if (pat.predicate.empty()) return ErrorAt(c, "expected predicate");
    pat.object_var = c.ConsumeVar();
    if (pat.object_var.empty()) {
      return ErrorAt(c, "expected object ?variable");
    }
    q.patterns.push_back(std::move(pat));
    c.ConsumeChar('.');  // trailing '.' optional before '}'
    if (c.AtEnd()) return ErrorAt(c, "unterminated WHERE block");
  }

  if (q.patterns.empty()) return ErrorAt(c, "empty WHERE block");

  if (c.ConsumeKeyword("group")) {
    if (q.aggregate == AggregateKind::kAsk) {
      return ErrorAt(c, "GROUP BY cannot be combined with ASK");
    }
    if (!c.ConsumeKeyword("by")) return ErrorAt(c, "expected BY after GROUP");
    q.group_by_var = c.ConsumeVar();
    if (q.group_by_var.empty()) {
      return ErrorAt(c, "expected ?variable after GROUP BY");
    }
    if (!c.ConsumeVar().empty()) {
      return ErrorAt(c, "GROUP BY supports exactly one variable");
    }
    if (q.aggregate == AggregateKind::kNone) {
      return ErrorAt(c, "GROUP BY requires a (COUNT(*) AS ?alias) aggregate"
                        " in the SELECT clause");
    }
    if (q.aggregate == AggregateKind::kCountDistinct) {
      return ErrorAt(c, "COUNT(DISTINCT) with GROUP BY is not supported");
    }
  }
  if (c.ConsumeKeyword("having")) return ErrorAt(c, "HAVING is not supported");
  if (!c.AtEnd()) return ErrorAt(c, "unexpected trailing input");

  // With an aggregate, plain projection variables must be grouped: the
  // output rows are (group, count) pairs, so anything else is
  // non-aggregated and unsupported.
  if (q.aggregate != AggregateKind::kNone) {
    for (const std::string& name : q.projection) {
      if (name != q.group_by_var) {
        return ErrorAt(c, "non-aggregated ?" + name + " in SELECT requires"
                          " GROUP BY ?" + name);
      }
    }
  }
  return q;
}

Result<QueryGraph> SparqlParser::Bind(const ParsedQuery& parsed,
                                      const Database& db) {
  QueryGraph graph;
  graph.SetDistinct(parsed.distinct);

  auto resolve = [&db](const std::string& pred) -> std::optional<LabelId> {
    if (auto id = db.LabelOf(pred)) return id;
    // Accept both "<iri>" in the query vs "iri" in the dictionary and the
    // reverse, plus bare local names against ":name"-style dictionaries.
    if (pred.size() >= 2 && pred.front() == '<' && pred.back() == '>') {
      if (auto id = db.LabelOf(pred.substr(1, pred.size() - 2))) return id;
    } else {
      if (auto id = db.LabelOf("<" + pred + ">")) return id;
      if (auto id = db.LabelOf(":" + pred)) return id;
    }
    return std::nullopt;
  };

  for (const auto& pat : parsed.patterns) {
    auto label = resolve(pat.predicate);
    if (!label) {
      return Status::NotFound("unknown predicate: " + pat.predicate);
    }
    VarId s = graph.VarByName(pat.subject_var);
    VarId o = graph.VarByName(pat.object_var);
    if (s == o) {
      return Status::InvalidArgument("self-loop pattern on ?" +
                                     pat.subject_var);
    }
    graph.AddEdge(s, *label, o);
  }

  std::vector<VarId> projection;
  for (const std::string& name : parsed.projection) {
    VarId v = graph.FindVar(name);
    if (v == kInvalidVar) {
      return Status::InvalidArgument("projected variable ?" + name +
                                     " does not appear in WHERE");
    }
    projection.push_back(v);
  }
  graph.SetProjection(std::move(projection));

  AggregateSpec spec;
  spec.kind = parsed.aggregate;
  spec.alias = parsed.aggregate_alias;
  if (!parsed.distinct_count_var.empty()) {
    VarId v = graph.FindVar(parsed.distinct_count_var);
    if (v == kInvalidVar) {
      return Status::InvalidArgument("COUNT(DISTINCT ?" +
                                     parsed.distinct_count_var +
                                     "): variable does not appear in WHERE");
    }
    spec.distinct_var = v;
  }
  if (!parsed.group_by_var.empty()) {
    VarId v = graph.FindVar(parsed.group_by_var);
    if (v == kInvalidVar) {
      return Status::InvalidArgument("GROUP BY ?" + parsed.group_by_var +
                                     ": variable does not appear in WHERE");
    }
    spec.group_var = v;
  }
  graph.SetAggregate(std::move(spec));
  return graph;
}

Result<QueryGraph> SparqlParser::ParseAndBind(std::string_view text,
                                              const Database& db) {
  WF_ASSIGN_OR_RETURN(ParsedQuery parsed, Parse(text));
  return Bind(parsed, db);
}

}  // namespace wireframe
