#ifndef WIREFRAME_QUERY_TEMPLATES_H_
#define WIREFRAME_QUERY_TEMPLATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query_graph.h"

namespace wireframe {

/// One edge of a query template: a fixed variable pair with a label
/// placeholder (slot) to be filled by the miner.
struct TemplateEdge {
  std::string src;
  std::string dst;
  uint32_t slot = 0;
};

/// A query shape with labeled-edge placeholders (paper §5: "query
/// templates (with placeholders for edge labels)"). The miner enumerates
/// label assignments that yield valid, non-empty queries.
struct QueryTemplate {
  std::string name;
  std::vector<std::string> vars;
  std::vector<TemplateEdge> edges;
  uint32_t num_slots = 0;

  /// Builds the concrete query graph for one label assignment (indexed by
  /// slot). All variables are projected; distinct is set (the paper's
  /// queries are SELECT DISTINCT over all variables).
  QueryGraph Instantiate(const std::vector<LabelId>& labels) const;
};

/// The paper's CQ_S (Fig. 3): a three-armed snowflake around hub ?x with
/// two leaf patterns per arm — 9 edges, 10 variables, acyclic.
/// Slots: 0:x→m 1:x→y 2:x→z 3:m→a 4:m→b 5:y→c 6:y→d 7:z→e 8:z→f.
QueryTemplate SnowflakeTemplate();

/// The paper's CQ_D (Fig. 4): a diamond (4-cycle) — 4 edges, 4 variables.
/// Slots: 0:x→e 1:x→z 2:e→y 3:y→z.
QueryTemplate DiamondTemplate();

/// A chain of `length` edges (Fig. 1's CQ_C for length 3):
/// v0→v1→...→v_length.
QueryTemplate ChainTemplate(uint32_t length);

/// A star: `arms` edges all leaving hub ?x.
QueryTemplate StarTemplate(uint32_t arms);

/// A simple cycle of `length` >= 3 edges, all oriented the same way.
QueryTemplate CycleTemplate(uint32_t length);

}  // namespace wireframe

#endif  // WIREFRAME_QUERY_TEMPLATES_H_
