#include "query/templates.h"

#include "util/logging.h"

namespace wireframe {
namespace {

// Append-based concatenation: `prefix + std::to_string(i)` trips gcc 12's
// bogus -Wrestrict on the operator+(const char*, string&&) overload at -O2
// and above (GCC PR105651).
std::string Numbered(const char* prefix, uint32_t i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

}  // namespace

QueryGraph QueryTemplate::Instantiate(
    const std::vector<LabelId>& labels) const {
  WF_CHECK(labels.size() == num_slots)
      << "template " << name << " needs " << num_slots << " labels";
  QueryGraph graph;
  for (const std::string& v : vars) graph.AddVar(v);
  for (const TemplateEdge& e : edges) {
    graph.AddEdge(graph.FindVar(e.src), labels[e.slot], graph.FindVar(e.dst));
  }
  graph.SetDistinct(true);
  return graph;
}

QueryTemplate SnowflakeTemplate() {
  QueryTemplate t;
  t.name = "snowflake";
  t.vars = {"x", "m", "y", "z", "a", "b", "c", "d", "e", "f"};
  t.edges = {
      {"x", "m", 0}, {"x", "y", 1}, {"x", "z", 2},
      {"m", "a", 3}, {"m", "b", 4},
      {"y", "c", 5}, {"y", "d", 6},
      {"z", "e", 7}, {"z", "f", 8},
  };
  t.num_slots = 9;
  return t;
}

QueryTemplate DiamondTemplate() {
  QueryTemplate t;
  t.name = "diamond";
  t.vars = {"x", "e", "y", "z"};
  t.edges = {
      {"x", "e", 0}, {"x", "z", 1}, {"e", "y", 2}, {"y", "z", 3},
  };
  t.num_slots = 4;
  return t;
}

QueryTemplate ChainTemplate(uint32_t length) {
  WF_CHECK(length >= 1);
  QueryTemplate t;
  t.name = Numbered("chain", length);
  for (uint32_t i = 0; i <= length; ++i) {
    t.vars.push_back(Numbered("v", i));
  }
  for (uint32_t i = 0; i < length; ++i) {
    t.edges.push_back({t.vars[i], t.vars[i + 1], i});
  }
  t.num_slots = length;
  return t;
}

QueryTemplate StarTemplate(uint32_t arms) {
  WF_CHECK(arms >= 1);
  QueryTemplate t;
  t.name = Numbered("star", arms);
  t.vars.push_back("x");
  for (uint32_t i = 0; i < arms; ++i) {
    t.vars.push_back(Numbered("l", i));
    t.edges.push_back({"x", t.vars.back(), i});
  }
  t.num_slots = arms;
  return t;
}

QueryTemplate CycleTemplate(uint32_t length) {
  WF_CHECK(length >= 3);
  QueryTemplate t;
  t.name = Numbered("cycle", length);
  for (uint32_t i = 0; i < length; ++i) {
    t.vars.push_back(Numbered("v", i));
  }
  for (uint32_t i = 0; i < length; ++i) {
    t.edges.push_back({t.vars[i], t.vars[(i + 1) % length], i});
  }
  t.num_slots = length;
  return t;
}

}  // namespace wireframe
