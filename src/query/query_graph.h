#ifndef WIREFRAME_QUERY_QUERY_GRAPH_H_
#define WIREFRAME_QUERY_QUERY_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.h"

namespace wireframe {

/// One triple pattern of a conjunctive query: ?src --label--> ?dst.
/// Both endpoints are variables (the paper's CQs bind all positions to
/// variables; constants can be modeled as pre-filtered predicates).
struct QueryEdge {
  VarId src = kInvalidVar;
  LabelId label = kInvalidLabel;
  VarId dst = kInvalidVar;

  /// The variable at the other endpoint of the edge.
  VarId Other(VarId v) const { return v == src ? dst : src; }
  /// True iff the edge touches v.
  bool Touches(VarId v) const { return src == v || dst == v; }

  friend bool operator==(const QueryEdge&, const QueryEdge&) = default;
};

/// Aggregate forms of the SPARQL subset: scalar COUNT(*),
/// COUNT(DISTINCT ?v), ASK, and single-variable GROUP BY ?v COUNT(*).
/// kNone means a plain SELECT that enumerates embeddings.
enum class AggregateKind : uint8_t {
  kNone = 0,
  kCount,          // SELECT (COUNT(*) AS ?c), scalar or grouped
  kCountDistinct,  // SELECT (COUNT(DISTINCT ?v) AS ?c)
  kAsk,            // ASK { ... } — existence only
};

const char* AggregateKindName(AggregateKind kind);

/// What a query aggregates, attached to the QueryGraph by the parser
/// (or programmatically via SetAggregate). kind == kNone for plain
/// SELECTs; the variable fields are kInvalidVar when unused.
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kNone;
  /// COUNT(DISTINCT ?v): the counted variable.
  VarId distinct_var = kInvalidVar;
  /// GROUP BY ?v (kCount only); kInvalidVar for scalar aggregates.
  VarId group_var = kInvalidVar;
  /// Alias of the aggregate column ("c" for AS ?c); informational.
  std::string alias;

  friend bool operator==(const AggregateSpec&, const AggregateSpec&) = default;
};

/// A SPARQL conjunctive query viewed as a query graph: variables are nodes
/// and triple patterns are labeled directed edges between them.
///
/// The class is a passive value type built either by the parser or
/// programmatically (AddVar/AddEdge); planners and engines read it.
class QueryGraph {
 public:
  QueryGraph() = default;

  /// Adds a variable named `name` (e.g. "x" for ?x) and returns its id.
  /// Names must be unique.
  VarId AddVar(std::string_view name);

  /// Returns the id for `name`, adding the variable if new.
  VarId VarByName(std::string_view name);

  /// Returns the id for `name` or kInvalidVar when absent.
  VarId FindVar(std::string_view name) const;

  /// Adds the triple pattern ?src --label--> ?dst; returns the edge index.
  uint32_t AddEdge(VarId src, LabelId label, VarId dst);

  uint32_t NumVars() const { return static_cast<uint32_t>(var_names_.size()); }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  const std::string& VarName(VarId v) const { return var_names_[v]; }
  const QueryEdge& Edge(uint32_t e) const { return edges_[e]; }
  const std::vector<QueryEdge>& edges() const { return edges_; }

  /// Indexes of edges incident to variable v (in insertion order).
  const std::vector<uint32_t>& IncidentEdges(VarId v) const {
    return incident_[v];
  }

  /// Degree of v in the query graph (number of incident patterns).
  uint32_t Degree(VarId v) const {
    return static_cast<uint32_t>(incident_[v].size());
  }

  /// Variables listed in the SELECT clause, in order. Empty means
  /// "SELECT *" (all variables in id order).
  const std::vector<VarId>& projection() const { return projection_; }
  void SetProjection(std::vector<VarId> vars) {
    projection_ = std::move(vars);
  }

  bool distinct() const { return distinct_; }
  void SetDistinct(bool d) { distinct_ = d; }

  /// The query's aggregate (kind == kNone for plain SELECTs).
  const AggregateSpec& aggregate() const { return aggregate_; }
  void SetAggregate(AggregateSpec spec) { aggregate_ = std::move(spec); }

  /// The effective output variables: projection() or all vars.
  std::vector<VarId> OutputVars() const;

  /// Human-readable rendering with label names resolved via `label_name`
  /// (callback so the query graph stays independent of the dictionary).
  std::string ToString(
      const std::function<std::string(LabelId)>& label_name) const;

 private:
  std::vector<std::string> var_names_;
  std::vector<QueryEdge> edges_;
  std::vector<std::vector<uint32_t>> incident_;
  std::vector<VarId> projection_;
  bool distinct_ = false;
  AggregateSpec aggregate_;
};

}  // namespace wireframe

#endif  // WIREFRAME_QUERY_QUERY_GRAPH_H_
