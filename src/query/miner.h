#ifndef WIREFRAME_QUERY_MINER_H_
#define WIREFRAME_QUERY_MINER_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "query/templates.h"
#include "storage/database.h"
#include "util/result.h"
#include "util/timer.h"

namespace wireframe {

/// Miner configuration and caps (the search space over 104 labels and 9
/// slots is astronomically large; the paper mined 218k snowflakes — caps
/// keep the reproduction laptop-sized while preserving the procedure).
struct MinerOptions {
  /// Stop after this many valid queries.
  uint64_t max_queries = 1000;
  /// Stop after this many candidate assignments considered (pruned or
  /// verified).
  uint64_t max_candidates = 10'000'000;
  /// Verify non-emptiness by actually probing for one embedding. Off, a
  /// query is accepted on 2-gram evidence alone (necessary, not
  /// sufficient, for non-emptiness).
  bool verify_nonempty = true;
  Deadline deadline;
};

/// Counters describing one mining run.
struct MinerReport {
  uint64_t mined = 0;               // valid queries found
  uint64_t candidates = 0;          // assignments considered
  uint64_t pruned_by_2gram = 0;     // rejected without touching the data
  uint64_t rejected_empty = 0;      // survived 2-grams, no embedding
  bool exhausted = false;           // search space fully enumerated
};

/// One mined query: its label assignment, by template slot.
struct MinedQuery {
  std::vector<LabelId> labels;
};

/// The paper's query miner (§5): instantiates a template's label
/// placeholders with every assignment the catalog's 2-gram statistics do
/// not rule out, then keeps assignments with at least one embedding.
class QueryMiner {
 public:
  QueryMiner(const Database& db, const Catalog& catalog)
      : db_(&db), catalog_(&catalog) {}

  /// Mines `tmpl`, depth-first over slots in template-edge order, pruning
  /// a partial assignment as soon as any incident pair of assigned labels
  /// has an empty 2-gram intersection.
  Result<std::vector<MinedQuery>> Mine(const QueryTemplate& tmpl,
                                       const MinerOptions& options,
                                       MinerReport* report) const;

 private:
  const Database* db_;
  const Catalog* catalog_;
};

}  // namespace wireframe

#endif  // WIREFRAME_QUERY_MINER_H_
