#include "query/shape.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace wireframe {

namespace {

/// BFS spanning forest: parent_var[v] / parent_edge[v] for non-roots,
/// depth[v] for LCA walks. Returns the list of non-tree edges.
struct Forest {
  std::vector<VarId> parent_var;
  std::vector<uint32_t> parent_edge;
  std::vector<uint32_t> depth;
  std::vector<bool> visited;
  std::vector<uint32_t> non_tree_edges;
  uint32_t num_components = 0;
};

Forest BuildForest(const QueryGraph& q) {
  const uint32_t n = q.NumVars();
  Forest f;
  f.parent_var.assign(n, kInvalidVar);
  f.parent_edge.assign(n, UINT32_MAX);
  f.depth.assign(n, 0);
  f.visited.assign(n, false);
  std::vector<bool> edge_used(q.NumEdges(), false);

  for (VarId root = 0; root < n; ++root) {
    if (f.visited[root]) continue;
    ++f.num_components;
    std::deque<VarId> queue{root};
    f.visited[root] = true;
    while (!queue.empty()) {
      VarId v = queue.front();
      queue.pop_front();
      for (uint32_t e : q.IncidentEdges(v)) {
        if (edge_used[e]) continue;
        VarId w = q.Edge(e).Other(v);
        if (!f.visited[w]) {
          edge_used[e] = true;
          f.visited[w] = true;
          f.parent_var[w] = v;
          f.parent_edge[w] = e;
          f.depth[w] = f.depth[v] + 1;
          queue.push_back(w);
        }
      }
    }
  }
  for (uint32_t e = 0; e < q.NumEdges(); ++e) {
    if (!edge_used[e]) f.non_tree_edges.push_back(e);
  }
  return f;
}

/// Builds the fundamental cycle closed by non-tree edge `e`: the tree path
/// between its endpoints plus `e` itself.
QueryCycle MakeCycle(const QueryGraph& q, const Forest& f, uint32_t e) {
  VarId a = q.Edge(e).src;
  VarId b = q.Edge(e).dst;

  // Walk both endpoints up to their LCA, recording (var, edge-above) pairs.
  std::vector<VarId> up_a{a}, up_b{b};
  std::vector<uint32_t> edges_a, edges_b;
  VarId x = a, y = b;
  while (f.depth[x] > f.depth[y]) {
    edges_a.push_back(f.parent_edge[x]);
    x = f.parent_var[x];
    up_a.push_back(x);
  }
  while (f.depth[y] > f.depth[x]) {
    edges_b.push_back(f.parent_edge[y]);
    y = f.parent_var[y];
    up_b.push_back(y);
  }
  while (x != y) {
    edges_a.push_back(f.parent_edge[x]);
    x = f.parent_var[x];
    up_a.push_back(x);
    edges_b.push_back(f.parent_edge[y]);
    y = f.parent_var[y];
    up_b.push_back(y);
  }

  // Cycle: a .. lca .. b, then the closing edge e back to a.
  QueryCycle cycle;
  cycle.vars = up_a;  // a ... lca
  cycle.edges = edges_a;
  for (size_t i = up_b.size(); i-- > 1;) {  // lca excluded; down to b
    cycle.edges.push_back(edges_b[i - 1]);
    cycle.vars.push_back(up_b[i - 1]);
  }
  cycle.edges.push_back(e);  // b -> a, closing the loop
  WF_DCHECK(cycle.vars.size() == cycle.edges.size());
  return cycle;
}

}  // namespace

QueryShape AnalyzeShape(const QueryGraph& query) {
  QueryShape shape;
  if (query.NumVars() == 0) {
    shape.connected = true;
    shape.acyclic = true;
    return shape;
  }
  Forest forest = BuildForest(query);
  shape.connected = forest.num_components == 1;
  shape.acyclic = forest.non_tree_edges.empty();
  for (uint32_t e : forest.non_tree_edges) {
    shape.cycles.push_back(MakeCycle(query, forest, e));
  }
  return shape;
}

bool IsConnected(const QueryGraph& query) {
  return AnalyzeShape(query).connected;
}

bool IsAcyclic(const QueryGraph& query) { return AnalyzeShape(query).acyclic; }

}  // namespace wireframe
