#include "planner/cost_model.h"

namespace wireframe {

PlanCost SimulateAgPlan(const QueryGraph& query,
                        const CardinalityEstimator& estimator,
                        const std::vector<uint32_t>& order) {
  PlanCost cost;
  std::vector<VarEstimate> vars(query.NumVars());

  for (uint32_t e : order) {
    const QueryEdge& qe = query.Edge(e);
    VarEstimate& src = vars[qe.src];
    VarEstimate& dst = vars[qe.dst];
    ExtensionEstimate est =
        estimator.EstimateExtension(qe.label, src, dst);
    cost.walks += est.probes + est.matched_edges;
    cost.ag_edges += est.matched_edges;
    cost.step_edges.push_back(est.matched_edges);

    src.bound = true;
    src.candidates = est.new_src_candidates;
    src.anchor_label = qe.label;
    src.anchor_end = End::kSubject;
    dst.bound = true;
    dst.candidates = est.new_dst_candidates;
    dst.anchor_label = qe.label;
    dst.anchor_end = End::kObject;
  }
  return cost;
}

}  // namespace wireframe
