#ifndef WIREFRAME_PLANNER_BUSHY_PLANNER_H_
#define WIREFRAME_PLANNER_BUSHY_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "planner/embedding_planner.h"
#include "query/query_graph.h"
#include "util/result.h"

namespace wireframe {

/// A bushy defactorization plan: a binary join tree over the query's
/// answer-graph edge sets. Leaves materialize one edge set; inner nodes
/// hash-join their children on the shared variables.
struct BushyPlan {
  struct Node {
    /// Leaf: edge is a query-edge index and left/right are -1.
    /// Inner: left/right index into `nodes`.
    int left = -1;
    int right = -1;
    uint32_t edge = 0;
    /// Modeled output size of this node.
    double est_tuples = 0.0;

    bool IsLeaf() const { return left < 0; }
  };

  std::vector<Node> nodes;
  int root = -1;
  /// Sum of modeled intermediate sizes (the DP's objective).
  double estimated_cost = 0.0;

  std::string ToString(const QueryGraph& query) const;
};

/// The paper's §6 future-work item, made concrete: "one has a richer plan
/// space when considering bushy plans ... The challenge is to devise a
/// suitable cost model for searching the bushy-plan space via dynamic
/// programming."
///
/// The cost model uses the *exact* per-edge statistics available after
/// phase 1 (|AG(e)| and distinct endpoints) and the classic
/// DPccp-flavoured subset DP: for every connected edge subset, try every
/// connected complementary split whose sides share a variable; join size
/// is estimated as |L|·|R| / Π_{v shared} max(d_L(v), d_R(v)); the
/// objective is the total materialized intermediate volume.
class BushyPlanner {
 public:
  /// Subset DP is exponential; beyond this many edges Plan() fails and
  /// callers fall back to the left-deep pipelined embedding plan.
  static constexpr uint32_t kMaxDpEdges = 13;

  explicit BushyPlanner(const QueryGraph& query) : query_(&query) {}

  /// Computes the cheapest bushy join tree under the model.
  Result<BushyPlan> Plan(const std::vector<AgEdgeStats>& stats) const;

 private:
  const QueryGraph* query_;
};

}  // namespace wireframe

#endif  // WIREFRAME_PLANNER_BUSHY_PLANNER_H_
