#ifndef WIREFRAME_PLANNER_AGGREGATE_PLANNER_H_
#define WIREFRAME_PLANNER_AGGREGATE_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query_graph.h"

namespace wireframe {

/// How an aggregate query will be evaluated over the answer graph.
enum class AggregateMode : uint8_t {
  /// Rooted-tree counting DP over the frozen CSR spans (acyclic
  /// queries): each variable's down-count is the product over its child
  /// edges of the span-sum of the children's down-counts.
  kTreeDp,
  /// Single-chord cycle DP: iterate the materialized chord's pair set;
  /// per pair, multiply the weighted span intersections at each apex,
  /// the membership filters of direct edges, and the pendant-tree
  /// counts at the chord endpoints.
  kCycleDp,
  /// Not DP-eligible: enumerate embeddings into an aggregating sink
  /// (always correct; `reason` says why the DP was declined).
  kEnumerate,
};

/// One bottom-up step of the counting DP: fold query edge `edge`
/// (between `parent` and `child`) into the parent's count array. Steps
/// are listed children-first, so when a step runs the child's own
/// subtree is already fully counted.
struct AggregateTreeStep {
  uint32_t edge = 0;
  VarId parent = kInvalidVar;
  VarId child = kInvalidVar;
};

/// One apex of the cycle DP: a variable adjacent to both chord
/// endpoints. u_edges / v_edges are the query edges joining it to the
/// chord's u / v side; per chord pair (cu, cv) the apex contributes the
/// weighted size of the intersection of all those spans.
struct AggregateApex {
  VarId var = kInvalidVar;
  std::vector<uint32_t> u_edges;
  std::vector<uint32_t> v_edges;
};

struct AggregatePlan {
  AggregateMode mode = AggregateMode::kEnumerate;
  /// Human-readable justification when mode == kEnumerate.
  std::string reason;
  /// kTreeDp: the DP root — the grouped/distinct variable when the spec
  /// names one (so one DP serves every aggregate kind), else var 0.
  VarId root = kInvalidVar;
  /// kTreeDp: every query edge, children-first toward `root`.
  /// kCycleDp: the pendant-forest edges, children-first toward their
  /// attach variables (chord endpoints and apexes).
  std::vector<AggregateTreeStep> steps;
  // kCycleDp only.
  uint32_t chord_slot = 0;  // answer-graph edge-set index of the chord
  VarId chord_u = kInvalidVar;
  VarId chord_v = kInvalidVar;
  std::vector<AggregateApex> apexes;
  /// Query edges directly connecting chord_u and chord_v (evaluated as
  /// per-pair membership filters).
  std::vector<uint32_t> direct_edges;
};

/// A materialized chord of the answer graph, as the planner needs it
/// (the planner stays AG-agnostic; the executor extracts these).
struct ChordSlot {
  uint32_t slot = 0;  // AG edge-set index (>= NumQueryEdges)
  VarId u = kInvalidVar;
  VarId v = kInvalidVar;
};

/// Classifies an aggregate query into a counting-DP plan. Pure query
/// structure analysis: acyclic queries always get the tree DP (exact
/// regardless of answer-graph ideality — dead pairs contribute zero);
/// cyclic queries get the cycle DP when one materialized chord closes
/// the only cycle and the rest of the query hangs off the cycle as
/// pendant trees; everything else falls back to enumeration.
class AggregatePlanner {
 public:
  explicit AggregatePlanner(const QueryGraph& query) : query_(&query) {}

  AggregatePlan Plan(const AggregateSpec& spec,
                     const std::vector<ChordSlot>& chords) const;

 private:
  const QueryGraph* query_;
};

}  // namespace wireframe

#endif  // WIREFRAME_PLANNER_AGGREGATE_PLANNER_H_
