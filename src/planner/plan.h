#ifndef WIREFRAME_PLANNER_PLAN_H_
#define WIREFRAME_PLANNER_PLAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "query/query_graph.h"

namespace wireframe {

/// One side of a triangle: either an original query edge or another chord.
struct TriangleSide {
  bool is_chord = false;
  /// Index into QueryGraph::edges() or AgPlan::chords.
  uint32_t index = 0;

  friend bool operator==(const TriangleSide&, const TriangleSide&) = default;
};

/// A triangle produced by chordification: the chord's endpoints (u, v) plus
/// apex w, with side_uw connecting u–w and side_wv connecting w–v. The
/// chord it belongs to is the u–v side.
struct Triangle {
  VarId apex = kInvalidVar;
  TriangleSide side_uw;
  TriangleSide side_wv;
};

/// A chord added by the Triangulator to bisect a cycle (paper §4: "the
/// choice of which additional 'query edges', which we call chords, to
/// add"). A chord carries no label; at runtime it is materialized as the
/// intersection over its triangles of the join of the two opposite sides.
struct Chord {
  VarId u = kInvalidVar;
  VarId v = kInvalidVar;
  /// Every triangle this chord participates in (>= 1; the bisecting chord
  /// of a 4-cycle participates in both resulting triangles).
  std::vector<Triangle> triangles;
};

/// Phase-1 plan: the order in which query edges are materialized into the
/// answer graph, plus the chord structure for cyclic queries.
struct AgPlan {
  /// Permutation of query-edge indices (the paper's left-deep tree plan).
  std::vector<uint32_t> edge_order;
  /// Chordification of the query's cycles; empty for acyclic queries or
  /// when triangulation is disabled.
  std::vector<Chord> chords;
  /// Triangles whose three sides are all original query edges (length-3
  /// cycles need no chord but still participate in edge burnback).
  std::vector<Triangle> base_triangles;
  /// For base_triangles, the u–v side (a query edge) the triangle closes.
  std::vector<uint32_t> base_triangle_closing_edge;

  /// Cost-model outputs, for explain/diagnostics.
  double estimated_walks = 0.0;
  double estimated_ag_edges = 0.0;

  std::string ToString(const QueryGraph& query,
                       const std::function<std::string(LabelId)>& label_name)
      const;
};

/// Phase-2 plan: the order in which answer-graph edge sets are joined when
/// composing embeddings (defactorization).
struct EmbeddingPlan {
  std::vector<uint32_t> join_order;
  double estimated_tuples = 0.0;

  std::string ToString(const QueryGraph& query,
                       const std::function<std::string(LabelId)>& label_name)
      const;
};

}  // namespace wireframe

#endif  // WIREFRAME_PLANNER_PLAN_H_
