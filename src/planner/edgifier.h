#ifndef WIREFRAME_PLANNER_EDGIFIER_H_
#define WIREFRAME_PLANNER_EDGIFIER_H_

#include <vector>

#include "catalog/estimator.h"
#include "planner/plan.h"
#include "query/query_graph.h"
#include "util/result.h"

namespace wireframe {

/// The paper's Edgifier (§4): a bottom-up dynamic-programming planner that
/// chooses the order in which the CQ's query edges are materialized into
/// the answer graph, minimizing estimated edge walks.
///
/// The DP runs over *connected* subsets of query edges (an edge may enter
/// the plan only if it shares a variable with the prefix, except the first
/// edge), which matches the left-deep tree plans the prototype emits. For
/// queries with more than kMaxDpEdges edges the planner degrades to the
/// same greedy expansion the DP would seed with (documented bound; the
/// paper's workloads have at most 9 edges).
class Edgifier {
 public:
  static constexpr uint32_t kMaxDpEdges = 16;

  Edgifier(const QueryGraph& query, const CardinalityEstimator& estimator)
      : query_(&query), estimator_(&estimator) {}

  /// Computes the optimal (w.r.t. the cost model) connected edge order.
  /// Fails with InvalidArgument for empty or disconnected queries.
  Result<AgPlan> PlanEdgeOrder() const;

  /// Exhaustive-search reference (used by tests to certify DP optimality);
  /// exponential, only valid for small queries.
  Result<AgPlan> PlanByExhaustiveSearch() const;

 private:
  Result<AgPlan> PlanGreedy() const;

  const QueryGraph* query_;
  const CardinalityEstimator* estimator_;
};

}  // namespace wireframe

#endif  // WIREFRAME_PLANNER_EDGIFIER_H_
