#include "planner/edgifier.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "planner/cost_model.h"
#include "query/shape.h"

namespace wireframe {

namespace {

/// Mutable plan-prefix state threaded through DP / search.
struct PrefixState {
  double walks = 0.0;
  double ag_edges = 0.0;
  std::vector<VarEstimate> vars;
  std::vector<uint32_t> order;
};

/// Applies one extension step to a copy of `state`.
PrefixState Extend(const QueryGraph& query,
                   const CardinalityEstimator& estimator,
                   const PrefixState& state, uint32_t e) {
  PrefixState next = state;
  const QueryEdge& qe = query.Edge(e);
  ExtensionEstimate est = estimator.EstimateExtension(
      qe.label, next.vars[qe.src], next.vars[qe.dst]);
  next.walks += est.probes + est.matched_edges;
  next.ag_edges += est.matched_edges;

  VarEstimate& src = next.vars[qe.src];
  src.bound = true;
  src.candidates = est.new_src_candidates;
  src.anchor_label = qe.label;
  src.anchor_end = End::kSubject;
  VarEstimate& dst = next.vars[qe.dst];
  dst.bound = true;
  dst.candidates = est.new_dst_candidates;
  dst.anchor_label = qe.label;
  dst.anchor_end = End::kObject;

  next.order.push_back(e);
  return next;
}

/// True iff edge `e` shares a variable with the already-planned prefix.
bool ConnectedToPrefix(const QueryGraph& query, const PrefixState& state,
                       uint32_t e) {
  if (state.order.empty()) return true;
  const QueryEdge& qe = query.Edge(e);
  return state.vars[qe.src].bound || state.vars[qe.dst].bound;
}

AgPlan FinishPlan(PrefixState state) {
  AgPlan plan;
  plan.edge_order = std::move(state.order);
  plan.estimated_walks = state.walks;
  plan.estimated_ag_edges = state.ag_edges;
  return plan;
}

Status ValidateQuery(const QueryGraph& query) {
  if (query.NumEdges() == 0) {
    return Status::InvalidArgument("query has no patterns");
  }
  if (!IsConnected(query)) {
    return Status::InvalidArgument(
        "disconnected query graphs are not supported");
  }
  return Status::OK();
}

}  // namespace

Result<AgPlan> Edgifier::PlanEdgeOrder() const {
  WF_RETURN_NOT_OK(ValidateQuery(*query_));
  const uint32_t n = query_->NumEdges();
  if (n > kMaxDpEdges) return PlanGreedy();

  // dp[mask] = cheapest known prefix materializing exactly `mask`.
  std::unordered_map<uint64_t, PrefixState> dp;
  PrefixState init;
  init.vars.assign(query_->NumVars(), VarEstimate::Unbound());
  dp.emplace(0, std::move(init));

  // Process masks in increasing popcount so predecessors are final.
  std::vector<uint64_t> masks(1ull << n);
  for (uint64_t m = 0; m < masks.size(); ++m) masks[m] = m;
  std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
    int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
    return pa != pb ? pa < pb : a < b;
  });

  for (uint64_t mask : masks) {
    auto it = dp.find(mask);
    if (it == dp.end()) continue;
    const PrefixState& state = it->second;
    for (uint32_t e = 0; e < n; ++e) {
      if (mask & (1ull << e)) continue;
      if (!ConnectedToPrefix(*query_, state, e)) continue;
      PrefixState next = Extend(*query_, *estimator_, state, e);
      const uint64_t next_mask = mask | (1ull << e);
      auto [slot, inserted] = dp.try_emplace(next_mask);
      if (inserted || next.walks < slot->second.walks) {
        slot->second = std::move(next);
      }
    }
  }

  auto final_it = dp.find((1ull << n) - 1);
  WF_CHECK(final_it != dp.end()) << "DP failed to reach the full edge set";
  return FinishPlan(std::move(final_it->second));
}

Result<AgPlan> Edgifier::PlanByExhaustiveSearch() const {
  WF_RETURN_NOT_OK(ValidateQuery(*query_));
  const uint32_t n = query_->NumEdges();
  WF_CHECK(n <= 10) << "exhaustive search is for small test queries only";

  PrefixState init;
  init.vars.assign(query_->NumVars(), VarEstimate::Unbound());

  PrefixState best;
  best.walks = std::numeric_limits<double>::infinity();

  // Depth-first over all connected permutations.
  std::vector<PrefixState> stack{std::move(init)};
  std::vector<uint64_t> mask_stack{0};
  while (!stack.empty()) {
    PrefixState state = std::move(stack.back());
    stack.pop_back();
    uint64_t mask = mask_stack.back();
    mask_stack.pop_back();
    if (mask == (1ull << n) - 1) {
      if (state.walks < best.walks) best = std::move(state);
      continue;
    }
    for (uint32_t e = 0; e < n; ++e) {
      if (mask & (1ull << e)) continue;
      if (!ConnectedToPrefix(*query_, state, e)) continue;
      stack.push_back(Extend(*query_, *estimator_, state, e));
      mask_stack.push_back(mask | (1ull << e));
    }
  }
  return FinishPlan(std::move(best));
}

Result<AgPlan> Edgifier::PlanGreedy() const {
  WF_RETURN_NOT_OK(ValidateQuery(*query_));
  const uint32_t n = query_->NumEdges();
  PrefixState state;
  state.vars.assign(query_->NumVars(), VarEstimate::Unbound());

  std::vector<bool> used(n, false);
  for (uint32_t step = 0; step < n; ++step) {
    uint32_t best_edge = UINT32_MAX;
    double best_walks = std::numeric_limits<double>::infinity();
    PrefixState best_next;
    for (uint32_t e = 0; e < n; ++e) {
      if (used[e]) continue;
      if (!ConnectedToPrefix(*query_, state, e)) continue;
      PrefixState next = Extend(*query_, *estimator_, state, e);
      if (next.walks < best_walks) {
        best_walks = next.walks;
        best_edge = e;
        best_next = std::move(next);
      }
    }
    WF_CHECK(best_edge != UINT32_MAX);
    used[best_edge] = true;
    state = std::move(best_next);
  }
  return FinishPlan(std::move(state));
}

}  // namespace wireframe
