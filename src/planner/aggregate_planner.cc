#include "planner/aggregate_planner.h"

#include <functional>
#include <utility>

#include "query/shape.h"

namespace wireframe {

namespace {

/// Appends the DP steps of the tree hanging off `root` through the
/// allowed edges, children-first. `var_visited` persists across calls so
/// disjoint pendant components never re-enter each other.
void AppendTreeSteps(const QueryGraph& q, VarId root,
                     const std::vector<char>& edge_allowed,
                     std::vector<char>& var_visited,
                     std::vector<AggregateTreeStep>* steps) {
  var_visited[root] = 1;
  std::function<void(VarId)> visit = [&](VarId parent) {
    for (uint32_t e : q.IncidentEdges(parent)) {
      if (!edge_allowed[e]) continue;
      const VarId child = q.Edge(e).Other(parent);
      if (var_visited[child]) continue;
      var_visited[child] = 1;
      visit(child);
      steps->push_back({e, parent, child});
    }
  };
  visit(root);
}

AggregatePlan Declined(std::string why) {
  AggregatePlan plan;
  plan.mode = AggregateMode::kEnumerate;
  plan.reason = std::move(why);
  return plan;
}

}  // namespace

AggregatePlan AggregatePlanner::Plan(
    const AggregateSpec& spec, const std::vector<ChordSlot>& chords) const {
  const QueryGraph& q = *query_;
  const VarId anchor = spec.group_var != kInvalidVar    ? spec.group_var
                       : spec.distinct_var != kInvalidVar ? spec.distinct_var
                                                          : kInvalidVar;
  if (!IsConnected(q)) return Declined("disconnected query graph");

  if (IsAcyclic(q)) {
    // Tree DP, rooted at the grouped/distinct variable so the root's
    // per-candidate counts directly answer GROUP BY / COUNT(DISTINCT).
    AggregatePlan plan;
    plan.mode = AggregateMode::kTreeDp;
    plan.root = anchor != kInvalidVar ? anchor : 0;
    std::vector<char> allowed(q.NumEdges(), 1);
    std::vector<char> visited(q.NumVars(), 0);
    AppendTreeSteps(q, plan.root, allowed, visited, &plan.steps);
    return plan;
  }

  // Cyclic: the DP handles exactly one materialized chord — the shape
  // phase-1 triangulation produces for 4-cycles (with arbitrary pendant
  // trees). Base triangles carry no chord set to iterate, and multiple
  // chords correlate in ways a single pair sweep cannot fold.
  if (chords.empty()) {
    return Declined("cyclic query without a materialized chord");
  }
  if (chords.size() > 1) {
    return Declined("more than one materialized chord");
  }
  const ChordSlot& chord = chords[0];
  const VarId u = chord.u;
  const VarId v = chord.v;
  AggregatePlan plan;
  plan.chord_slot = chord.slot;
  plan.chord_u = u;
  plan.chord_v = v;

  // Classify the query edges the chord pair sweep itself covers: direct
  // u-v edges become per-pair membership filters, apex edges become
  // weighted span intersections. Everything else must be pendant forest.
  std::vector<char> removed(q.NumEdges(), 0);
  for (uint32_t e = 0; e < q.NumEdges(); ++e) {
    if (q.Edge(e).Touches(u) && q.Edge(e).Touches(v)) {
      plan.direct_edges.push_back(e);
      removed[e] = 1;
    }
  }
  for (VarId w = 0; w < q.NumVars(); ++w) {
    if (w == u || w == v) continue;
    AggregateApex apex;
    apex.var = w;
    for (uint32_t e : q.IncidentEdges(w)) {
      if (q.Edge(e).Touches(u)) {
        apex.u_edges.push_back(e);
      } else if (q.Edge(e).Touches(v)) {
        apex.v_edges.push_back(e);
      }
    }
    if (!apex.u_edges.empty() && !apex.v_edges.empty()) {
      for (uint32_t e : apex.u_edges) removed[e] = 1;
      for (uint32_t e : apex.v_edges) removed[e] = 1;
      plan.apexes.push_back(std::move(apex));
    }
  }
  if (anchor != kInvalidVar && anchor != u && anchor != v) {
    return Declined("grouped/distinct variable is not a chord endpoint");
  }

  // The remainder must be a forest whose components each touch exactly
  // one attach variable (chord endpoint or apex): pendant trees counted
  // by the tree DP. A remainder cycle, or a remainder path joining two
  // attach variables, correlates candidates across the sweep.
  std::vector<char> is_attach(q.NumVars(), 0);
  is_attach[u] = 1;
  is_attach[v] = 1;
  for (const AggregateApex& apex : plan.apexes) is_attach[apex.var] = 1;
  std::vector<int> comp(q.NumVars(), -1);
  for (VarId s = 0; s < q.NumVars(); ++s) {
    if (comp[s] != -1) continue;
    comp[s] = 1;
    uint32_t nvars = 0, nedges = 0, nattach = 0;
    std::vector<VarId> stack{s};
    while (!stack.empty()) {
      const VarId x = stack.back();
      stack.pop_back();
      ++nvars;
      if (is_attach[x]) ++nattach;
      for (uint32_t e : q.IncidentEdges(x)) {
        if (removed[e]) continue;
        ++nedges;  // counted from both endpoints; halved below
        const VarId y = q.Edge(e).Other(x);
        if (comp[y] == -1) {
          comp[y] = 1;
          stack.push_back(y);
        }
      }
    }
    nedges /= 2;
    if (nedges >= nvars) {
      return Declined("a second cycle outside the chord");
    }
    if (nattach != 1) {
      return Declined("cycle variables joined again outside the cycle");
    }
  }

  plan.mode = AggregateMode::kCycleDp;
  std::vector<char> allowed(q.NumEdges());
  for (uint32_t e = 0; e < q.NumEdges(); ++e) allowed[e] = !removed[e];
  std::vector<char> visited(q.NumVars(), 0);
  AppendTreeSteps(q, u, allowed, visited, &plan.steps);
  AppendTreeSteps(q, v, allowed, visited, &plan.steps);
  for (const AggregateApex& apex : plan.apexes) {
    AppendTreeSteps(q, apex.var, allowed, visited, &plan.steps);
  }
  return plan;
}

}  // namespace wireframe
