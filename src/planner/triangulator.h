#ifndef WIREFRAME_PLANNER_TRIANGULATOR_H_
#define WIREFRAME_PLANNER_TRIANGULATOR_H_

#include <vector>

#include "catalog/estimator.h"
#include "planner/plan.h"
#include "query/query_graph.h"
#include "query/shape.h"
#include "util/result.h"

namespace wireframe {

/// Chordification chosen for one query: the chords to materialize and the
/// triangles (chord-based and all-query-edge) that edge burnback enforces.
struct Chordification {
  std::vector<Chord> chords;
  std::vector<Triangle> base_triangles;
  std::vector<uint32_t> base_triangle_closing_edge;
  /// Modeled cost of materializing all chords (pair-join work).
  double estimated_cost = 0.0;
};

/// The paper's Triangulator (§4): for cyclic CQs, cycles of length greater
/// than three are bisected by chords down to triangles. Chord choice is a
/// bottom-up dynamic program — for each cycle, the classic O(m³) optimal
/// polygon-triangulation DP, minimizing the modeled size of the chord
/// materializations (each chord is maintained at runtime as the
/// intersection of the joins of the opposite two sides of its triangles).
///
/// Cycles come from a fundamental cycle basis; overlapping cycles are
/// chordified independently (the paper's workloads — diamonds — have a
/// single cycle; this is the documented scope).
class Triangulator {
 public:
  Triangulator(const QueryGraph& query, const CardinalityEstimator& estimator)
      : query_(&query), estimator_(&estimator) {}

  /// Chooses chords for every cycle of `shape`. Returns an empty
  /// Chordification for acyclic queries.
  Result<Chordification> Triangulate(const QueryShape& shape) const;

  /// Exhaustive reference over all triangulations of one polygon (tests).
  Result<Chordification> TriangulateExhaustive(const QueryShape& shape) const;

 private:
  struct CycleContext;

  /// Runs the interval DP for one cycle and appends results.
  void ChordifyCycle(const QueryCycle& cycle, bool exhaustive,
                     Chordification* out) const;

  const QueryGraph* query_;
  const CardinalityEstimator* estimator_;
};

}  // namespace wireframe

#endif  // WIREFRAME_PLANNER_TRIANGULATOR_H_
