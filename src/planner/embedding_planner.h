#ifndef WIREFRAME_PLANNER_EMBEDDING_PLANNER_H_
#define WIREFRAME_PLANNER_EMBEDDING_PLANNER_H_

#include <cstdint>
#include <vector>

#include "planner/plan.h"
#include "query/query_graph.h"
#include "util/result.h"

namespace wireframe {

/// Exact statistics of one query edge's answer-graph edge set, available
/// for free after phase 1 (the paper: "a greedy approach to generate a
/// tree plan based on the available statistics from the answer graph
/// phase").
struct AgEdgeStats {
  uint64_t pairs = 0;         // |AG(e)|
  uint64_t distinct_src = 0;  // distinct source nodes in AG(e)
  uint64_t distinct_dst = 0;  // distinct target nodes in AG(e)
};

/// Phase-2 planner: orders the answer-graph edge sets for defactorization.
///
/// For an acyclic CQ over the ideal AG any connected order is optimal (no
/// intermediate tuple is ever lost — §4.II), so the planner simply picks a
/// connected order. For cyclic queries or non-ideal AGs intermediate
/// results can shrink, so join order matters: the planner greedily extends
/// with the connected edge minimizing the estimated intermediate size,
/// starting from the smallest edge set.
class EmbeddingPlanner {
 public:
  explicit EmbeddingPlanner(const QueryGraph& query) : query_(&query) {}

  /// Computes a connected join order. `stats` is indexed by query-edge id.
  Result<EmbeddingPlan> PlanJoinOrder(
      const std::vector<AgEdgeStats>& stats) const;

 private:
  const QueryGraph* query_;
};

}  // namespace wireframe

#endif  // WIREFRAME_PLANNER_EMBEDDING_PLANNER_H_
