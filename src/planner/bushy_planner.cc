#include "planner/bushy_planner.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "query/shape.h"
#include "util/logging.h"

namespace wireframe {

namespace {

/// Per-subset DP entry.
struct SubsetEntry {
  double cost = std::numeric_limits<double>::infinity();
  double tuples = 0.0;
  /// Estimated distinct values per variable bound by the subset
  /// (kInvalidVar-free dense map: var -> estimate; 0 means unbound).
  std::vector<double> var_distinct;
  uint64_t left_mask = 0;   // 0 for leaves
  uint64_t right_mask = 0;
};

uint64_t VarsOf(const QueryGraph& q, uint64_t mask) {
  uint64_t vars = 0;
  for (uint32_t e = 0; e < q.NumEdges(); ++e) {
    if (mask & (1ull << e)) {
      vars |= 1ull << q.Edge(e).src;
      vars |= 1ull << q.Edge(e).dst;
    }
  }
  return vars;
}

}  // namespace

std::string BushyPlan::ToString(const QueryGraph& query) const {
  std::ostringstream os;
  os << "Bushy plan (cost ~" << static_cast<uint64_t>(estimated_cost)
     << "):\n";
  // Recursive pretty-printer.
  auto render = [&](auto&& self, int index, int depth) -> void {
    const Node& node = nodes[index];
    for (int i = 0; i < depth; ++i) os << "  ";
    if (node.IsLeaf()) {
      const QueryEdge& qe = query.Edge(node.edge);
      os << "scan AG(?" << query.VarName(qe.src) << " -> ?"
         << query.VarName(qe.dst) << ") ~"
         << static_cast<uint64_t>(node.est_tuples) << "\n";
      return;
    }
    os << "join ~" << static_cast<uint64_t>(node.est_tuples) << "\n";
    self(self, node.left, depth + 1);
    self(self, node.right, depth + 1);
  };
  if (root >= 0) render(render, root, 1);
  return os.str();
}

Result<BushyPlan> BushyPlanner::Plan(
    const std::vector<AgEdgeStats>& stats) const {
  const QueryGraph& q = *query_;
  const uint32_t n = q.NumEdges();
  if (n == 0) return Status::InvalidArgument("query has no patterns");
  if (n > kMaxDpEdges) {
    return Status::OutOfRange("bushy DP capped at " +
                              std::to_string(kMaxDpEdges) + " edges");
  }
  WF_CHECK(stats.size() == n);
  if (!IsConnected(q)) {
    return Status::InvalidArgument(
        "disconnected query graphs are not supported");
  }
  WF_CHECK(q.NumVars() <= 64 && n <= 63);

  std::unordered_map<uint64_t, SubsetEntry> dp;

  // Leaves.
  for (uint32_t e = 0; e < n; ++e) {
    SubsetEntry entry;
    entry.cost = 0.0;  // phase 1 already materialized the edge sets
    entry.tuples = static_cast<double>(stats[e].pairs);
    entry.var_distinct.assign(q.NumVars(), 0.0);
    entry.var_distinct[q.Edge(e).src] =
        static_cast<double>(stats[e].distinct_src);
    entry.var_distinct[q.Edge(e).dst] =
        static_cast<double>(stats[e].distinct_dst);
    dp.emplace(1ull << e, std::move(entry));
  }

  // Subsets in increasing popcount; split into connected, var-sharing
  // halves (both already present in dp).
  std::vector<uint64_t> masks;
  masks.reserve(1ull << n);
  for (uint64_t m = 1; m < (1ull << n); ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
    const int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
    return pa != pb ? pa < pb : a < b;
  });

  for (uint64_t mask : masks) {
    if (__builtin_popcountll(mask) < 2) continue;
    SubsetEntry best;
    // Enumerate proper submasks; consider each unordered split once by
    // requiring the lowest set bit to stay on the left.
    const uint64_t low = mask & (~mask + 1);
    for (uint64_t left = (mask - 1) & mask; left > 0;
         left = (left - 1) & mask) {
      if (!(left & low)) continue;
      const uint64_t right = mask ^ left;
      auto lit = dp.find(left);
      auto rit = dp.find(right);
      if (lit == dp.end() || rit == dp.end()) continue;
      const SubsetEntry& L = lit->second;
      const SubsetEntry& R = rit->second;

      // Shared variables (by query structure, so that empty edge sets —
      // zero distinct counts — still admit a plan); skip cross products.
      const uint64_t shared_vars = VarsOf(q, left) & VarsOf(q, right);
      if (shared_vars == 0) continue;
      double size = L.tuples * R.tuples;
      for (VarId v = 0; v < q.NumVars(); ++v) {
        if (shared_vars & (1ull << v)) {
          size /= std::max(
              {L.var_distinct[v], R.var_distinct[v], 1.0});
        }
      }

      const double cost = L.cost + R.cost + size;
      if (cost < best.cost) {
        best.cost = cost;
        best.tuples = size;
        best.left_mask = left;
        best.right_mask = right;
        best.var_distinct.assign(q.NumVars(), 0.0);
        for (VarId v = 0; v < q.NumVars(); ++v) {
          const double l = L.var_distinct[v];
          const double r = R.var_distinct[v];
          double d = l > 0 && r > 0 ? std::min(l, r) : std::max(l, r);
          if (d > 0) best.var_distinct[v] = std::min(d, size);
        }
      }
    }
    if (best.left_mask != 0) dp.emplace(mask, std::move(best));
  }

  const uint64_t full = (1ull << n) - 1;
  auto it = dp.find(full);
  if (it == dp.end()) {
    return Status::Internal("connected query did not reach a full plan");
  }

  // Reconstruct the tree.
  BushyPlan plan;
  plan.estimated_cost = it->second.cost;
  auto build = [&](auto&& self, uint64_t mask) -> int {
    const SubsetEntry& entry = dp.at(mask);
    BushyPlan::Node node;
    node.est_tuples = entry.tuples;
    if (__builtin_popcountll(mask) == 1) {
      node.edge = static_cast<uint32_t>(__builtin_ctzll(mask));
    } else {
      node.left = self(self, entry.left_mask);
      node.right = self(self, entry.right_mask);
    }
    plan.nodes.push_back(node);
    return static_cast<int>(plan.nodes.size() - 1);
  };
  plan.root = build(build, full);
  return plan;
}

}  // namespace wireframe
