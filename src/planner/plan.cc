#include "planner/plan.h"

#include <sstream>

namespace wireframe {

std::string AgPlan::ToString(
    const QueryGraph& query,
    const std::function<std::string(LabelId)>& label_name) const {
  std::ostringstream os;
  os << "AG plan (edge walks ~" << static_cast<uint64_t>(estimated_walks)
     << ", AG edges ~" << static_cast<uint64_t>(estimated_ag_edges) << "):\n";
  int step = 1;
  for (uint32_t e : edge_order) {
    const QueryEdge& qe = query.Edge(e);
    os << "  " << step++ << ". ?" << query.VarName(qe.src) << " --"
       << label_name(qe.label) << "--> ?" << query.VarName(qe.dst) << "\n";
  }
  for (size_t c = 0; c < chords.size(); ++c) {
    os << "  chord " << c << ": (?" << query.VarName(chords[c].u) << ", ?"
       << query.VarName(chords[c].v) << ") in " << chords[c].triangles.size()
       << " triangle(s)\n";
  }
  return os.str();
}

std::string EmbeddingPlan::ToString(
    const QueryGraph& query,
    const std::function<std::string(LabelId)>& label_name) const {
  std::ostringstream os;
  os << "Embedding plan (tuples ~" << static_cast<uint64_t>(estimated_tuples)
     << "):\n";
  int step = 1;
  for (uint32_t e : join_order) {
    const QueryEdge& qe = query.Edge(e);
    os << "  " << step++ << ". join ?" << query.VarName(qe.src) << " --"
       << label_name(qe.label) << "--> ?" << query.VarName(qe.dst) << "\n";
  }
  return os.str();
}

}  // namespace wireframe
