#ifndef WIREFRAME_PLANNER_COST_MODEL_H_
#define WIREFRAME_PLANNER_COST_MODEL_H_

#include <vector>

#include "catalog/estimator.h"
#include "query/query_graph.h"

namespace wireframe {

/// Planner-side simulation of answer-graph generation for a given edge
/// order. The paper's cost unit is the *edge walk*: "the retrieval of a
/// matching edge from G" (§4); node burnback is amortized into the walks
/// that created the removed edges, so the model charges probes + retrieved
/// edges and nothing extra for burnback.
struct PlanCost {
  /// Total estimated edge walks (probes + retrieved edges).
  double walks = 0.0;
  /// Estimated answer-graph size after the full plan (sum over edges of
  /// surviving matches; burnback shrinkage between steps is reflected in
  /// the per-step candidate propagation, not re-applied retroactively).
  double ag_edges = 0.0;
  /// Per-step retrieved-edge estimates, aligned with the simulated order.
  std::vector<double> step_edges;
};

/// Simulates executing `order` (a permutation of query-edge indices) and
/// returns the modeled cost. Exposed separately from the Edgifier so
/// benches can score arbitrary orders against the same model.
PlanCost SimulateAgPlan(const QueryGraph& query,
                        const CardinalityEstimator& estimator,
                        const std::vector<uint32_t>& order);

}  // namespace wireframe

#endif  // WIREFRAME_PLANNER_COST_MODEL_H_
