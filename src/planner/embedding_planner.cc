#include "planner/embedding_planner.h"

#include <algorithm>
#include <limits>

#include "query/shape.h"
#include "util/logging.h"

namespace wireframe {

Result<EmbeddingPlan> EmbeddingPlanner::PlanJoinOrder(
    const std::vector<AgEdgeStats>& stats) const {
  const QueryGraph& query = *query_;
  const uint32_t n = query.NumEdges();
  if (n == 0) return Status::InvalidArgument("query has no patterns");
  WF_CHECK(stats.size() == n) << "stats must cover every query edge";
  if (!IsConnected(query)) {
    return Status::InvalidArgument(
        "disconnected query graphs are not supported");
  }

  EmbeddingPlan plan;
  std::vector<bool> used(n, false);
  std::vector<bool> bound(query.NumVars(), false);

  // Start from the smallest AG edge set.
  uint32_t first = 0;
  for (uint32_t e = 1; e < n; ++e) {
    if (stats[e].pairs < stats[first].pairs) first = e;
  }
  plan.join_order.push_back(first);
  used[first] = true;
  bound[query.Edge(first).src] = true;
  bound[query.Edge(first).dst] = true;
  double tuples = static_cast<double>(stats[first].pairs);

  auto fanout = [&](uint32_t e, bool src_bound, bool dst_bound) -> double {
    const AgEdgeStats& s = stats[e];
    const double pairs = static_cast<double>(s.pairs);
    if (src_bound && dst_bound) {
      // Both endpoints bound: the edge acts as a selection; expected pass
      // rate of a random (u,v) combination.
      const double dom = static_cast<double>(s.distinct_src) *
                         static_cast<double>(s.distinct_dst);
      return dom <= 0 ? 0.0 : std::min(1.0, pairs / dom);
    }
    if (src_bound) {
      return s.distinct_src == 0
                 ? 0.0
                 : pairs / static_cast<double>(s.distinct_src);
    }
    return s.distinct_dst == 0 ? 0.0
                               : pairs / static_cast<double>(s.distinct_dst);
  };

  for (uint32_t step = 1; step < n; ++step) {
    uint32_t best = UINT32_MAX;
    double best_tuples = std::numeric_limits<double>::infinity();
    for (uint32_t e = 0; e < n; ++e) {
      if (used[e]) continue;
      const QueryEdge& qe = query.Edge(e);
      const bool sb = bound[qe.src], db = bound[qe.dst];
      if (!sb && !db) continue;  // keep the plan connected
      const double next = tuples * fanout(e, sb, db);
      if (next < best_tuples) {
        best_tuples = next;
        best = e;
      }
    }
    WF_CHECK(best != UINT32_MAX) << "connected query must have a next edge";
    used[best] = true;
    bound[query.Edge(best).src] = true;
    bound[query.Edge(best).dst] = true;
    tuples = best_tuples;
    plan.join_order.push_back(best);
  }
  plan.estimated_tuples = tuples;
  return plan;
}

}  // namespace wireframe
