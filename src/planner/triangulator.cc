#include "planner/triangulator.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace wireframe {

namespace {

/// Estimated candidate-node count for cycle position i: the tightest
/// distinct-count bound among the variable's incident patterns.
double EstimateVarDistinct(const QueryGraph& query, const Catalog& catalog,
                           VarId v) {
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t e : query.IncidentEdges(v)) {
    const QueryEdge& qe = query.Edge(e);
    const End end = qe.src == v ? End::kSubject : End::kObject;
    best = std::min(best,
                    static_cast<double>(catalog.DistinctCount(qe.label, end)));
  }
  return best == std::numeric_limits<double>::infinity() ? 1.0 : best;
}

}  // namespace

/// Interval DP state for one cycle (polygon) of length m: positions
/// 0..m-1; side (i,i+1) is cycle edge i; side (0,m-1) is cycle edge m-1.
struct Triangulator::CycleContext {
  const QueryCycle* cycle;
  uint32_t m;
  std::vector<double> var_distinct;           // [m]
  std::vector<std::vector<double>> pairs;     // est |side (i,j)|
  std::vector<std::vector<double>> cost;      // DP cost of interval (i,j)
  std::vector<std::vector<int>> split;        // argmin apex k
};

void Triangulator::ChordifyCycle(const QueryCycle& cycle, bool exhaustive,
                                 Chordification* out) const {
  const QueryGraph& query = *query_;
  const Catalog& catalog = estimator_->catalog();
  const uint32_t m = cycle.Length();
  WF_CHECK(m >= 3) << "2-cycles (parallel patterns) need no chordification";

  CycleContext ctx;
  ctx.cycle = &cycle;
  ctx.m = m;
  ctx.var_distinct.resize(m);
  for (uint32_t i = 0; i < m; ++i) {
    ctx.var_distinct[i] = EstimateVarDistinct(query, catalog, cycle.vars[i]);
  }
  ctx.pairs.assign(m, std::vector<double>(m, 0.0));
  ctx.cost.assign(m, std::vector<double>(
                         m, std::numeric_limits<double>::infinity()));
  ctx.split.assign(m, std::vector<int>(m, -1));

  // Base: adjacent sides are original cycle edges.
  for (uint32_t i = 0; i + 1 < m; ++i) {
    ctx.pairs[i][i + 1] =
        static_cast<double>(
            catalog.EdgeCount(query.Edge(cycle.edges[i]).label));
    ctx.cost[i][i + 1] = 0.0;
  }

  // Interval DP (exhaustive flag only changes nothing here: the DP already
  // scans every apex; the separate entry point exists so tests can compare
  // a brute-force recursion — for polygons they coincide by construction,
  // which the test asserts).
  (void)exhaustive;
  for (uint32_t len = 2; len < m; ++len) {
    for (uint32_t i = 0; i + len < m; ++i) {
      const uint32_t j = i + len;
      for (uint32_t k = i + 1; k < j; ++k) {
        // Join the two sub-sides on the apex variable.
        const double join_size =
            ctx.var_distinct[k] <= 0
                ? 0.0
                : ctx.pairs[i][k] * ctx.pairs[k][j] / ctx.var_distinct[k];
        const double bounded =
            std::min(join_size, ctx.var_distinct[i] * ctx.var_distinct[j]);
        const double total = ctx.cost[i][k] + ctx.cost[k][j] + bounded;
        if (total < ctx.cost[i][j]) {
          ctx.cost[i][j] = total;
          ctx.split[i][j] = static_cast<int>(k);
          ctx.pairs[i][j] = bounded;
        }
      }
    }
  }

  out->estimated_cost += ctx.cost[0][m - 1];

  // Reconstruct triangles. Sides: (i,i+1) -> cycle edge i; (0,m-1) ->
  // cycle edge m-1; everything else -> chord.
  // First pass: allocate chords for every interval used by the optimal
  // triangulation (except the closing side).
  std::vector<std::vector<int>> chord_index(m, std::vector<int>(m, -1));
  const size_t chord_base = out->chords.size();

  struct Item {
    uint32_t i, j;
  };
  std::vector<Item> stack{{0, m - 1}};
  std::vector<Item> intervals;  // all triangulated intervals, root first
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    if (it.j - it.i < 2) continue;
    intervals.push_back(it);
    const bool is_closing = (it.i == 0 && it.j == m - 1);
    if (!is_closing && chord_index[it.i][it.j] < 0) {
      chord_index[it.i][it.j] = static_cast<int>(out->chords.size());
      Chord chord;
      chord.u = cycle.vars[it.i];
      chord.v = cycle.vars[it.j];
      out->chords.push_back(std::move(chord));
    }
    const int k = ctx.split[it.i][it.j];
    WF_CHECK(k > 0);
    stack.push_back({it.i, static_cast<uint32_t>(k)});
    stack.push_back({static_cast<uint32_t>(k), it.j});
  }

  auto side_of = [&](uint32_t a, uint32_t b) -> TriangleSide {
    TriangleSide side;
    if (b == a + 1) {
      side.is_chord = false;
      side.index = cycle.edges[a];
    } else if (a == 0 && b == m - 1) {
      side.is_chord = false;
      side.index = cycle.edges[m - 1];
    } else {
      side.is_chord = true;
      WF_CHECK(chord_index[a][b] >= 0);
      side.index = static_cast<uint32_t>(chord_index[a][b]);
    }
    return side;
  };

  // Second pass: build each interval's triangle and attach it to every
  // chord among its three sides; triangles whose closing side is a query
  // edge are also recorded as base triangles.
  for (const Item& it : intervals) {
    const uint32_t k = static_cast<uint32_t>(ctx.split[it.i][it.j]);
    Triangle tri;
    tri.apex = cycle.vars[k];
    tri.side_uw = side_of(it.i, k);
    tri.side_wv = side_of(k, it.j);
    const TriangleSide closing = side_of(it.i, it.j);

    if (closing.is_chord) {
      out->chords[closing.index].triangles.push_back(tri);
    } else {
      out->base_triangles.push_back(tri);
      out->base_triangle_closing_edge.push_back(closing.index);
    }
    // A chord used as a *side* of this triangle participates in it too:
    // reorient so the chord is the (u,v) side.
    auto attach_side = [&](const TriangleSide& side, uint32_t a, uint32_t b) {
      if (!side.is_chord) return;
      // Triangle around chord (a,b) has apex at the remaining corner.
      Triangle t2;
      t2.apex = (a == it.i && b == static_cast<uint32_t>(k))
                    ? cycle.vars[it.j]
                    : cycle.vars[it.i];
      if (a == it.i) {
        // chord (i,k): other sides are (k,j) and closing (i,j).
        t2.side_uw = closing;        // u=i .. apex=j
        t2.side_wv = side_of(k, it.j);  // apex=j .. v=k  (orientation noted)
      } else {
        // chord (k,j): other sides are closing (i,j) and (i,k).
        t2.side_uw = side_of(it.i, k);  // u=k .. apex=i (reverse of (i,k))
        t2.side_wv = closing;           // apex=i .. v=j
      }
      out->chords[side.index].triangles.push_back(t2);
    };
    attach_side(tri.side_uw, it.i, k);
    attach_side(tri.side_wv, k, it.j);
  }
  (void)chord_base;
}

Result<Chordification> Triangulator::Triangulate(
    const QueryShape& shape) const {
  Chordification out;
  for (const QueryCycle& cycle : shape.cycles) {
    if (cycle.Length() < 3) continue;  // parallel edges: nothing to chordify
    ChordifyCycle(cycle, /*exhaustive=*/false, &out);
  }
  return out;
}

Result<Chordification> Triangulator::TriangulateExhaustive(
    const QueryShape& shape) const {
  Chordification out;
  for (const QueryCycle& cycle : shape.cycles) {
    if (cycle.Length() < 3) continue;
    ChordifyCycle(cycle, /*exhaustive=*/true, &out);
  }
  return out;
}

}  // namespace wireframe
