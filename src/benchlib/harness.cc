#include "benchlib/harness.h"

#include <ostream>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace wireframe {

BenchRecord ToRecord(const std::string& engine, const std::string& query_id,
                     const BenchCell& cell) {
  BenchRecord record;
  record.engine = engine;
  record.query = query_id;
  record.ok = cell.ok;
  record.timed_out = cell.timed_out;
  record.seconds = cell.seconds;
  record.edge_walks = cell.stats.edge_walks;
  record.output_tuples = cell.stats.output_tuples;
  record.ag_pairs = cell.stats.ag_pairs;
  record.threads = cell.threads;
  record.phase1_seconds = cell.phase1_seconds;
  record.burnback_seconds = cell.burnback_seconds;
  record.freeze_seconds = cell.freeze_seconds;
  record.phase2_seconds = cell.phase2_seconds;
  return record;
}

BenchCell Table1Harness::RunCell(const QueryGraph& query,
                                 const std::string& engine_name) {
  BenchCell cell;
  std::unique_ptr<Engine> engine = MakeEngine(engine_name);
  WF_CHECK(engine != nullptr) << "unknown engine " << engine_name;
  // Record what the cell actually ran with: serial-only engines ignore
  // the threads knob, and the JSON trajectory must not claim otherwise.
  cell.threads = engine->SupportsThreads()
                     ? ThreadPool::ResolveThreads(config_.threads)
                     : 1;

  double total_seconds = 0.0;
  int timed_runs = 0;
  for (int rep = 0; rep < std::max(1, config_.repetitions); ++rep) {
    EngineOptions options;
    options.deadline = Deadline::AfterSeconds(config_.timeout_seconds);
    options.threads = config_.threads;
    CountingSink sink;
    Stopwatch watch;
    Result<EngineStats> result =
        engine->Run(*db_, *catalog_, query, options, &sink);
    const double elapsed = watch.ElapsedSeconds();
    if (!result.ok()) {
      cell.ok = false;
      cell.timed_out = result.status().IsTimedOut() ||
                       result.status().code() == StatusCode::kOutOfRange;
      cell.error = result.status().ToString();
      return cell;  // no point repeating a timed-out/failed run
    }
    cell.stats = result.value();
    // Warm-cache averaging: skip the first (cold) run when we have more.
    // Phase wall times (EngineStats; zero for baselines) average the
    // same way so the JSON trajectory carries the per-phase split.
    if (rep > 0 || config_.repetitions == 1) {
      total_seconds += elapsed;
      cell.phase1_seconds += result->phase1_seconds;
      cell.burnback_seconds += result->burnback_seconds;
      cell.freeze_seconds += result->freeze_seconds;
      cell.phase2_seconds += result->phase2_seconds;
      ++timed_runs;
    }
  }
  cell.ok = true;
  const int divisor = std::max(1, timed_runs);
  cell.seconds = total_seconds / divisor;
  cell.phase1_seconds /= divisor;
  cell.burnback_seconds /= divisor;
  cell.freeze_seconds /= divisor;
  cell.phase2_seconds /= divisor;
  return cell;
}

void Table1Harness::RunSuite(const std::vector<BenchQuery>& queries,
                             std::ostream& os) {
  std::vector<std::string> header = {"#", "Query"};
  for (const std::string& e : config_.engines) header.push_back(e);
  header.push_back("|AG|");
  header.push_back("|Embeddings|");
  TablePrinter table(std::move(header));

  for (const BenchQuery& bq : queries) {
    std::vector<std::string> row = {bq.id, bq.label};
    uint64_t ag_pairs = 0;
    uint64_t embeddings = 0;
    bool have_wf = false;
    for (const std::string& engine_name : config_.engines) {
      BenchCell cell = RunCell(bq.query, engine_name);
      if (config_.json != nullptr) {
        config_.json->Add(ToRecord(engine_name, bq.id, cell));
      }
      if (!cell.ok) {
        row.push_back(TablePrinter::Timeout());
        if (config_.verbose) {
          os << "  [" << engine_name << " @ " << bq.id << "] "
             << cell.error << "\n";
        }
        continue;
      }
      row.push_back(TablePrinter::FormatSeconds(cell.seconds));
      if (engine_name == "WF") {
        ag_pairs = cell.stats.ag_pairs;
        embeddings = cell.stats.output_tuples;
        have_wf = true;
      } else if (!have_wf && cell.stats.output_tuples > embeddings) {
        embeddings = cell.stats.output_tuples;
      }
    }
    row.push_back(have_wf ? TablePrinter::FormatCount(ag_pairs) : "?");
    row.push_back(TablePrinter::FormatCount(embeddings));
    table.AddRow(std::move(row));
  }
  table.Print(os);
}

}  // namespace wireframe
