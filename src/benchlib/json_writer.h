#ifndef WIREFRAME_BENCHLIB_JSON_WRITER_H_
#define WIREFRAME_BENCHLIB_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wireframe {

/// One (engine, query) bench cell in machine-readable form. The repo
/// accumulates these as BENCH_*.json trajectory files so speedups and
/// regressions are diffable across PRs.
struct BenchRecord {
  std::string engine;  // paper tag: WF, PG, VT, MD, NJ
  std::string query;   // suite-local id, e.g. "T1-Q2" or "fig4"
  bool ok = false;
  bool timed_out = false;
  double seconds = 0.0;
  uint64_t edge_walks = 0;
  uint64_t output_tuples = 0;
  uint64_t ag_pairs = 0;
  uint32_t threads = 1;
  /// Wireframe phase split (0 for baselines and when not measured).
  /// burnback/freeze are slices of phase 1: cascading node burnback and
  /// the CSR freeze of the answer graph.
  double phase1_seconds = 0.0;
  double burnback_seconds = 0.0;
  double freeze_seconds = 0.0;
  double phase2_seconds = 0.0;
  /// Slice of phase 2 spent producing an aggregate answer (the counting
  /// DP or the enumerate-then-count fold; 0 for plain SELECT cells).
  double aggregate_seconds = 0.0;
  /// Per-query latency percentiles of a concurrent-serving cell
  /// (bench_concurrent; 0 when the cell is a single run).
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Answer-graph cache counters of a cached serving cell
  /// (bench_concurrent --zipf; all 0 when the cache is off).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
};

/// Collects BenchRecords and serializes them as a JSON array. No external
/// JSON dependency: the schema is flat, so hand-rolled serialization with
/// string escaping is all that is needed.
///
/// Provenance metadata (hardware core count, dataset scale, ...) can be
/// attached with SetMeta; with any metadata present the output becomes
/// `{"meta": {...}, "records": [...]}` instead of the bare legacy array
/// (scripts/bench_diff.py reads both shapes).
class JsonResultWriter {
 public:
  void Add(BenchRecord record) { records_.push_back(std::move(record)); }

  /// Attaches one provenance key/value (insertion-ordered; setting an
  /// existing key overwrites it).
  void SetMeta(const std::string& key, const std::string& value);

  bool empty() const { return records_.empty(); }
  const std::vector<BenchRecord>& records() const { return records_; }

  /// The records as pretty-printed JSON (array, or object when metadata
  /// is attached).
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Returns false (and prints to stderr) on
  /// I/O failure.
  bool WriteTo(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<BenchRecord> records_;
};

}  // namespace wireframe

#endif  // WIREFRAME_BENCHLIB_JSON_WRITER_H_
