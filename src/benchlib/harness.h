#ifndef WIREFRAME_BENCHLIB_HARNESS_H_
#define WIREFRAME_BENCHLIB_HARNESS_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "benchlib/json_writer.h"
#include "catalog/catalog.h"
#include "exec/engine.h"
#include "query/query_graph.h"
#include "storage/database.h"
#include "util/table_printer.h"

namespace wireframe {

/// One query of a bench suite.
struct BenchQuery {
  std::string id;       // row label, e.g. "1"
  std::string label;    // predicate list, paper style
  QueryGraph query;
};

/// Configuration of a Table-1-style run.
struct BenchConfig {
  /// Engines to run, in column order (paper: PG, WF, VT, MD, NJ).
  std::vector<std::string> engines = {"PG", "WF", "VT", "MD", "NJ"};
  /// Per-query, per-engine wall-clock budget in seconds (the paper uses
  /// 300; laptop-scale data needs less).
  double timeout_seconds = 60.0;
  /// Runs per engine; the reported time averages the warm runs (the paper
  /// runs five and averages the last four). Slow engines that time out or
  /// blow the memory budget are not re-run.
  int repetitions = 2;
  /// Print per-query phase diagnostics for WF.
  bool verbose = false;
  /// Worker threads for every engine run (EngineOptions::threads: 1 =
  /// serial paths, 0 = all hardware cores).
  uint32_t threads = 1;
  /// When set, RunSuite appends one BenchRecord per (query, engine) cell
  /// (not owned; the driver writes the file).
  JsonResultWriter* json = nullptr;
};

/// Result of one (query, engine) cell.
struct BenchCell {
  bool ok = false;
  bool timed_out = false;
  std::string error;
  double seconds = 0.0;
  /// Resolved worker-thread count the cell ran with.
  uint32_t threads = 1;
  EngineStats stats;
  /// Wireframe phase breakdown, averaged over the warm repetitions like
  /// `seconds` (0 for baselines: they have no phases). burnback/freeze
  /// are slices of phase 1.
  double phase1_seconds = 0.0;
  double burnback_seconds = 0.0;
  double freeze_seconds = 0.0;
  double phase2_seconds = 0.0;
};

/// Flattens one bench cell into the machine-readable record shape.
BenchRecord ToRecord(const std::string& engine, const std::string& query_id,
                     const BenchCell& cell);

/// Runs every configured engine on every query and renders the paper's
/// Table 1 layout: per-system time (or '*'), |AG| and |Embeddings| taken
/// from the Wireframe run.
class Table1Harness {
 public:
  Table1Harness(const Database& db, const Catalog& catalog,
                BenchConfig config)
      : db_(&db), catalog_(&catalog), config_(std::move(config)) {}

  /// Evaluates one cell (averaging warm repetitions).
  BenchCell RunCell(const QueryGraph& query, const std::string& engine_name);

  /// Runs the whole suite and prints the table to `os`.
  void RunSuite(const std::vector<BenchQuery>& queries, std::ostream& os);

 private:
  const Database* db_;
  const Catalog* catalog_;
  BenchConfig config_;
};

}  // namespace wireframe

#endif  // WIREFRAME_BENCHLIB_HARNESS_H_
