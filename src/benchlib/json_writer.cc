#include "benchlib/json_writer.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

namespace wireframe {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

void JsonResultWriter::SetMeta(const std::string& key,
                               const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

std::string JsonResultWriter::ToJson() const {
  std::ostringstream os;
  const char* indent = "  ";
  if (!meta_.empty()) {
    indent = "    ";
    os << "{\n  \"meta\": {";
    for (size_t i = 0; i < meta_.size(); ++i) {
      os << (i == 0 ? "" : ",") << "\n    \"" << Escape(meta_[i].first)
         << "\": \"" << Escape(meta_[i].second) << "\"";
    }
    os << "\n  },\n  \"records\": ";
  }
  os << "[\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    os << indent << "{\"engine\": \"" << Escape(r.engine) << "\""
       << ", \"query\": \"" << Escape(r.query) << "\""
       << ", \"ok\": " << (r.ok ? "true" : "false")
       << ", \"timed_out\": " << (r.timed_out ? "true" : "false")
       << ", \"seconds\": " << FormatDouble(r.seconds)
       << ", \"edge_walks\": " << r.edge_walks
       << ", \"output_tuples\": " << r.output_tuples
       << ", \"ag_pairs\": " << r.ag_pairs
       << ", \"threads\": " << r.threads
       << ", \"phase1_seconds\": " << FormatDouble(r.phase1_seconds)
       << ", \"burnback_seconds\": " << FormatDouble(r.burnback_seconds)
       << ", \"freeze_seconds\": " << FormatDouble(r.freeze_seconds)
       << ", \"phase2_seconds\": " << FormatDouble(r.phase2_seconds)
       << ", \"aggregate_seconds\": " << FormatDouble(r.aggregate_seconds)
       << ", \"p50_seconds\": " << FormatDouble(r.p50_seconds)
       << ", \"p99_seconds\": " << FormatDouble(r.p99_seconds)
       << ", \"cache_hits\": " << r.cache_hits
       << ", \"cache_misses\": " << r.cache_misses
       << ", \"cache_evictions\": " << r.cache_evictions << "}"
       << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  if (!meta_.empty()) {
    os << "  ]\n}\n";
  } else {
    os << "]\n";
  }
  return os.str();
}

bool JsonResultWriter::WriteTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "json_writer: cannot open " << path << " for writing\n";
    return false;
  }
  out << ToJson();
  return static_cast<bool>(out);
}

}  // namespace wireframe
