#ifndef WIREFRAME_UTIL_TABLE_PRINTER_H_
#define WIREFRAME_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace wireframe {

/// Renders aligned ASCII tables for benchmark reports (the Table-1-style
/// output the benches print) and can also emit CSV for post-processing.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; it is padded or truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string FormatSeconds(double seconds);
  static std::string FormatCount(uint64_t n);
  /// The paper prints '*' for queries terminated at the timeout.
  static std::string Timeout();

  /// Writes the aligned table to `os`.
  void Print(std::ostream& os) const;

  /// Writes the table as CSV (no alignment, comma-escaped) to `os`.
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_TABLE_PRINTER_H_
