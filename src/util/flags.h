#ifndef WIREFRAME_UTIL_FLAGS_H_
#define WIREFRAME_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace wireframe {

/// Minimal command-line flag parser for the bench/example binaries.
/// Accepts `--name=value` and `--name value`; `--flag` alone is boolean
/// true. Unrecognized arguments are collected as positionals.
class Flags {
 public:
  /// Parses argv; exits with a message on malformed input.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_FLAGS_H_
