#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace wireframe {

namespace {
// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  WF_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  WF_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n) {
  WF_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace wireframe
