#include "util/status.h"

namespace wireframe {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kConnectionRefused:
      return "ConnectionRefused";
    case StatusCode::kConnectionReset:
      return "ConnectionReset";
    case StatusCode::kFrameCorrupt:
      return "FrameCorrupt";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kRetryExhausted:
      return "RetryExhausted";
    case StatusCode::kStreamBroken:
      return "StreamBroken";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace wireframe
