#include "util/span_kernels.h"

#include <algorithm>
#include <cstdlib>

#include "util/span_kernels_internal.h"

namespace wireframe {

namespace {

std::atomic<bool> g_force_scalar{false};

/// WIREFRAME_FORCE_SCALAR_KERNELS is latched on first use: dispatch must
/// never flip mid-run underneath a bench recording.
bool EnvForcesScalar() {
  static const bool forced = [] {
    const char* value = std::getenv("WIREFRAME_FORCE_SCALAR_KERNELS");
    return value != nullptr && value[0] != '\0' && value[0] != '0';
  }();
  return forced;
}

/// Index of the first element >= x, branch-free (cmov, no mispredicted
/// comparisons — the probe sides of chord filtering are selectivity-
/// skewed, which is the worst case for a branching binary search).
size_t BranchlessLowerBound(const NodeId* data, size_t n, NodeId x) {
  const NodeId* base = data;
  while (n > 1) {
    const size_t half = n / 2;
    base = base[half] < x ? base + half : base;
    n -= half;
  }
  return static_cast<size_t>(base - data) + (n == 1 && *base < x ? 1 : 0);
}

/// Linear merge intersection — the near-equal-size workhorse.
size_t MergeIntersect(const NodeId* a, size_t na, const NodeId* b, size_t nb,
                      NodeId* out) {
  size_t i = 0;
  size_t j = 0;
  size_t k = 0;
  while (i < na && j < nb) {
    const NodeId av = a[i];
    const NodeId bv = b[j];
    if (av == bv) {
      out[k++] = av;
      ++i;
      ++j;
    } else if (av < bv) {
      ++i;
    } else {
      ++j;
    }
  }
  return k;
}

/// Galloping intersection: probe each element of the small span into the
/// large one, advancing monotonically. O(small * log gap) — wins once
/// large/small >= kGallopRatio.
size_t GallopIntersect(std::span<const NodeId> small,
                       std::span<const NodeId> large, NodeId* out) {
  size_t pos = 0;
  size_t k = 0;
  for (const NodeId x : small) {
    pos = GallopLowerBound(large.data(), large.size(), pos, x);
    if (pos == large.size()) break;
    if (large[pos] == x) {
      out[k++] = x;
      ++pos;
    }
  }
  return k;
}

}  // namespace

bool KernelAvx2Compiled() {
#if defined(WIREFRAME_HAVE_AVX2_KERNELS)
  return true;
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

void ForceScalarKernels(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool ScalarKernelsForced() {
  return EnvForcesScalar() || g_force_scalar.load(std::memory_order_relaxed);
}

KernelDispatch ActiveKernelDispatch() {
  if (KernelAvx2Compiled() && CpuHasAvx2() && !ScalarKernelsForced()) {
    return KernelDispatch::kAvx2;
  }
  return KernelDispatch::kScalar;
}

const char* KernelDispatchName() {
  return ActiveKernelDispatch() == KernelDispatch::kAvx2 ? "avx2" : "scalar";
}

std::string KernelCpuFeaturesMeta() {
  std::string meta = "avx2_supported=";
  meta += CpuHasAvx2() ? '1' : '0';
  meta += " avx2_compiled=";
  meta += KernelAvx2Compiled() ? '1' : '0';
  meta += " dispatch=";
  meta += KernelDispatchName();
  return meta;
}

size_t GallopLowerBound(const NodeId* data, size_t n, size_t from, NodeId x) {
  if (from >= n || data[from] >= x) return from;
  // data[lo] < x holds throughout; double the step until the window
  // [lo + 1, hi) brackets the answer.
  size_t lo = from;
  size_t step = 1;
  while (lo + step < n && data[lo + step] < x) {
    lo += step;
    step <<= 1;
  }
  const size_t hi = std::min(n, lo + step);
  ++lo;
  return lo + BranchlessLowerBound(data + lo, hi - lo, x);
}

bool SpanContains(std::span<const NodeId> span, NodeId value) {
  const size_t i = BranchlessLowerBound(span.data(), span.size(), value);
  return i < span.size() && span[i] == value;
}

size_t IntersectSortedScalar(std::span<const NodeId> a,
                             std::span<const NodeId> b, NodeId* out) {
  if (a.empty() || b.empty()) return 0;
  const std::span<const NodeId> small = a.size() <= b.size() ? a : b;
  const std::span<const NodeId> large = a.size() <= b.size() ? b : a;
  if (large.size() >= kGallopRatio * small.size()) {
    return GallopIntersect(small, large, out);
  }
  return MergeIntersect(a.data(), a.size(), b.data(), b.size(), out);
}

size_t IntersectSorted(std::span<const NodeId> a, std::span<const NodeId> b,
                       NodeId* out) {
  if (a.empty() || b.empty()) return 0;
  // The gallop crossover is dispatch-independent: probing beats any merge,
  // vectorized or not, once the size ratio is extreme.
  const std::span<const NodeId> small = a.size() <= b.size() ? a : b;
  const std::span<const NodeId> large = a.size() <= b.size() ? b : a;
  if (large.size() >= kGallopRatio * small.size()) {
    return GallopIntersect(small, large, out);
  }
#if defined(WIREFRAME_HAVE_AVX2_KERNELS)
  if (ActiveKernelDispatch() == KernelDispatch::kAvx2) {
    return internal::IntersectSortedAvx2(a.data(), a.size(), b.data(),
                                         b.size(), out);
  }
#endif
  return MergeIntersect(a.data(), a.size(), b.data(), b.size(), out);
}

void ContainsManySorted(std::span<const NodeId> span,
                        std::span<const NodeId> probes, uint8_t* hits) {
  size_t pos = 0;
  NodeId prev = 0;
  for (size_t i = 0; i < probes.size(); ++i) {
    const NodeId x = probes[i];
    // An out-of-order probe restarts the walk (correct, just slower);
    // sorted batches never take this branch.
    if (x < prev) pos = 0;
    pos = GallopLowerBound(span.data(), span.size(), pos, x);
    hits[i] = pos < span.size() && span[pos] == x ? 1 : 0;
    prev = x;
  }
}

}  // namespace wireframe
