#ifndef WIREFRAME_UTIL_STATUS_H_
#define WIREFRAME_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace wireframe {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTimedOut,
  kIOError,
  kParseError,
  kInternal,
  kNotImplemented,
  kCancelled,
  kResourceExhausted,
  // Transport-layer codes (src/net). Appended so existing numeric
  // values stay stable on the wire.
  kConnectionRefused,
  kConnectionReset,
  kFrameCorrupt,
  kOverloaded,
  kRetryExhausted,
  kStreamBroken,
};

/// Returns the canonical name for a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ConnectionRefused(std::string msg) {
    return Status(StatusCode::kConnectionRefused, std::move(msg));
  }
  static Status ConnectionReset(std::string msg) {
    return Status(StatusCode::kConnectionReset, std::move(msg));
  }
  static Status FrameCorrupt(std::string msg) {
    return Status(StatusCode::kFrameCorrupt, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status RetryExhausted(std::string msg) {
    return Status(StatusCode::kRetryExhausted, std::move(msg));
  }
  static Status StreamBroken(std::string msg) {
    return Status(StatusCode::kStreamBroken, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsConnectionRefused() const {
    return code_ == StatusCode::kConnectionRefused;
  }
  bool IsConnectionReset() const {
    return code_ == StatusCode::kConnectionReset;
  }
  bool IsFrameCorrupt() const { return code_ == StatusCode::kFrameCorrupt; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsRetryExhausted() const {
    return code_ == StatusCode::kRetryExhausted;
  }
  bool IsStreamBroken() const { return code_ == StatusCode::kStreamBroken; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define WF_RETURN_NOT_OK(expr)                    \
  do {                                            \
    ::wireframe::Status _st = (expr);             \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_STATUS_H_
