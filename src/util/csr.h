#ifndef WIREFRAME_UTIL_CSR_H_
#define WIREFRAME_UTIL_CSR_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/logging.h"
#include "util/span_kernels.h"

namespace wireframe {

/// One direction of a frozen pair set: sorted distinct keys, prefix
/// offsets, and sorted neighbor spans — the same shape as
/// TripleStore::PredIndex, factored out so the AnswerGraph's frozen form
/// and future read-optimized indexes share it.
///
/// Key lookup is O(1) when the key space is compact: node ids are dense
/// dictionary ids, so whenever max_key is within a small factor of the
/// distinct-key count, Build additionally materializes a direct-indexed
/// offset table (one uint32 per id in [0, max_key]) and Neighbors() is a
/// single load — the frozen read path must not pay more per lookup than
/// the hash probe it replaces. Sparse key sets (a few pairs over a huge
/// id space) skip the table and fall back to binary search over the
/// sorted keys. The choice depends only on the content, never on thread
/// count or insertion order.
///
/// Immutable after Build: every accessor is const and allocation-free, so
/// any number of workers may scan spans concurrently without
/// synchronization.
class Csr {
 public:
  Csr() = default;

  /// Builds from an unordered pair list (key, neighbor). `pairs` is taken
  /// by value and sorted in place; duplicates are kept (callers that need
  /// set semantics deduplicate first — PairSet never holds duplicates).
  static Csr Build(std::vector<std::pair<NodeId, NodeId>> pairs) {
    std::sort(pairs.begin(), pairs.end());
    return BuildFromSorted(
        pairs.size(), [&pairs](size_t i) { return pairs[i]; });
  }

  /// Builds from a sequence already sorted by (key, neighbor) — no copy,
  /// no re-sort. `get(i)` returns the i-th pair; sortedness is asserted
  /// in debug builds. This is the path for sources that maintain sorted
  /// order themselves (TripleStoreBuilder's (p,s,o)-sorted slices).
  template <typename Get>
  static Csr BuildFromSorted(size_t n, Get&& get) {
    WF_CHECK(n <= UINT32_MAX)
        << "Csr offsets are uint32; entry count overflows";
    Csr csr;
    csr.neighbors_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const std::pair<NodeId, NodeId> entry = get(i);
      WF_DCHECK(i == 0 || get(i - 1) <= entry) << "input not sorted";
      const auto& [key, value] = entry;
      if (csr.nodes_.empty() || csr.nodes_.back() != key) {
        csr.nodes_.push_back(key);
        csr.offsets_.push_back(static_cast<uint32_t>(csr.neighbors_.size()));
      }
      csr.neighbors_.push_back(value);
    }
    csr.offsets_.push_back(static_cast<uint32_t>(csr.neighbors_.size()));

    // Direct index when the id space is compact enough that one uint32
    // per id costs at most ~kDenseSlack slots per distinct key.
    if (!csr.nodes_.empty()) {
      const uint64_t span = static_cast<uint64_t>(csr.nodes_.back()) + 1;
      if (span <= kDenseSlack * csr.nodes_.size() + kDenseFloor) {
        csr.dense_offsets_.assign(span + 1, 0);
        for (size_t i = 0; i < csr.nodes_.size(); ++i) {
          csr.dense_offsets_[csr.nodes_[i]] = csr.offsets_[i];
          csr.dense_offsets_[csr.nodes_[i] + 1] = csr.offsets_[i + 1];
        }
        // Fill the gaps: an absent key gets an empty span at the end of
        // its predecessor's.
        for (size_t k = 1; k < csr.dense_offsets_.size(); ++k) {
          csr.dense_offsets_[k] =
              std::max(csr.dense_offsets_[k], csr.dense_offsets_[k - 1]);
        }
      }
    }
    return csr;
  }

  /// Distinct keys, ascending.
  std::span<const NodeId> Nodes() const { return nodes_; }

  /// Total (key, neighbor) entries.
  uint64_t NumEntries() const { return neighbors_.size(); }

  /// Sorted neighbor span of `key`; empty if the key is absent.
  std::span<const NodeId> Neighbors(NodeId key) const {
    if (!dense_offsets_.empty()) {
      if (static_cast<size_t>(key) + 1 >= dense_offsets_.size()) return {};
      const uint32_t begin = dense_offsets_[key];
      return std::span<const NodeId>(neighbors_)
          .subspan(begin, dense_offsets_[key + 1] - begin);
    }
    const size_t i = IndexOf(key);
    if (i == kNotFound) return {};
    return std::span<const NodeId>(neighbors_)
        .subspan(offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  /// Neighbor span of the i-th distinct key (for dense scans that walk
  /// Nodes() positionally instead of probing by key).
  std::span<const NodeId> NeighborsAt(size_t i) const {
    WF_DCHECK(i < nodes_.size());
    return std::span<const NodeId>(neighbors_)
        .subspan(offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  /// True iff (key, value) is present: one offset load (or key binary
  /// search on sparse sets) plus a branch-free binary search over the
  /// short sorted span — no hashing.
  bool Contains(NodeId key, NodeId value) const {
    return SpanContains(Neighbors(key), value);
  }

  /// Batched membership: hits[i] = 1 iff (keys[i], values[i]) is present.
  /// The batch entry point for probe-heavy loops (chord prefilters over a
  /// root list): the next rows' offsets and span starts are software-
  /// prefetched while the current probe resolves, and a run of equal keys
  /// with ascending values walks its span monotonically (one galloping
  /// step per probe) instead of binary-searching from scratch. Any
  /// key/value order is correct; sorted batches are fastest.
  void ContainsMany(std::span<const NodeId> keys,
                    std::span<const NodeId> values, uint8_t* hits) const {
    WF_DCHECK(keys.size() == values.size());
    const size_t n = keys.size();
    size_t i = 0;
    while (i < n) {
      if (!dense_offsets_.empty()) {
        // Two-stage prefetch pipeline: offset rows resolve well ahead,
        // span starts (which need the offset loaded) closer in.
        if (i + kProbeOffsetAhead < n &&
            static_cast<size_t>(keys[i + kProbeOffsetAhead]) + 1 <
                dense_offsets_.size()) {
          PrefetchRead(&dense_offsets_[keys[i + kProbeOffsetAhead]]);
        }
        if (i + kProbeSpanAhead < n &&
            static_cast<size_t>(keys[i + kProbeSpanAhead]) + 1 <
                dense_offsets_.size()) {
          PrefetchRead(&neighbors_[dense_offsets_[keys[i + kProbeSpanAhead]]]);
        }
      }
      const NodeId key = keys[i];
      size_t run = i + 1;
      while (run < n && keys[run] == key) ++run;
      const std::span<const NodeId> span = Neighbors(key);
      ContainsManySorted(span, values.subspan(i, run - i), hits + i);
      i = run;
    }
  }

  /// Intersects key's neighbor span with a sorted duplicate-free id list
  /// into `out` (capacity >= min(span, other) + kIntersectPad). Returns
  /// the match count — the frozen form of "extend binding, then filter by
  /// chord" collapsed into one kernel call.
  size_t IntersectNeighbors(NodeId key, std::span<const NodeId> other,
                            NodeId* out) const {
    return IntersectSorted(Neighbors(key), other, out);
  }

  /// Heap bytes of the built arrays (size-based, capacity-insensitive).
  /// Byte quotas — the runtime's answer-graph cache — account with this.
  uint64_t ByteSize() const {
    return (nodes_.size() + neighbors_.size()) * sizeof(NodeId) +
           (offsets_.size() + dense_offsets_.size()) * sizeof(uint32_t);
  }

  /// Pulls the start of the i-th span toward the cache — the span-gather
  /// prefetch for dense positional scans: while span i is processed,
  /// issue PrefetchSpan(i + d) for a small lookahead d so the walk never
  /// stalls on the first line of the next span.
  void PrefetchSpan(size_t i) const {
    WF_DCHECK(i < nodes_.size());
    PrefetchRead(&neighbors_[offsets_[i]]);
  }

  /// Invokes fn(key, neighbor) for every entry, key-major ascending,
  /// prefetching a few spans ahead (per-span fn work defeats the
  /// hardware prefetcher on short scattered spans).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (i + kScanSpanAhead < nodes_.size()) {
        PrefetchSpan(i + kScanSpanAhead);
      }
      const NodeId key = nodes_[i];
      for (uint32_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
        fn(key, neighbors_[k]);
      }
    }
  }

 private:
  /// Direct-index eligibility: max_key + 1 must not exceed
  /// kDenseSlack * distinct_keys + kDenseFloor.
  static constexpr uint64_t kDenseSlack = 8;
  static constexpr uint64_t kDenseFloor = 1024;

  static constexpr size_t kNotFound = ~size_t{0};

  /// Prefetch distances of the batched-probe and positional-scan loops
  /// (rows ahead for offset rows / span starts, spans ahead for ForEach).
  static constexpr size_t kProbeOffsetAhead = 8;
  static constexpr size_t kProbeSpanAhead = 2;
  static constexpr size_t kScanSpanAhead = 4;

  /// Position of `key` in nodes_, or kNotFound.
  size_t IndexOf(NodeId key) const {
    const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), key);
    if (it == nodes_.end() || *it != key) return kNotFound;
    return static_cast<size_t>(it - nodes_.begin());
  }

  std::vector<NodeId> nodes_;
  std::vector<uint32_t> offsets_;  // nodes_.size() + 1 once built
  std::vector<NodeId> neighbors_;
  /// Direct-indexed spans (dense key spaces only): key k's neighbors are
  /// neighbors_[dense_offsets_[k], dense_offsets_[k+1]). Empty when the
  /// key space is too sparse.
  std::vector<uint32_t> dense_offsets_;
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_CSR_H_
