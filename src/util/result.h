#ifndef WIREFRAME_UTIL_RESULT_H_
#define WIREFRAME_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace wireframe {

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result. Accessing the value of an error result aborts in debug
/// builds; callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    WF_DCHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    WF_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    WF_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    WF_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define WF_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  auto WF_CONCAT_(result_, __LINE__) = (rexpr);          \
  if (!WF_CONCAT_(result_, __LINE__).ok())               \
    return WF_CONCAT_(result_, __LINE__).status();       \
  lhs = std::move(WF_CONCAT_(result_, __LINE__)).value()

#define WF_CONCAT_INNER_(a, b) a##b
#define WF_CONCAT_(a, b) WF_CONCAT_INNER_(a, b)

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_RESULT_H_
