#ifndef WIREFRAME_UTIL_INTERRUPT_H_
#define WIREFRAME_UTIL_INTERRUPT_H_

#include <atomic>
#include <cstdint>

#include "util/status.h"
#include "util/timer.h"

namespace wireframe {

/// Amortized cooperative-interrupt probe shared by the serial engine
/// loops: Hit() pays one relaxed cancel load plus one clock read every
/// `stride` calls (cancellation is checked first — it is the cheaper
/// load and the stronger signal) and is sticky once triggered, so loops
/// that cannot break out of a visitor callback stay cheap after the
/// interrupt. The parallel loops get the same checks per morsel from
/// ParallelForOptions{deadline, cancel}.
class InterruptProbe {
 public:
  /// Default: never interrupts (no deadline, no cancel flag).
  InterruptProbe() = default;
  /// `cancel` (borrowed, may be null) is polled with relaxed loads.
  explicit InterruptProbe(const Deadline& deadline,
                          const std::atomic<bool>* cancel = nullptr,
                          uint32_t stride = 4096)
      : deadline_(deadline), cancel_(cancel), stride_(stride) {}

  /// True once the run should stop (cancelled or past the deadline).
  bool Hit() {
    if (triggered_) return true;
    if (++tick_ % stride_ != 0) return false;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      cancelled_ = true;
      triggered_ = true;
    } else if (deadline_.Expired()) {
      triggered_ = true;
    }
    return triggered_;
  }

  bool triggered() const { return triggered_; }
  bool cancelled() const { return cancelled_; }
  bool timed_out() const { return triggered_ && !cancelled_; }

  /// Maps a triggered probe to its status (Cancelled beats TimedOut);
  /// OK when the probe never triggered.
  Status StatusFor(const char* what) const {
    if (!triggered_) return Status::OK();
    return cancelled_ ? Status::Cancelled(what) : Status::TimedOut(what);
  }

  /// Unamortized probe for barrier points (level ends, join barriers):
  /// polls cancel + deadline right now regardless of the stride and
  /// returns the mapped status. Pairs with WF_RETURN_NOT_OK.
  Status CheckNow(const char* what) {
    if (!triggered_) {
      if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
        cancelled_ = true;
        triggered_ = true;
      } else if (deadline_.Expired()) {
        triggered_ = true;
      }
    }
    return StatusFor(what);
  }

 private:
  Deadline deadline_;
  const std::atomic<bool>* cancel_ = nullptr;
  uint32_t stride_ = 4096;
  uint32_t tick_ = 0;
  bool triggered_ = false;
  bool cancelled_ = false;
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_INTERRUPT_H_
