#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace wireframe {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  } else if (seconds < 10) {
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", seconds);
  }
  return buf;
}

std::string TablePrinter::FormatCount(uint64_t n) {
  // Digit-grouped: 2931986 -> "2,931,986".
  std::string digits = std::to_string(n);
  std::string out;
  int pos = static_cast<int>(digits.size());
  for (char c : digits) {
    out += c;
    --pos;
    if (pos > 0 && pos % 3 == 0) out += ',';
  }
  return out;
}

std::string TablePrinter::Timeout() { return "*"; }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      os << " " << row[i];
      for (size_t k = row[i].size(); k < widths[i]; ++k) os << ' ';
      os << " |";
    }
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (size_t w : widths) {
      for (size_t k = 0; k < w + 2; ++k) os << '-';
      os << "+";
    }
    os << "\n";
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      bool quote = row[i].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[i];
      if (quote) os << '"';
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace wireframe
