#ifndef WIREFRAME_UTIL_RANDOM_H_
#define WIREFRAME_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace wireframe {

/// Deterministic, fast PRNG (xoshiro256**). All synthetic data in the
/// repository is generated from explicit seeds so experiments reproduce
/// bit-for-bit across runs and machines.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

/// Samples from a Zipf(s, n) distribution over {0, .., n-1} using the
/// inverted-CDF table method. Rank 0 is the most popular item. Used to give
/// synthetic predicates and entities realistic skew (popular actors appear
/// in many movies, etc.).
class ZipfSampler {
 public:
  /// n: universe size; s: skew exponent (s=0 is uniform; YAGO-like data is
  /// well modeled by s in [0.5, 1.1]).
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_RANDOM_H_
