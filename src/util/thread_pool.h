#ifndef WIREFRAME_UTIL_THREAD_POOL_H_
#define WIREFRAME_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/timer.h"

namespace wireframe {

/// Tuning knobs of one ParallelFor call.
struct ParallelForOptions {
  /// Indices are handed out in contiguous chunks of this size; every chunk
  /// starts at a multiple of it, so chunk boundaries — and therefore any
  /// per-morsel shard layout — depend only on `n` and the morsel size,
  /// never on the number of threads or scheduling order.
  uint64_t morsel_size = 1024;
  /// Checked between morsels (amortized over the morsel's items); an
  /// expired deadline stops dispatch and ParallelFor returns TimedOut.
  Deadline deadline;
  /// Optional cooperative early-stop: when some worker sets it, no further
  /// morsels are dispatched and ParallelFor returns OK (mirrors a sink
  /// declining more rows — a result, not an error). May be null.
  std::atomic<bool>* stop = nullptr;
  /// Optional cooperative cancellation (a query runtime revoking the
  /// task-group): when set, no further morsels are dispatched and
  /// ParallelFor returns Status::Cancelled. Checked between morsels, like
  /// the deadline. May be null.
  std::atomic<bool>* cancel = nullptr;
  /// Scheduler share of this task-group relative to the other groups in
  /// flight on the pool (stride-weighted round-robin: a weight-4 group is
  /// handed 4x the morsels of a concurrent weight-1 group, service-time
  /// permitting). 0 is clamped to 1. Weights only shape how the spawned
  /// workers divide themselves between groups; every group additionally
  /// keeps its calling thread, so even a weight-1 group next to a huge
  /// weight never starves (and the stride math guarantees workers still
  /// visit it, just proportionally rarely).
  uint32_t weight = 1;
};

/// A fixed pool of worker threads driving morsel-granular parallel loops
/// for any number of concurrent callers.
///
/// The only primitive is ParallelFor, which carves [0, n) into morsels
/// claimed off a per-call atomic counter. Each ParallelFor registers one
/// task-group with the pool's scheduler; workers pick runnable groups by
/// stride-weighted round-robin (each group advances a virtual-time pass
/// by kStrideScale/weight per pick; the dispatchable group with the
/// smallest pass goes next) and run ONE morsel before re-picking, so
/// loops submitted by different threads (different queries of a shared
/// runtime) interleave at morsel granularity instead of serializing
/// behind each other — and a high-weight group (a latency service class)
/// soaks up proportionally more worker picks than a batch group without
/// ever starving it. The calling thread participates as worker 0 of its
/// own group only, so ThreadPool(n) spawns n-1 threads and ThreadPool(1)
/// spawns none and runs everything inline on the caller — the serial
/// path stays the serial path. The pool is not re-entrant from inside a
/// body, but ParallelFor may be called concurrently from any number of
/// external threads.
///
/// Worker-id contract: `worker` is in [0, num_threads()) and is unique
/// among the threads concurrently executing one task-group (spawned
/// worker i always reports id i; the group's caller reports 0), so bodies
/// may index per-worker state with it exactly as before.
///
/// Error model: the first exception thrown by a body is captured, the
/// group's dispatch is aborted, and the exception is rethrown on the
/// calling thread once the group has quiesced. Deadline expiry surfaces
/// as Status::TimedOut and cancellation as Status::Cancelled the same
/// way. Either way no body of the group is left running when ParallelFor
/// returns, so per-morsel shards are safe to merge immediately. Other
/// groups are unaffected.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller is the extra worker).
  /// `num_threads` must be >= 1; use ResolveThreads to map a user-facing
  /// thread count (where 0 means "all cores") to a concrete value.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maps an EngineOptions-style thread request to a concrete count:
  /// 0 means hardware concurrency (at least 1), anything else is taken
  /// as-is.
  static uint32_t ResolveThreads(uint32_t requested);

  uint32_t num_threads() const { return num_threads_; }

  /// Invokes body(worker, begin, end) for consecutive morsels covering
  /// [0, n), in parallel across the pool. Blocks until every dispatched
  /// morsel finished. Returns TimedOut if the deadline expired (Cancelled
  /// if the cancel flag fired) before all morsels ran; rethrows the first
  /// body exception. Safe to call from multiple threads concurrently;
  /// each call is an independent, fairly-scheduled task-group.
  Status ParallelFor(
      uint64_t n, const ParallelForOptions& options,
      const std::function<void(uint32_t worker, uint64_t begin, uint64_t end)>&
          body);

 private:
  /// State of one ParallelFor task-group, shared by its caller and the
  /// workers. Lives on the caller's stack; the caller removes it from the
  /// scheduler and waits for quiescence before it dies.
  struct Job {
    const std::function<void(uint32_t, uint64_t, uint64_t)>* body = nullptr;
    uint64_t n = 0;
    uint64_t morsel = 1;
    Deadline deadline;
    std::atomic<bool>* external_stop = nullptr;
    std::atomic<bool>* external_cancel = nullptr;
    /// Stride scheduling state, guarded by the pool mutex. `stride` is
    /// kStrideScale / weight (>= 1, so `pass` always advances and no
    /// group can pin the minimum forever); `pass` starts at the pool's
    /// virtual time when the group registers, so a newcomer neither jumps
    /// the queue nor inherits a debt it never accrued.
    uint64_t stride = 0;
    uint64_t pass = 0;
    std::atomic<uint64_t> next{0};
    /// Dispatch fence: once set no new morsel of this group is claimed.
    std::atomic<bool> abort{false};
    std::atomic<bool> timed_out{false};
    std::atomic<bool> cancelled{false};
    /// Spawned workers currently inside (or committed to entering) this
    /// group. Modified under the pool mutex; the caller's own morsel loop
    /// is not counted (the caller knows when it is done).
    uint32_t in_flight = 0;
    std::exception_ptr exception;  // guarded by the pool mutex
  };

  void WorkerLoop(uint32_t worker_id);
  /// Claims and runs morsels of `job` on the calling thread until the
  /// range, the deadline, a stop/cancel flag, or an exception ends the
  /// group's dispatch (old single-group behavior; used by the caller).
  void RunMorsels(Job& job, uint32_t worker_id);
  /// Runs one morsel of `job`, honoring the group's stop conditions.
  /// Returns false once the group has nothing left to dispatch.
  bool RunOneMorsel(Job& job, uint32_t worker_id);
  /// True when a spawned worker could claim a morsel of `job` right now.
  static bool Dispatchable(const Job& job);
  /// True when no morsel of `job` will run again (dispatch fenced or
  /// exhausted, and no spawned worker inside).
  static bool Quiesced(const Job& job);

  const uint32_t num_threads_;
  std::vector<std::thread> workers_;

  /// Pass increment of a weight-1 group per worker pick; a weight-w group
  /// advances by kStrideScale / w, so relative pick rates match relative
  /// weights to ~1/kStrideScale precision.
  static constexpr uint64_t kStrideScale = 1 << 20;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for runnable groups
  std::condition_variable done_cv_;   // callers wait for group quiescence
  std::vector<Job*> jobs_;            // registered, not-yet-removed groups
  size_t rr_cursor_ = 0;              // tie-break rotation for equal passes
  /// Pass of the most recently picked group: the scheduler's virtual
  /// time. New groups start here (see Job::pass).
  uint64_t virtual_time_ = 0;
  /// jobs_.size() mirrored relaxed-atomically: lets a worker stay on its
  /// current group without retaking mu_ while no other group exists (the
  /// dominant single-query case keeps the old lock-free dispatch; a
  /// stale read costs at most one extra morsel before rotation).
  std::atomic<size_t> num_jobs_{0};
  bool shutdown_ = false;
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_THREAD_POOL_H_
