#ifndef WIREFRAME_UTIL_THREAD_POOL_H_
#define WIREFRAME_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/timer.h"

namespace wireframe {

/// Tuning knobs of one ParallelFor call.
struct ParallelForOptions {
  /// Indices are handed out in contiguous chunks of this size; every chunk
  /// starts at a multiple of it, so chunk boundaries — and therefore any
  /// per-morsel shard layout — depend only on `n` and the morsel size,
  /// never on the number of threads or scheduling order.
  uint64_t morsel_size = 1024;
  /// Checked between morsels (amortized over the morsel's items); an
  /// expired deadline stops dispatch and ParallelFor returns TimedOut.
  Deadline deadline;
  /// Optional cooperative early-stop: when some worker sets it, no further
  /// morsels are dispatched and ParallelFor returns OK (mirrors a sink
  /// declining more rows — a result, not an error). May be null.
  std::atomic<bool>* stop = nullptr;
};

/// A fixed pool of worker threads driving morsel-granular parallel loops.
///
/// There is no task queue and no work stealing: the only primitive is
/// ParallelFor, which carves [0, n) into morsels claimed off a shared
/// atomic counter. The calling thread participates as worker 0, so
/// ThreadPool(n) spawns n-1 threads and ThreadPool(1) spawns none and runs
/// everything inline on the caller — the serial path stays the serial
/// path. One ParallelFor runs at a time per pool (callers of different
/// pools are independent); the pool is not re-entrant from inside a body.
///
/// Error model: the first exception thrown by a body is captured, dispatch
/// is aborted, and the exception is rethrown on the calling thread once
/// every worker has quiesced. Deadline expiry surfaces as Status::TimedOut
/// the same way. Either way no body is left running when ParallelFor
/// returns, so per-morsel shards are safe to merge immediately.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller is the extra worker).
  /// `num_threads` must be >= 1; use ResolveThreads to map a user-facing
  /// thread count (where 0 means "all cores") to a concrete value.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maps an EngineOptions-style thread request to a concrete count:
  /// 0 means hardware concurrency (at least 1), anything else is taken
  /// as-is.
  static uint32_t ResolveThreads(uint32_t requested);

  uint32_t num_threads() const { return num_threads_; }

  /// Invokes body(worker, begin, end) for consecutive morsels covering
  /// [0, n), in parallel across the pool. `worker` is in [0,
  /// num_threads()): stable per thread within one call, so bodies may
  /// index per-worker state with it. Blocks until every dispatched morsel
  /// finished. Returns TimedOut if the deadline expired before all
  /// morsels ran; rethrows the first body exception.
  Status ParallelFor(
      uint64_t n, const ParallelForOptions& options,
      const std::function<void(uint32_t worker, uint64_t begin, uint64_t end)>&
          body);

 private:
  /// State of one ParallelFor, shared by the caller and the workers. Lives
  /// on the caller's stack; workers are quiesced before it dies.
  struct Job {
    const std::function<void(uint32_t, uint64_t, uint64_t)>* body = nullptr;
    uint64_t n = 0;
    uint64_t morsel = 1;
    Deadline deadline;
    std::atomic<bool>* external_stop = nullptr;
    std::atomic<uint64_t> next{0};
    std::atomic<bool> abort{false};
    std::atomic<bool> timed_out{false};
    std::exception_ptr exception;  // guarded by the pool mutex
  };

  void WorkerLoop(uint32_t worker_id);
  /// Claims and runs morsels until the range, the deadline, a stop flag,
  /// or an exception ends the job.
  void RunMorsels(Job& job, uint32_t worker_id);

  const uint32_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new epoch
  std::condition_variable done_cv_;   // caller waits for quiescence
  uint64_t epoch_ = 0;                // bumped once per ParallelFor
  uint32_t unfinished_workers_ = 0;   // workers still inside the epoch
  Job* job_ = nullptr;
  bool shutdown_ = false;
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_THREAD_POOL_H_
