#ifndef WIREFRAME_UTIL_HASH_H_
#define WIREFRAME_UTIL_HASH_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "util/common.h"

namespace wireframe {

/// Mixes a 64-bit value (finalizer of MurmurHash3). Used to hash node-id
/// pairs into flat hash sets without clustering on dense ids.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Packs a node pair into one 64-bit key.
inline uint64_t PackPair(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

/// Unpacks PackPair.
inline std::pair<NodeId, NodeId> UnpackPair(uint64_t key) {
  return {static_cast<NodeId>(key >> 32),
          static_cast<NodeId>(key & 0xffffffffULL)};
}

/// Hash functor for packed pairs / plain 64-bit keys in unordered maps.
struct Hash64 {
  size_t operator()(uint64_t x) const { return static_cast<size_t>(Mix64(x)); }
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_HASH_H_
