#ifndef WIREFRAME_UTIL_SPAN_KERNELS_H_
#define WIREFRAME_UTIL_SPAN_KERNELS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/common.h"

namespace wireframe {

/// Kernels over sorted NodeId spans — the primitives the frozen-CSR read
/// path (util/csr.h) is built from. Phase 2, chord filtering, and bushy
/// leaf merges spend most of their cycles in exactly three operations:
/// membership probe, batched membership probe, and sorted-set
/// intersection. This layer gives each one a tuned implementation:
///
///   * Intersection is size-ratio-adaptive: a linear merge for
///     near-equal spans (vectorized with AVX2 when available), a
///     galloping binary probe of the larger side once one span is
///     >= kGallopRatio times smaller — the crossover where probing
///     O(small * log large) beats scanning O(small + large).
///   * The AVX2 merge compares an 8-lane block of each side against all
///     8 rotations of the other and compacts the matched lanes with a
///     shuffle table — no per-element branches, so skewed selectivities
///     do not stall the pipeline the way the scalar merge's mispredicted
///     advance branches do.
///   * Dispatch is resolved once per process: compile-time (the AVX2
///     translation unit exists only when the toolchain supports -mavx2
///     and WIREFRAME_DISABLE_AVX2 is OFF) and run-time (cpuid), with a
///     scalar override for tests and benchmarks. Scalar and AVX2 paths
///     return byte-identical output on sorted distinct input, so the
///     choice is invisible to results.
///
/// All kernels require their input spans to be sorted ascending and
/// duplicate-free — exactly what Csr stores. Results on inputs violating
/// that are unspecified (the AVX2 merge, for instance, may emit a
/// duplicate match twice).

/// Which intersection body IntersectSorted runs.
enum class KernelDispatch : uint8_t { kScalar = 0, kAvx2 = 1 };

/// True iff this binary contains the AVX2 kernel TU (toolchain supported
/// -mavx2 and WIREFRAME_DISABLE_AVX2 was OFF at configure time).
bool KernelAvx2Compiled();

/// True iff the running CPU reports AVX2 (always false off x86).
bool CpuHasAvx2();

/// Pins IntersectSorted to the scalar body regardless of CPU support
/// (tests and the bench baselines). Setting the WIREFRAME_FORCE_SCALAR_KERNELS
/// environment variable (to anything but "0") before first use has the
/// same effect and cannot be un-forced at run time.
void ForceScalarKernels(bool force);
bool ScalarKernelsForced();

/// The dispatch the next kernel call will take.
KernelDispatch ActiveKernelDispatch();

/// "scalar" or "avx2" — bench provenance and logs.
const char* KernelDispatchName();

/// One-line provenance string for bench JSON meta
/// ("avx2_supported=<0|1> avx2_compiled=<0|1> dispatch=<name>"): two
/// recordings whose strings differ were not measuring the same code.
std::string KernelCpuFeaturesMeta();

/// Writable slots IntersectSorted's output buffer must have beyond
/// min(|a|, |b|): the AVX2 body compacts matches with full 8-lane stores,
/// so the final store may touch up to 7 slots past the last real match.
inline constexpr size_t kIntersectPad = 8;

/// Size ratio at which intersection switches from merging to galloping
/// probes of the larger side.
inline constexpr size_t kGallopRatio = 8;

/// First index i >= from with data[i] >= x, or n if none, found by
/// exponential probing from `from` followed by binary search inside the
/// bracketed window: O(log distance) instead of O(log n), which is what
/// makes a monotone batched probe cheaper than independent binary
/// searches.
size_t GallopLowerBound(const NodeId* data, size_t n, size_t from, NodeId x);

/// True iff sorted `span` contains `value` (branch-free binary search).
bool SpanContains(std::span<const NodeId> span, NodeId value);

/// Intersects two sorted duplicate-free spans into `out` (ascending).
/// Returns the match count. `out` must have capacity
/// min(a.size(), b.size()) + kIntersectPad and must not alias the inputs.
size_t IntersectSorted(std::span<const NodeId> a, std::span<const NodeId> b,
                       NodeId* out);

/// The portable reference body of IntersectSorted (adaptive
/// gallop/merge, no SIMD). Same contract; always available — every
/// rewired call site keeps this as its serial reference path and the
/// property tests certify the dispatched body against it.
size_t IntersectSortedScalar(std::span<const NodeId> a,
                             std::span<const NodeId> b, NodeId* out);

/// Batched membership: hits[i] = 1 iff `span` contains probes[i], else 0.
/// `probes` should be sorted ascending — the span is then walked
/// monotonically with one galloping step per probe instead of a full
/// binary search each. Unsorted probes stay correct (the walk restarts)
/// but lose the monotonicity win.
void ContainsManySorted(std::span<const NodeId> span,
                        std::span<const NodeId> probes, uint8_t* hits);

/// Best-effort read prefetch (no-op where unsupported). The span-gather
/// loops use it to pull the next row's offsets/neighbors while the
/// current row is processed.
inline void PrefetchRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/1);
#else
  (void)address;
#endif
}

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_SPAN_KERNELS_H_
