#ifndef WIREFRAME_UTIL_SPAN_KERNELS_INTERNAL_H_
#define WIREFRAME_UTIL_SPAN_KERNELS_INTERNAL_H_

#include <cstddef>

#include "util/common.h"

namespace wireframe::internal {

/// AVX2 merge body of IntersectSorted, defined in span_kernels_avx2.cc —
/// the only TU compiled with -mavx2. Declared unconditionally so the
/// dispatcher TU stays free of target-specific code; only callable when
/// WIREFRAME_HAVE_AVX2_KERNELS is defined and the CPU reports AVX2.
/// Contract as IntersectSorted: sorted duplicate-free inputs, `out` has
/// min(na, nb) + kIntersectPad capacity.
size_t IntersectSortedAvx2(const NodeId* a, size_t na, const NodeId* b,
                           size_t nb, NodeId* out);

}  // namespace wireframe::internal

#endif  // WIREFRAME_UTIL_SPAN_KERNELS_INTERNAL_H_
