// The only translation unit compiled with -mavx2 (see
// src/util/CMakeLists.txt): keeping every AVX2 instruction behind this
// file boundary means the rest of the binary still runs on pre-AVX2
// hardware — the dispatcher in span_kernels.cc only calls in here after a
// cpuid check.

#include "util/span_kernels_internal.h"

#include <immintrin.h>

#include <cstdint>

namespace wireframe::internal {

namespace {

/// idx[m] lists the positions of m's set bits, ascending, zero-padded —
/// feeding _mm256_permutevar8x32_epi32 to left-compact the matched lanes
/// of a block. 8KB, read-only, shared by all threads.
struct ShuffleTable {
  alignas(32) uint32_t idx[256][8];
};

constexpr ShuffleTable MakeShuffleTable() {
  ShuffleTable table{};
  for (int mask = 0; mask < 256; ++mask) {
    int out = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if ((mask >> bit) & 1) table.idx[mask][out++] = bit;
    }
    for (; out < 8; ++out) table.idx[mask][out] = 0;
  }
  return table;
}

constexpr ShuffleTable kCompact = MakeShuffleTable();

/// Lane rotation by one (cross-lane), for comparing one block against all
/// alignments of the other.
const __m256i kRotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);

}  // namespace

size_t IntersectSortedAvx2(const NodeId* a, size_t na, const NodeId* b,
                           size_t nb, NodeId* out) {
  size_t i = 0;
  size_t j = 0;
  size_t k = 0;
  if (na >= 8 && nb >= 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    while (true) {
      // Match va's 8 lanes against all 8 rotations of b's block. Inputs
      // are duplicate-free, so each a-lane matches at most once and the
      // OR-accumulated equality mask marks exactly the common values.
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      __m256i rotated = vb;
      __m256i eq = _mm256_cmpeq_epi32(va, rotated);
      for (int r = 1; r < 8; ++r) {
        rotated = _mm256_permutevar8x32_epi32(rotated, kRotate1);
        eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, rotated));
      }
      const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
      // Left-compact the matched lanes and store all 8; only popcount of
      // them are real, the rest land in the caller's kIntersectPad slack.
      const __m256i compacted = _mm256_permutevar8x32_epi32(
          va, _mm256_load_si256(
                  reinterpret_cast<const __m256i*>(kCompact.idx[mask])));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), compacted);
      k += static_cast<size_t>(__builtin_popcount(
          static_cast<unsigned>(mask)));
      // Advance whichever block's max is smaller (both on a tie): every
      // element it could still match has been compared.
      const NodeId amax = a[i + 7];
      const NodeId bmax = b[j + 7];
      const bool step_a = amax <= bmax;
      const bool step_b = bmax <= amax;
      if (step_a) i += 8;
      if (step_b) j += 8;
      if (i + 8 > na || j + 8 > nb) break;
      if (step_a) {
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
    }
  }
  // Scalar merge over the tails (fewer than 8 left on some side).
  while (i < na && j < nb) {
    const NodeId av = a[i];
    const NodeId bv = b[j];
    if (av == bv) {
      out[k++] = av;
      ++i;
      ++j;
    } else if (av < bv) {
      ++i;
    } else {
      ++j;
    }
  }
  return k;
}

}  // namespace wireframe::internal
