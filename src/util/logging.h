#ifndef WIREFRAME_UTIL_LOGGING_H_
#define WIREFRAME_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace wireframe {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4
};

/// Minimum level actually emitted; default kInfo. Not thread-safe to
/// mutate concurrently with logging (set it once at startup).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// glog-style voidifier: `&` binds looser than `<<`, so the whole streamed
/// chain evaluates before being discarded as void in the ternary below.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace wireframe

#define WF_LOG(level)                                                   \
  ::wireframe::internal::LogMessage(::wireframe::LogLevel::k##level,    \
                                    __FILE__, __LINE__)

/// Unconditional invariant check; aborts with a message when violated.
/// Additional context may be streamed: WF_CHECK(x > 0) << "x=" << x;
#define WF_CHECK(cond)                          \
  (cond) ? (void)0                              \
         : ::wireframe::internal::Voidify() &   \
               WF_LOG(Fatal) << "Check failed: " #cond " "

#ifndef NDEBUG
#define WF_DCHECK(cond) WF_CHECK(cond)
#else
#define WF_DCHECK(cond) WF_CHECK(true || (cond))
#endif

#endif  // WIREFRAME_UTIL_LOGGING_H_
