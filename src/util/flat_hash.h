#ifndef WIREFRAME_UTIL_FLAT_HASH_H_
#define WIREFRAME_UTIL_FLAT_HASH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/hash.h"
#include "util/logging.h"

namespace wireframe {

/// Open-addressing (linear probing) hash set of packed 64-bit pair keys.
/// Purpose-built for PairSet's live-pair index, which std::unordered_set
/// made the hottest spot of answer-graph generation: one flat array, no
/// per-node allocation, tombstone deletion (burnback deletes in bulk and
/// never re-inserts, so tombstone accumulation is bounded by inserts).
class PairKeySet {
 public:
  PairKeySet() { Rehash(16); }

  /// Inserts `key`; returns false if already present.
  bool Insert(uint64_t key) {
    if ((size_ + tombstones_ + 1) * 8 >= capacity() * 7) {
      Rehash(capacity() * 2);
    }
    // Inline probe that additionally remembers the first tombstone
    // passed: after confirming absence the tombstone slot is reused.
    // Kept local to Insert (not a side effect of Probe) so the const
    // read paths stay pure — Contains runs concurrently from parallel
    // phase-2 workers.
    const size_t mask = capacity() - 1;
    size_t i = static_cast<size_t>(Mix64(key)) & mask;
    size_t first_tombstone = kNoSlot;
    for (;;) {
      const uint64_t slot = slots_[i];
      if (slot == key) return false;
      if (slot == kEmpty) break;
      if (slot == kTombstone && first_tombstone == kNoSlot) {
        first_tombstone = i;
      }
      i = (i + 1) & mask;
    }
    if (first_tombstone != kNoSlot) {
      i = first_tombstone;
      --tombstones_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool Contains(uint64_t key) const {
    return slots_[Probe(key)] == key;
  }

  /// Removes `key`; returns false if absent.
  bool Erase(uint64_t key) {
    const size_t i = Probe(key);
    if (slots_[i] != key) return false;
    slots_[i] = kTombstone;
    --size_;
    ++tombstones_;
    return true;
  }

  uint64_t Size() const { return size_; }

  /// Invokes fn(key) for every live key.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t slot : slots_) {
      if (slot != kEmpty && slot != kTombstone) fn(slot);
    }
  }

  void Reserve(uint64_t n) {
    size_t want = 16;
    while (want * 7 < (n + 1) * 8) want *= 2;
    if (want > capacity()) Rehash(want);
  }

 private:
  // Two reserved key values. Real keys are PackPair(u, v) with u, v valid
  // node ids; both reserved patterns use kInvalidNode components that
  // never occur in stored pairs.
  static constexpr uint64_t kEmpty = ~0ull;
  static constexpr uint64_t kTombstone = ~0ull - 1;
  static constexpr size_t kNoSlot = ~size_t{0};

  size_t capacity() const { return slots_.size(); }

  /// Returns the slot of `key` if present, else the first kEmpty slot of
  /// its probe chain. Pure — no side effects — so it is safe to call
  /// concurrently from parallel readers (Contains during phase 2).
  size_t Probe(uint64_t key) const {
    const size_t mask = capacity() - 1;
    size_t i = static_cast<size_t>(Mix64(key)) & mask;
    for (;;) {
      const uint64_t slot = slots_[i];
      if (slot == key || slot == kEmpty) return i;
      i = (i + 1) & mask;
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(new_capacity, kEmpty);
    tombstones_ = 0;
    const size_t mask = new_capacity - 1;
    for (uint64_t key : old) {
      if (key == kEmpty || key == kTombstone) continue;
      size_t i = static_cast<size_t>(Mix64(key)) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = key;
    }
  }

  std::vector<uint64_t> slots_;
  uint64_t size_ = 0;
  uint64_t tombstones_ = 0;
};

/// Open-addressing map from NodeId to V, same rationale as PairKeySet.
/// No deletion (PairSet's adjacency/count maps only shrink via Compact,
/// which rebuilds).
template <typename V>
class NodeMap {
 public:
  NodeMap() { Rehash(16); }

  /// Returns the value slot for `key`, default-constructing it if new.
  V& operator[](NodeId key) {
    if ((size_ + 1) * 8 >= capacity() * 7) Rehash(capacity() * 2);
    size_t i = Probe(key);
    if (keys_[i] != key) {
      keys_[i] = key;
      values_[i] = V();
      ++size_;
    }
    return values_[i];
  }

  /// Returns the value for `key` or nullptr.
  V* Find(NodeId key) {
    const size_t i = Probe(key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }
  const V* Find(NodeId key) const {
    const size_t i = Probe(key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }

  uint64_t Size() const { return size_; }

  /// Invokes fn(key, value&) for every entry.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], values_[i]);
    }
  }

  /// Removes every entry for which pred(key, value&) returns true.
  /// Rebuilds the table (used only by Compact).
  template <typename Pred>
  void EraseIf(Pred&& pred) {
    std::vector<NodeId> keys = std::move(keys_);
    std::vector<V> values = std::move(values_);
    size_ = 0;
    keys_.assign(keys.size(), kEmptyKey);
    values_.assign(values.size(), V());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == kEmptyKey || pred(keys[i], values[i])) continue;
      (*this)[keys[i]] = std::move(values[i]);
    }
  }

 private:
  static constexpr NodeId kEmptyKey = kInvalidNode;

  size_t capacity() const { return keys_.size(); }

  size_t Probe(NodeId key) const {
    WF_DCHECK(key != kEmptyKey);
    const size_t mask = capacity() - 1;
    size_t i = static_cast<size_t>(Mix64(key)) & mask;
    while (keys_[i] != key && keys_[i] != kEmptyKey) i = (i + 1) & mask;
    return i;
  }

  void Rehash(size_t new_capacity) {
    std::vector<NodeId> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(new_capacity, kEmptyKey);
    values_.assign(new_capacity, V());
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      size_t j = static_cast<size_t>(Mix64(old_keys[i])) & mask;
      while (keys_[j] != kEmptyKey) j = (j + 1) & mask;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }

  std::vector<NodeId> keys_;
  std::vector<V> values_;
  uint64_t size_ = 0;
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_FLAT_HASH_H_
