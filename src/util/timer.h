#ifndef WIREFRAME_UTIL_TIMER_H_
#define WIREFRAME_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace wireframe {

/// Wall-clock stopwatch with millisecond/microsecond readouts.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start_)
        .count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in time after which long-running engine work must stop and
/// report Status::TimedOut. A default-constructed Deadline never expires.
/// Engines poll Expired() on a coarse cadence (every few thousand edge
/// walks) to keep the check off the innermost loops.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Expires `seconds` from now.
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.has_deadline_ = true;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  /// Already expired (useful in tests).
  static Deadline AlreadyExpired() { return AfterSeconds(-1.0); }

  bool never_expires() const { return !has_deadline_; }

  bool Expired() const {
    return has_deadline_ && Clock::now() >= when_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_ = false;
  Clock::time_point when_{};
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_TIMER_H_
