#ifndef WIREFRAME_UTIL_COMMON_H_
#define WIREFRAME_UTIL_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace wireframe {

/// Identifier of a data-graph node (an RDF resource). Node ids are dense:
/// the dictionary assigns 0..num_nodes-1.
using NodeId = uint32_t;

/// Identifier of an edge label (an RDF predicate). Label ids are dense and
/// small (YAGO2s has 104 distinct predicates).
using LabelId = uint32_t;

/// Identifier of a query variable within one query graph (dense, small).
using VarId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
/// Sentinel for "no label".
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();
/// Sentinel for "no variable".
inline constexpr VarId kInvalidVar = std::numeric_limits<VarId>::max();

/// A directed labeled edge of the data graph: ⟨subject, predicate, object⟩.
struct Triple {
  NodeId subject = kInvalidNode;
  LabelId predicate = kInvalidLabel;
  NodeId object = kInvalidNode;

  friend bool operator==(const Triple&, const Triple&) = default;
  friend auto operator<=>(const Triple&, const Triple&) = default;
};

}  // namespace wireframe

#endif  // WIREFRAME_UTIL_COMMON_H_
