#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace wireframe {

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(std::max<uint32_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

uint32_t ThreadPool::ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

bool ThreadPool::Dispatchable(const Job& job) {
  return !job.abort.load(std::memory_order_relaxed) &&
         job.next.load(std::memory_order_relaxed) < job.n;
}

bool ThreadPool::Quiesced(const Job& job) {
  return job.in_flight == 0 &&
         (job.abort.load(std::memory_order_relaxed) ||
          job.next.load(std::memory_order_relaxed) >= job.n);
}

Status ThreadPool::ParallelFor(
    uint64_t n, const ParallelForOptions& options,
    const std::function<void(uint32_t, uint64_t, uint64_t)>& body) {
  WF_CHECK(options.morsel_size > 0) << "morsel size must be positive";
  if (n == 0) return Status::OK();

  Job job;
  job.body = &body;
  job.n = n;
  job.morsel = options.morsel_size;
  job.deadline = options.deadline;
  job.external_stop = options.stop;
  job.external_cancel = options.cancel;
  job.stride = std::max<uint64_t>(
      1, kStrideScale / std::max<uint32_t>(1, options.weight));

  // One morsel, or no workers: run inline — the exception/timeout contract
  // is identical, just without the scheduler hand-off.
  const bool shared = !workers_.empty() && n > options.morsel_size;
  if (shared) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job.pass = virtual_time_;
      jobs_.push_back(&job);
      num_jobs_.store(jobs_.size(), std::memory_order_relaxed);
    }
    work_cv_.notify_all();
  }

  RunMorsels(job, /*worker_id=*/0);

  if (shared) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return Quiesced(job); });
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
    num_jobs_.store(jobs_.size(), std::memory_order_relaxed);
    if (rr_cursor_ >= jobs_.size()) rr_cursor_ = 0;
  }

  if (job.exception != nullptr) std::rethrow_exception(job.exception);
  if (job.cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled("parallel for");
  }
  if (job.timed_out.load(std::memory_order_relaxed)) {
    return Status::TimedOut("parallel for");
  }
  return Status::OK();
}

void ThreadPool::WorkerLoop(uint32_t worker_id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      if (shutdown_) return true;
      for (const Job* j : jobs_) {
        if (Dispatchable(*j)) return true;
      }
      return false;
    });
    if (shutdown_) return;

    // Weighted pick: the dispatchable group with the smallest stride pass
    // goes next (strictly-smaller comparison while scanning from the
    // round-robin cursor, so equal-pass groups — the all-weights-equal
    // case — still rotate exactly as the old fair scheduler did). The
    // picked group's pass advances by its stride, so over time worker
    // picks divide between groups in proportion to their weights, and
    // every group keeps getting picked: no weight can park another
    // group's pass at the minimum forever.
    Job* job = nullptr;
    const size_t count = jobs_.size();
    size_t picked = 0;
    for (size_t k = 0; k < count; ++k) {
      const size_t slot = (rr_cursor_ + k) % count;
      Job* candidate = jobs_[slot];
      if (!Dispatchable(*candidate)) continue;
      if (job == nullptr || candidate->pass < job->pass) {
        job = candidate;
        picked = slot;
      }
    }
    if (job == nullptr) continue;  // raced with the last claim; re-wait
    rr_cursor_ = (picked + 1) % count;
    virtual_time_ = job->pass;
    job->pass += job->stride;

    // in_flight is raised before the lock drops, so a caller can never
    // observe its group quiesced while this worker is committed to it.
    ++job->in_flight;
    lock.unlock();
    // Fast path: while this is the only registered group, keep claiming
    // its morsels off the atomic counter without retaking the mutex —
    // single-query dispatch stays as lock-free as the old epoch design.
    // The moment another group registers (stale reads cost one morsel),
    // fall back to one-morsel-per-pick round-robin for fairness.
    while (RunOneMorsel(*job, worker_id) &&
           num_jobs_.load(std::memory_order_relaxed) == 1) {
    }
    lock.lock();
    --job->in_flight;
    if (Quiesced(*job)) done_cv_.notify_all();
  }
}

void ThreadPool::RunMorsels(Job& job, uint32_t worker_id) {
  while (RunOneMorsel(job, worker_id)) {
  }
}

bool ThreadPool::RunOneMorsel(Job& job, uint32_t worker_id) {
  try {
    if (job.abort.load(std::memory_order_relaxed)) return false;
    if (job.external_cancel != nullptr &&
        job.external_cancel->load(std::memory_order_relaxed)) {
      job.cancelled.store(true, std::memory_order_relaxed);
      job.abort.store(true, std::memory_order_relaxed);
      return false;
    }
    if (job.external_stop != nullptr &&
        job.external_stop->load(std::memory_order_relaxed)) {
      job.abort.store(true, std::memory_order_relaxed);
      return false;
    }
    // The per-morsel deadline probe is the amortized check the engines
    // rely on: one clock read per morsel_size items.
    if (job.deadline.Expired()) {
      job.timed_out.store(true, std::memory_order_relaxed);
      job.abort.store(true, std::memory_order_relaxed);
      return false;
    }
    const uint64_t begin =
        job.next.fetch_add(job.morsel, std::memory_order_relaxed);
    if (begin >= job.n) return false;
    (*job.body)(worker_id, begin, std::min(job.n, begin + job.morsel));
    return true;
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (job.exception == nullptr) job.exception = std::current_exception();
    job.abort.store(true, std::memory_order_relaxed);
    return false;
  }
}

}  // namespace wireframe
