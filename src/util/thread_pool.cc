#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace wireframe {

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(std::max<uint32_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

uint32_t ThreadPool::ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

Status ThreadPool::ParallelFor(
    uint64_t n, const ParallelForOptions& options,
    const std::function<void(uint32_t, uint64_t, uint64_t)>& body) {
  WF_CHECK(options.morsel_size > 0) << "morsel size must be positive";
  if (n == 0) return Status::OK();

  Job job;
  job.body = &body;
  job.n = n;
  job.morsel = options.morsel_size;
  job.deadline = options.deadline;
  job.external_stop = options.stop;

  // One morsel, or no workers: run inline — the exception/timeout contract
  // is identical, just without the hand-off machinery.
  const bool inline_only = workers_.empty() || n <= options.morsel_size;
  if (!inline_only) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      ++epoch_;
      unfinished_workers_ = static_cast<uint32_t>(workers_.size());
    }
    work_cv_.notify_all();
  }

  RunMorsels(job, /*worker_id=*/0);

  if (!inline_only) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return unfinished_workers_ == 0; });
    job_ = nullptr;
  }

  if (job.exception != nullptr) std::rethrow_exception(job.exception);
  if (job.timed_out.load(std::memory_order_relaxed)) {
    return Status::TimedOut("parallel for");
  }
  return Status::OK();
}

void ThreadPool::WorkerLoop(uint32_t worker_id) {
  uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    RunMorsels(*job, worker_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--unfinished_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::RunMorsels(Job& job, uint32_t worker_id) {
  try {
    for (;;) {
      if (job.abort.load(std::memory_order_relaxed)) return;
      if (job.external_stop != nullptr &&
          job.external_stop->load(std::memory_order_relaxed)) {
        return;
      }
      // The per-morsel deadline probe is the amortized check the engines
      // rely on: one clock read per morsel_size items.
      if (job.deadline.Expired()) {
        job.timed_out.store(true, std::memory_order_relaxed);
        job.abort.store(true, std::memory_order_relaxed);
        return;
      }
      const uint64_t begin =
          job.next.fetch_add(job.morsel, std::memory_order_relaxed);
      if (begin >= job.n) return;
      (*job.body)(worker_id, begin, std::min(job.n, begin + job.morsel));
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (job.exception == nullptr) job.exception = std::current_exception();
    job.abort.store(true, std::memory_order_relaxed);
  }
}

}  // namespace wireframe
