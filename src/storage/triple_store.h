#ifndef WIREFRAME_STORAGE_TRIPLE_STORE_H_
#define WIREFRAME_STORAGE_TRIPLE_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"
#include "util/csr.h"

namespace wireframe {

/// Immutable, fully indexed RDF triple store.
///
/// For every predicate `p` the store keeps two CSR access paths
/// (util/csr.h — shared with the AnswerGraph's frozen form):
///   - forward:  distinct subjects of p (sorted) -> sorted object lists
///   - backward: distinct objects of p (sorted)  -> sorted subject lists
/// Together these cover the access patterns of the six SPO-permutation
/// composite indexes the paper configures for its relational baselines:
/// every lookup an engine performs here is (predicate, bound-endpoint) ->
/// matching edges, or a full scan of one predicate.
///
/// Construction happens through TripleStoreBuilder; the store itself is
/// immutable afterwards, so readers need no synchronization.
class TripleStore {
 public:
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  uint64_t NumTriples() const { return num_triples_; }
  uint32_t NumNodes() const { return num_nodes_; }
  uint32_t NumPredicates() const {
    return static_cast<uint32_t>(preds_.size());
  }

  /// Number of triples with predicate `p` (the 1-gram count).
  uint64_t PredicateCardinality(LabelId p) const {
    return preds_[p].fwd.NumEntries();
  }

  /// Distinct, sorted subjects of predicate `p`.
  std::span<const NodeId> DistinctSubjects(LabelId p) const {
    return preds_[p].fwd.Nodes();
  }
  /// Distinct, sorted objects of predicate `p`.
  std::span<const NodeId> DistinctObjects(LabelId p) const {
    return preds_[p].bwd.Nodes();
  }

  /// Objects o with (s, p, o) in the store; sorted; empty if none.
  std::span<const NodeId> OutNeighbors(LabelId p, NodeId s) const;
  /// Subjects s with (s, p, o) in the store; sorted; empty if none.
  std::span<const NodeId> InNeighbors(LabelId p, NodeId o) const;

  /// True iff the triple is present.
  bool HasTriple(NodeId s, LabelId p, NodeId o) const;

  /// Invokes fn(subject, object) for every edge of predicate `p`, grouped
  /// by subject in ascending order.
  template <typename Fn>
  void ForEachEdge(LabelId p, Fn&& fn) const {
    preds_[p].fwd.ForEach(fn);
  }

  /// Materializes all (s,o) pairs of predicate `p` (subject-major order).
  std::vector<std::pair<NodeId, NodeId>> EdgeList(LabelId p) const;

 private:
  friend class TripleStoreBuilder;
  TripleStore() = default;

  struct PredIndex {
    Csr fwd;  // subject -> sorted objects
    Csr bwd;  // object  -> sorted subjects
  };

  std::vector<PredIndex> preds_;
  uint64_t num_triples_ = 0;
  uint32_t num_nodes_ = 0;
};

/// Accumulates triples and builds the immutable TripleStore. Duplicate
/// triples are deduplicated (RDF set semantics).
class TripleStoreBuilder {
 public:
  TripleStoreBuilder() = default;

  /// Adds one triple; ids may arrive in any order.
  void Add(NodeId s, LabelId p, NodeId o);
  void Add(const Triple& t) { Add(t.subject, t.predicate, t.object); }

  uint64_t NumAdded() const { return triples_.size(); }

  /// Sorts, deduplicates, and builds all indexes. The builder is consumed.
  TripleStore Build() &&;

 private:
  std::vector<Triple> triples_;
};

}  // namespace wireframe

#endif  // WIREFRAME_STORAGE_TRIPLE_STORE_H_
