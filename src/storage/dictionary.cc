#include "storage/dictionary.h"

#include "util/logging.h"

namespace wireframe {

uint32_t Dictionary::Intern(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

uint32_t Dictionary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& Dictionary::Term(uint32_t id) const {
  WF_CHECK(id < terms_.size()) << "dictionary id out of range: " << id;
  return terms_[id];
}

}  // namespace wireframe
