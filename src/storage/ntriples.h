#ifndef WIREFRAME_STORAGE_NTRIPLES_H_
#define WIREFRAME_STORAGE_NTRIPLES_H_

#include <iosfwd>
#include <string>

#include "storage/database.h"
#include "util/result.h"
#include "util/status.h"

namespace wireframe {

/// Line-oriented N-Triples reader/writer (the serialization YAGO2s ships
/// in). Supported term forms: `<iri>`, `_:blank`, and `"literal"` with
/// optional `@lang` / `^^<datatype>` suffixes; `#` comment lines and blank
/// lines are skipped. Each data line must end with `.`.
class NTriples {
 public:
  /// Parses a whole stream into a DatabaseBuilder. Returns the number of
  /// triples read, or a ParseError naming the offending line.
  static Result<uint64_t> ReadStream(std::istream& in, DatabaseBuilder* out);

  /// Parses a file by path.
  static Result<uint64_t> ReadFile(const std::string& path,
                                   DatabaseBuilder* out);

  /// Parses one N-Triples line into its three term strings. Returns false
  /// for blank/comment lines; ParseError for malformed lines.
  static Result<bool> ParseLine(const std::string& line, std::string* s,
                                std::string* p, std::string* o);

  /// Serializes a database back to N-Triples (canonical, sorted by
  /// predicate id then subject then object — deterministic round-trips).
  static Status WriteStream(const Database& db, std::ostream& out);
};

}  // namespace wireframe

#endif  // WIREFRAME_STORAGE_NTRIPLES_H_
