#include "storage/triple_store.h"

#include <algorithm>

#include "util/logging.h"

namespace wireframe {

std::span<const NodeId> TripleStore::OutNeighbors(LabelId p, NodeId s) const {
  WF_DCHECK(p < preds_.size());
  return preds_[p].fwd.Neighbors(s);
}

std::span<const NodeId> TripleStore::InNeighbors(LabelId p, NodeId o) const {
  WF_DCHECK(p < preds_.size());
  return preds_[p].bwd.Neighbors(o);
}

bool TripleStore::HasTriple(NodeId s, LabelId p, NodeId o) const {
  if (p >= preds_.size()) return false;
  return preds_[p].fwd.Contains(s, o);
}

std::vector<std::pair<NodeId, NodeId>> TripleStore::EdgeList(LabelId p) const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(PredicateCardinality(p));
  ForEachEdge(p, [&](NodeId s, NodeId o) { out.emplace_back(s, o); });
  return out;
}

void TripleStoreBuilder::Add(NodeId s, LabelId p, NodeId o) {
  triples_.push_back(Triple{s, p, o});
}

TripleStore TripleStoreBuilder::Build() && {
  // Sort by (p, s, o) and deduplicate: RDF stores have set semantics.
  std::sort(triples_.begin(), triples_.end(),
            [](const Triple& a, const Triple& b) {
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              if (a.subject != b.subject) return a.subject < b.subject;
              return a.object < b.object;
            });
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());

  TripleStore store;
  store.num_triples_ = triples_.size();

  LabelId max_pred = 0;
  NodeId max_node = 0;
  for (const Triple& t : triples_) {
    max_pred = std::max(max_pred, t.predicate);
    max_node = std::max(max_node, std::max(t.subject, t.object));
  }
  if (!triples_.empty()) {
    store.preds_.resize(max_pred + 1);
    store.num_nodes_ = max_node + 1;
  }

  // One fwd/bwd Csr per predicate. The slice is already (s, o)-sorted
  // and deduplicated, so the forward index builds straight off it with
  // no copy or re-sort; only the backward side materializes a (o, s)
  // list for sorting.
  size_t i = 0;
  while (i < triples_.size()) {
    const LabelId p = triples_[i].predicate;
    TripleStore::PredIndex& idx = store.preds_[p];
    size_t j = i;
    while (j < triples_.size() && triples_[j].predicate == p) ++j;
    idx.fwd = Csr::BuildFromSorted(j - i, [&](size_t k) {
      const Triple& t = triples_[i + k];
      return std::pair<NodeId, NodeId>(t.subject, t.object);
    });
    std::vector<std::pair<NodeId, NodeId>> reversed;
    reversed.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      reversed.emplace_back(triples_[k].object, triples_[k].subject);
    }
    idx.bwd = Csr::Build(std::move(reversed));
    i = j;
  }

  triples_.clear();
  triples_.shrink_to_fit();
  return store;
}

}  // namespace wireframe
