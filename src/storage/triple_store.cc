#include "storage/triple_store.h"

#include <algorithm>

#include "util/logging.h"

namespace wireframe {

namespace {

// Locates `node` in the sorted distinct-node array; returns its position or
// size() when absent.
size_t FindGroup(const std::vector<NodeId>& nodes, NodeId node) {
  auto it = std::lower_bound(nodes.begin(), nodes.end(), node);
  if (it == nodes.end() || *it != node) return nodes.size();
  return static_cast<size_t>(it - nodes.begin());
}

}  // namespace

std::span<const NodeId> TripleStore::OutNeighbors(LabelId p, NodeId s) const {
  WF_DCHECK(p < preds_.size());
  const PredIndex& idx = preds_[p];
  const size_t g = FindGroup(idx.snodes, s);
  if (g == idx.snodes.size()) return {};
  return {idx.objects.data() + idx.soffsets[g],
          idx.objects.data() + idx.soffsets[g + 1]};
}

std::span<const NodeId> TripleStore::InNeighbors(LabelId p, NodeId o) const {
  WF_DCHECK(p < preds_.size());
  const PredIndex& idx = preds_[p];
  const size_t g = FindGroup(idx.onodes, o);
  if (g == idx.onodes.size()) return {};
  return {idx.subjects.data() + idx.ooffsets[g],
          idx.subjects.data() + idx.ooffsets[g + 1]};
}

bool TripleStore::HasTriple(NodeId s, LabelId p, NodeId o) const {
  if (p >= preds_.size()) return false;
  auto objs = OutNeighbors(p, s);
  return std::binary_search(objs.begin(), objs.end(), o);
}

std::vector<std::pair<NodeId, NodeId>> TripleStore::EdgeList(LabelId p) const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(PredicateCardinality(p));
  ForEachEdge(p, [&](NodeId s, NodeId o) { out.emplace_back(s, o); });
  return out;
}

void TripleStoreBuilder::Add(NodeId s, LabelId p, NodeId o) {
  triples_.push_back(Triple{s, p, o});
}

TripleStore TripleStoreBuilder::Build() && {
  // Sort by (p, s, o) and deduplicate: RDF stores have set semantics.
  std::sort(triples_.begin(), triples_.end(),
            [](const Triple& a, const Triple& b) {
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              if (a.subject != b.subject) return a.subject < b.subject;
              return a.object < b.object;
            });
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());

  TripleStore store;
  store.num_triples_ = triples_.size();

  LabelId max_pred = 0;
  NodeId max_node = 0;
  for (const Triple& t : triples_) {
    max_pred = std::max(max_pred, t.predicate);
    max_node = std::max(max_node, std::max(t.subject, t.object));
  }
  if (!triples_.empty()) {
    store.preds_.resize(max_pred + 1);
    store.num_nodes_ = max_node + 1;
  }

  // Forward indexes from the (p, s, o) order.
  size_t i = 0;
  while (i < triples_.size()) {
    const LabelId p = triples_[i].predicate;
    TripleStore::PredIndex& idx = store.preds_[p];
    size_t j = i;
    while (j < triples_.size() && triples_[j].predicate == p) ++j;
    idx.objects.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      const Triple& t = triples_[k];
      if (idx.snodes.empty() || idx.snodes.back() != t.subject) {
        idx.snodes.push_back(t.subject);
        idx.soffsets.push_back(static_cast<uint32_t>(idx.objects.size()));
      }
      idx.objects.push_back(t.object);
    }
    idx.soffsets.push_back(static_cast<uint32_t>(idx.objects.size()));

    // Backward index: re-sort this predicate's slice by (o, s).
    std::sort(triples_.begin() + static_cast<ptrdiff_t>(i),
              triples_.begin() + static_cast<ptrdiff_t>(j),
              [](const Triple& a, const Triple& b) {
                if (a.object != b.object) return a.object < b.object;
                return a.subject < b.subject;
              });
    idx.subjects.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      const Triple& t = triples_[k];
      if (idx.onodes.empty() || idx.onodes.back() != t.object) {
        idx.onodes.push_back(t.object);
        idx.ooffsets.push_back(static_cast<uint32_t>(idx.subjects.size()));
      }
      idx.subjects.push_back(t.subject);
    }
    idx.ooffsets.push_back(static_cast<uint32_t>(idx.subjects.size()));
    i = j;
  }

  triples_.clear();
  triples_.shrink_to_fit();
  return store;
}

}  // namespace wireframe
