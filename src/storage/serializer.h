#ifndef WIREFRAME_STORAGE_SERIALIZER_H_
#define WIREFRAME_STORAGE_SERIALIZER_H_

#include <iosfwd>
#include <string>

#include "storage/database.h"
#include "util/result.h"

namespace wireframe {

/// Binary snapshot format for a Database (dictionaries + triples), so the
/// paper's "imported it to each of the systems" preprocessing step runs
/// once: generate or parse N-Triples, save, and reopen instantly.
///
/// Layout (little-endian):
///   magic "WFDB" + u32 version
///   u32 node-term count,  [u32 length + bytes] per term (id order)
///   u32 label-term count, [u32 length + bytes] per term (id order)
///   u64 triple count, then (u32 s, u32 p, u32 o) per triple in
///   predicate-major order
///   u64 FNV-1a checksum of the triple section
class Serializer {
 public:
  static constexpr uint32_t kVersion = 1;

  /// Writes a snapshot of `db`.
  static Status Save(const Database& db, std::ostream& out);
  static Status SaveFile(const Database& db, const std::string& path);

  /// Reads a snapshot; fails with ParseError on malformed/corrupt input
  /// or version mismatch.
  static Result<Database> Load(std::istream& in);
  static Result<Database> LoadFile(const std::string& path);
};

}  // namespace wireframe

#endif  // WIREFRAME_STORAGE_SERIALIZER_H_
