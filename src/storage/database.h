#ifndef WIREFRAME_STORAGE_DATABASE_H_
#define WIREFRAME_STORAGE_DATABASE_H_

#include <optional>
#include <string_view>
#include <utility>

#include "storage/dictionary.h"
#include "storage/triple_store.h"

namespace wireframe {

/// A dictionary-encoded RDF graph database: node dictionary, predicate
/// dictionary, and the indexed triple store. This is the object every
/// engine, planner, and catalog operates on.
class Database {
 public:
  /// Builds a Database from string triples via DatabaseBuilder, or from
  /// pre-encoded parts (used by the generators, which intern up front).
  Database(Dictionary nodes, Dictionary labels, TripleStore store)
      : nodes_(std::move(nodes)),
        labels_(std::move(labels)),
        store_(std::move(store)) {}

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const TripleStore& store() const { return store_; }
  const Dictionary& nodes() const { return nodes_; }
  const Dictionary& labels() const { return labels_; }

  /// Resolves a predicate IRI; empty when unknown.
  std::optional<LabelId> LabelOf(std::string_view iri) const {
    uint32_t id = labels_.Lookup(iri);
    if (id == Dictionary::kNotFound) return std::nullopt;
    return LabelId{id};
  }

  /// Resolves a node term; empty when unknown.
  std::optional<NodeId> NodeOf(std::string_view term) const {
    uint32_t id = nodes_.Lookup(term);
    if (id == Dictionary::kNotFound) return std::nullopt;
    return NodeId{id};
  }

 private:
  Dictionary nodes_;
  Dictionary labels_;
  TripleStore store_;
};

/// Incremental builder that interns strings and accumulates triples.
class DatabaseBuilder {
 public:
  DatabaseBuilder() = default;

  /// Adds a triple given as strings (IRIs/literals).
  void Add(std::string_view subject, std::string_view predicate,
           std::string_view object) {
    builder_.Add(nodes_.Intern(subject), labels_.Intern(predicate),
                 nodes_.Intern(object));
  }

  /// Adds a triple with already-interned ids.
  void Add(NodeId s, LabelId p, NodeId o) { builder_.Add(s, p, o); }

  Dictionary& nodes() { return nodes_; }
  Dictionary& labels() { return labels_; }
  uint64_t NumAdded() const { return builder_.NumAdded(); }

  /// Finalizes; the builder is consumed.
  Database Build() && {
    return Database(std::move(nodes_), std::move(labels_),
                    std::move(builder_).Build());
  }

 private:
  Dictionary nodes_;
  Dictionary labels_;
  TripleStoreBuilder builder_;
};

}  // namespace wireframe

#endif  // WIREFRAME_STORAGE_DATABASE_H_
