#ifndef WIREFRAME_STORAGE_DICTIONARY_H_
#define WIREFRAME_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wireframe {

/// Bidirectional string <-> dense-id dictionary. One instance maps resource
/// IRIs/literals to NodeIds, a second maps predicate IRIs to LabelIds, the
/// standard RDF-store dictionary-encoding setup.
///
/// Ids are assigned densely in insertion order, so `Size()` doubles as the
/// universe bound for id-indexed arrays.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: instances can be large.
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Returns the id for `term`, inserting it if new.
  uint32_t Intern(std::string_view term);

  /// Returns the id for `term` or kNotFound when absent.
  uint32_t Lookup(std::string_view term) const;

  /// Returns the term for `id`. Requires id < Size().
  const std::string& Term(uint32_t id) const;

  uint32_t Size() const { return static_cast<uint32_t>(terms_.size()); }

  static constexpr uint32_t kNotFound = 0xffffffffu;

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> terms_;
};

}  // namespace wireframe

#endif  // WIREFRAME_STORAGE_DICTIONARY_H_
