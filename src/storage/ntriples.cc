#include "storage/ntriples.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <string_view>

namespace wireframe {

namespace {

void SkipSpace(std::string_view& rest) {
  while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
    rest.remove_prefix(1);
  }
}

// Consumes one RDF term from the front of `rest`; returns empty status and
// writes the term (including its delimiters) to `out`.
Status TakeTerm(std::string_view& rest, std::string* out) {
  SkipSpace(rest);
  if (rest.empty()) return Status::ParseError("unexpected end of line");
  out->clear();
  if (rest.front() == '<') {
    auto close = rest.find('>');
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    *out = std::string(rest.substr(0, close + 1));
    rest.remove_prefix(close + 1);
    return Status::OK();
  }
  if (rest.front() == '_') {
    size_t end = 0;
    while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
    *out = std::string(rest.substr(0, end));
    rest.remove_prefix(end);
    return Status::OK();
  }
  if (rest.front() == '"') {
    // Scan to the closing unescaped quote.
    size_t i = 1;
    while (i < rest.size()) {
      if (rest[i] == '\\') {
        i += 2;
        continue;
      }
      if (rest[i] == '"') break;
      ++i;
    }
    if (i >= rest.size()) return Status::ParseError("unterminated literal");
    size_t end = i + 1;
    // Optional @lang or ^^<datatype> suffix.
    if (end < rest.size() && rest[end] == '@') {
      while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
    } else if (end + 1 < rest.size() && rest[end] == '^' &&
               rest[end + 1] == '^') {
      auto close = rest.find('>', end);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      end = close + 1;
    }
    *out = std::string(rest.substr(0, end));
    rest.remove_prefix(end);
    return Status::OK();
  }
  return Status::ParseError("unrecognized term start: '" +
                            std::string(1, rest.front()) + "'");
}

}  // namespace

Result<bool> NTriples::ParseLine(const std::string& line, std::string* s,
                                 std::string* p, std::string* o) {
  std::string_view rest(line);
  SkipSpace(rest);
  if (rest.empty() || rest.front() == '#') return false;
  WF_RETURN_NOT_OK(TakeTerm(rest, s));
  WF_RETURN_NOT_OK(TakeTerm(rest, p));
  WF_RETURN_NOT_OK(TakeTerm(rest, o));
  SkipSpace(rest);
  if (rest.empty() || rest.front() != '.') {
    return Status::ParseError("missing terminating '.'");
  }
  return true;
}

Result<uint64_t> NTriples::ReadStream(std::istream& in, DatabaseBuilder* out) {
  std::string line, s, p, o;
  uint64_t count = 0;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    Result<bool> parsed = ParseLine(line, &s, &p, &o);
    if (!parsed.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                parsed.status().message());
    }
    if (!parsed.value()) continue;
    out->Add(s, p, o);
    ++count;
  }
  return count;
}

Result<uint64_t> NTriples::ReadFile(const std::string& path,
                                    DatabaseBuilder* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadStream(in, out);
}

Status NTriples::WriteStream(const Database& db, std::ostream& out) {
  const TripleStore& store = db.store();
  for (LabelId p = 0; p < store.NumPredicates(); ++p) {
    store.ForEachEdge(p, [&](NodeId s, NodeId o) {
      out << db.nodes().Term(s) << " " << db.labels().Term(p) << " "
          << db.nodes().Term(o) << " .\n";
    });
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace wireframe
