#include "storage/serializer.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace wireframe {

namespace {

constexpr char kMagic[4] = {'W', 'F', 'D', 'B'};

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

void PutU64(std::ostream& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

bool GetU32(std::istream& in, uint32_t* v) {
  char buf[4];
  in.read(buf, 4);
  if (!in) return false;
  std::memcpy(v, buf, 4);
  return true;
}

bool GetU64(std::istream& in, uint64_t* v) {
  char buf[8];
  in.read(buf, 8);
  if (!in) return false;
  std::memcpy(v, buf, 8);
  return true;
}

uint64_t Fnv1a(uint64_t h, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr uint64_t kFnvBasis = 14695981039346656037ull;

void WriteDictionary(std::ostream& out, const Dictionary& dict) {
  PutU32(out, dict.Size());
  for (uint32_t id = 0; id < dict.Size(); ++id) {
    const std::string& term = dict.Term(id);
    PutU32(out, static_cast<uint32_t>(term.size()));
    out.write(term.data(), static_cast<std::streamsize>(term.size()));
  }
}

Status ReadDictionary(std::istream& in, Dictionary* dict) {
  uint32_t count = 0;
  if (!GetU32(in, &count)) return Status::ParseError("truncated dictionary");
  std::string term;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!GetU32(in, &len) || len > (1u << 24)) {
      return Status::ParseError("bad term length");
    }
    term.resize(len);
    in.read(term.data(), len);
    if (!in) return Status::ParseError("truncated term");
    if (dict->Intern(term) != i) {
      return Status::ParseError("duplicate term in dictionary");
    }
  }
  return Status::OK();
}

}  // namespace

Status Serializer::Save(const Database& db, std::ostream& out) {
  out.write(kMagic, 4);
  PutU32(out, kVersion);
  WriteDictionary(out, db.nodes());
  WriteDictionary(out, db.labels());

  const TripleStore& store = db.store();
  PutU64(out, store.NumTriples());
  uint64_t checksum = kFnvBasis;
  for (LabelId p = 0; p < store.NumPredicates(); ++p) {
    store.ForEachEdge(p, [&](NodeId s, NodeId o) {
      PutU32(out, s);
      PutU32(out, p);
      PutU32(out, o);
      checksum = Fnv1a(Fnv1a(Fnv1a(checksum, s), p), o);
    });
  }
  PutU64(out, checksum);
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status Serializer::SaveFile(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return Save(db, out);
}

Result<Database> Serializer::Load(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::ParseError("not a WFDB snapshot");
  }
  uint32_t version = 0;
  if (!GetU32(in, &version) || version != kVersion) {
    return Status::ParseError("unsupported snapshot version");
  }

  DatabaseBuilder builder;
  WF_RETURN_NOT_OK(ReadDictionary(in, &builder.nodes()));
  WF_RETURN_NOT_OK(ReadDictionary(in, &builder.labels()));
  const uint32_t num_nodes = builder.nodes().Size();
  const uint32_t num_labels = builder.labels().Size();

  uint64_t count = 0;
  if (!GetU64(in, &count)) return Status::ParseError("truncated count");
  uint64_t checksum = kFnvBasis;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t s = 0, p = 0, o = 0;
    if (!GetU32(in, &s) || !GetU32(in, &p) || !GetU32(in, &o)) {
      return Status::ParseError("truncated triples");
    }
    if (s >= num_nodes || o >= num_nodes || p >= num_labels) {
      return Status::ParseError("triple id out of range");
    }
    builder.Add(s, p, o);
    checksum = Fnv1a(Fnv1a(Fnv1a(checksum, s), p), o);
  }
  uint64_t expected = 0;
  if (!GetU64(in, &expected)) return Status::ParseError("missing checksum");
  if (expected != checksum) return Status::ParseError("checksum mismatch");
  return std::move(builder).Build();
}

Result<Database> Serializer::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(in);
}

}  // namespace wireframe
