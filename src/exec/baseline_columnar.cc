#include "exec/baselines.h"
#include "exec/join_common.h"

namespace wireframe {

Result<EngineStats> ColumnarEngine::Run(const Database& db,
                                        const Catalog& catalog,
                                        const QueryGraph& query,
                                        const EngineOptions& options,
                                        Sink* sink) {
  (void)catalog;  // written order: no statistics consulted
  const std::vector<uint32_t> order = OrderAsWrittenConnected(query);
  return RunMaterializing(db, query, order, options.deadline,
                          options.runtime.cancel, kMaxCells, sink);
}

}  // namespace wireframe
