#include "exec/engine.h"

#include "core/wireframe.h"
#include "exec/baselines.h"
#include "util/thread_pool.h"

namespace wireframe {

Engine::~Engine() = default;

PoolLease::PoolLease(const EngineOptions& options) {
  if (options.runtime.pool != nullptr) {
    pool_ = options.runtime.pool;
    return;
  }
  const uint32_t threads = ThreadPool::ResolveThreads(options.threads);
  if (threads > 1) {
    owned_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_.get();
  }
}

PoolLease::~PoolLease() = default;

uint32_t PoolLease::threads() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

std::unique_ptr<Engine> MakeEngine(std::string_view name) {
  if (name == "WF") return std::make_unique<WireframeEngine>();
  if (name == "PG") return std::make_unique<HashJoinEngine>();
  if (name == "VT") return std::make_unique<IndexNestedLoopEngine>();
  if (name == "MD") return std::make_unique<ColumnarEngine>();
  if (name == "NJ") return std::make_unique<BacktrackEngine>();
  return nullptr;
}

std::vector<std::string> AllEngineNames() {
  return {"PG", "WF", "VT", "MD", "NJ"};
}

}  // namespace wireframe
