#include "exec/engine.h"

#include "core/wireframe.h"
#include "exec/baselines.h"

namespace wireframe {

Engine::~Engine() = default;

std::unique_ptr<Engine> MakeEngine(std::string_view name) {
  if (name == "WF") return std::make_unique<WireframeEngine>();
  if (name == "PG") return std::make_unique<HashJoinEngine>();
  if (name == "VT") return std::make_unique<IndexNestedLoopEngine>();
  if (name == "MD") return std::make_unique<ColumnarEngine>();
  if (name == "NJ") return std::make_unique<BacktrackEngine>();
  return nullptr;
}

std::vector<std::string> AllEngineNames() {
  return {"PG", "WF", "VT", "MD", "NJ"};
}

}  // namespace wireframe
