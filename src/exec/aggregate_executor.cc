#include "exec/aggregate_executor.h"

#include <algorithm>
#include <span>
#include <utility>

#include "util/interrupt.h"
#include "util/logging.h"
#include "util/span_kernels.h"
#include "util/thread_pool.h"

namespace wireframe {

namespace {

using U128 = unsigned __int128;

constexpr U128 kU128Max = ~static_cast<U128>(0);

/// Morsel size of the DP sweeps: one item is a whole key span, so keep
/// chunks small enough for the shared pool to interleave queries.
constexpr uint64_t kDpMorselSize = 64;

/// Span-gather lookahead of the positional sweeps, mirroring
/// Csr::ForEach's prefetch distance.
constexpr size_t kPrefetchAhead = 4;

/// Exact u64 arithmetic for the first DP pass: any overflow raises the
/// pass-level flag and the result is discarded in favor of a 128-bit
/// rerun.
struct U64Ops {
  using T = uint64_t;
  static T FromLen(size_t n) { return n; }
  static bool Add(T a, T b, T* out) {
    return __builtin_add_overflow(a, b, out);
  }
  static bool Mul(T a, T b, T* out) {
    return __builtin_mul_overflow(a, b, out);
  }
  static bool IsZero(T v) { return v == 0; }
  static AggregateValue ToValue(T v) { return AggregateValue::FromU64(v); }
};

/// Saturating 128-bit arithmetic for the promotion pass. Saturation is
/// sticky upward: a clamped value can only stay clamped or multiply to
/// exact zero, so any final value below the maximum is exact and a
/// maximal one is flagged `saturated`.
struct Sat128Ops {
  using T = U128;
  static T FromLen(size_t n) { return n; }
  static bool Add(T a, T b, T* out) {
    if (b > kU128Max - a) {
      *out = kU128Max;
      return true;
    }
    *out = a + b;
    return false;
  }
  static bool Mul(T a, T b, T* out) {
    if (a == 0 || b == 0) {
      *out = 0;
      return false;
    }
    if (a > kU128Max / b) {
      *out = kU128Max;
      return true;
    }
    *out = a * b;
    return false;
  }
  static bool IsZero(T v) { return v == 0; }
  static AggregateValue ToValue(T v) {
    return AggregateValue{static_cast<uint64_t>(v),
                          static_cast<uint64_t>(v >> 64), v == kU128Max};
  }
};

/// Shared state of one DP pass. Per variable: `keys` is the candidate
/// list captured from the first folded edge (the CSR key list), `counts`
/// the dense per-candidate down-counts indexed by NodeId. A variable
/// with has_counts == 0 has no folded subtree yet and counts as 1
/// everywhere (leaf). Workers write disjoint slots; `overflow` is the
/// only shared word.
template <typename Ops>
struct DpState {
  using T = typename Ops::T;
  std::vector<std::vector<T>> counts;
  std::vector<std::vector<NodeId>> keys;
  std::vector<char> has_counts;
  std::atomic<bool> overflow{false};

  explicit DpState(uint32_t num_vars)
      : counts(num_vars), keys(num_vars), has_counts(num_vars, 0) {}
};

/// Runs `body(worker, begin, end)` over [0, n): morsel-parallel on the
/// borrowed pool, or serially with the usual amortized interrupt probe.
template <typename Body>
Status RunLoop(uint64_t n, const AggregateExecutorOptions& options,
               const Body& body, std::atomic<bool>* stop = nullptr) {
  if (options.pool != nullptr) {
    ParallelForOptions po;
    po.morsel_size = kDpMorselSize;
    po.deadline = options.deadline;
    po.cancel = options.cancel;
    po.stop = stop;
    po.weight = options.weight;
    return options.pool->ParallelFor(n, po, body);
  }
  InterruptProbe probe(options.deadline, options.cancel, /*stride=*/1024);
  for (uint64_t i = 0; i < n; ++i) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
    if (probe.Hit()) return probe.StatusFor("aggregate DP");
    body(0u, i, i + 1);
  }
  return Status::OK();
}

/// Sum of the child's down-counts over one span (the span length when
/// the child subtree is empty — every candidate counts 1). Nodes outside
/// the child's count array are dead there and contribute zero.
template <typename Ops>
typename Ops::T SpanWeight(std::span<const NodeId> span,
                           const std::vector<typename Ops::T>& child_counts,
                           bool child_leaf, std::atomic<bool>* overflow) {
  using T = typename Ops::T;
  if (child_leaf) return Ops::FromLen(span.size());
  T sum = Ops::FromLen(0);
  for (NodeId c : span) {
    if (c >= child_counts.size()) continue;
    if (Ops::Add(sum, child_counts[c], &sum)) {
      overflow->store(true, std::memory_order_relaxed);
    }
  }
  return sum;
}

/// Folds one tree step into the parent's count array. The first fold of
/// a parent assigns (a positional sweep over the edge's CSR, which also
/// fixes the parent's key list); each later fold multiplies in place
/// over that stored key list, so candidates absent from the later edge
/// multiply by zero instead of going stale.
template <typename Ops>
Status FoldStep(const QueryGraph& query, const AnswerGraph& ag,
                const AggregateTreeStep& step,
                const AggregateExecutorOptions& options, DpState<Ops>* dp) {
  using T = typename Ops::T;
  const QueryEdge& qe = query.Edge(step.edge);
  const PairSet& set = ag.Set(step.edge);
  const Csr& csr = qe.src == step.parent ? set.FwdCsr() : set.BwdCsr();
  const std::vector<T>& child_counts = dp->counts[step.child];
  const bool child_leaf = dp->has_counts[step.child] == 0;
  const VarId p = step.parent;

  if (dp->has_counts[p] == 0) {
    const std::span<const NodeId> nodes = csr.Nodes();
    dp->keys[p].assign(nodes.begin(), nodes.end());
    dp->counts[p].assign(nodes.empty() ? 0 : nodes.back() + 1,
                         Ops::FromLen(0));
    dp->has_counts[p] = 1;
    std::vector<T>& out = dp->counts[p];
    return RunLoop(nodes.size(), options,
                   [&](uint32_t, uint64_t begin, uint64_t end) {
                     for (uint64_t i = begin; i < end; ++i) {
                       if (i + kPrefetchAhead < nodes.size()) {
                         csr.PrefetchSpan(i + kPrefetchAhead);
                       }
                       out[nodes[i]] = SpanWeight<Ops>(
                           csr.NeighborsAt(i), child_counts, child_leaf,
                           &dp->overflow);
                     }
                   });
  }

  const std::vector<NodeId>& keys = dp->keys[p];
  std::vector<T>& out = dp->counts[p];
  return RunLoop(keys.size(), options,
                 [&](uint32_t, uint64_t begin, uint64_t end) {
                   for (uint64_t i = begin; i < end; ++i) {
                     const NodeId c = keys[i];
                     const T w = SpanWeight<Ops>(csr.Neighbors(c),
                                                 child_counts, child_leaf,
                                                 &dp->overflow);
                     if (Ops::Mul(out[c], w, &out[c])) {
                       dp->overflow.store(true, std::memory_order_relaxed);
                     }
                   }
                 });
}

/// Down-count of candidate `c` at `v`: 1 when v folded no subtree.
template <typename Ops>
typename Ops::T TcntAt(const DpState<Ops>& dp, VarId v, NodeId c) {
  if (dp.has_counts[v] == 0) return Ops::FromLen(1);
  const auto& counts = dp.counts[v];
  return c < counts.size() ? counts[c] : Ops::FromLen(0);
}

/// Folds per-candidate counts into the final result: total (saturating
/// sum), GROUP BY rows (keys ascend because CSR key lists do), DISTINCT
/// as the number of non-zero candidates, ASK as total != 0. Non-zeroness
/// is exact even under saturation, so DISTINCT and ASK never need the
/// 128-bit rerun for their own sake.
template <typename Ops, typename ValueAt>
AggregateResult ExtractResult(std::span<const NodeId> keys,
                              const ValueAt& value_at,
                              const AggregateSpec& spec,
                              std::atomic<bool>* overflow) {
  using T = typename Ops::T;
  AggregateResult result;
  result.kind = spec.kind;
  result.factorized = true;
  T total = Ops::FromLen(0);
  uint64_t nonzero = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    const T v = value_at(i);
    if (Ops::IsZero(v)) continue;
    ++nonzero;
    if (Ops::Add(total, v, &total)) {
      overflow->store(true, std::memory_order_relaxed);
    }
    if (spec.kind == AggregateKind::kCount &&
        spec.group_var != kInvalidVar) {
      result.groups.push_back({keys[i], Ops::ToValue(v)});
    }
  }
  switch (spec.kind) {
    case AggregateKind::kAsk:
      result.ask = nonzero != 0;
      result.value = AggregateValue::FromU64(result.ask ? 1 : 0);
      break;
    case AggregateKind::kCountDistinct:
      result.value = AggregateValue::FromU64(nonzero);
      break;
    default:
      result.value = Ops::ToValue(total);
      break;
  }
  return result;
}

/// The frozen span of edge `e`'s candidates opposite `keyed_var` when it
/// is bound to `node`.
std::span<const NodeId> EdgeSpanFrom(const QueryGraph& query,
                                     const AnswerGraph& ag, uint32_t e,
                                     VarId keyed_var, NodeId node) {
  const PairSet& set = ag.Set(e);
  return query.Edge(e).src == keyed_var ? set.FwdNeighbors(node)
                                        : set.BwdNeighbors(node);
}

/// Weighted contribution of one apex for the chord pair (c_u, c_v):
/// intersect every incident cycle edge's span (span kernels, ping-pong
/// scratch) and sum the apex's pendant-tree counts over the survivors.
template <typename Ops>
typename Ops::T ApexWeight(const QueryGraph& query, const AnswerGraph& ag,
                           const AggregatePlan& plan,
                           const AggregateApex& apex, NodeId c_u, NodeId c_v,
                           const DpState<Ops>& dp,
                           std::vector<NodeId>* scratch_a,
                           std::vector<NodeId>* scratch_b,
                           std::atomic<bool>* overflow) {
  std::span<const NodeId> cur =
      EdgeSpanFrom(query, ag, apex.u_edges[0], plan.chord_u, c_u);
  std::vector<NodeId>* bufs[2] = {scratch_a, scratch_b};
  int which = 0;
  auto fold = [&](uint32_t e, VarId side_var, NodeId side_node) {
    const std::span<const NodeId> other =
        EdgeSpanFrom(query, ag, e, side_var, side_node);
    std::vector<NodeId>* dst = bufs[which];
    which ^= 1;
    dst->resize(std::min(cur.size(), other.size()) + kIntersectPad);
    const size_t n = IntersectSorted(cur, other, dst->data());
    cur = std::span<const NodeId>(dst->data(), n);
  };
  for (size_t i = 1; i < apex.u_edges.size() && !cur.empty(); ++i) {
    fold(apex.u_edges[i], plan.chord_u, c_u);
  }
  for (size_t i = 0; i < apex.v_edges.size() && !cur.empty(); ++i) {
    fold(apex.v_edges[i], plan.chord_v, c_v);
  }
  return SpanWeight<Ops>(cur, dp.counts[apex.var],
                         dp.has_counts[apex.var] == 0, overflow);
}

/// The cycle sweep: iterate the materialized chord's pair set key-major
/// on the side of the grouped/distinct variable (chord_u by default);
/// each pair contributes the product of both endpoints' pendant counts,
/// the direct-edge membership filters, and every apex's weighted span
/// intersection.
template <typename Ops>
Status RunCycleSweep(const QueryGraph& query, const AnswerGraph& ag,
                     const AggregatePlan& plan, const AggregateSpec& spec,
                     const AggregateExecutorOptions& options,
                     DpState<Ops>* dp, std::vector<NodeId>* keys_out,
                     std::vector<typename Ops::T>* totals_out) {
  using T = typename Ops::T;
  const VarId anchor = spec.group_var != kInvalidVar ? spec.group_var
                       : spec.distinct_var != kInvalidVar
                           ? spec.distinct_var
                           : kInvalidVar;
  const bool key_is_v = anchor == plan.chord_v;
  const VarId key_var = key_is_v ? plan.chord_v : plan.chord_u;
  const PairSet& chord = ag.Set(plan.chord_slot);
  const Csr& csr = ag.SrcVar(plan.chord_slot) == key_var ? chord.FwdCsr()
                                                         : chord.BwdCsr();
  const std::span<const NodeId> nodes = csr.Nodes();
  keys_out->assign(nodes.begin(), nodes.end());
  totals_out->assign(nodes.size(), Ops::FromLen(0));
  std::vector<T>& totals = *totals_out;

  const uint32_t workers =
      options.pool != nullptr ? options.pool->num_threads() : 1;
  std::vector<std::vector<NodeId>> scratch_a(workers), scratch_b(workers);
  std::atomic<bool> witness{false};  // ASK stops at the first hit

  const Status status = RunLoop(
      nodes.size(), options,
      [&](uint32_t worker, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) {
          if (i + kPrefetchAhead < nodes.size()) {
            csr.PrefetchSpan(i + kPrefetchAhead);
          }
          const NodeId ck = nodes[i];
          const T tk = TcntAt(*dp, key_var, ck);
          if (Ops::IsZero(tk)) continue;
          T key_total = Ops::FromLen(0);
          for (const NodeId cp : csr.NeighborsAt(i)) {
            const NodeId c_u = key_is_v ? cp : ck;
            const NodeId c_v = key_is_v ? ck : cp;
            const T tp = TcntAt(*dp, key_is_v ? plan.chord_u : plan.chord_v,
                                cp);
            if (Ops::IsZero(tp)) continue;
            bool pass = true;
            for (const uint32_t e : plan.direct_edges) {
              const QueryEdge& qe = query.Edge(e);
              const NodeId s = qe.src == plan.chord_u ? c_u : c_v;
              const NodeId d = qe.dst == plan.chord_u ? c_u : c_v;
              if (!ag.Set(e).Contains(s, d)) {
                pass = false;
                break;
              }
            }
            if (!pass) continue;
            T prod;
            if (Ops::Mul(tk, tp, &prod)) {
              dp->overflow.store(true, std::memory_order_relaxed);
            }
            for (const AggregateApex& apex : plan.apexes) {
              const T w = ApexWeight(query, ag, plan, apex, c_u, c_v, *dp,
                                     &scratch_a[worker], &scratch_b[worker],
                                     &dp->overflow);
              if (Ops::IsZero(w)) {
                prod = Ops::FromLen(0);
                break;
              }
              if (Ops::Mul(prod, w, &prod)) {
                dp->overflow.store(true, std::memory_order_relaxed);
              }
            }
            if (Ops::IsZero(prod)) continue;
            if (Ops::Add(key_total, prod, &key_total)) {
              dp->overflow.store(true, std::memory_order_relaxed);
            }
          }
          totals[i] = key_total;
          if (spec.kind == AggregateKind::kAsk && !Ops::IsZero(key_total)) {
            witness.store(true, std::memory_order_relaxed);
          }
        }
      },
      spec.kind == AggregateKind::kAsk ? &witness : nullptr);
  return status;
}

struct PassOutcome {
  AggregateResult result;
  bool overflowed = false;
};

template <typename Ops>
Result<PassOutcome> RunPass(const QueryGraph& query, const AnswerGraph& ag,
                            const AggregatePlan& plan,
                            const AggregateSpec& spec,
                            const AggregateExecutorOptions& options) {
  using T = typename Ops::T;
  DpState<Ops> dp(query.NumVars());
  for (const AggregateTreeStep& step : plan.steps) {
    const Status st = FoldStep<Ops>(query, ag, step, options, &dp);
    if (!st.ok()) return st;
  }
  PassOutcome out;
  if (plan.mode == AggregateMode::kTreeDp) {
    WF_CHECK(dp.has_counts[plan.root] == 1)
        << "tree DP left its root unfolded";
    const std::vector<NodeId>& keys = dp.keys[plan.root];
    const std::vector<T>& counts = dp.counts[plan.root];
    out.result = ExtractResult<Ops>(
        keys, [&](size_t i) { return counts[keys[i]]; }, spec, &dp.overflow);
  } else {
    std::vector<NodeId> keys;
    std::vector<T> totals;
    const Status st = RunCycleSweep<Ops>(query, ag, plan, spec, options, &dp,
                                         &keys, &totals);
    if (!st.ok()) return st;
    out.result = ExtractResult<Ops>(
        keys, [&](size_t i) { return totals[i]; }, spec, &dp.overflow);
  }
  out.overflowed = dp.overflow.load(std::memory_order_relaxed);
  return out;
}

}  // namespace

std::string AggregateValue::ToString() const {
  U128 v = (static_cast<U128>(hi) << 64) | lo;
  std::string digits;
  if (v == 0) digits = "0";
  while (v != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  std::reverse(digits.begin(), digits.end());
  return saturated ? ">=" + digits : digits;
}

bool EnumeratingAggregateSink::Emit(const std::vector<NodeId>& binding) {
  ++rows_seen_;
  switch (spec_.kind) {
    case AggregateKind::kAsk:
      return false;  // one witness decides ASK; stop the enumeration
    case AggregateKind::kCountDistinct:
      distinct_.insert(binding[spec_.distinct_var]);
      return true;
    case AggregateKind::kCount:
      if (spec_.group_var != kInvalidVar) {
        ++group_counts_[binding[spec_.group_var]];
      }
      return true;
    default:
      return true;
  }
}

AggregateResult EnumeratingAggregateSink::TakeResult() {
  AggregateResult result;
  result.kind = spec_.kind;
  result.factorized = false;
  switch (spec_.kind) {
    case AggregateKind::kAsk:
      result.ask = rows_seen_ > 0;
      result.value = AggregateValue::FromU64(result.ask ? 1 : 0);
      break;
    case AggregateKind::kCountDistinct:
      result.value = AggregateValue::FromU64(distinct_.size());
      break;
    default:
      result.value = AggregateValue::FromU64(rows_seen_);
      if (spec_.kind == AggregateKind::kCount &&
          spec_.group_var != kInvalidVar) {
        result.groups.reserve(group_counts_.size());
        for (const auto& [key, count] : group_counts_) {
          result.groups.push_back({key, AggregateValue::FromU64(count)});
        }
        std::sort(result.groups.begin(), result.groups.end(),
                  [](const AggregateGroup& a, const AggregateGroup& b) {
                    return a.key < b.key;
                  });
      }
      break;
  }
  return result;
}

Result<AggregateResult> AggregateExecutor::Run(
    const AggregatePlan& plan, const AggregateSpec& spec,
    const AggregateExecutorOptions& options) const {
  WF_CHECK(plan.mode != AggregateMode::kEnumerate)
      << "enumerate plans run through phase 2, not the DP";
  WF_CHECK(ag_->IsFrozen()) << "the counting DP requires a frozen AG";
  {
    WF_ASSIGN_OR_RETURN(PassOutcome pass,
                        RunPass<U64Ops>(*query_, *ag_, plan, spec, options));
    if (!pass.overflowed) return std::move(pass.result);
  }
  // Loud promotion: some add or multiply left u64. Rerun the whole DP in
  // saturating 128-bit arithmetic — counting is AG-size-bound, so paying
  // it twice is still nothing next to enumerating the overflowing count.
  WF_ASSIGN_OR_RETURN(PassOutcome pass,
                      RunPass<Sat128Ops>(*query_, *ag_, plan, spec, options));
  return std::move(pass.result);
}

std::vector<ChordSlot> AggregateExecutor::MaterializedChords(
    const AnswerGraph& ag) {
  std::vector<ChordSlot> chords;
  for (uint32_t s = ag.NumQueryEdges(); s < ag.NumEdgeSets(); ++s) {
    if (!ag.IsMaterialized(s)) continue;
    chords.push_back({s, ag.SrcVar(s), ag.DstVar(s)});
  }
  return chords;
}

}  // namespace wireframe
