#include "exec/baselines.h"
#include "exec/join_common.h"

namespace wireframe {

Result<EngineStats> BacktrackEngine::Run(const Database& db,
                                         const Catalog& catalog,
                                         const QueryGraph& query,
                                         const EngineOptions& options,
                                         Sink* sink) {
  const std::vector<uint32_t> order = OrderBySmallestLabel(query, catalog);
  return RunPipelined(db, query, order, options.deadline,
                      options.runtime.cancel, sink);
}

}  // namespace wireframe
