#ifndef WIREFRAME_EXEC_JOIN_COMMON_H_
#define WIREFRAME_EXEC_JOIN_COMMON_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "catalog/estimator.h"
#include "exec/engine.h"
#include "query/query_graph.h"
#include "storage/database.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace wireframe {

/// Helpers shared by the baseline engines and the bushy executor. Each
/// baseline is a join *regime* (pipelined vs fully materializing)
/// combined with a join-order heuristic; these building blocks keep the
/// four engines honest: they differ only in the dimensions the paper's
/// comparison systems differ in.

/// A fully materialized join intermediate: flat row-major storage over a
/// schema of variables. Shared by every materializing join in the system
/// (the bushy executor's hash joins today); rows are appended as raw
/// cells so a morsel-parallel probe can concatenate chunks bit-identically
/// to a serial run.
struct JoinRelation {
  std::vector<VarId> schema;
  std::vector<NodeId> cells;  // rows.size() * schema.size()

  size_t Width() const { return schema.size(); }
  size_t NumRows() const {
    return schema.empty() ? 0 : cells.size() / schema.size();
  }
  const NodeId* Row(size_t r) const { return cells.data() + r * Width(); }

  /// Column index of variable v in the schema, or -1.
  int ColumnOf(VarId v) const {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == v) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Hashes the values of `cols` within one row (join-key hash).
uint64_t JoinKeyHash(const NodeId* row, const std::vector<int>& cols);

/// True iff the two rows agree on their respective join columns.
bool JoinKeysEqual(const NodeId* a, const std::vector<int>& acols,
                   const NodeId* b, const std::vector<int>& bcols);

/// Connected order choosing the smallest base relation first, then always
/// the connected edge with the smallest label cardinality (graph-
/// exploration flavor; the Neo4J-like baseline).
std::vector<uint32_t> OrderBySmallestLabel(const QueryGraph& query,
                                           const Catalog& catalog);

/// Connected order greedily minimizing the estimator's predicted matched
/// edges at each step (index-driven RDF-store flavor; the Virtuoso-like
/// and PostgreSQL-like baselines).
std::vector<uint32_t> OrderByEstimatedGrowth(const QueryGraph& query,
                                             const CardinalityEstimator& est);

/// The query's edges in written order, locally reordered only as needed to
/// keep the prefix connected (naive algebra flavor; the MonetDB-like
/// baseline).
std::vector<uint32_t> OrderAsWrittenConnected(const QueryGraph& query);

/// Pipelined (tuple-at-a-time, index nested loop) evaluation directly over
/// the triple store: depth-first extension of one binding at a time, no
/// intermediate materialization. Neo4J/Virtuoso regime. `cancel`
/// (borrowed, may be null) is the cooperative cancellation flag; it is
/// polled on the same amortized cadence as the deadline and surfaces as
/// Status::Cancelled.
Result<EngineStats> RunPipelined(const Database& db, const QueryGraph& query,
                                 const std::vector<uint32_t>& order,
                                 const Deadline& deadline,
                                 std::atomic<bool>* cancel, Sink* sink);

/// Fully materializing (relation-at-a-time) evaluation: every join step
/// produces the complete intermediate binding table before the next step
/// starts. PostgreSQL/MonetDB regime. `max_cells` bounds intermediate
/// memory (rows x vars); exceeding it aborts with OutOfRange, which the
/// benches report like a timeout.
///
/// `pool` (optional, not owned) parallelizes each build step over morsels
/// of the previous intermediate; per-morsel row chunks concatenate in
/// morsel order, so every intermediate — and the final result — is
/// bit-identical to the serial run. Null or single-threaded takes the
/// exact serial code path. `weight` is the scheduler share of the build
/// loops on a shared pool (service class of the owning query; see
/// ParallelForOptions::weight).
Result<EngineStats> RunMaterializing(const Database& db,
                                     const QueryGraph& query,
                                     const std::vector<uint32_t>& order,
                                     const Deadline& deadline,
                                     std::atomic<bool>* cancel,
                                     uint64_t max_cells, Sink* sink,
                                     ThreadPool* pool = nullptr,
                                     uint32_t weight = 1);

}  // namespace wireframe

#endif  // WIREFRAME_EXEC_JOIN_COMMON_H_
