#include "exec/join_common.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "util/hash.h"
#include "util/interrupt.h"
#include "util/logging.h"

namespace wireframe {

uint64_t JoinKeyHash(const NodeId* row, const std::vector<int>& cols) {
  uint64_t h = 1469598103934665603ull;
  for (int c : cols) h = Mix64(h ^ row[c]);
  return h;
}

bool JoinKeysEqual(const NodeId* a, const std::vector<int>& acols,
                   const NodeId* b, const std::vector<int>& bcols) {
  for (size_t i = 0; i < acols.size(); ++i) {
    if (a[acols[i]] != b[bcols[i]]) return false;
  }
  return true;
}

namespace {

bool Touches(const QueryGraph& query, const std::vector<bool>& bound,
             uint32_t e) {
  const QueryEdge& qe = query.Edge(e);
  return bound[qe.src] || bound[qe.dst];
}

void Bind(const QueryGraph& query, std::vector<bool>& bound, uint32_t e) {
  bound[query.Edge(e).src] = true;
  bound[query.Edge(e).dst] = true;
}

}  // namespace

std::vector<uint32_t> OrderBySmallestLabel(const QueryGraph& query,
                                           const Catalog& catalog) {
  const uint32_t n = query.NumEdges();
  std::vector<uint32_t> order;
  std::vector<bool> used(n, false);
  std::vector<bool> bound(query.NumVars(), false);
  for (uint32_t step = 0; step < n; ++step) {
    uint32_t best = UINT32_MAX;
    uint64_t best_count = UINT64_MAX;
    for (uint32_t e = 0; e < n; ++e) {
      if (used[e]) continue;
      if (step > 0 && !Touches(query, bound, e)) continue;
      const uint64_t count = catalog.EdgeCount(query.Edge(e).label);
      if (count < best_count) {
        best_count = count;
        best = e;
      }
    }
    WF_CHECK(best != UINT32_MAX) << "query graph must be connected";
    used[best] = true;
    Bind(query, bound, best);
    order.push_back(best);
  }
  return order;
}

std::vector<uint32_t> OrderByEstimatedGrowth(const QueryGraph& query,
                                             const CardinalityEstimator& est) {
  const uint32_t n = query.NumEdges();
  std::vector<uint32_t> order;
  std::vector<bool> used(n, false);
  std::vector<VarEstimate> vars(query.NumVars());
  for (uint32_t step = 0; step < n; ++step) {
    uint32_t best = UINT32_MAX;
    double best_growth = std::numeric_limits<double>::infinity();
    ExtensionEstimate best_est;
    for (uint32_t e = 0; e < n; ++e) {
      if (used[e]) continue;
      const QueryEdge& qe = query.Edge(e);
      if (step > 0 && !vars[qe.src].bound && !vars[qe.dst].bound) continue;
      ExtensionEstimate ext =
          est.EstimateExtension(qe.label, vars[qe.src], vars[qe.dst]);
      if (ext.matched_edges < best_growth) {
        best_growth = ext.matched_edges;
        best = e;
        best_est = ext;
      }
    }
    WF_CHECK(best != UINT32_MAX) << "query graph must be connected";
    used[best] = true;
    const QueryEdge& qe = query.Edge(best);
    vars[qe.src] = {true, best_est.new_src_candidates, qe.label,
                    End::kSubject};
    vars[qe.dst] = {true, best_est.new_dst_candidates, qe.label,
                    End::kObject};
    order.push_back(best);
  }
  return order;
}

std::vector<uint32_t> OrderAsWrittenConnected(const QueryGraph& query) {
  const uint32_t n = query.NumEdges();
  std::vector<uint32_t> order;
  std::vector<bool> used(n, false);
  std::vector<bool> bound(query.NumVars(), false);
  for (uint32_t step = 0; step < n; ++step) {
    uint32_t pick = UINT32_MAX;
    for (uint32_t e = 0; e < n; ++e) {
      if (used[e]) continue;
      if (step > 0 && !Touches(query, bound, e)) continue;
      pick = e;
      break;
    }
    WF_CHECK(pick != UINT32_MAX) << "query graph must be connected";
    used[pick] = true;
    Bind(query, bound, pick);
    order.push_back(pick);
  }
  return order;
}

namespace {

struct PipelineContext {
  const TripleStore* store;
  const QueryGraph* query;
  const std::vector<uint32_t>* order;
  Sink* sink;
  InterruptProbe probe;
  std::vector<NodeId> binding;
  uint64_t walks = 0;
  uint64_t emitted = 0;
  bool stop = false;

  /// Amortized deadline + cancellation probe; also true once the sink
  /// declined more rows.
  bool DeadlineHit() {
    if (stop) return true;
    if (!probe.Hit()) return false;
    stop = true;
    return true;
  }
};

void PipelineStep(PipelineContext& ctx, size_t depth) {
  if (ctx.stop) return;
  if (depth == ctx.order->size()) {
    ++ctx.emitted;
    if (!ctx.sink->Emit(ctx.binding)) ctx.stop = true;
    return;
  }
  const QueryEdge& qe = ctx.query->Edge((*ctx.order)[depth]);
  NodeId& src_slot = ctx.binding[qe.src];
  NodeId& dst_slot = ctx.binding[qe.dst];
  const bool src_bound = src_slot != kInvalidNode;
  const bool dst_bound = dst_slot != kInvalidNode;
  if (ctx.DeadlineHit()) return;

  if (src_bound && dst_bound) {
    ++ctx.walks;
    if (ctx.store->HasTriple(src_slot, qe.label, dst_slot)) {
      PipelineStep(ctx, depth + 1);
    }
    return;
  }
  if (src_bound) {
    ++ctx.walks;
    for (NodeId o : ctx.store->OutNeighbors(qe.label, src_slot)) {
      if (ctx.stop) return;
      ++ctx.walks;
      dst_slot = o;
      PipelineStep(ctx, depth + 1);
      dst_slot = kInvalidNode;
    }
    return;
  }
  if (dst_bound) {
    ++ctx.walks;
    for (NodeId s : ctx.store->InNeighbors(qe.label, dst_slot)) {
      if (ctx.stop) return;
      ++ctx.walks;
      src_slot = s;
      PipelineStep(ctx, depth + 1);
      src_slot = kInvalidNode;
    }
    return;
  }
  // First edge: scan the label.
  std::vector<std::pair<NodeId, NodeId>> edges =
      ctx.store->EdgeList(qe.label);
  ctx.walks += edges.size();
  for (auto [s, o] : edges) {
    if (ctx.stop) return;
    src_slot = s;
    dst_slot = o;
    PipelineStep(ctx, depth + 1);
    src_slot = kInvalidNode;
    dst_slot = kInvalidNode;
  }
}

}  // namespace

Result<EngineStats> RunPipelined(const Database& db, const QueryGraph& query,
                                 const std::vector<uint32_t>& order,
                                 const Deadline& deadline,
                                 std::atomic<bool>* cancel, Sink* sink) {
  Stopwatch watch;
  PipelineContext ctx;
  ctx.store = &db.store();
  ctx.query = &query;
  ctx.order = &order;
  ctx.sink = sink;
  ctx.probe = InterruptProbe(deadline, cancel);
  ctx.binding.assign(query.NumVars(), kInvalidNode);
  PipelineStep(ctx, 0);
  WF_RETURN_NOT_OK(ctx.probe.StatusFor("pipelined evaluation"));
  EngineStats stats;
  stats.seconds = watch.ElapsedSeconds();
  stats.edge_walks = ctx.walks;
  stats.output_tuples = ctx.emitted;
  return stats;
}

namespace {

/// Source rows per morsel for the parallel build side.
constexpr uint64_t kBuildMorsel = 512;

}  // namespace

Result<EngineStats> RunMaterializing(const Database& db,
                                     const QueryGraph& query,
                                     const std::vector<uint32_t>& order,
                                     const Deadline& deadline,
                                     std::atomic<bool>* cancel,
                                     uint64_t max_cells, Sink* sink,
                                     ThreadPool* pool, uint32_t weight) {
  Stopwatch watch;
  const TripleStore& store = db.store();
  const uint32_t num_vars = query.NumVars();
  const bool parallel = pool != nullptr && pool->num_threads() > 1;

  // Rows are full-width bindings; unbound slots hold kInvalidNode.
  std::vector<std::vector<NodeId>> rows;
  EngineStats stats;
  InterruptProbe probe(deadline, cancel, /*stride=*/1024);

  bool first = true;
  for (uint32_t e : order) {
    const QueryEdge& qe = query.Edge(e);
    std::vector<std::vector<NodeId>> next;

    // Extends one source row by `qe`, appending the surviving bindings to
    // `out` and charging index work to `walks`. Shared by the serial loop
    // and the parallel morsel bodies.
    auto extend_row = [&](std::vector<NodeId>& row,
                          std::vector<std::vector<NodeId>>& out,
                          uint64_t& walks) {
      const bool src_bound = row[qe.src] != kInvalidNode;
      const bool dst_bound = row[qe.dst] != kInvalidNode;
      if (src_bound && dst_bound) {
        ++walks;
        if (store.HasTriple(row[qe.src], qe.label, row[qe.dst])) {
          out.push_back(std::move(row));
        }
      } else if (src_bound) {
        ++walks;
        for (NodeId o : store.OutNeighbors(qe.label, row[qe.src])) {
          ++walks;
          std::vector<NodeId> extended = row;
          extended[qe.dst] = o;
          out.push_back(std::move(extended));
        }
      } else if (dst_bound) {
        ++walks;
        for (NodeId s : store.InNeighbors(qe.label, row[qe.dst])) {
          ++walks;
          std::vector<NodeId> extended = row;
          extended[qe.src] = s;
          out.push_back(std::move(extended));
        }
      } else {
        WF_CHECK(false) << "disconnected materializing plan";
      }
    };

    if (first) {
      first = false;
      store.ForEachEdge(qe.label, [&](NodeId s, NodeId o) {
        std::vector<NodeId> row(num_vars, kInvalidNode);
        row[qe.src] = s;
        row[qe.dst] = o;
        next.push_back(std::move(row));
      });
      stats.edge_walks += next.size();
    } else if (parallel && rows.size() > kBuildMorsel) {
      // Morsel-parallel build: each morsel extends its slice of the
      // previous intermediate into a private chunk; chunks concatenate in
      // morsel order, keeping the intermediate bit-identical to the
      // serial run. Only the shared immutable store is read.
      const uint64_t num_morsels =
          (rows.size() + kBuildMorsel - 1) / kBuildMorsel;
      std::vector<std::vector<std::vector<NodeId>>> chunks(num_morsels);
      std::vector<uint64_t> chunk_walks(num_morsels, 0);
      std::atomic<uint64_t> rows_in_flight{0};
      std::atomic<bool> over_budget{false};
      ParallelForOptions pf;
      pf.morsel_size = kBuildMorsel;
      pf.deadline = deadline;
      pf.stop = &over_budget;
      pf.cancel = cancel;
      pf.weight = weight;
      const Status st = pool->ParallelFor(
          rows.size(), pf, [&](uint32_t, uint64_t begin, uint64_t end) {
            const uint64_t m = begin / kBuildMorsel;
            for (uint64_t i = begin; i < end; ++i) {
              extend_row(rows[i], chunks[m], chunk_walks[m]);
            }
            const uint64_t produced = rows_in_flight.fetch_add(
                chunks[m].size(), std::memory_order_relaxed);
            if ((produced + chunks[m].size()) * num_vars > max_cells) {
              over_budget.store(true, std::memory_order_relaxed);
            }
          });
      if (st.IsCancelled()) return Status::Cancelled("materializing join");
      if (st.IsTimedOut()) return Status::TimedOut("materializing join");
      uint64_t merged = 0;
      for (const auto& chunk : chunks) merged += chunk.size();
      if (over_budget.load(std::memory_order_relaxed) ||
          merged * num_vars > max_cells) {
        return Status::OutOfRange(
            "intermediate result exceeded the memory budget");
      }
      next.reserve(merged);
      for (uint64_t m = 0; m < num_morsels; ++m) {
        for (std::vector<NodeId>& row : chunks[m]) {
          next.push_back(std::move(row));
        }
        stats.edge_walks += chunk_walks[m];
      }
    } else {
      for (std::vector<NodeId>& row : rows) {
        if (probe.Hit()) return probe.StatusFor("materializing join");
        extend_row(row, next, stats.edge_walks);
        if (static_cast<uint64_t>(next.size()) * num_vars > max_cells) {
          return Status::OutOfRange(
              "intermediate result exceeded the memory budget");
        }
      }
    }
    rows = std::move(next);
    stats.peak_intermediate =
        std::max(stats.peak_intermediate, static_cast<uint64_t>(rows.size()));
    WF_RETURN_NOT_OK(probe.CheckNow("materializing join"));
    if (static_cast<uint64_t>(rows.size()) * num_vars > max_cells) {
      return Status::OutOfRange(
          "intermediate result exceeded the memory budget");
    }
  }

  for (const std::vector<NodeId>& row : rows) {
    // The final scan honors the run deadline (and cancellation) too, so
    // oversized results cannot stretch a 300 s-style budget unchecked.
    if (probe.Hit()) return probe.StatusFor("materializing join");
    ++stats.output_tuples;
    if (!sink->Emit(row)) break;
  }
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

}  // namespace wireframe
