#include <memory>

#include "exec/baselines.h"
#include "exec/join_common.h"
#include "util/thread_pool.h"

namespace wireframe {

Result<EngineStats> HashJoinEngine::Run(const Database& db,
                                        const Catalog& catalog,
                                        const QueryGraph& query,
                                        const EngineOptions& options,
                                        Sink* sink) {
  CardinalityEstimator estimator(catalog);
  const std::vector<uint32_t> order = OrderByEstimatedGrowth(query, estimator);
  // The build side of every join step is morsel-parallel (Table-1 stays
  // apples-to-apples with the parallel Wireframe phases); threads==1
  // with no shared runtime keeps the serial path.
  PoolLease lease(options);
  return RunMaterializing(db, query, order, options.deadline,
                          options.runtime.cancel, kMaxCells, sink,
                          lease.get(), options.runtime.weight);
}

}  // namespace wireframe
