#include <memory>

#include "exec/baselines.h"
#include "exec/join_common.h"
#include "util/thread_pool.h"

namespace wireframe {

Result<EngineStats> HashJoinEngine::Run(const Database& db,
                                        const Catalog& catalog,
                                        const QueryGraph& query,
                                        const EngineOptions& options,
                                        Sink* sink) {
  CardinalityEstimator estimator(catalog);
  const std::vector<uint32_t> order = OrderByEstimatedGrowth(query, estimator);
  // The build side of every join step is morsel-parallel (Table-1 stays
  // apples-to-apples with the parallel Wireframe phases); threads==1
  // keeps the serial path.
  const uint32_t threads = ThreadPool::ResolveThreads(options.threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  return RunMaterializing(db, query, order, options.deadline, kMaxCells,
                          sink, pool.get());
}

}  // namespace wireframe
