#ifndef WIREFRAME_EXEC_BASELINES_H_
#define WIREFRAME_EXEC_BASELINES_H_

#include "exec/engine.h"

namespace wireframe {

/// PostgreSQL-like baseline (paper tag PG): relational evaluation — a
/// cost-based left-deep join order over the triple-store indexes with full
/// intermediate materialization at every join step. Good plans, but every
/// many-many blow-up is paid in materialized tuples.
class HashJoinEngine : public Engine {
 public:
  std::string_view name() const override { return "PG"; }
  bool SupportsThreads() const override { return true; }
  Result<EngineStats> Run(const Database& db, const Catalog& catalog,
                          const QueryGraph& query, const EngineOptions& options,
                          Sink* sink) override;

  /// Intermediate-size budget in binding cells (rows x vars); exceeding it
  /// reports OutOfRange, which benches print like a timeout.
  static constexpr uint64_t kMaxCells = 400ull << 20;  // ~1.6 GB of NodeIds
};

/// Virtuoso-like baseline (VT): index-driven, pipelined (vectorized INLJ
/// in the real system) with a cost-based greedy order. No materialization,
/// but every embedding is walked tuple-at-a-time from the data graph.
class IndexNestedLoopEngine : public Engine {
 public:
  std::string_view name() const override { return "VT"; }
  Result<EngineStats> Run(const Database& db, const Catalog& catalog,
                          const QueryGraph& query, const EngineOptions& options,
                          Sink* sink) override;
};

/// MonetDB-like baseline (MD): column-at-a-time algebra — joins run in
/// written order (connectivity-repaired only) and each operator fully
/// materializes its result. The regime that times out first on exploding
/// intermediates, as in the paper's Table 1.
class ColumnarEngine : public Engine {
 public:
  std::string_view name() const override { return "MD"; }
  Result<EngineStats> Run(const Database& db, const Catalog& catalog,
                          const QueryGraph& query, const EngineOptions& options,
                          Sink* sink) override;

  static constexpr uint64_t kMaxCells = 400ull << 20;
};

/// Neo4J-like baseline (NJ): graph-exploration pattern matching —
/// pipelined depth-first expansion ordered by label cardinality only (no
/// join-cardinality statistics). Doubles as the correctness oracle in the
/// test suite.
class BacktrackEngine : public Engine {
 public:
  std::string_view name() const override { return "NJ"; }
  Result<EngineStats> Run(const Database& db, const Catalog& catalog,
                          const QueryGraph& query, const EngineOptions& options,
                          Sink* sink) override;
};

}  // namespace wireframe

#endif  // WIREFRAME_EXEC_BASELINES_H_
