#ifndef WIREFRAME_EXEC_SINK_H_
#define WIREFRAME_EXEC_SINK_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/common.h"
#include "util/hash.h"

namespace wireframe {

/// Consumer of embedding tuples. Engines call Emit once per embedding
/// with the full variable binding (indexed by VarId); the sink decides
/// whether to count, collect, project, or stop early.
class Sink {
 public:
  virtual ~Sink();

  /// Receives one embedding. Returning false asks the engine to stop
  /// (used by LIMIT-style consumers); engines then finish with OK status.
  virtual bool Emit(const std::vector<NodeId>& binding) = 0;

  /// Number of tuples accepted so far.
  virtual uint64_t count() const = 0;
};

/// Counts embeddings without storing them (the benches' default: the
/// paper measures "the time spent to retrieve all the result tuples").
class CountingSink : public Sink {
 public:
  bool Emit(const std::vector<NodeId>&) override {
    ++count_;
    return true;
  }
  uint64_t count() const override { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Counts up to a limit, then stops the engine. Used by the query miner's
/// non-emptiness probes (limit 1).
class LimitSink : public Sink {
 public:
  explicit LimitSink(uint64_t limit) : limit_(limit) {}
  bool Emit(const std::vector<NodeId>&) override {
    return ++count_ < limit_;
  }
  uint64_t count() const override { return count_; }

 private:
  uint64_t limit_;
  uint64_t count_ = 0;
};

/// Stores full bindings (tests and small examples only).
class CollectingSink : public Sink {
 public:
  bool Emit(const std::vector<NodeId>& binding) override {
    rows_.push_back(binding);
    return true;
  }
  uint64_t count() const override { return rows_.size(); }
  const std::vector<std::vector<NodeId>>& rows() const { return rows_; }
  std::vector<std::vector<NodeId>>& rows() { return rows_; }

 private:
  std::vector<std::vector<NodeId>> rows_;
};

/// Projects each binding onto `projection` and forwards only distinct
/// projected tuples to the wrapped sink (SELECT DISTINCT ?a ?b semantics
/// when the projection drops variables).
class DistinctProjectingSink : public Sink {
 public:
  DistinctProjectingSink(std::vector<VarId> projection, Sink* inner)
      : projection_(std::move(projection)), inner_(inner) {}

  bool Emit(const std::vector<NodeId>& binding) override {
    projected_.clear();
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (VarId v : projection_) {
      projected_.push_back(binding[v]);
      h = Mix64(h ^ binding[v]);
    }
    if (!seen_.insert(h).second) return true;  // likely-duplicate: skip
    return inner_->Emit(projected_);
  }
  uint64_t count() const override { return inner_->count(); }

 private:
  std::vector<VarId> projection_;
  Sink* inner_;
  std::vector<NodeId> projected_;
  std::unordered_set<uint64_t, Hash64> seen_;
};

}  // namespace wireframe

#endif  // WIREFRAME_EXEC_SINK_H_
