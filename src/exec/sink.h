#ifndef WIREFRAME_EXEC_SINK_H_
#define WIREFRAME_EXEC_SINK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "util/common.h"
#include "util/hash.h"

namespace wireframe {

/// Consumer of embedding tuples. Engines call Emit once per embedding
/// with the full variable binding (indexed by VarId); the sink decides
/// whether to count, collect, project, or stop early.
class Sink {
 public:
  virtual ~Sink();

  /// Receives one embedding. Returning false asks the engine to stop
  /// (used by LIMIT-style consumers); engines then finish with OK status.
  virtual bool Emit(const std::vector<NodeId>& binding) = 0;

  /// Number of tuples accepted so far.
  virtual uint64_t count() const = 0;
};

/// Counts embeddings without storing them (the benches' default: the
/// paper measures "the time spent to retrieve all the result tuples").
class CountingSink : public Sink {
 public:
  bool Emit(const std::vector<NodeId>&) override {
    ++count_;
    return true;
  }
  uint64_t count() const override { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Counts up to a limit, then stops the engine. Used by the query miner's
/// non-emptiness probes (limit 1).
class LimitSink : public Sink {
 public:
  explicit LimitSink(uint64_t limit) : limit_(limit) {}
  bool Emit(const std::vector<NodeId>&) override {
    return ++count_ < limit_;
  }
  uint64_t count() const override { return count_; }

 private:
  uint64_t limit_;
  uint64_t count_ = 0;
};

/// Stores full bindings (tests and small examples only).
class CollectingSink : public Sink {
 public:
  bool Emit(const std::vector<NodeId>& binding) override {
    rows_.push_back(binding);
    return true;
  }
  uint64_t count() const override { return rows_.size(); }
  const std::vector<std::vector<NodeId>>& rows() const { return rows_; }
  std::vector<std::vector<NodeId>>& rows() { return rows_; }

 private:
  std::vector<std::vector<NodeId>> rows_;
};

/// Projects each binding onto `projection` and forwards only distinct
/// projected tuples to the wrapped sink (SELECT DISTINCT ?a ?b semantics
/// when the projection drops variables).
class DistinctProjectingSink : public Sink {
 public:
  DistinctProjectingSink(std::vector<VarId> projection, Sink* inner)
      : projection_(std::move(projection)), inner_(inner) {}

  bool Emit(const std::vector<NodeId>& binding) override {
    projected_.clear();
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (VarId v : projection_) {
      projected_.push_back(binding[v]);
      h = Mix64(h ^ binding[v]);
    }
    if (!seen_.insert(h).second) return true;  // likely-duplicate: skip
    return inner_->Emit(projected_);
  }
  uint64_t count() const override { return inner_->count(); }

 private:
  std::vector<VarId> projection_;
  Sink* inner_;
  std::vector<NodeId> projected_;
  std::unordered_set<uint64_t, Hash64> seen_;
};

/// Forwards each binding with its columns permuted: out[v] =
/// in[mapping[v]]. The runtime's answer-graph cache executes queries in
/// canonical variable order (query/canonical.h) and uses this to hand
/// the request sink rows back in the submitted query's variable order
/// (`mapping[v]` = canonical position of variable v). The scratch row is
/// reused across Emit calls under the same no-concurrent-Emit contract
/// every sink here relies on.
class RemapSink : public Sink {
 public:
  RemapSink(Sink* inner, std::vector<VarId> mapping)
      : inner_(inner),
        mapping_(std::move(mapping)),
        row_(mapping_.size(), kInvalidNode) {}

  bool Emit(const std::vector<NodeId>& binding) override {
    for (size_t v = 0; v < mapping_.size(); ++v) {
      row_[v] = binding[mapping_[v]];
    }
    return inner_->Emit(row_);
  }
  uint64_t count() const override { return inner_->count(); }

 private:
  Sink* inner_;
  std::vector<VarId> mapping_;
  std::vector<NodeId> row_;
};

/// Per-worker front for a shared sink during parallel enumeration.
///
/// Sinks are not thread-safe, so each worker emits into its own SinkShard,
/// which buffers rows and drains them to the shared inner sink under the
/// shared mutex only at batch granularity — the lock is taken once per
/// `batch` embeddings, not once per embedding. When the inner sink
/// declines a row (LIMIT-style consumers), the shard raises the shared
/// stop flag; other shards observe it on their next Emit and stop
/// producing, and rows still buffered after the stop are discarded, never
/// handed to the inner sink.
class SinkShard : public Sink {
 public:
  SinkShard(Sink* inner, std::mutex* mu, std::atomic<bool>* stop,
            size_t batch = 256)
      : inner_(inner), mu_(mu), stop_(stop), batch_(batch) {}

  bool Emit(const std::vector<NodeId>& binding) override {
    if (stop_->load(std::memory_order_relaxed)) return false;
    // Rows are buffered row-major in one flat vector (all bindings of a
    // query have the same width), so steady-state buffering is a memcpy
    // into reused capacity — no per-row allocation on the hot path.
    if (width_ == 0) {
      width_ = binding.size();
      buffer_.reserve(batch_ * width_);
    }
    buffer_.insert(buffer_.end(), binding.begin(), binding.end());
    if (++buffered_rows_ >= batch_) return Flush();
    return true;
  }

  /// Drains the buffer to the inner sink. Returns false if production
  /// should stop. Call once more after the parallel loop so the tail
  /// batch is not lost.
  bool Flush() {
    if (buffered_rows_ == 0) {
      return !stop_->load(std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(*mu_);
    for (size_t r = 0; r < buffered_rows_; ++r) {
      if (stop_->load(std::memory_order_relaxed)) break;
      scratch_.assign(buffer_.begin() + r * width_,
                      buffer_.begin() + (r + 1) * width_);
      ++forwarded_;
      if (!inner_->Emit(scratch_)) {
        stop_->store(true, std::memory_order_relaxed);
        break;
      }
    }
    buffer_.clear();
    buffered_rows_ = 0;
    return !stop_->load(std::memory_order_relaxed);
  }

  /// Rows actually handed to the inner sink by this shard.
  uint64_t count() const override { return forwarded_; }

 private:
  Sink* inner_;
  std::mutex* mu_;
  std::atomic<bool>* stop_;
  size_t batch_;
  size_t width_ = 0;
  size_t buffered_rows_ = 0;
  std::vector<NodeId> buffer_;    // row-major, buffered_rows_ x width_
  std::vector<NodeId> scratch_;   // one row, reused across Flush calls
  uint64_t forwarded_ = 0;
};

}  // namespace wireframe

#endif  // WIREFRAME_EXEC_SINK_H_
