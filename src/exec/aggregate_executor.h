#ifndef WIREFRAME_EXEC_AGGREGATE_EXECUTOR_H_
#define WIREFRAME_EXEC_AGGREGATE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/answer_graph.h"
#include "exec/sink.h"
#include "planner/aggregate_planner.h"
#include "query/query_graph.h"
#include "util/result.h"
#include "util/timer.h"

namespace wireframe {

class ThreadPool;

/// A count that survives past 2^64. The DP runs in u64 with explicit
/// overflow checks and reruns in saturating unsigned 128-bit arithmetic
/// the moment any add or multiply overflows — dense shapes genuinely
/// exceed u64, which is the point of counting on the factorized form
/// instead of enumerating it.
struct AggregateValue {
  uint64_t lo = 0;
  uint64_t hi = 0;
  /// True when even 128 bits overflowed: lo/hi then hold the saturated
  /// maximum and ToString() renders a ">=" bound. Surfaced per query in
  /// runtime::QueryReport.
  bool saturated = false;

  static AggregateValue FromU64(uint64_t v) { return {v, 0, false}; }

  bool IsZero() const { return lo == 0 && hi == 0; }
  bool ExceedsU64() const { return hi != 0 || saturated; }
  /// Exact decimal rendering; saturated values render as
  /// ">=340282366920938463463374607431768211455".
  std::string ToString() const;

  friend bool operator==(const AggregateValue&,
                         const AggregateValue&) = default;
};

/// One GROUP BY row: the group key (a data node of the grouped variable)
/// and its embedding count.
struct AggregateGroup {
  NodeId key = kInvalidNode;
  AggregateValue value;

  friend bool operator==(const AggregateGroup&,
                         const AggregateGroup&) = default;
};

/// Result of an aggregate query, scalar or grouped.
struct AggregateResult {
  AggregateKind kind = AggregateKind::kNone;
  /// The scalar answer: COUNT(*) over all embeddings, COUNT(DISTINCT)
  /// over the counted variable, 1/0 for ASK. For GROUP BY this is the
  /// ungrouped total (the sum over groups, saturating).
  AggregateValue value;
  /// ASK verdict (kAsk only).
  bool ask = false;
  /// GROUP BY rows, ascending by key; zero-count groups are omitted
  /// (they have no embedding to group).
  std::vector<AggregateGroup> groups;
  /// True when the factorized counting DP produced this result without
  /// materializing a single embedding; false for enumerate-then-count.
  bool factorized = false;
  /// Why the DP was declined (fallback runs only).
  std::string fallback_reason;

  /// Result rows this aggregate stands for: #groups when grouped, 1
  /// otherwise.
  uint64_t NumRows() const {
    return kind == AggregateKind::kCount && !groups.empty() ? groups.size()
                                                            : 1;
  }
};

/// Sink variant for consumers of aggregate results. Engines route
/// aggregate queries away from row emission entirely and deliver one
/// AggregateResult through OnAggregate instead; Emit never fires for
/// them.
class AggregateSink : public Sink {
 public:
  bool Emit(const std::vector<NodeId>&) override { return true; }
  uint64_t count() const override { return 0; }

  virtual void OnAggregate(const AggregateResult& result) = 0;
};

/// Stores the single delivered result (tests, server plumbing).
class CollectingAggregateSink : public AggregateSink {
 public:
  void OnAggregate(const AggregateResult& result) override {
    result_ = result;
    has_result_ = true;
  }

  bool has_result() const { return has_result_; }
  const AggregateResult& result() const { return result_; }

 private:
  AggregateResult result_;
  bool has_result_ = false;
};

/// Enumerate-then-count fallback: folds emitted embedding rows into the
/// same AggregateResult shape the DP produces. Engines run their normal
/// phase 2 into this when the plan is kEnumerate, and the equivalence
/// tests use it to certify DP results. ASK declines rows after the
/// first, stopping the enumeration early exactly like LimitSink. Rows
/// must be full var-indexed bindings (what the engines emit).
class EnumeratingAggregateSink : public Sink {
 public:
  explicit EnumeratingAggregateSink(const AggregateSpec& spec)
      : spec_(spec) {}

  bool Emit(const std::vector<NodeId>& binding) override;
  uint64_t count() const override { return rows_seen_; }

  /// Finalizes (sorts groups ascending) and returns the result.
  AggregateResult TakeResult();

 private:
  AggregateSpec spec_;
  uint64_t rows_seen_ = 0;
  std::unordered_set<NodeId> distinct_;
  std::unordered_map<NodeId, uint64_t> group_counts_;
};

struct AggregateExecutorOptions {
  Deadline deadline;
  /// Borrowed morsel pool (null runs the exact serial path).
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation, polled like the deadline. May be null.
  std::atomic<bool>* cancel = nullptr;
  /// Task-group scheduler weight on a shared pool.
  uint32_t weight = 1;
};

/// The factorized aggregate executor: evaluates COUNT(*),
/// COUNT(DISTINCT ?v), ASK, and GROUP BY ?v COUNT(*) directly on the
/// frozen CSR answer graph via the counting DP the AggregatePlanner
/// chose — AG-size-bound instead of output-size-bound, no embedding is
/// ever materialized. Requires a frozen AnswerGraph.
class AggregateExecutor {
 public:
  AggregateExecutor(const QueryGraph& query, const AnswerGraph& ag)
      : query_(&query), ag_(&ag) {}

  /// Runs a kTreeDp or kCycleDp plan (kEnumerate is the caller's job —
  /// run phase 2 into an EnumeratingAggregateSink instead).
  Result<AggregateResult> Run(const AggregatePlan& plan,
                              const AggregateSpec& spec,
                              const AggregateExecutorOptions& options) const;

  /// The materialized chords of `ag`, in the shape the planner wants.
  static std::vector<ChordSlot> MaterializedChords(const AnswerGraph& ag);

 private:
  const QueryGraph* query_;
  const AnswerGraph* ag_;
};

}  // namespace wireframe

#endif  // WIREFRAME_EXEC_AGGREGATE_EXECUTOR_H_
