#include "exec/sink.h"

namespace wireframe {

// Out-of-line destructor anchors the vtable in this translation unit.
Sink::~Sink() = default;

}  // namespace wireframe
