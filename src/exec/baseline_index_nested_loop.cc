#include "exec/baselines.h"
#include "exec/join_common.h"

namespace wireframe {

Result<EngineStats> IndexNestedLoopEngine::Run(const Database& db,
                                               const Catalog& catalog,
                                               const QueryGraph& query,
                                               const EngineOptions& options,
                                               Sink* sink) {
  CardinalityEstimator estimator(catalog);
  const std::vector<uint32_t> order = OrderByEstimatedGrowth(query, estimator);
  return RunPipelined(db, query, order, options.deadline,
                      options.runtime.cancel, sink);
}

}  // namespace wireframe
