#ifndef WIREFRAME_EXEC_ENGINE_H_
#define WIREFRAME_EXEC_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "exec/sink.h"
#include "query/query_graph.h"
#include "storage/database.h"
#include "util/result.h"
#include "util/timer.h"

namespace wireframe {

class ThreadPool;

/// Ties one engine Run into a shared query runtime. Both fields are
/// borrowed (the runtime outlives the Run) and both may be null: a null
/// pool means the engine owns its parallelism (EngineOptions::threads),
/// a null cancel means the run cannot be revoked.
struct RuntimeHandle {
  /// Process-wide worker pool shared by every in-flight query. When set,
  /// EngineOptions::threads is ignored and every morsel-parallel loop of
  /// the run is submitted to this pool as a fairly-scheduled task-group,
  /// interleaving with the other queries' loops at morsel granularity.
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation: engines poll this flag on the same
  /// amortized cadence as the deadline and return Status::Cancelled once
  /// it is set. Results already emitted to the sink stay emitted.
  std::atomic<bool>* cancel = nullptr;
  /// Scheduler weight of every task-group this run submits to the shared
  /// pool (service class, see runtime::TenantSpec): pool workers divide
  /// themselves between concurrent queries' morsel loops in proportion to
  /// this, so a latency-class run preempts batch runs at morsel
  /// granularity without starving them. Ignored when `pool` is null.
  uint32_t weight = 1;
};

/// Per-run knobs common to every engine.
struct EngineOptions {
  /// Wall-clock budget; expired runs return Status::TimedOut (the paper
  /// terminates queries at 300 s and prints '*').
  Deadline deadline;
  /// Worker threads for the morsel-driven parallel phases (Wireframe
  /// generation and defactorization, the hash-join baseline's build
  /// side). 1 runs the exact serial code paths; 0 means one thread per
  /// hardware core. Results are thread-count-invariant: the embedding
  /// multiset and |AG| are identical for every value. Ignored when
  /// `runtime.pool` is set — the shared pool's size governs.
  uint32_t threads = 1;
  /// Shared-runtime variant: borrowed pool + cancellation (see
  /// RuntimeHandle). Default-empty keeps the historical one-pool-per-Run
  /// behavior.
  RuntimeHandle runtime;
};

/// Resolves EngineOptions to the worker pool a Run should use: the shared
/// runtime pool when one is handed in, otherwise a privately owned pool
/// when threads > 1, otherwise none (exact serial paths). Engines hold
/// one lease for the duration of Run.
class PoolLease {
 public:
  explicit PoolLease(const EngineOptions& options);
  ~PoolLease();

  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;

  /// The pool to run morsel loops on; null means stay serial.
  ThreadPool* get() const { return pool_; }
  /// Worker slots available to this run (1 when serial).
  uint32_t threads() const;

 private:
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_;
};

/// Execution metrics an engine reports alongside its results.
struct EngineStats {
  /// Wall-clock seconds of the Run call.
  double seconds = 0.0;
  /// Edge walks: index probes plus edges retrieved (the paper's cost
  /// unit). Engines count what their access pattern actually retrieves.
  uint64_t edge_walks = 0;
  /// Embeddings emitted to the sink.
  uint64_t output_tuples = 0;
  /// Answer-graph size |AG| (Wireframe only; 0 for baselines).
  uint64_t ag_pairs = 0;
  /// Peak materialized intermediate tuples (materializing engines only).
  uint64_t peak_intermediate = 0;
  // Node-burnback diagnostics (Wireframe only; 0 for baselines). Carried
  // here so the runtime's QueryReport surfaces them per query.
  /// Pairs erased by cascading node burnback (thread-count invariant).
  uint64_t pairs_burned = 0;
  /// Deepest cascade level reached (seed deaths are depth 1).
  uint64_t burnback_depth = 0;
  /// Cascade deaths handed across worklist partitions by the parallel
  /// drain (0 on serial drains).
  uint64_t burnback_handoffs = 0;
  // Phase wall-time split (Wireframe only; 0 for baselines — they have
  // no phases). burnback/freeze are slices of phase 1. On EngineStats so
  // generic consumers (bench harness, runtime reports) need no
  // engine-specific casts.
  double phase1_seconds = 0.0;
  double burnback_seconds = 0.0;
  double freeze_seconds = 0.0;
  double phase2_seconds = 0.0;
  /// Slice of phase 2 spent producing an aggregate result (the counting
  /// DP, or the enumerate-then-count fallback). 0 for plain SELECTs.
  double aggregate_seconds = 0.0;
};

/// A conjunctive-query evaluator. Implementations: the Wireframe
/// answer-graph engine (core/) and the four baseline regimes (exec/)
/// standing in for the paper's PostgreSQL, Virtuoso, MonetDB, and Neo4J
/// comparisons.
class Engine {
 public:
  virtual ~Engine();

  /// Short identifier ("WF", "PG", "VT", "MD", "NJ").
  virtual std::string_view name() const = 0;

  /// True iff Run reads EngineOptions::threads (Wireframe's two phases
  /// and the hash-join baseline's build side). The pipelined baselines
  /// are inherently tuple-at-a-time and stay serial; benches use this to
  /// record the thread count a cell actually ran with.
  virtual bool SupportsThreads() const { return false; }

  /// Evaluates `query` over `db`, emitting every embedding to `sink`.
  /// Timeout surfaces as Status::TimedOut; other statuses are planning or
  /// validation failures.
  virtual Result<EngineStats> Run(const Database& db, const Catalog& catalog,
                                  const QueryGraph& query,
                                  const EngineOptions& options,
                                  Sink* sink) = 0;
};

/// Instantiates a baseline engine by its paper tag ("PG", "VT", "MD",
/// "NJ") or the Wireframe engine ("WF", default options). Unknown names
/// return nullptr.
std::unique_ptr<Engine> MakeEngine(std::string_view name);

/// All engine tags in the paper's column order: PG, WF, VT, MD, NJ.
std::vector<std::string> AllEngineNames();

}  // namespace wireframe

#endif  // WIREFRAME_EXEC_ENGINE_H_
