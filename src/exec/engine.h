#ifndef WIREFRAME_EXEC_ENGINE_H_
#define WIREFRAME_EXEC_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "exec/sink.h"
#include "query/query_graph.h"
#include "storage/database.h"
#include "util/result.h"
#include "util/timer.h"

namespace wireframe {

/// Per-run knobs common to every engine.
struct EngineOptions {
  /// Wall-clock budget; expired runs return Status::TimedOut (the paper
  /// terminates queries at 300 s and prints '*').
  Deadline deadline;
  /// Worker threads for the morsel-driven parallel phases (Wireframe
  /// generation and defactorization, the hash-join baseline's build
  /// side). 1 runs the exact serial code paths; 0 means one thread per
  /// hardware core. Results are thread-count-invariant: the embedding
  /// multiset and |AG| are identical for every value.
  uint32_t threads = 1;
};

/// Execution metrics an engine reports alongside its results.
struct EngineStats {
  /// Wall-clock seconds of the Run call.
  double seconds = 0.0;
  /// Edge walks: index probes plus edges retrieved (the paper's cost
  /// unit). Engines count what their access pattern actually retrieves.
  uint64_t edge_walks = 0;
  /// Embeddings emitted to the sink.
  uint64_t output_tuples = 0;
  /// Answer-graph size |AG| (Wireframe only; 0 for baselines).
  uint64_t ag_pairs = 0;
  /// Peak materialized intermediate tuples (materializing engines only).
  uint64_t peak_intermediate = 0;
};

/// A conjunctive-query evaluator. Implementations: the Wireframe
/// answer-graph engine (core/) and the four baseline regimes (exec/)
/// standing in for the paper's PostgreSQL, Virtuoso, MonetDB, and Neo4J
/// comparisons.
class Engine {
 public:
  virtual ~Engine();

  /// Short identifier ("WF", "PG", "VT", "MD", "NJ").
  virtual std::string_view name() const = 0;

  /// True iff Run reads EngineOptions::threads (Wireframe's two phases
  /// and the hash-join baseline's build side). The pipelined baselines
  /// are inherently tuple-at-a-time and stay serial; benches use this to
  /// record the thread count a cell actually ran with.
  virtual bool SupportsThreads() const { return false; }

  /// Evaluates `query` over `db`, emitting every embedding to `sink`.
  /// Timeout surfaces as Status::TimedOut; other statuses are planning or
  /// validation failures.
  virtual Result<EngineStats> Run(const Database& db, const Catalog& catalog,
                                  const QueryGraph& query,
                                  const EngineOptions& options,
                                  Sink* sink) = 0;
};

/// Instantiates a baseline engine by its paper tag ("PG", "VT", "MD",
/// "NJ") or the Wireframe engine ("WF", default options). Unknown names
/// return nullptr.
std::unique_ptr<Engine> MakeEngine(std::string_view name);

/// All engine tags in the paper's column order: PG, WF, VT, MD, NJ.
std::vector<std::string> AllEngineNames();

}  // namespace wireframe

#endif  // WIREFRAME_EXEC_ENGINE_H_
