#ifndef WIREFRAME_RUNTIME_QUERY_RUNTIME_H_
#define WIREFRAME_RUNTIME_QUERY_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "exec/engine.h"
#include "exec/sink.h"
#include "query/query_graph.h"
#include "storage/database.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace wireframe {
namespace runtime {

/// Admission policy of a QueryRuntime: how many queries run at once, how
/// many may wait, and the per-query defaults a request inherits when it
/// does not override them.
struct AdmissionControl {
  /// Queries executing concurrently (each owns one driver thread whose
  /// morsel loops interleave on the shared pool). Must be >= 1.
  uint32_t max_inflight = 4;
  /// Admitted-but-waiting queries beyond the in-flight ones. 0 turns the
  /// runtime into pure reject-when-saturated.
  uint32_t max_queued = 64;
  /// Queue-or-reject policy when both the in-flight slots and the queue
  /// are full: false rejects the Submit with ResourceExhausted (load
  /// shedding), true blocks the submitting thread until a slot frees.
  bool block_when_full = false;
  /// Default per-query wall-clock budget in seconds, measured from the
  /// moment the query starts running (queue wait is excluded, as the
  /// paper's 300 s budget is an execution budget). 0 = unlimited.
  double default_timeout_seconds = 0.0;
  /// Default per-query row budget: once this many rows reached the sink,
  /// the run stops and reports kBudgetExhausted. 0 = unlimited.
  uint64_t default_row_budget = 0;
};

/// Configuration of one QueryRuntime.
struct RuntimeOptions {
  /// Worker threads of the single shared pool (0 = one per hardware
  /// core). Every in-flight query's parallel phases multiplex onto this
  /// pool at morsel granularity.
  uint32_t pool_threads = 0;
  AdmissionControl admission;
};

/// One query of a Submit call. `db`/`catalog` are borrowed and must
/// outlive the session (the runtime serves immutable, already-loaded
/// data; PR 2 made stores and catalog reader-safe).
struct QueryRequest {
  const Database* db = nullptr;
  const Catalog* catalog = nullptr;
  QueryGraph query;
  /// Engine tag as understood by MakeEngine ("WF", "PG", ...).
  std::string engine = "WF";
  /// Optional result consumer (borrowed). Null counts rows only. Emit
  /// calls are mutually excluded (engines drain per-worker shards under
  /// one mutex) but may arrive from different pool threads, so the sink
  /// needs no locking of its own yet must not assume thread identity
  /// (no thread_local state or event-loop affinity).
  Sink* sink = nullptr;
  /// Per-query overrides of the admission defaults; negative values mean
  /// "use the default" (0 is a real value: unlimited).
  double timeout_seconds = -1.0;
  int64_t row_budget = -1;
};

/// How a finished query ended.
enum class QueryOutcome {
  kPending,          // not finished yet
  kCompleted,        // ran to completion (or its sink declined more rows)
  /// A row beyond the budget was produced and refused; the sink received
  /// exactly `row_budget` rows and more existed. A result with exactly
  /// `row_budget` rows reports kCompleted.
  kBudgetExhausted,
  kTimedOut,   // per-query deadline expired mid-run
  kCancelled,  // Cancel() observed mid-run or while queued
  kFailed,     // any other non-OK engine status (see status())
};

const char* QueryOutcomeName(QueryOutcome outcome);

/// Handle to one admitted query. Created by QueryRuntime::Submit; shared
/// between the caller and the runtime's driver threads. All methods are
/// thread-safe.
class QuerySession {
 public:
  uint64_t id() const { return id_; }
  const std::string& engine() const { return engine_; }

  /// Requests cooperative cancellation. A running query stops at its
  /// next amortized interrupt probe; a queued one never runs — it is
  /// finished with kCancelled (and its admission slot reclaimed) the
  /// next time anything touches the queue: a driver freeing up or a
  /// later Submit. Idempotent.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool done() const;
  /// Blocks until the query finished (any outcome).
  void Wait() const;

  // Snapshots, safe to call at any time; settle once done(). Returned by
  // value: a reference into the session would outlive the lock and race
  // the driver's final write.
  QueryOutcome outcome() const;
  Status status() const;
  EngineStats stats() const;
  /// Rows that reached the request sink (after any budget clamp).
  uint64_t rows_emitted() const;
  /// Seconds spent waiting for a driver slot / executing.
  double queue_seconds() const;
  double run_seconds() const;

 private:
  friend class QueryRuntime;

  mutable std::mutex mu_;
  mutable std::condition_variable done_cv_;
  uint64_t id_ = 0;
  std::string engine_;
  QueryRequest request_;  // moved in at Submit
  Stopwatch submit_watch_;  // restarted at admission
  std::atomic<bool> cancel_{false};
  // Guarded by mu_:
  bool done_ = false;
  QueryOutcome outcome_ = QueryOutcome::kPending;
  Status status_;
  EngineStats stats_;
  uint64_t rows_emitted_ = 0;
  double queue_seconds_ = 0.0;
  double run_seconds_ = 0.0;
};

/// Aggregate counters of a runtime's lifetime, for load-shedding
/// dashboards and tests.
struct RuntimeStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;  // any terminal outcome, including cancelled
};

/// The shared query runtime (ROADMAP: "Concurrent multi-query serving"):
/// one process-wide ThreadPool, a FIFO admission queue in front of a
/// fixed set of driver threads, and per-query sessions carrying stats and
/// cancellation.
///
/// Each admitted query executes on one driver thread; every
/// morsel-parallel loop the engine runs is submitted to the shared pool
/// as a fairly-scheduled task-group, so N in-flight queries interleave at
/// morsel granularity instead of fighting over private pools (or
/// serializing). Engines are stateless per Run and the stores/catalog are
/// immutable, so cross-query state is confined to this class and the
/// pool.
class QueryRuntime {
 public:
  explicit QueryRuntime(RuntimeOptions options = {});
  /// Cancels everything still queued or running, then joins the drivers.
  ~QueryRuntime();

  QueryRuntime(const QueryRuntime&) = delete;
  QueryRuntime& operator=(const QueryRuntime&) = delete;

  /// Admits `request` (FIFO) or rejects it with ResourceExhausted when
  /// the runtime is saturated and the policy is reject. The session is
  /// live from the moment this returns.
  Result<std::shared_ptr<QuerySession>> Submit(QueryRequest request);

  /// The shared worker pool (exposed so callers can co-schedule their own
  /// morsel loops with the runtime's queries).
  ThreadPool& pool() { return pool_; }
  const RuntimeOptions& options() const { return options_; }
  RuntimeStats stats() const;
  /// Submitters currently parked in Submit (block_when_full). Exposed for
  /// saturation dashboards and the shutdown tests.
  uint32_t waiting_submitters() const;

 private:
  void DriverLoop(uint32_t driver_index);
  /// Runs one admitted session to completion on the calling driver.
  void Execute(QuerySession& session);
  /// Finishes and drops queued sessions whose cancel flag is set, so a
  /// cancelled-but-never-run query stops holding an admission slot.
  /// Caller holds mu_.
  void ReapCancelledLocked();
  static void Finish(QuerySession& session, QueryOutcome outcome,
                     Status status);

  const RuntimeOptions options_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   // drivers: work available
  std::condition_variable vacancy_cv_; // blocking submitters: room freed
  std::deque<std::shared_ptr<QuerySession>> queue_;
  /// active_[i] is driver i's currently executing session (null when
  /// idle); the destructor uses it to revoke in-flight queries.
  std::vector<std::shared_ptr<QuerySession>> active_;
  uint32_t running_ = 0;
  /// Submitters parked in Submit under block_when_full; the destructor
  /// drains this to zero before members die.
  uint32_t waiting_submitters_ = 0;
  uint64_t next_id_ = 1;
  bool shutdown_ = false;
  RuntimeStats stats_;

  std::vector<std::thread> drivers_;
};

}  // namespace runtime
}  // namespace wireframe

#endif  // WIREFRAME_RUNTIME_QUERY_RUNTIME_H_
