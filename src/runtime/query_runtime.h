#ifndef WIREFRAME_RUNTIME_QUERY_RUNTIME_H_
#define WIREFRAME_RUNTIME_QUERY_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "exec/aggregate_executor.h"
#include "exec/engine.h"
#include "exec/sink.h"
#include "query/query_graph.h"
#include "storage/database.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace wireframe {
namespace runtime {

class AgCache;

/// What a tenant's Submit does once the tenant already has
/// `max_inflight` queries in the system.
enum class QuotaPolicy {
  /// Admit and queue; the query waits for one of the tenant's own slots
  /// (and a driver). The tenant never loses work, it just backs up.
  kQueue,
  /// Shed immediately with ResourceExhausted. The tenant never holds
  /// more than its quota in the runtime — queued included — so a
  /// misbehaving batch client cannot fill the shared queue either.
  kReject,
};

/// One named service class sharing the runtime. Queries pick their class
/// via QueryRequest::service_class; an empty or unknown class runs as the
/// implicit "default" tenant (weight 1, no quota) — configure a spec
/// named "default" to change that.
struct TenantSpec {
  std::string name;
  /// Scheduler share relative to the other tenants, applied at BOTH
  /// levels: dispatch of queued queries to free drivers (stride-weighted
  /// pick across tenant queues) and every morsel loop the query runs on
  /// the shared pool (ParallelForOptions::weight). A weight-16 `latency`
  /// tenant therefore preempts weight-1 `batch` work at morsel
  /// granularity without starving it. Clamped to >= 1.
  uint32_t weight = 1;
  /// Cap on this tenant's queries in flight (running, plus queued for
  /// kReject — see QuotaPolicy). 0 = no per-tenant cap; the runtime-wide
  /// max_inflight/max_queued always applies on top.
  uint32_t max_inflight = 0;
  /// What happens at the quota.
  QuotaPolicy when_at_quota = QuotaPolicy::kQueue;
  /// Byte quota of this tenant's partition of the answer-graph cache
  /// (runtime::AgCache): frozen AGs of completed WF queries are kept per
  /// canonical query shape and reused to skip phase 1 + burnback.
  /// Negative inherits AdmissionControl::ag_cache_bytes; 0 opts this
  /// tenant out of caching.
  int64_t ag_cache_bytes = -1;
};

/// Admission policy of a QueryRuntime: how many queries run at once, how
/// many may wait, and the per-query defaults a request inherits when it
/// does not override them.
struct AdmissionControl {
  /// Queries executing concurrently (each owns one driver thread whose
  /// morsel loops interleave on the shared pool). Must be >= 1.
  uint32_t max_inflight = 4;
  /// Admitted-but-waiting queries beyond the in-flight ones. 0 turns the
  /// runtime into pure reject-when-saturated.
  uint32_t max_queued = 64;
  /// Queue-or-reject policy when both the in-flight slots and the queue
  /// are full: false rejects the Submit with ResourceExhausted (load
  /// shedding), true blocks the submitting thread until a slot frees.
  bool block_when_full = false;
  /// Default per-query wall-clock budget in seconds, measured from the
  /// moment the query starts running (queue wait is excluded, as the
  /// paper's 300 s budget is an execution budget). 0 = unlimited.
  double default_timeout_seconds = 0.0;
  /// Default per-query row budget: once this many rows reached the sink,
  /// the run stops and reports kBudgetExhausted. 0 = unlimited.
  uint64_t default_row_budget = 0;
  /// Default per-tenant byte quota of the answer-graph cache (see
  /// TenantSpec::ag_cache_bytes). 0 — the default — disables the cache
  /// entirely and preserves the historic execution path bit for bit.
  uint64_t ag_cache_bytes = 0;
  /// Overload brownout: once the global queue depth reaches this
  /// watermark, Submits from low-weight tenants are shed with a typed
  /// kOverloaded (plus a retry-after hint) BEFORE the queue fills, so
  /// high-weight traffic keeps bounded latency instead of everyone
  /// timing out together. The weight cutoff rises linearly from the
  /// smallest tenant weight at the watermark to the largest as the
  /// queue approaches max_queued; the top-weight class is never
  /// brownout-shed (it still hits the ordinary saturation rejection at
  /// a full queue), and a deployment where every tenant has the same
  /// weight never browns out. 0 disables brownout.
  uint32_t brownout_queue_watermark = 0;
  /// Backoff hint carried in kOverloaded rejections (REPORT
  /// retry_after_ms on the wire). Clients honoring it spread their
  /// retries past the pressure spike.
  uint32_t brownout_retry_after_ms = 250;
  /// Named service classes (weights + quotas). Empty keeps the historic
  /// single-class behavior: every query runs as the implicit "default"
  /// tenant and dispatch is plain FIFO.
  std::vector<TenantSpec> tenants;
};

/// Configuration of one QueryRuntime.
struct RuntimeOptions {
  /// Worker threads of the single shared pool (0 = one per hardware
  /// core). Every in-flight query's parallel phases multiplex onto this
  /// pool at morsel granularity.
  uint32_t pool_threads = 0;
  AdmissionControl admission;
};

/// One query of a Submit call. `db`/`catalog` are borrowed and must
/// outlive the session (the runtime serves immutable, already-loaded
/// data; PR 2 made stores and catalog reader-safe).
struct QueryRequest {
  const Database* db = nullptr;
  const Catalog* catalog = nullptr;
  QueryGraph query;
  /// Engine tag as understood by MakeEngine ("WF", "PG", ...).
  std::string engine = "WF";
  /// Optional result consumer (borrowed). Null counts rows only. Emit
  /// calls are mutually excluded (engines drain per-worker shards under
  /// one mutex) but may arrive from different pool threads, so the sink
  /// needs no locking of its own yet must not assume thread identity
  /// (no thread_local state or event-loop affinity).
  Sink* sink = nullptr;
  /// Per-query overrides of the admission defaults; negative values mean
  /// "use the default" (0 is a real value: unlimited).
  double timeout_seconds = -1.0;
  int64_t row_budget = -1;
  /// Service class this query runs as (AdmissionControl::tenants). Empty
  /// or unknown names resolve to the implicit "default" tenant.
  std::string service_class;
};

/// How a finished query ended.
enum class QueryOutcome {
  kPending,          // not finished yet
  kCompleted,        // ran to completion (or its sink declined more rows)
  /// A row beyond the budget was produced and refused; the sink received
  /// exactly `row_budget` rows and more existed. A result with exactly
  /// `row_budget` rows reports kCompleted.
  kBudgetExhausted,
  kTimedOut,   // per-query deadline expired mid-run
  kCancelled,  // Cancel() observed mid-run or while queued
  kFailed,     // any other non-OK engine status (see status())
};

const char* QueryOutcomeName(QueryOutcome outcome);

/// Handle to one admitted query. Created by QueryRuntime::Submit; shared
/// between the caller and the runtime's driver threads. All methods are
/// thread-safe.
class QuerySession {
 public:
  uint64_t id() const { return id_; }
  const std::string& engine() const { return engine_; }
  /// Resolved service class this query runs as ("default" when the
  /// request named none, or named one the runtime does not know).
  const std::string& service_class() const { return service_class_; }

  /// Requests cooperative cancellation. A running query stops at its
  /// next amortized interrupt probe; a queued one never runs — it is
  /// finished with kCancelled (and its admission slot reclaimed) the
  /// next time anything touches the queue: a driver freeing up or a
  /// later Submit. Idempotent.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool done() const;
  /// Blocks until the query finished (any outcome).
  void Wait() const;
  /// Blocks until the query finished or `seconds` elapsed; returns
  /// done(). Completion wakes the waiter immediately (condition
  /// variable, not polling) — the socket front-end interleaves this
  /// with short connection polls while a query is in flight.
  bool WaitFor(double seconds) const;

  // Snapshots, safe to call at any time; settle once done(). Returned by
  // value: a reference into the session would outlive the lock and race
  // the driver's final write.
  QueryOutcome outcome() const;
  Status status() const;
  EngineStats stats() const;
  /// True iff the run was served from the answer-graph cache (phase 1
  /// and burnback skipped; stats().phase1_seconds is 0).
  bool cache_hit() const;
  /// True iff the query carried an aggregate (COUNT/ASK/GROUP BY); its
  /// scalar or grouped answer is then in aggregate(). Settles once
  /// done().
  bool has_aggregate() const;
  AggregateResult aggregate() const;
  /// Rows that reached the request sink (after any budget clamp).
  uint64_t rows_emitted() const;
  /// Seconds spent waiting for a driver slot / executing.
  double queue_seconds() const;
  double run_seconds() const;

 private:
  friend class QueryRuntime;

  mutable std::mutex mu_;
  mutable std::condition_variable done_cv_;
  uint64_t id_ = 0;
  std::string engine_;
  std::string service_class_;
  /// Index into the runtime's tenant table; resolved at Submit, constant
  /// afterwards (read lock-free by the drivers and the destructor).
  size_t tenant_ = 0;
  QueryRequest request_;  // moved in at Submit
  Stopwatch submit_watch_;  // restarted at admission
  std::atomic<bool> cancel_{false};
  // Guarded by mu_:
  bool done_ = false;
  QueryOutcome outcome_ = QueryOutcome::kPending;
  Status status_;
  EngineStats stats_;
  bool cache_hit_ = false;
  bool has_aggregate_ = false;
  AggregateResult aggregate_;
  uint64_t rows_emitted_ = 0;
  double queue_seconds_ = 0.0;
  double run_seconds_ = 0.0;
};

/// Machine-usable detail of an admission rejection, filled by Submit
/// alongside the non-OK status (messages are for humans; front-ends
/// need the hint as a number to put in the REPORT frame).
struct SubmitRejection {
  /// Suggested client backoff before retrying, in milliseconds. 0 when
  /// the rejection carried no hint (quota sheds, saturation).
  uint32_t retry_after_ms = 0;
};

/// Side results of one engine run that EngineStats does not carry: the
/// cache-hit verdict and, for aggregate queries, the scalar or grouped
/// answer itself (engines deliver it out of band — no row ever reaches
/// the request sink for an aggregate).
struct EngineRunArtifacts {
  bool cache_hit = false;
  bool has_aggregate = false;
  AggregateResult aggregate;
};

/// Per-tenant slice of RuntimeStats.
struct TenantStats {
  std::string tenant;
  /// Scheduler share (TenantSpec::weight; 1 for the implicit default).
  uint32_t weight = 1;
  uint64_t submitted = 0;
  /// Sheds: runtime-wide saturation plus this tenant's quota (kReject)
  /// plus brownout.
  uint64_t rejected = 0;
  /// Of `rejected`, the sheds the overload brownout took (typed
  /// kOverloaded with a retry-after hint).
  uint64_t brownout_rejected = 0;
  uint64_t completed = 0;
  /// Point-in-time gauges at the stats() call.
  uint32_t running = 0;
  uint32_t queued = 0;
  // Answer-graph cache slice of this tenant (all zero when the cache is
  // off). bytes/entries are gauges; the rest are monotonic counters.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_entries = 0;
};

/// One network connection's counters. The runtime itself never fills
/// these — net::SocketServer merges one entry per live connection into
/// its stats() snapshot, so serving dashboards read a single struct for
/// both the admission picture and the wire picture.
struct ConnectionStats {
  uint64_t id = 0;
  std::string peer;
  /// Service class of the connection's HELLO (every query of the
  /// connection runs as this tenant).
  std::string service_class;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t queries = 0;
  /// Back-pressure suspension episodes: one per time the result stream
  /// filled the send buffer and parked the emitting sink.
  uint64_t send_stalls = 0;
  /// Streams cut short by disconnect or write failure (no REPORT made it
  /// to the client).
  uint64_t aborted_streams = 0;
  /// Send-buffer occupancy: right now, and the lifetime maximum. The
  /// high-water mark never exceeds the configured send-buffer bound as
  /// long as one encoded frame fits in it (the back-pressure test pins
  /// this).
  uint64_t buffer_bytes = 0;
  uint64_t buffer_high_water = 0;
};

/// Aggregate counters of a runtime's lifetime, for load-shedding
/// dashboards and tests.
struct RuntimeStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;  // any terminal outcome, including cancelled
  /// One entry per tenant, implicit "default" first, then the configured
  /// specs in AdmissionControl::tenants order.
  std::vector<TenantStats> tenants;
  // Network front-end slice (all zero/empty unless the snapshot came
  // from net::SocketServer::stats()).
  uint64_t connections_accepted = 0;
  uint32_t connections_active = 0;
  uint64_t net_malformed_frames = 0;
  uint64_t net_aborted_streams = 0;
  /// One entry per live connection at the stats() call.
  std::vector<ConnectionStats> connections;
};

/// The shared query runtime (ROADMAP: "Concurrent multi-query serving" +
/// "Runtime priorities"): one process-wide ThreadPool, per-tenant
/// admission queues in front of a fixed set of driver threads, and
/// per-query sessions carrying stats and cancellation.
///
/// Each admitted query executes on one driver thread; every
/// morsel-parallel loop the engine runs is submitted to the shared pool
/// as a task-group weighted by the query's service class, so N in-flight
/// queries interleave at morsel granularity — proportionally to their
/// tenants' weights — instead of fighting over private pools (or
/// serializing). Free drivers pick queued queries by the same weights
/// (stride scheduling across tenants, FIFO within one), and per-tenant
/// quotas cap how many drivers one class may hold. Engines are stateless
/// per Run and the stores/catalog are immutable, so cross-query state is
/// confined to this class and the pool.
class QueryRuntime {
 public:
  explicit QueryRuntime(RuntimeOptions options = {});
  /// Cancels everything still queued or running, then joins the drivers.
  ~QueryRuntime();

  QueryRuntime(const QueryRuntime&) = delete;
  QueryRuntime& operator=(const QueryRuntime&) = delete;

  /// Admits `request` (FIFO) or rejects it: ResourceExhausted when the
  /// runtime is saturated (policy reject), kOverloaded when the
  /// brownout watermark shed it. The session is live from the moment
  /// this returns. `rejection`, when non-null, receives machine-usable
  /// rejection detail (today: the retry-after hint) that a Status
  /// message cannot carry.
  Result<std::shared_ptr<QuerySession>> Submit(
      QueryRequest request, SubmitRejection* rejection = nullptr);

  /// True while the global queue depth is at or past the brownout
  /// watermark (always false when brownout is disabled). The STATUS
  /// frame exposes this so clients can back off before being shed.
  bool overloaded() const;

  /// The shared worker pool (exposed so callers can co-schedule their own
  /// morsel loops with the runtime's queries).
  ThreadPool& pool() { return pool_; }
  const RuntimeOptions& options() const { return options_; }
  /// Name of the tenant a service class resolves to ("default" for empty
  /// or unknown names) — what QuerySession::service_class() would report
  /// had the query been admitted. Front-ends use this so even
  /// rejected-at-admission reports carry the resolved class.
  const std::string& ResolveServiceClassName(
      const std::string& service_class) const {
    return tenants_[ResolveTenant(service_class)].spec.name;
  }
  RuntimeStats stats() const;
  /// Submitters currently parked in Submit (block_when_full). Exposed for
  /// saturation dashboards and the shutdown tests.
  uint32_t waiting_submitters() const;

 private:
  /// One service class and its scheduling state. Everything mutable is
  /// guarded by the pool mutex mu_.
  struct Tenant {
    TenantSpec spec;
    std::deque<std::shared_ptr<QuerySession>> queue;
    uint32_t running = 0;
    /// Stride virtual time of the dispatch scheduler: advanced by
    /// kDispatchStride / weight per dispatched query; the dispatchable
    /// tenant with the smallest pass goes next.
    uint64_t pass = 0;
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t brownout_rejected = 0;
    uint64_t completed = 0;
  };

  /// Pass increment of a weight-1 tenant per dispatched query (same
  /// scale as the pool's morsel-level strides).
  static constexpr uint64_t kDispatchStride = 1 << 20;

  void DriverLoop(uint32_t driver_index);
  /// Runs one admitted session on the calling driver and returns its
  /// terminal outcome. Does NOT mark the session done — the driver
  /// updates the runtime counters first and then calls Finish, so a
  /// stats() call racing a Wait()er never misses a completion.
  std::pair<QueryOutcome, Status> Execute(QuerySession& session);
  /// Dispatches one run to its engine. WF queries of a cache-enabled
  /// tenant run in canonical form against the AG cache (hit: phase 2
  /// only over the shared frozen AG; miss: full run, then single-flight
  /// insert); WF aggregates run through the detailed engine API so the
  /// aggregate answer survives; baseline engines serve aggregates by
  /// enumerate-then-count; everything else takes the historic MakeEngine
  /// path. `*artifacts` reports what happened.
  Result<EngineStats> RunEngine(QuerySession& session,
                                const EngineOptions& options, Sink* sink,
                                EngineRunArtifacts* artifacts);
  /// Finishes and drops queued sessions whose cancel flag is set, so a
  /// cancelled-but-never-run query stops holding an admission slot.
  /// Caller holds mu_.
  void ReapCancelledLocked();
  /// Maps a request's service class to its tenant index ("default" = 0
  /// for empty or unknown names).
  size_t ResolveTenant(const std::string& service_class) const;
  /// True when some tenant has a queued query it is allowed to run now
  /// (nonempty queue, below quota). Caller holds mu_.
  bool HasDispatchableLocked() const;
  /// Pops the next query by stride-weighted pick across the dispatchable
  /// tenants (FIFO within a tenant). Null when nothing is dispatchable.
  /// Caller holds mu_.
  std::shared_ptr<QuerySession> PickLocked();
  static void Finish(QuerySession& session, QueryOutcome outcome,
                     Status status);

  const RuntimeOptions options_;
  ThreadPool pool_;
  /// Answer-graph cache shared by the drivers; null unless at least one
  /// tenant has a nonzero cache quota (the cache-off path then costs
  /// nothing). Internally synchronized — never guarded by mu_, so slow
  /// fills and lookups cannot stall admission.
  std::unique_ptr<AgCache> ag_cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   // drivers: dispatchable work
  std::condition_variable vacancy_cv_; // blocking submitters: room freed
  /// tenants_[0] is the implicit "default" class; configured specs
  /// follow (a spec named "default" or "" overrides slot 0 instead).
  std::vector<Tenant> tenants_;
  /// Queries queued across all tenants (the global admission gauge).
  size_t queued_total_ = 0;
  /// Virtual time of the dispatch scheduler: pass of the most recently
  /// dispatched tenant. A tenant whose queue was empty re-enters at this
  /// time, so idling never banks a burst.
  uint64_t dispatch_virtual_time_ = 0;
  /// active_[i] is driver i's currently executing session (null when
  /// idle); the destructor uses it to revoke in-flight queries.
  std::vector<std::shared_ptr<QuerySession>> active_;
  uint32_t running_ = 0;
  /// Submitters parked in Submit under block_when_full; the destructor
  /// drains this to zero before members die.
  uint32_t waiting_submitters_ = 0;
  uint64_t next_id_ = 1;
  bool shutdown_ = false;
  RuntimeStats stats_;

  std::vector<std::thread> drivers_;
};

}  // namespace runtime
}  // namespace wireframe

#endif  // WIREFRAME_RUNTIME_QUERY_RUNTIME_H_
