#ifndef WIREFRAME_RUNTIME_SERVER_H_
#define WIREFRAME_RUNTIME_SERVER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "query/parser.h"
#include "runtime/query_runtime.h"

namespace wireframe {
namespace runtime {

/// Server configuration: the runtime knobs plus per-query defaults
/// applied to every submission.
struct ServerOptions {
  RuntimeOptions runtime;
  /// Engine every query runs on (MakeEngine tag).
  std::string default_engine = "WF";
  /// Per-query execution budget in seconds; negative inherits the
  /// admission default, 0 is unlimited.
  double timeout_seconds = -1.0;
  /// Per-query row budget; negative inherits the admission default, 0 is
  /// unlimited.
  int64_t row_budget = -1;
  /// Service class queries run as when a Submit names none (see
  /// AdmissionControl::tenants). Empty = the implicit "default" tenant.
  std::string default_service_class;
};

/// Outcome of one query of a batch, flattened for callers that do not
/// want to hold sessions.
struct QueryReport {
  /// Position in the submitted batch.
  size_t index = 0;
  /// Resolved service class: the tenant the query ran as — or would have
  /// run as, for queries rejected at admission (a shed query still
  /// belongs to the tenant whose quota shed it; dashboards aggregate
  /// rejections by class).
  std::string service_class;
  /// True once the query was admitted past admission control (false for
  /// parse errors and rejections; `status` then says why — admission
  /// rejections carry kResourceExhausted explicitly).
  bool admitted = false;
  QueryOutcome outcome = QueryOutcome::kFailed;
  Status status;
  EngineStats stats;
  /// True iff the run was served from the answer-graph cache (phase 1 +
  /// burnback skipped; stats.phase1_seconds is 0).
  bool cache_hit = false;
  /// Aggregate answer (COUNT/ASK/GROUP BY queries): has_aggregate says
  /// the query carried one; aggregate.factorized says whether the
  /// counting DP produced it without enumeration, and
  /// aggregate.value.saturated flags a count past even 128 bits.
  bool has_aggregate = false;
  AggregateResult aggregate;
  uint64_t rows = 0;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  /// Backoff hint in milliseconds for rejected queries (nonzero only on
  /// brownout kOverloaded sheds). Clients should wait this long before
  /// resubmitting.
  uint32_t retry_after_ms = 0;
};

/// Front-end of the shared query runtime: accepts SPARQL text (or
/// pre-bound QueryGraphs), parses and binds it against one immutable
/// database, and runs any number of in-flight queries concurrently
/// against the runtime's single pool. This is the serving shape the
/// ROADMAP's "concurrent multi-query serving" item asks for: stores and
/// catalog are shared read-only, per-query state lives in the sessions.
class Server {
 public:
  /// `db` and `catalog` are borrowed and must outlive the server.
  Server(const Database& db, const Catalog& catalog,
         ServerOptions options = {});

  /// Parses, binds, and submits one query. Parse/bind errors surface
  /// immediately; admission rejections (runtime saturation or tenant
  /// quota) surface as ResourceExhausted. `sink` (borrowed, may be null)
  /// receives the embeddings. `service_class` picks the tenant the query
  /// runs as; empty inherits ServerOptions::default_service_class.
  Result<std::shared_ptr<QuerySession>> Submit(
      std::string_view sparql, Sink* sink = nullptr,
      std::string_view service_class = {});

  /// Same, with per-query overrides of the server defaults (negative =
  /// inherit, 0 = unlimited — QueryRequest semantics). The network
  /// front-end routes QUERY-frame overrides through here. `rejection`,
  /// when non-null, receives the retry-after hint of a brownout shed
  /// (see QueryRuntime::Submit).
  Result<std::shared_ptr<QuerySession>> Submit(
      std::string_view sparql, Sink* sink, std::string_view service_class,
      double timeout_seconds, int64_t row_budget,
      SubmitRejection* rejection = nullptr);

  /// Submits a pre-bound query graph (no parsing).
  Result<std::shared_ptr<QuerySession>> Submit(
      const QueryGraph& query, Sink* sink = nullptr,
      std::string_view service_class = {});

  /// Runs a whole batch concurrently (bounded by the runtime's admission
  /// limits) and blocks until every query finished. Reports are in batch
  /// order. `sinks` and `service_classes`, when given, must parallel
  /// `queries`; null sink entries count rows only, empty class entries
  /// inherit the server default.
  std::vector<QueryReport> RunBatch(
      const std::vector<std::string>& queries,
      const std::vector<Sink*>* sinks = nullptr,
      const std::vector<std::string>* service_classes = nullptr);

  QueryRuntime& runtime() { return runtime_; }
  const QueryRuntime& runtime() const { return runtime_; }
  const ServerOptions& options() const { return options_; }
  const Database& db() const { return *db_; }
  const Catalog& catalog() const { return *catalog_; }

 private:
  QueryRequest MakeRequest(QueryGraph query, Sink* sink,
                           std::string_view service_class) const;

  const Database* db_;
  const Catalog* catalog_;
  ServerOptions options_;
  QueryRuntime runtime_;
};

}  // namespace runtime
}  // namespace wireframe

#endif  // WIREFRAME_RUNTIME_SERVER_H_
