#ifndef WIREFRAME_RUNTIME_AG_CACHE_H_
#define WIREFRAME_RUNTIME_AG_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/answer_graph.h"
#include "query/query_graph.h"

namespace wireframe {
namespace runtime {

/// One cached answer graph plus the context needed to serve repeats.
/// The AG lives in the variable space of the query that filled the entry
/// — `query` is a copy of that submitted query — so a verbatim repeat
/// (same variable naming, same triple-pattern order: the common case of
/// a re-issued query text) runs phase 2 over it with no per-row
/// remapping at all. `to_canonical` is the filler's canonical renaming;
/// a differently-named isomorphic hit composes its own renaming with it
/// into the per-row variable map that restores its submitted order.
struct CachedAg {
  std::shared_ptr<const AnswerGraph> ag;  // frozen, immutable
  QueryGraph query;
  std::vector<VarId> to_canonical;
};

/// Cache of frozen AnswerGraphs keyed by canonical query shape
/// (query/canonical.h), partitioned per tenant with byte quotas.
///
/// Values are shared-ownership immutable entries: a hit hands out a
/// shared_ptr that stays valid (and safely readable by any number of
/// concurrent phase-2 runs) even if the entry is evicted mid-read —
/// eviction drops the cache's reference, never the object under a
/// reader. Filling is single-flight per key: the first miss claims the
/// fill with BeginFill and inserts via EndFill; concurrent misses on the
/// same key run cold without inserting, so no query ever blocks on
/// another query's fill (the admission machinery stays the only queueing
/// layer).
///
/// Eviction is cost x frequency: the entry with the smallest
/// build_seconds * (1 + hits) leaves first, so a cheap-to-rebuild or
/// cold AG yields before an expensive hot one. Quotas are per tenant; an
/// AG larger than its tenant's whole quota is never inserted.
class AgCache {
 public:
  /// Monotonic counters plus point-in-time gauges of one tenant's
  /// partition.
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    /// Resident bytes / entries right now (gauges).
    uint64_t bytes = 0;
    uint64_t entries = 0;
  };

  /// One quota per tenant, in tenant-table order; 0 disables caching for
  /// that tenant.
  explicit AgCache(std::vector<uint64_t> tenant_quota_bytes);

  AgCache(const AgCache&) = delete;
  AgCache& operator=(const AgCache&) = delete;

  /// True iff `tenant` participates in caching at all.
  bool enabled(size_t tenant) const {
    return shards_[tenant].quota > 0;
  }

  /// Returns the cached entry for (tenant, key), bumping the hit
  /// counters, or null (a recorded miss).
  std::shared_ptr<const CachedAg> Lookup(size_t tenant,
                                         const std::string& key);

  /// Claims the single-flight fill for (tenant, key). True means the
  /// caller must pair with EndFill (possibly with a null AG to abort);
  /// false means another query is already filling — run cold, do not
  /// insert.
  bool BeginFill(size_t tenant, const std::string& key);

  /// Completes a claimed fill. A non-null `value` (holding a frozen AG)
  /// is inserted with reconstruction cost `build_seconds`, evicting by
  /// cost x frequency until the tenant fits its quota; null aborts the
  /// fill (failed or cancelled run). Oversized AGs are silently not
  /// inserted.
  void EndFill(size_t tenant, const std::string& key,
               std::shared_ptr<const CachedAg> value, double build_seconds);

  Counters counters(size_t tenant) const;

 private:
  struct Entry {
    std::shared_ptr<const CachedAg> value;
    uint64_t bytes = 0;
    double build_seconds = 0.0;
    uint64_t hits = 0;
  };
  struct Shard {
    uint64_t quota = 0;
    std::unordered_map<std::string, Entry> entries;
    std::unordered_set<std::string> filling;
    Counters counters;
  };

  mutable std::mutex mu_;
  std::vector<Shard> shards_;
};

}  // namespace runtime
}  // namespace wireframe

#endif  // WIREFRAME_RUNTIME_AG_CACHE_H_
