#include "runtime/ag_cache.h"

#include <utility>

#include "util/logging.h"

namespace wireframe {
namespace runtime {

AgCache::AgCache(std::vector<uint64_t> tenant_quota_bytes) {
  shards_.resize(tenant_quota_bytes.size());
  for (size_t i = 0; i < tenant_quota_bytes.size(); ++i) {
    shards_[i].quota = tenant_quota_bytes[i];
  }
}

std::shared_ptr<const CachedAg> AgCache::Lookup(size_t tenant,
                                                const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = shards_[tenant];
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.counters.misses;
    return nullptr;
  }
  ++shard.counters.hits;
  ++it->second.hits;
  return it->second.value;
}

bool AgCache::BeginFill(size_t tenant, const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = shards_[tenant];
  if (shard.entries.count(key) > 0) return false;  // raced a finished fill
  return shard.filling.insert(key).second;
}

void AgCache::EndFill(size_t tenant, const std::string& key,
                      std::shared_ptr<const CachedAg> value,
                      double build_seconds) {
  // Evicted AGs are destroyed after the lock drops: freeing a large CSR
  // under the cache mutex would stall every concurrent lookup.
  std::vector<std::shared_ptr<const CachedAg>> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Shard& shard = shards_[tenant];
    shard.filling.erase(key);
    if (value == nullptr) return;  // aborted fill
    WF_CHECK(value->ag != nullptr && value->ag->IsFrozen())
        << "only frozen AnswerGraphs are cacheable";
    const uint64_t bytes = value->ag->FrozenByteSize();
    if (bytes > shard.quota) return;  // larger than the whole partition
    while (shard.counters.bytes + bytes > shard.quota) {
      // Cost x frequency: cheapest-to-keep leaves first.
      auto victim = shard.entries.end();
      double victim_score = 0.0;
      for (auto it = shard.entries.begin(); it != shard.entries.end();
           ++it) {
        const double score =
            it->second.build_seconds *
            (1.0 + static_cast<double>(it->second.hits));
        if (victim == shard.entries.end() || score < victim_score) {
          victim = it;
          victim_score = score;
        }
      }
      WF_CHECK(victim != shard.entries.end())
          << "quota accounting drifted: over quota with no entries";
      doomed.push_back(std::move(victim->second.value));
      shard.counters.bytes -= victim->second.bytes;
      --shard.counters.entries;
      ++shard.counters.evictions;
      shard.entries.erase(victim);
    }
    Entry entry;
    entry.value = std::move(value);
    entry.bytes = bytes;
    entry.build_seconds = build_seconds;
    const bool inserted = shard.entries.emplace(key, std::move(entry)).second;
    WF_CHECK(inserted) << "EndFill without a BeginFill claim";
    shard.counters.bytes += bytes;
    ++shard.counters.entries;
    ++shard.counters.inserts;
  }
}

AgCache::Counters AgCache::counters(size_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[tenant].counters;
}

}  // namespace runtime
}  // namespace wireframe
