#include "runtime/query_runtime.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/wireframe.h"
#include "query/canonical.h"
#include "runtime/ag_cache.h"
#include "util/logging.h"
#include "util/timer.h"

namespace wireframe {
namespace runtime {

namespace {

/// Caps the rows a run may hand to the request sink. A row beyond the
/// budget is refused (never forwarded) and returning false asks the
/// engine to stop — engines treat a declining sink as a result, not an
/// error, so a budget-clamped run finishes with OK and the runtime
/// reports kBudgetExhausted from the `exhausted` flag. The flag is only
/// raised by an actual refusal: a result with exactly `budget` rows
/// completes naturally and reports kCompleted (at the price of the
/// engine producing one surplus row to discover the end).
class RowBudgetSink : public Sink {
 public:
  RowBudgetSink(Sink* inner, uint64_t budget)
      : inner_(inner), budget_(budget) {}

  bool Emit(const std::vector<NodeId>& binding) override {
    if (count_ >= budget_) {
      exhausted_ = true;
      return false;
    }
    const bool inner_wants_more = inner_->Emit(binding);
    ++count_;
    return inner_wants_more;
  }
  uint64_t count() const override { return count_; }
  bool exhausted() const { return exhausted_; }

 private:
  Sink* inner_;
  uint64_t budget_;
  uint64_t count_ = 0;
  bool exhausted_ = false;
};

}  // namespace

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kPending:
      return "pending";
    case QueryOutcome::kCompleted:
      return "completed";
    case QueryOutcome::kBudgetExhausted:
      return "budget_exhausted";
    case QueryOutcome::kTimedOut:
      return "timed_out";
    case QueryOutcome::kCancelled:
      return "cancelled";
    case QueryOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

bool QuerySession::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void QuerySession::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_; });
}

bool QuerySession::WaitFor(double seconds) const {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                    [&] { return done_; });
  return done_;
}

QueryOutcome QuerySession::outcome() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outcome_;
}

Status QuerySession::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

EngineStats QuerySession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t QuerySession::rows_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_emitted_;
}

double QuerySession::queue_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_seconds_;
}

double QuerySession::run_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_seconds_;
}

bool QuerySession::cache_hit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hit_;
}

bool QuerySession::has_aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_aggregate_;
}

AggregateResult QuerySession::aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregate_;
}

QueryRuntime::QueryRuntime(RuntimeOptions options)
    : options_([&] {
        RuntimeOptions o = options;
        o.admission.max_inflight = std::max(1u, o.admission.max_inflight);
        for (TenantSpec& spec : o.admission.tenants) {
          spec.weight = std::max(1u, spec.weight);
        }
        return o;
      }()),
      pool_(ThreadPool::ResolveThreads(options_.pool_threads)) {
  // Tenant table: the implicit default class first, then the configured
  // specs. A spec named "default" (or "") re-configures slot 0 instead
  // of adding a class.
  Tenant default_tenant;
  default_tenant.spec.name = "default";
  tenants_.push_back(std::move(default_tenant));
  for (const TenantSpec& spec : options_.admission.tenants) {
    if (spec.name.empty() || spec.name == "default") {
      tenants_[0].spec = spec;
      tenants_[0].spec.name = "default";
    } else {
      Tenant tenant;
      tenant.spec = spec;
      tenants_.push_back(std::move(tenant));
    }
  }
  // Answer-graph cache: one partition per tenant; built only when some
  // tenant actually has a quota, so the default configuration keeps the
  // historic execution path untouched.
  std::vector<uint64_t> cache_quotas;
  cache_quotas.reserve(tenants_.size());
  bool any_cache = false;
  for (const Tenant& tenant : tenants_) {
    const uint64_t quota =
        tenant.spec.ag_cache_bytes >= 0
            ? static_cast<uint64_t>(tenant.spec.ag_cache_bytes)
            : options_.admission.ag_cache_bytes;
    cache_quotas.push_back(quota);
    any_cache = any_cache || quota > 0;
  }
  if (any_cache) ag_cache_ = std::make_unique<AgCache>(std::move(cache_quotas));
  active_.resize(options_.admission.max_inflight);
  drivers_.reserve(options_.admission.max_inflight);
  for (uint32_t i = 0; i < options_.admission.max_inflight; ++i) {
    drivers_.emplace_back([this, i] { DriverLoop(i); });
  }
}

QueryRuntime::~QueryRuntime() {
  std::deque<std::shared_ptr<QuerySession>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (Tenant& tenant : tenants_) {
      for (std::shared_ptr<QuerySession>& s : tenant.queue) {
        orphaned.push_back(std::move(s));
      }
      tenant.queue.clear();
    }
    queued_total_ = 0;
    // Running queries are revoked cooperatively; their drivers finish the
    // session (with kCancelled) before observing shutdown.
    for (const std::shared_ptr<QuerySession>& s : active_) {
      if (s != nullptr) s->Cancel();
    }
  }
  queue_cv_.notify_all();
  vacancy_cv_.notify_all();
  {
    // Blocked submitters woke on shutdown_ and are returning Cancelled;
    // they still touch mu_/stats_ on the way out, so drain them before
    // member destruction.
    std::unique_lock<std::mutex> lock(mu_);
    vacancy_cv_.wait(lock, [&] { return waiting_submitters_ == 0; });
  }
  for (std::thread& t : drivers_) t.join();
  for (const std::shared_ptr<QuerySession>& s : orphaned) {
    Finish(*s, QueryOutcome::kCancelled,
           Status::Cancelled("query runtime shut down"));
    ++stats_.completed;  // drivers are joined: no further writers
    ++tenants_[s->tenant_].completed;
  }
}

Result<std::shared_ptr<QuerySession>> QueryRuntime::Submit(
    QueryRequest request, SubmitRejection* rejection) {
  if (request.db == nullptr || request.catalog == nullptr) {
    return Status::InvalidArgument("QueryRequest needs a db and a catalog");
  }
  if (MakeEngine(request.engine) == nullptr) {
    return Status::InvalidArgument("unknown engine '" + request.engine + "'");
  }

  auto session = std::make_shared<QuerySession>();
  session->engine_ = request.engine;
  session->tenant_ = ResolveTenant(request.service_class);
  session->service_class_ = tenants_[session->tenant_].spec.name;
  session->request_ = std::move(request);

  const AdmissionControl& adm = options_.admission;
  const uint64_t capacity =
      static_cast<uint64_t>(adm.max_inflight) + adm.max_queued;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Tenant& tenant = tenants_[session->tenant_];
    ++stats_.submitted;
    ++tenant.submitted;
    ReapCancelledLocked();
    // Per-tenant quota first: a kReject tenant is shed the moment its
    // own slice of the runtime — running plus its queue — is at quota,
    // no matter how idle the rest of the runtime is. (kQueue tenants
    // pass through here and wait for one of their own slots at dispatch
    // time instead.)
    auto at_reject_quota = [&] {
      return tenant.spec.max_inflight > 0 &&
             tenant.spec.when_at_quota == QuotaPolicy::kReject &&
             tenant.running + tenant.queue.size() >=
                 tenant.spec.max_inflight;
    };
    auto shed_at_quota = [&]() -> Status {
      ++stats_.rejected;
      ++tenant.rejected;
      return Status::ResourceExhausted(
          "tenant '" + tenant.spec.name + "' at quota (" +
          std::to_string(tenant.running) + " running, " +
          std::to_string(tenant.queue.size()) + " queued, quota " +
          std::to_string(tenant.spec.max_inflight) + ")");
    };
    if (at_reject_quota()) return shed_at_quota();
    // Overload brownout: past the queue-depth watermark, shed the
    // lowest-weight tenants first — with a typed kOverloaded + backoff
    // hint — so the queue never fills with low-priority work that would
    // time the high-priority class out. The weight cutoff rises
    // linearly with queue depth between the watermark and max_queued;
    // the top-weight class is never brownout-shed, and uniform-weight
    // deployments fall through to the ordinary saturation policy.
    const uint32_t watermark = adm.brownout_queue_watermark;
    if (watermark > 0 && queued_total_ >= watermark) {
      uint32_t min_w = tenants_[0].spec.weight;
      uint32_t max_w = min_w;
      for (const Tenant& t : tenants_) {
        min_w = std::min(min_w, t.spec.weight);
        max_w = std::max(max_w, t.spec.weight);
      }
      const uint32_t my_w = tenant.spec.weight;
      if (max_w > min_w && my_w < max_w) {
        const double span = adm.max_queued > watermark
                                ? static_cast<double>(adm.max_queued) -
                                      watermark
                                : 1.0;
        double f =
            (static_cast<double>(queued_total_) + 1.0 - watermark) / span;
        if (f > 1.0) f = 1.0;
        const double cutoff = min_w + f * (max_w - min_w);
        if (static_cast<double>(my_w) <= cutoff) {
          ++stats_.rejected;
          ++tenant.rejected;
          ++tenant.brownout_rejected;
          if (rejection != nullptr) {
            rejection->retry_after_ms = adm.brownout_retry_after_ms;
          }
          return Status::Overloaded(
              "runtime overloaded (queue depth " +
              std::to_string(queued_total_) + " >= watermark " +
              std::to_string(watermark) + "): tenant '" +
              tenant.spec.name + "' (weight " + std::to_string(my_w) +
              ") browned out, retry after " +
              std::to_string(adm.brownout_retry_after_ms) + " ms");
        }
      }
    }
    // Admission counts queries in the system (queued + running) against
    // max_inflight + max_queued, so a full runtime sheds or blocks even
    // while an idle driver is mid-handoff.
    auto has_room = [&] { return running_ + queued_total_ < capacity; };
    if (!has_room()) {
      if (!adm.block_when_full) {
        ++stats_.rejected;
        ++tenant.rejected;
        return Status::ResourceExhausted(
            "query runtime saturated (" + std::to_string(running_) +
            " running, " + std::to_string(queued_total_) + " queued)");
      }
      // The waiter count keeps the destructor from tearing the runtime
      // down under a parked submitter: it wakes us (shutdown_) and waits
      // for this count to drain before members die.
      ++waiting_submitters_;
      vacancy_cv_.wait(lock, [&] { return shutdown_ || has_room(); });
      --waiting_submitters_;
      if (shutdown_) vacancy_cv_.notify_all();  // destructor may be waiting
    }
    if (shutdown_) {
      ++stats_.rejected;
      ++tenant.rejected;
      return Status::Cancelled("query runtime shutting down");
    }
    // Re-check after the block_when_full park: several submitters of the
    // same kReject tenant can pass the pre-wait quota check, park on a
    // full runtime, and wake together — only as many as the quota allows
    // may enqueue, or the tenant would hold more than it ever could
    // under the documented policy.
    if (at_reject_quota()) return shed_at_quota();
    session->id_ = next_id_++;
    session->submit_watch_.Restart();
    tenant.queue.push_back(session);
    ++queued_total_;
  }
  queue_cv_.notify_one();
  return session;
}

size_t QueryRuntime::ResolveTenant(const std::string& service_class) const {
  if (service_class.empty()) return 0;
  for (size_t i = 1; i < tenants_.size(); ++i) {
    if (tenants_[i].spec.name == service_class) return i;
  }
  // "default" itself, and any class no spec names, land on slot 0.
  return 0;
}

bool QueryRuntime::HasDispatchableLocked() const {
  for (const Tenant& tenant : tenants_) {
    if (tenant.queue.empty()) continue;
    if (tenant.spec.max_inflight == 0 ||
        tenant.running < tenant.spec.max_inflight) {
      return true;
    }
  }
  return false;
}

std::shared_ptr<QuerySession> QueryRuntime::PickLocked() {
  Tenant* picked = nullptr;
  for (Tenant& tenant : tenants_) {
    if (tenant.queue.empty()) continue;
    if (tenant.spec.max_inflight > 0 &&
        tenant.running >= tenant.spec.max_inflight) {
      continue;  // at quota: its queue waits for one of its own slots
    }
    if (picked == nullptr || tenant.pass < picked->pass) picked = &tenant;
  }
  if (picked == nullptr) return nullptr;
  // Stride accounting: re-enter at the current virtual time after an
  // idle stretch (no banked burst), then pay for this dispatch.
  picked->pass = std::max(picked->pass, dispatch_virtual_time_);
  dispatch_virtual_time_ = picked->pass;
  picked->pass += std::max<uint64_t>(1, kDispatchStride / picked->spec.weight);
  std::shared_ptr<QuerySession> session = std::move(picked->queue.front());
  picked->queue.pop_front();
  --queued_total_;
  return session;
}

RuntimeStats QueryRuntime::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RuntimeStats stats = stats_;
  stats.tenants.reserve(tenants_.size());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& tenant = tenants_[i];
    TenantStats ts;
    ts.tenant = tenant.spec.name;
    ts.weight = tenant.spec.weight;
    ts.submitted = tenant.submitted;
    ts.rejected = tenant.rejected;
    ts.brownout_rejected = tenant.brownout_rejected;
    ts.completed = tenant.completed;
    ts.running = tenant.running;
    ts.queued = static_cast<uint32_t>(tenant.queue.size());
    if (ag_cache_ != nullptr) {
      const AgCache::Counters cc = ag_cache_->counters(i);
      ts.cache_hits = cc.hits;
      ts.cache_misses = cc.misses;
      ts.cache_evictions = cc.evictions;
      ts.cache_inserts = cc.inserts;
      ts.cache_bytes = cc.bytes;
      ts.cache_entries = cc.entries;
    }
    stats.tenants.push_back(std::move(ts));
  }
  return stats;
}

uint32_t QueryRuntime::waiting_submitters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_submitters_;
}

bool QueryRuntime::overloaded() const {
  const uint32_t watermark = options_.admission.brownout_queue_watermark;
  if (watermark == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return queued_total_ >= watermark;
}

void QueryRuntime::ReapCancelledLocked() {
  bool reaped = false;
  for (Tenant& tenant : tenants_) {
    for (auto it = tenant.queue.begin(); it != tenant.queue.end();) {
      if ((*it)->cancel_.load(std::memory_order_relaxed)) {
        Finish(**it, QueryOutcome::kCancelled,
               Status::Cancelled("cancelled while queued"));
        ++stats_.completed;
        ++tenant.completed;
        it = tenant.queue.erase(it);
        --queued_total_;
        reaped = true;
      } else {
        ++it;
      }
    }
  }
  // Reaping frees admission capacity: submitters blocked on a full
  // runtime (block_when_full) must re-check, or they would sleep on
  // room that already exists.
  if (reaped) vacancy_cv_.notify_all();
}

void QueryRuntime::DriverLoop(uint32_t driver_index) {
  for (;;) {
    std::shared_ptr<QuerySession> session;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock,
                     [&] { return shutdown_ || HasDispatchableLocked(); });
      if (shutdown_) return;  // the destructor finishes what is queued
      session = PickLocked();
      if (session == nullptr) continue;  // lost the race to another driver
      ++running_;
      ++tenants_[session->tenant_].running;
      active_[driver_index] = session;
    }
    auto [outcome, status] = Execute(*session);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      ++stats_.completed;
      Tenant& tenant = tenants_[session->tenant_];
      --tenant.running;
      ++tenant.completed;
      active_[driver_index] = nullptr;
    }
    // Finish (which wakes Wait()ers) comes after the accounting above, so
    // stats() observed right after Wait() already includes this query.
    Finish(*session, outcome, std::move(status));
    // A finished query frees global capacity (parked submitters) and,
    // when its tenant was at quota, unblocks that tenant's queue for the
    // other drivers.
    vacancy_cv_.notify_all();
    queue_cv_.notify_all();
  }
}

std::pair<QueryOutcome, Status> QueryRuntime::Execute(QuerySession& session) {
  const QueryRequest& req = session.request_;
  const AdmissionControl& adm = options_.admission;
  {
    std::lock_guard<std::mutex> lock(session.mu_);
    session.queue_seconds_ = session.submit_watch_.ElapsedSeconds();
  }
  if (session.cancel_.load(std::memory_order_relaxed)) {
    return {QueryOutcome::kCancelled,
            Status::Cancelled("cancelled while queued")};
  }

  const double timeout = req.timeout_seconds >= 0.0
                             ? req.timeout_seconds
                             : adm.default_timeout_seconds;
  const uint64_t row_budget =
      req.row_budget >= 0 ? static_cast<uint64_t>(req.row_budget)
                          : adm.default_row_budget;

  CountingSink fallback;
  Sink* sink = req.sink != nullptr ? req.sink : &fallback;
  RowBudgetSink budget_sink(sink, row_budget == 0 ? UINT64_MAX : row_budget);
  // An aggregate query emits no rows — its one answer arrives out of
  // band — so the row budget never wraps it (a budget of 1 must not
  // truncate a COUNT).
  const bool is_aggregate =
      req.query.aggregate().kind != AggregateKind::kNone;
  Sink* run_sink = (row_budget > 0 && !is_aggregate) ? &budget_sink : sink;

  EngineOptions options;
  if (timeout > 0.0) options.deadline = Deadline::AfterSeconds(timeout);
  options.runtime.pool = &pool_;
  options.runtime.cancel = &session.cancel_;
  // The service class rides into every morsel loop of the run: pool
  // workers split between concurrent queries by these weights.
  options.runtime.weight = tenants_[session.tenant_].spec.weight;

  Stopwatch run_watch;
  EngineRunArtifacts artifacts;
  Result<EngineStats> result =
      RunEngine(session, options, run_sink, &artifacts);
  const double run_seconds = run_watch.ElapsedSeconds();

  QueryOutcome outcome;
  Status status;
  if (result.ok()) {
    outcome = budget_sink.exhausted() ? QueryOutcome::kBudgetExhausted
                                      : QueryOutcome::kCompleted;
  } else if (result.status().IsCancelled()) {
    outcome = QueryOutcome::kCancelled;
    status = result.status();
  } else if (result.status().IsTimedOut()) {
    outcome = QueryOutcome::kTimedOut;
    status = result.status();
  } else {
    outcome = QueryOutcome::kFailed;
    status = result.status();
  }
  {
    std::lock_guard<std::mutex> lock(session.mu_);
    session.run_seconds_ = run_seconds;
    if (result.ok()) session.stats_ = result.value();
    session.cache_hit_ = artifacts.cache_hit;
    session.has_aggregate_ = artifacts.has_aggregate;
    session.aggregate_ = std::move(artifacts.aggregate);
    session.rows_emitted_ = run_sink->count();
  }
  return {outcome, std::move(status)};
}

Result<EngineStats> QueryRuntime::RunEngine(QuerySession& session,
                                            const EngineOptions& options,
                                            Sink* sink,
                                            EngineRunArtifacts* artifacts) {
  const QueryRequest& req = session.request_;
  const bool is_aggregate =
      req.query.aggregate().kind != AggregateKind::kNone;
  if (ag_cache_ != nullptr && req.engine == "WF" &&
      ag_cache_->enabled(session.tenant_)) {
    const size_t tenant = session.tenant_;
    // Entries are keyed by canonical shape but stored in the variable
    // space of the query that filled them (CachedAg), so one entry
    // serves every isomorphic renaming and a verbatim repeat pays no
    // per-row remap. Engines never consult projection/DISTINCT (sink
    // concerns), so serving a repeat from the filler's query shape
    // changes no result.
    CanonicalQuery canon = CanonicalizeQuery(req.query);
    WireframeEngine engine;
    if (std::shared_ptr<const CachedAg> hit =
            ag_cache_->Lookup(tenant, canon.key)) {
      artifacts->cache_hit = true;
      // Compose the two canonical renamings into submitted -> filler:
      // the filler var playing submitted var v's role is the one with
      // v's canonical rank.
      const uint32_t n = req.query.NumVars();
      std::vector<VarId> from_canonical(n);
      for (VarId v = 0; v < n; ++v) {
        from_canonical[hit->to_canonical[v]] = v;
      }
      std::vector<VarId> to_filler(n);
      bool identity = true;
      for (VarId v = 0; v < n; ++v) {
        to_filler[v] = from_canonical[canon.to_canonical[v]];
        identity = identity && to_filler[v] == v;
      }
      // Same naming and same edge order: run the submitted query over
      // the shared AG directly — the hit is pure phase-1 savings. (Edge
      // order matters because AG edge sets are indexed by edge.)
      bool verbatim = identity;
      for (uint32_t e = 0; verbatim && e < req.query.NumEdges(); ++e) {
        const QueryEdge& a = req.query.Edge(e);
        const QueryEdge& b = hit->query.Edge(e);
        verbatim = a.src == b.src && a.dst == b.dst && a.label == b.label;
      }
      if (verbatim) {
        WF_ASSIGN_OR_RETURN(
            WireframeRunDetail detail,
            engine.RunOverAg(req.query, *hit->ag, options, sink));
        artifacts->has_aggregate = detail.has_aggregate;
        artifacts->aggregate = std::move(detail.aggregate);
        return detail.stats;
      }
      if (is_aggregate) {
        // Renamed isomorphic aggregate: run the filler's query shape
        // with the submitted spec mapped into its variable space. The
        // answer (counts keyed by data nodes) is renaming-invariant, so
        // no per-row remap exists to pay — a cached SELECT's AG serves
        // a later COUNT of the same shape with zero phase 1.
        QueryGraph filler_query = hit->query;
        AggregateSpec spec = req.query.aggregate();
        if (spec.distinct_var != kInvalidVar) {
          spec.distinct_var = to_filler[spec.distinct_var];
        }
        if (spec.group_var != kInvalidVar) {
          spec.group_var = to_filler[spec.group_var];
        }
        filler_query.SetAggregate(std::move(spec));
        WF_ASSIGN_OR_RETURN(
            WireframeRunDetail detail,
            engine.RunOverAg(filler_query, *hit->ag, options, sink));
        artifacts->has_aggregate = detail.has_aggregate;
        artifacts->aggregate = std::move(detail.aggregate);
        return detail.stats;
      }
      // Renamed isomorphic repeat: execute the filler's query shape and
      // restore the submitted variable order per row.
      RemapSink remap(sink, to_filler);
      WF_ASSIGN_OR_RETURN(
          WireframeRunDetail detail,
          engine.RunOverAg(hit->query, *hit->ag, options, &remap));
      return detail.stats;
    }
    const bool filling = ag_cache_->BeginFill(tenant, canon.key);
    // Miss: run the submitted query untouched — same plan, sink path,
    // and per-row cost as the uncached runtime.
    Result<WireframeRunDetail> detail =
        engine.RunDetailed(*req.db, *req.catalog, req.query, options, sink);
    if (!detail.ok()) {
      if (filling) ag_cache_->EndFill(tenant, canon.key, nullptr, 0.0);
      return detail.status();
    }
    artifacts->has_aggregate = detail->has_aggregate;
    artifacts->aggregate = std::move(detail->aggregate);
    if (filling) {
      // The entry's reconstruction cost is what a future hit saves:
      // phase 1 including burnback and freeze, not phase 2 (hits still
      // pay phase 2). A budget- or sink-stopped run still yields a
      // complete AG — phase 1 always runs to the end — so it fills too.
      if (detail->ag != nullptr && detail->ag->IsFrozen()) {
        auto value = std::make_shared<CachedAg>();
        value->ag = std::shared_ptr<const AnswerGraph>(std::move(detail->ag));
        value->query = req.query;
        // The cached query is a shape, not a request: strip any
        // aggregate so a COUNT-filled entry serves later plain SELECTs
        // (and vice versa) without smuggling the filler's spec along.
        value->query.SetAggregate({});
        value->to_canonical = std::move(canon.to_canonical);
        ag_cache_->EndFill(tenant, canon.key, std::move(value),
                           detail->stats.phase1_seconds);
      } else {
        ag_cache_->EndFill(tenant, canon.key, nullptr, 0.0);
      }
    }
    return detail->stats;
  }
  if (req.engine == "WF" && is_aggregate) {
    // Cache-off WF aggregate: the detailed API is required anyway —
    // Engine::Run returns only EngineStats and would drop the answer.
    WireframeEngine engine;
    WF_ASSIGN_OR_RETURN(
        WireframeRunDetail detail,
        engine.RunDetailed(*req.db, *req.catalog, req.query, options, sink));
    artifacts->has_aggregate = detail.has_aggregate;
    artifacts->aggregate = std::move(detail.aggregate);
    return detail.stats;
  }
  std::unique_ptr<Engine> engine = MakeEngine(req.engine);
  WF_CHECK(engine != nullptr) << "engine validated at Submit";
  if (is_aggregate) {
    // Baseline engines know nothing of aggregates: enumerate their rows
    // into the counting fold and report the folded answer. Their whole
    // run is the "aggregate phase".
    Stopwatch aggregate_watch;
    EnumeratingAggregateSink fold(req.query.aggregate());
    WF_ASSIGN_OR_RETURN(
        EngineStats stats,
        engine->Run(*req.db, *req.catalog, req.query, options, &fold));
    artifacts->has_aggregate = true;
    artifacts->aggregate = fold.TakeResult();
    artifacts->aggregate.fallback_reason =
        "engine '" + req.engine + "' enumerates";
    stats.aggregate_seconds = aggregate_watch.ElapsedSeconds();
    stats.output_tuples = artifacts->aggregate.NumRows();
    if (auto* aggregate_sink = dynamic_cast<AggregateSink*>(sink)) {
      aggregate_sink->OnAggregate(artifacts->aggregate);
    }
    return stats;
  }
  return engine->Run(*req.db, *req.catalog, req.query, options, sink);
}

void QueryRuntime::Finish(QuerySession& session, QueryOutcome outcome,
                          Status status) {
  {
    std::lock_guard<std::mutex> lock(session.mu_);
    session.outcome_ = outcome;
    session.status_ = std::move(status);
    session.done_ = true;
  }
  session.done_cv_.notify_all();
}

}  // namespace runtime
}  // namespace wireframe
