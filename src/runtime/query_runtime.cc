#include "runtime/query_runtime.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace wireframe {
namespace runtime {

namespace {

/// Caps the rows a run may hand to the request sink. A row beyond the
/// budget is refused (never forwarded) and returning false asks the
/// engine to stop — engines treat a declining sink as a result, not an
/// error, so a budget-clamped run finishes with OK and the runtime
/// reports kBudgetExhausted from the `exhausted` flag. The flag is only
/// raised by an actual refusal: a result with exactly `budget` rows
/// completes naturally and reports kCompleted (at the price of the
/// engine producing one surplus row to discover the end).
class RowBudgetSink : public Sink {
 public:
  RowBudgetSink(Sink* inner, uint64_t budget)
      : inner_(inner), budget_(budget) {}

  bool Emit(const std::vector<NodeId>& binding) override {
    if (count_ >= budget_) {
      exhausted_ = true;
      return false;
    }
    const bool inner_wants_more = inner_->Emit(binding);
    ++count_;
    return inner_wants_more;
  }
  uint64_t count() const override { return count_; }
  bool exhausted() const { return exhausted_; }

 private:
  Sink* inner_;
  uint64_t budget_;
  uint64_t count_ = 0;
  bool exhausted_ = false;
};

}  // namespace

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kPending:
      return "pending";
    case QueryOutcome::kCompleted:
      return "completed";
    case QueryOutcome::kBudgetExhausted:
      return "budget_exhausted";
    case QueryOutcome::kTimedOut:
      return "timed_out";
    case QueryOutcome::kCancelled:
      return "cancelled";
    case QueryOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

bool QuerySession::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void QuerySession::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_; });
}

QueryOutcome QuerySession::outcome() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outcome_;
}

Status QuerySession::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

EngineStats QuerySession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t QuerySession::rows_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_emitted_;
}

double QuerySession::queue_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_seconds_;
}

double QuerySession::run_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_seconds_;
}

QueryRuntime::QueryRuntime(RuntimeOptions options)
    : options_([&] {
        RuntimeOptions o = options;
        o.admission.max_inflight = std::max(1u, o.admission.max_inflight);
        return o;
      }()),
      pool_(ThreadPool::ResolveThreads(options_.pool_threads)) {
  active_.resize(options_.admission.max_inflight);
  drivers_.reserve(options_.admission.max_inflight);
  for (uint32_t i = 0; i < options_.admission.max_inflight; ++i) {
    drivers_.emplace_back([this, i] { DriverLoop(i); });
  }
}

QueryRuntime::~QueryRuntime() {
  std::deque<std::shared_ptr<QuerySession>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    orphaned.swap(queue_);
    // Running queries are revoked cooperatively; their drivers finish the
    // session (with kCancelled) before observing shutdown.
    for (const std::shared_ptr<QuerySession>& s : active_) {
      if (s != nullptr) s->Cancel();
    }
  }
  queue_cv_.notify_all();
  vacancy_cv_.notify_all();
  {
    // Blocked submitters woke on shutdown_ and are returning Cancelled;
    // they still touch mu_/stats_ on the way out, so drain them before
    // member destruction.
    std::unique_lock<std::mutex> lock(mu_);
    vacancy_cv_.wait(lock, [&] { return waiting_submitters_ == 0; });
  }
  for (std::thread& t : drivers_) t.join();
  for (const std::shared_ptr<QuerySession>& s : orphaned) {
    Finish(*s, QueryOutcome::kCancelled,
           Status::Cancelled("query runtime shut down"));
    ++stats_.completed;  // drivers are joined: no further writers
  }
}

Result<std::shared_ptr<QuerySession>> QueryRuntime::Submit(
    QueryRequest request) {
  if (request.db == nullptr || request.catalog == nullptr) {
    return Status::InvalidArgument("QueryRequest needs a db and a catalog");
  }
  if (MakeEngine(request.engine) == nullptr) {
    return Status::InvalidArgument("unknown engine '" + request.engine + "'");
  }

  auto session = std::make_shared<QuerySession>();
  session->engine_ = request.engine;
  session->request_ = std::move(request);

  const AdmissionControl& adm = options_.admission;
  const uint64_t capacity =
      static_cast<uint64_t>(adm.max_inflight) + adm.max_queued;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.submitted;
    ReapCancelledLocked();
    // Admission counts queries in the system (queued + running) against
    // max_inflight + max_queued, so a full runtime sheds or blocks even
    // while an idle driver is mid-handoff.
    auto has_room = [&] { return running_ + queue_.size() < capacity; };
    if (!has_room()) {
      if (!adm.block_when_full) {
        ++stats_.rejected;
        return Status::ResourceExhausted(
            "query runtime saturated (" + std::to_string(running_) +
            " running, " + std::to_string(queue_.size()) + " queued)");
      }
      // The waiter count keeps the destructor from tearing the runtime
      // down under a parked submitter: it wakes us (shutdown_) and waits
      // for this count to drain before members die.
      ++waiting_submitters_;
      vacancy_cv_.wait(lock, [&] { return shutdown_ || has_room(); });
      --waiting_submitters_;
      if (shutdown_) vacancy_cv_.notify_all();  // destructor may be waiting
    }
    if (shutdown_) {
      ++stats_.rejected;
      return Status::Cancelled("query runtime shutting down");
    }
    session->id_ = next_id_++;
    session->submit_watch_.Restart();
    queue_.push_back(session);
  }
  queue_cv_.notify_one();
  return session;
}

RuntimeStats QueryRuntime::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint32_t QueryRuntime::waiting_submitters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_submitters_;
}

void QueryRuntime::ReapCancelledLocked() {
  bool reaped = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if ((*it)->cancel_.load(std::memory_order_relaxed)) {
      Finish(**it, QueryOutcome::kCancelled,
             Status::Cancelled("cancelled while queued"));
      ++stats_.completed;
      it = queue_.erase(it);
      reaped = true;
    } else {
      ++it;
    }
  }
  // Reaping frees admission capacity: submitters blocked on a full
  // runtime (block_when_full) must re-check, or they would sleep on
  // room that already exists.
  if (reaped) vacancy_cv_.notify_all();
}

void QueryRuntime::DriverLoop(uint32_t driver_index) {
  for (;;) {
    std::shared_ptr<QuerySession> session;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;  // the destructor finishes what is queued
      session = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      active_[driver_index] = session;
    }
    Execute(*session);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      ++stats_.completed;
      active_[driver_index] = nullptr;
    }
    vacancy_cv_.notify_all();
  }
}

void QueryRuntime::Execute(QuerySession& session) {
  const QueryRequest& req = session.request_;
  const AdmissionControl& adm = options_.admission;
  {
    std::lock_guard<std::mutex> lock(session.mu_);
    session.queue_seconds_ = session.submit_watch_.ElapsedSeconds();
  }
  if (session.cancel_.load(std::memory_order_relaxed)) {
    Finish(session, QueryOutcome::kCancelled,
           Status::Cancelled("cancelled while queued"));
    return;
  }

  const double timeout = req.timeout_seconds >= 0.0
                             ? req.timeout_seconds
                             : adm.default_timeout_seconds;
  const uint64_t row_budget =
      req.row_budget >= 0 ? static_cast<uint64_t>(req.row_budget)
                          : adm.default_row_budget;

  CountingSink fallback;
  Sink* sink = req.sink != nullptr ? req.sink : &fallback;
  RowBudgetSink budget_sink(sink, row_budget == 0 ? UINT64_MAX : row_budget);
  Sink* run_sink = row_budget > 0 ? &budget_sink : sink;

  EngineOptions options;
  if (timeout > 0.0) options.deadline = Deadline::AfterSeconds(timeout);
  options.runtime.pool = &pool_;
  options.runtime.cancel = &session.cancel_;

  std::unique_ptr<Engine> engine = MakeEngine(req.engine);
  WF_CHECK(engine != nullptr) << "engine validated at Submit";
  Stopwatch run_watch;
  Result<EngineStats> result =
      engine->Run(*req.db, *req.catalog, req.query, options, run_sink);
  const double run_seconds = run_watch.ElapsedSeconds();

  QueryOutcome outcome;
  Status status;
  if (result.ok()) {
    outcome = budget_sink.exhausted() ? QueryOutcome::kBudgetExhausted
                                      : QueryOutcome::kCompleted;
  } else if (result.status().IsCancelled()) {
    outcome = QueryOutcome::kCancelled;
    status = result.status();
  } else if (result.status().IsTimedOut()) {
    outcome = QueryOutcome::kTimedOut;
    status = result.status();
  } else {
    outcome = QueryOutcome::kFailed;
    status = result.status();
  }
  {
    std::lock_guard<std::mutex> lock(session.mu_);
    session.run_seconds_ = run_seconds;
    if (result.ok()) session.stats_ = result.value();
    session.rows_emitted_ = run_sink->count();
  }
  Finish(session, outcome, std::move(status));
}

void QueryRuntime::Finish(QuerySession& session, QueryOutcome outcome,
                          Status status) {
  {
    std::lock_guard<std::mutex> lock(session.mu_);
    session.outcome_ = outcome;
    session.status_ = std::move(status);
    session.done_ = true;
  }
  session.done_cv_.notify_all();
}

}  // namespace runtime
}  // namespace wireframe
