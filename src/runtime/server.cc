#include "runtime/server.h"

#include <utility>

namespace wireframe {
namespace runtime {

Server::Server(const Database& db, const Catalog& catalog,
               ServerOptions options)
    : db_(&db),
      catalog_(&catalog),
      options_(std::move(options)),
      runtime_(options_.runtime) {}

QueryRequest Server::MakeRequest(QueryGraph query, Sink* sink) const {
  QueryRequest request;
  request.db = db_;
  request.catalog = catalog_;
  request.query = std::move(query);
  request.engine = options_.default_engine;
  request.sink = sink;
  request.timeout_seconds = options_.timeout_seconds;
  request.row_budget = options_.row_budget;
  return request;
}

Result<std::shared_ptr<QuerySession>> Server::Submit(std::string_view sparql,
                                                     Sink* sink) {
  WF_ASSIGN_OR_RETURN(QueryGraph query,
                      SparqlParser::ParseAndBind(sparql, *db_));
  return runtime_.Submit(MakeRequest(std::move(query), sink));
}

Result<std::shared_ptr<QuerySession>> Server::Submit(const QueryGraph& query,
                                                     Sink* sink) {
  return runtime_.Submit(MakeRequest(query, sink));
}

std::vector<QueryReport> Server::RunBatch(
    const std::vector<std::string>& queries,
    const std::vector<Sink*>* sinks) {
  std::vector<QueryReport> reports(queries.size());
  std::vector<std::shared_ptr<QuerySession>> sessions(queries.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    QueryReport& report = reports[i];
    report.index = i;
    Sink* sink =
        sinks != nullptr && i < sinks->size() ? (*sinks)[i] : nullptr;
    Result<std::shared_ptr<QuerySession>> session =
        Submit(queries[i], sink);
    if (!session.ok()) {
      // Parse error or admission rejection: terminal immediately.
      report.status = session.status();
      continue;
    }
    report.admitted = true;
    sessions[i] = std::move(session).value();
  }

  for (size_t i = 0; i < sessions.size(); ++i) {
    if (sessions[i] == nullptr) continue;
    const QuerySession& session = *sessions[i];
    session.Wait();
    QueryReport& report = reports[i];
    report.outcome = session.outcome();
    report.status = session.status();
    report.stats = session.stats();
    report.rows = session.rows_emitted();
    report.queue_seconds = session.queue_seconds();
    report.run_seconds = session.run_seconds();
  }
  return reports;
}

}  // namespace runtime
}  // namespace wireframe
