#include "runtime/server.h"

#include <utility>

namespace wireframe {
namespace runtime {

Server::Server(const Database& db, const Catalog& catalog,
               ServerOptions options)
    : db_(&db),
      catalog_(&catalog),
      options_(std::move(options)),
      runtime_(options_.runtime) {}

QueryRequest Server::MakeRequest(QueryGraph query, Sink* sink,
                                 std::string_view service_class) const {
  QueryRequest request;
  request.db = db_;
  request.catalog = catalog_;
  request.query = std::move(query);
  request.engine = options_.default_engine;
  request.sink = sink;
  request.timeout_seconds = options_.timeout_seconds;
  request.row_budget = options_.row_budget;
  request.service_class = service_class.empty()
                              ? options_.default_service_class
                              : std::string(service_class);
  return request;
}

Result<std::shared_ptr<QuerySession>> Server::Submit(
    std::string_view sparql, Sink* sink, std::string_view service_class) {
  WF_ASSIGN_OR_RETURN(QueryGraph query,
                      SparqlParser::ParseAndBind(sparql, *db_));
  return runtime_.Submit(MakeRequest(std::move(query), sink, service_class));
}

Result<std::shared_ptr<QuerySession>> Server::Submit(
    std::string_view sparql, Sink* sink, std::string_view service_class,
    double timeout_seconds, int64_t row_budget,
    SubmitRejection* rejection) {
  WF_ASSIGN_OR_RETURN(QueryGraph query,
                      SparqlParser::ParseAndBind(sparql, *db_));
  QueryRequest request =
      MakeRequest(std::move(query), sink, service_class);
  // Negative keeps the server default already in the request; 0 and up
  // is a real per-query value (0 = unlimited).
  if (timeout_seconds >= 0) request.timeout_seconds = timeout_seconds;
  if (row_budget >= 0) request.row_budget = row_budget;
  return runtime_.Submit(std::move(request), rejection);
}

Result<std::shared_ptr<QuerySession>> Server::Submit(
    const QueryGraph& query, Sink* sink, std::string_view service_class) {
  return runtime_.Submit(MakeRequest(query, sink, service_class));
}

std::vector<QueryReport> Server::RunBatch(
    const std::vector<std::string>& queries,
    const std::vector<Sink*>* sinks,
    const std::vector<std::string>* service_classes) {
  std::vector<QueryReport> reports(queries.size());
  std::vector<std::shared_ptr<QuerySession>> sessions(queries.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    QueryReport& report = reports[i];
    report.index = i;
    Sink* sink =
        sinks != nullptr && i < sinks->size() ? (*sinks)[i] : nullptr;
    const std::string_view service_class =
        service_classes != nullptr && i < service_classes->size()
            ? std::string_view((*service_classes)[i])
            : std::string_view();
    Result<std::shared_ptr<QuerySession>> session =
        Submit(queries[i], sink, service_class);
    // The class resolves whether or not the query was admitted: a
    // rejected query is still the resolved tenant's rejection.
    report.service_class = runtime_.ResolveServiceClassName(
        service_class.empty() ? options_.default_service_class
                              : std::string(service_class));
    if (!session.ok()) {
      // Parse error or admission rejection: terminal immediately, with
      // the status saying why (quota sheds are ResourceExhausted).
      report.status = session.status();
      continue;
    }
    report.admitted = true;
    sessions[i] = std::move(session).value();
  }

  for (size_t i = 0; i < sessions.size(); ++i) {
    if (sessions[i] == nullptr) continue;
    const QuerySession& session = *sessions[i];
    session.Wait();
    QueryReport& report = reports[i];
    report.service_class = session.service_class();
    report.outcome = session.outcome();
    report.status = session.status();
    report.stats = session.stats();
    report.cache_hit = session.cache_hit();
    report.has_aggregate = session.has_aggregate();
    report.aggregate = session.aggregate();
    report.rows = session.rows_emitted();
    report.queue_seconds = session.queue_seconds();
    report.run_seconds = session.run_seconds();
  }
  return reports;
}

}  // namespace runtime
}  // namespace wireframe
