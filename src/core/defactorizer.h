#ifndef WIREFRAME_CORE_DEFACTORIZER_H_
#define WIREFRAME_CORE_DEFACTORIZER_H_

#include <atomic>

#include "core/answer_graph.h"
#include "exec/sink.h"
#include "planner/plan.h"
#include "query/query_graph.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace wireframe {

/// Phase-2 options.
struct DefactorizerOptions {
  Deadline deadline;
  /// Worker pool for parallel enumeration (not owned). Null or
  /// single-threaded runs the exact serial code path. Parallelism is over
  /// partitions of the first join edge's AG pairs: each worker owns a
  /// full recursive enumeration context and a SinkShard, so the shared
  /// sink is only locked at batch granularity. The embedding multiset is
  /// identical for every thread count; only emission order differs.
  ThreadPool* pool = nullptr;
  /// Optional cooperative cancellation (borrowed, may be null): polled on
  /// the same amortized cadence as the deadline; once set, enumeration
  /// stops and Emit returns Status::Cancelled (rows already handed to the
  /// sink stay emitted).
  std::atomic<bool>* cancel = nullptr;
  /// Scheduler weight of every task-group this run submits to `pool`
  /// (service class of the owning query; see ParallelForOptions::weight).
  uint32_t weight = 1;
  /// Use materialized chord pair sets as early filters: as soon as both
  /// endpoints of a chord are bound, a binding not in the chord set is
  /// abandoned. Sound (chord sets are supersets of the embedding
  /// projections) and realizes §6's promise that "triangulation promises
  /// to reduce [embedding-generation cost] significantly" — the chord
  /// check cuts dead branches that a non-ideal AG would otherwise explore
  /// to the end. No effect on acyclic queries (no chords).
  bool use_chords = true;
};

/// Phase-2 counters.
struct DefactorizerStats {
  /// Embeddings emitted to the sink.
  uint64_t emitted = 0;
  /// Tuple-extension steps performed (binding attempts across all
  /// depths); over an ideal AG this is proportional to emitted.
  uint64_t extensions = 0;
  /// Branches cut by a chord filter before reaching full depth.
  uint64_t chord_rejections = 0;
};

/// Embedding generation (paper §3): joins the answer graph's edge sets in
/// the embedding plan's order to enumerate the CQ's embedding tuples.
///
/// Execution is pipelined (depth-first): each tuple is extended edge by
/// edge without materializing intermediates, so for an acyclic CQ over the
/// ideal AG the work is proportional to the output — no partial tuple is
/// ever abandoned, which is the paper's "no k-ary tuple is ever eliminated
/// during a join" guarantee. For cyclic CQs over non-ideal AGs some
/// branches die; the embedding planner's join order and the chord filters
/// minimize that.
///
/// Read path: every extension is a ForEachFwd/ForEachBwd scan and every
/// chord filter a Contains probe on the AG's pair sets. The engine
/// freezes the AG before phase 2 (WireframeOptions::freeze_ag), so these
/// resolve against immutable CSR spans (util/csr.h) — direct-indexed
/// offset lookup plus a cache-linear sorted span — instead of the
/// build-form hash tables; an unfrozen AG (freeze_ag off, or a directly
/// constructed one in tests) takes the hash path with identical results.
class Defactorizer {
 public:
  Defactorizer(const QueryGraph& query, const AnswerGraph& ag)
      : query_(&query), ag_(&ag) {}

  /// Enumerates all embeddings in `plan.join_order`, emitting each full
  /// binding to `sink`. Returns counters (or TimedOut). Stops early, with
  /// OK, when the sink declines more rows.
  Result<DefactorizerStats> Emit(const EmbeddingPlan& plan, Sink* sink,
                                 const DefactorizerOptions& options) const;

 private:
  const QueryGraph* query_;
  const AnswerGraph* ag_;
};

}  // namespace wireframe

#endif  // WIREFRAME_CORE_DEFACTORIZER_H_
