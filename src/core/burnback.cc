#include "core/burnback.h"

#include "util/logging.h"

namespace wireframe {

bool Burnback::AliveExcept(VarId v, NodeId c, uint32_t except) const {
  bool touched = false;
  for (uint32_t f : ag_->IncidentSets(v)) {
    if (f == except || !ag_->IsMaterialized(f)) continue;
    touched = true;
    if (ag_->CountAt(f, v, c) == 0) return false;
  }
  return touched;
}

void Burnback::KillOne(VarId v, NodeId c) {
  for (uint32_t f : ag_->IncidentSets(v)) {
    if (!ag_->IsMaterialized(f)) continue;
    PairSet& set = ag_->Set(f);
    const bool at_src = ag_->SrcVar(f) == v;
    const VarId other = at_src ? ag_->DstVar(f) : ag_->SrcVar(f);

    scratch_.clear();
    if (at_src) {
      set.ForEachFwd(c, [&](NodeId w) { scratch_.push_back(w); });
    } else {
      set.ForEachBwd(c, [&](NodeId w) { scratch_.push_back(w); });
    }
    for (NodeId w : scratch_) {
      const bool erased = at_src ? set.Erase(c, w) : set.Erase(w, c);
      WF_DCHECK(erased);
      ++pairs_erased_;
      if (ag_->CountAt(f, other, w) == 0) worklist_.push_back({other, w});
    }
  }
}

void Burnback::Drain() {
  // scratch_ is reused inside KillOne, so the worklist drives the loop.
  while (!worklist_.empty()) {
    Death d = worklist_.back();
    worklist_.pop_back();
    KillOne(d.var, d.node);
  }
}

uint64_t Burnback::KillNode(VarId v, NodeId c) {
  const uint64_t before = pairs_erased_;
  KillOne(v, c);
  Drain();
  return pairs_erased_ - before;
}

uint64_t Burnback::ErasePair(uint32_t index, NodeId u, NodeId v) {
  const uint64_t before = pairs_erased_;
  PairSet& set = ag_->Set(index);
  if (!set.Erase(u, v)) return 0;
  ++pairs_erased_;
  if (ag_->CountAt(index, ag_->SrcVar(index), u) == 0) {
    worklist_.push_back({ag_->SrcVar(index), u});
  }
  if (ag_->CountAt(index, ag_->DstVar(index), v) == 0) {
    worklist_.push_back({ag_->DstVar(index), v});
  }
  Drain();
  return pairs_erased_ - before;
}

uint64_t Burnback::PruneAfterExtension(uint32_t index, bool src_was_touched,
                                       bool dst_was_touched) {
  const uint64_t before = pairs_erased_;
  const VarId endpoints[2] = {ag_->SrcVar(index), ag_->DstVar(index)};
  const bool was_touched[2] = {src_was_touched, dst_was_touched};

  for (int side = 0; side < 2; ++side) {
    if (!was_touched[side]) continue;
    const VarId v = endpoints[side];

    // Pilot: smallest materialized incident set other than `index`.
    uint32_t pilot = UINT32_MAX;
    uint64_t pilot_size = UINT64_MAX;
    for (uint32_t f : ag_->IncidentSets(v)) {
      if (f == index || !ag_->IsMaterialized(f)) continue;
      const PairSet& set = ag_->Set(f);
      const uint64_t size = ag_->SrcVar(f) == v ? set.DistinctSrcCount()
                                                : set.DistinctDstCount();
      if (size < pilot_size) {
        pilot_size = size;
        pilot = f;
      }
    }
    if (pilot == UINT32_MAX) continue;  // var was not actually constrained

    // Collect the fallen first: KillOne mutates the sets being scanned.
    std::vector<NodeId> fallen;
    const PairSet& pilot_set = ag_->Set(pilot);
    auto consider = [&](NodeId c) {
      if (ag_->CountAt(index, v, c) == 0 && AliveExcept(v, c, index)) {
        fallen.push_back(c);
      }
    };
    if (ag_->SrcVar(pilot) == v) {
      pilot_set.ForEachSrc(consider);
    } else {
      pilot_set.ForEachDst(consider);
    }
    for (NodeId c : fallen) KillOne(v, c);
    Drain();
  }
  return pairs_erased_ - before;
}

}  // namespace wireframe
