#include "core/burnback.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "util/logging.h"
#include "util/timer.h"

namespace wireframe {

bool Burnback::AliveExcept(VarId v, NodeId c, uint32_t except) const {
  bool touched = false;
  for (uint32_t f : ag_->IncidentSets(v)) {
    if (f == except || !ag_->IsMaterialized(f)) continue;
    touched = true;
    if (ag_->CountAt(f, v, c) == 0) return false;
  }
  return touched;
}

void Burnback::KillOne(const Death& d) {
  for (uint32_t f : ag_->IncidentSets(d.var)) {
    if (!ag_->IsMaterialized(f)) continue;
    PairSet& set = ag_->Set(f);
    const bool at_src = ag_->SrcVar(f) == d.var;
    const VarId other = at_src ? ag_->DstVar(f) : ag_->SrcVar(f);

    // Single reverse sweep over the raw adjacency list: Erase itself is
    // the tombstone filter, so no snapshot copy is needed (and EraseSrc
    // asserts the erased count matches the live count exactly).
    auto on_erased = [&](NodeId w) {
      ++pairs_erased_;
      if (ag_->CountAt(f, other, w) == 0) {
        worklist_.push_back({other, w, d.depth + 1});
      }
    };
    if (at_src) {
      set.EraseSrc(d.node, on_erased);
    } else {
      set.EraseDst(d.node, on_erased);
    }
  }
}

void Burnback::DrainSerial() {
  while (!worklist_.empty()) {
    const Death d = worklist_.back();
    worklist_.pop_back();
    max_depth_ = std::max(max_depth_, d.depth);
    KillOne(d);
  }
}

void Burnback::DrainParallel() {
  ThreadPool* pool = options_.pool;
  const uint32_t num_shards = pool->num_threads();

  // One short mutex per edge set: a death at each endpoint of the same
  // set may be processed by different shards, and every PairSet mutation
  // (and count read feeding death detection) happens under the set's
  // lock, so the 1→0 count transition is observed exactly once.
  std::vector<std::mutex> set_mu(ag_->NumEdgeSets());

  struct Shard {
    /// Deaths this shard owns and has accepted (single-consumer).
    std::vector<Death> local;
    /// MPSC inbox: deaths handed off by other shards.
    std::mutex inbox_mu;
    std::vector<Death> inbox;
    uint64_t erased = 0;
    uint64_t handoffs = 0;
    uint32_t max_depth = 0;
  };
  std::vector<Shard> shards(num_shards);
  for (const Death& d : worklist_) {
    shards[d.var % num_shards].local.push_back(d);
  }
  // Deaths enqueued anywhere but not yet processed. Incremented before a
  // death is pushed and decremented after it is processed, so the count
  // can only read zero once every queue is empty.
  std::atomic<uint64_t> pending{worklist_.size()};
  worklist_.clear();

  auto enqueue = [&](Shard& me, uint32_t my_index, const Death& d) {
    pending.fetch_add(1, std::memory_order_relaxed);
    const uint32_t owner = d.var % num_shards;
    if (owner == my_index) {
      me.local.push_back(d);
      return;
    }
    ++me.handoffs;
    std::lock_guard<std::mutex> lock(shards[owner].inbox_mu);
    shards[owner].inbox.push_back(d);
  };

  auto process = [&](Shard& me, uint32_t my_index, const Death& d) {
    me.max_depth = std::max(me.max_depth, d.depth);
    for (uint32_t f : ag_->IncidentSets(d.var)) {
      if (!ag_->IsMaterialized(f)) continue;
      const bool at_src = ag_->SrcVar(f) == d.var;
      const VarId other = at_src ? ag_->DstVar(f) : ag_->SrcVar(f);
      std::lock_guard<std::mutex> lock(set_mu[f]);
      PairSet& set = ag_->Set(f);
      auto on_erased = [&](NodeId w) {
        ++me.erased;
        if (ag_->CountAt(f, other, w) == 0) {
          enqueue(me, my_index, {other, w, d.depth + 1});
        }
      };
      if (at_src) {
        set.EraseSrc(d.node, on_erased);
      } else {
        set.EraseDst(d.node, on_erased);
      }
    }
  };

  // Shards drain in rounds: each round runs one non-blocking drain loop
  // per shard on the pool (bodies exit when their queues are momentarily
  // empty rather than spinning, so the round terminates even when the
  // pool serializes the shard loops onto one thread). A handoff that
  // lands in a shard whose loop already exited is picked up next round;
  // every round with pending deaths processes at least one, so the
  // outer loop terminates.
  while (pending.load(std::memory_order_acquire) > 0) {
    ParallelForOptions pf;
    pf.morsel_size = 1;
    pf.weight = options_.weight;
    const Status st = pool->ParallelFor(
        num_shards, pf, [&](uint32_t, uint64_t begin, uint64_t) {
          Shard& me = shards[begin];
          const uint32_t my_index = static_cast<uint32_t>(begin);
          for (;;) {
            if (me.local.empty()) {
              std::lock_guard<std::mutex> lock(me.inbox_mu);
              me.local.swap(me.inbox);
            }
            if (me.local.empty()) break;
            const Death d = me.local.back();
            me.local.pop_back();
            process(me, my_index, d);
            pending.fetch_sub(1, std::memory_order_release);
          }
        });
    WF_CHECK(st.ok()) << "burnback drain has no deadline";

    // A cascade that narrows below the threshold — e.g. a long
    // dependency chain alternating between owners — would otherwise pay
    // one task-group barrier per level for inherently sequential work.
    // Pull the leftovers back and finish on the serial drain. Safe
    // without the inbox locks: ParallelFor is a barrier, no body runs.
    if (pending.load(std::memory_order_acquire) <
        options_.parallel_threshold) {
      for (Shard& shard : shards) {
        worklist_.insert(worklist_.end(), shard.local.begin(),
                         shard.local.end());
        worklist_.insert(worklist_.end(), shard.inbox.begin(),
                         shard.inbox.end());
        shard.local.clear();
        shard.inbox.clear();
      }
      break;
    }
  }

  for (const Shard& shard : shards) {
    pairs_erased_ += shard.erased;
    handoffs_ += shard.handoffs;
    max_depth_ = std::max(max_depth_, shard.max_depth);
  }
  DrainSerial();  // finish any below-threshold tail (no-op when empty)
}

void Burnback::Drain() {
  if (options_.pool != nullptr && options_.pool->num_threads() > 1 &&
      worklist_.size() >= options_.parallel_threshold) {
    DrainParallel();
  } else {
    DrainSerial();
  }
}

uint64_t Burnback::KillNode(VarId v, NodeId c) {
  const Stopwatch watch;
  const uint64_t before = pairs_erased_;
  worklist_.push_back({v, c, 1});
  Drain();
  seconds_ += watch.ElapsedSeconds();
  return pairs_erased_ - before;
}

uint64_t Burnback::ErasePair(uint32_t index, NodeId u, NodeId v) {
  const Stopwatch watch;
  const uint64_t before = pairs_erased_;
  PairSet& set = ag_->Set(index);
  if (!set.Erase(u, v)) {
    seconds_ += watch.ElapsedSeconds();
    return 0;
  }
  ++pairs_erased_;
  if (ag_->CountAt(index, ag_->SrcVar(index), u) == 0) {
    worklist_.push_back({ag_->SrcVar(index), u, 1});
  }
  if (ag_->CountAt(index, ag_->DstVar(index), v) == 0) {
    worklist_.push_back({ag_->DstVar(index), v, 1});
  }
  Drain();
  seconds_ += watch.ElapsedSeconds();
  return pairs_erased_ - before;
}

uint64_t Burnback::PruneAfterExtension(uint32_t index, bool src_was_touched,
                                       bool dst_was_touched) {
  const Stopwatch watch;
  const uint64_t before = pairs_erased_;
  const VarId endpoints[2] = {ag_->SrcVar(index), ag_->DstVar(index)};
  const bool was_touched[2] = {src_was_touched, dst_was_touched};

  for (int side = 0; side < 2; ++side) {
    if (!was_touched[side]) continue;
    const VarId v = endpoints[side];

    // Pilot: smallest materialized incident set other than `index`.
    uint32_t pilot = UINT32_MAX;
    uint64_t pilot_size = UINT64_MAX;
    for (uint32_t f : ag_->IncidentSets(v)) {
      if (f == index || !ag_->IsMaterialized(f)) continue;
      const PairSet& set = ag_->Set(f);
      const uint64_t size = ag_->SrcVar(f) == v ? set.DistinctSrcCount()
                                                : set.DistinctDstCount();
      if (size < pilot_size) {
        pilot_size = size;
        pilot = f;
      }
    }
    if (pilot == UINT32_MAX) continue;  // var was not actually constrained

    // Seed the worklist first: KillOne mutates the sets being scanned,
    // and a bulk seed list is what the parallel drain partitions.
    const PairSet& pilot_set = ag_->Set(pilot);
    auto consider = [&](NodeId c) {
      if (ag_->CountAt(index, v, c) == 0 && AliveExcept(v, c, index)) {
        worklist_.push_back({v, c, 1});
      }
    };
    if (ag_->SrcVar(pilot) == v) {
      pilot_set.ForEachSrc(consider);
    } else {
      pilot_set.ForEachDst(consider);
    }
    Drain();
  }
  seconds_ += watch.ElapsedSeconds();
  return pairs_erased_ - before;
}

}  // namespace wireframe
