#ifndef WIREFRAME_CORE_BURNBACK_H_
#define WIREFRAME_CORE_BURNBACK_H_

#include <cstdint>
#include <vector>

#include "core/answer_graph.h"

namespace wireframe {

/// Cascading node burnback (paper §3): "nodes in the AG that failed to
/// extend are removed. This 'node burnback' cascades."
///
/// A node dies at a variable as soon as any materialized incident edge set
/// holds no live pair for it; killing it erases its incident pairs from
/// every materialized incident set, which may starve neighbor nodes at the
/// opposite variables — a worklist drains the cascade to fixpoint. The
/// fixpoint is exactly arc consistency over the materialized edge sets
/// (tests certify this against a naive oracle).
///
/// Cost accounting: every erased pair was added by an earlier edge walk,
/// so burnback is amortized into extension cost (paper §4); the class
/// still counts erased pairs for diagnostics.
class Burnback {
 public:
  explicit Burnback(AnswerGraph* ag) : ag_(ag) {}

  /// Kills node c at variable v and drains the cascade. Returns the
  /// number of pairs erased (cascade included).
  uint64_t KillNode(VarId v, NodeId c);

  /// Erases one pair from edge set `index` (edge burnback's entry point)
  /// and drains any resulting node deaths. Returns pairs erased.
  uint64_t ErasePair(uint32_t index, NodeId u, NodeId v);

  /// After materializing edge set `index`: kills every previously-alive
  /// endpoint candidate that failed to extend into `index`, then drains.
  /// `src_was_touched` / `dst_was_touched` say whether the endpoint vars
  /// were already constrained before this extension (freshly touched
  /// variables need no pruning: the new set defines their candidates).
  uint64_t PruneAfterExtension(uint32_t index, bool src_was_touched,
                               bool dst_was_touched);

  /// Total pairs erased through this Burnback instance.
  uint64_t pairs_erased() const { return pairs_erased_; }

 private:
  struct Death {
    VarId var;
    NodeId node;
  };

  /// Erases all pairs incident to (v, c), queueing starved neighbors.
  void KillOne(VarId v, NodeId c);
  void Drain();

  /// True iff c is alive at v considering all materialized incident sets
  /// except `except` (UINT32_MAX to consider all).
  bool AliveExcept(VarId v, NodeId c, uint32_t except) const;

  AnswerGraph* ag_;
  std::vector<Death> worklist_;
  std::vector<NodeId> scratch_;
  uint64_t pairs_erased_ = 0;
};

}  // namespace wireframe

#endif  // WIREFRAME_CORE_BURNBACK_H_
