#ifndef WIREFRAME_CORE_BURNBACK_H_
#define WIREFRAME_CORE_BURNBACK_H_

#include <cstdint>
#include <vector>

#include "core/answer_graph.h"
#include "util/thread_pool.h"

namespace wireframe {

/// Knobs of one Burnback instance (how cascades drain).
struct BurnbackOptions {
  /// Worker pool (borrowed, may be null). Null or single-threaded drains
  /// every cascade serially; otherwise cascades whose seed worklist
  /// reaches `parallel_threshold` drain on the pool (see Burnback).
  ThreadPool* pool = nullptr;
  /// Scheduler weight of the drain's task-groups on a shared pool
  /// (service class of the owning query; see ParallelForOptions::weight).
  uint32_t weight = 1;
  /// Minimum seed-worklist size before a cascade drains in parallel;
  /// below it the per-drain setup (shards, per-set mutexes) costs more
  /// than it saves. Tests pin this to 1 to force the parallel path on
  /// small fixtures.
  uint64_t parallel_threshold = 64;
};

/// Cascading node burnback (paper §3): "nodes in the AG that failed to
/// extend are removed. This 'node burnback' cascades."
///
/// A node dies at a variable as soon as any materialized incident edge set
/// holds no live pair for it; killing it erases its incident pairs from
/// every materialized incident set, which may starve neighbor nodes at the
/// opposite variables — a worklist drains the cascade to fixpoint. The
/// fixpoint is exactly arc consistency over the materialized edge sets
/// (tests certify this against a naive oracle), and arc consistency is a
/// monotone closure: the surviving pair sets are the unique maximal
/// arc-consistent subset, independent of the order deaths are processed
/// in. That confluence is what licenses the parallel drain below.
///
/// Parallel drain (ROADMAP: "partitioned worklists with ownership by
/// variable"): the cascade worklist is partitioned by owning variable
/// into one shard per pool worker (owner(v) = v mod workers). A death for
/// variable v is processed only by v's owner; deaths discovered for
/// another partition are handed off through that shard's MPSC inbox.
/// Erasures lock the affected edge set (one short per-set mutex — a death
/// at each endpoint of the same set may land in different shards), and
/// shards drain in rounds on the shared ThreadPool until a global
/// in-flight counter hits zero, the task-group weight riding in. Because
/// the fixpoint is confluent and PairSet erasure is order-oblivious
/// (tombstones land wherever the erased keys hash, adjacency lists are
/// untouched), the surviving AnswerGraph — and pairs_erased() — are
/// identical for every thread count; only the diagnostic depth/handoff
/// counters are schedule-dependent.
///
/// Cost accounting: every erased pair was added by an earlier edge walk,
/// so burnback is amortized into extension cost (paper §4); the class
/// still counts erased pairs for diagnostics.
class Burnback {
 public:
  explicit Burnback(AnswerGraph* ag, BurnbackOptions options = {})
      : ag_(ag), options_(options) {}

  /// Kills node c at variable v and drains the cascade. Returns the
  /// number of pairs erased (cascade included).
  uint64_t KillNode(VarId v, NodeId c);

  /// Erases one pair from edge set `index` (edge burnback's entry point)
  /// and drains any resulting node deaths. Returns pairs erased.
  uint64_t ErasePair(uint32_t index, NodeId u, NodeId v);

  /// After materializing edge set `index`: kills every previously-alive
  /// endpoint candidate that failed to extend into `index`, then drains.
  /// `src_was_touched` / `dst_was_touched` say whether the endpoint vars
  /// were already constrained before this extension (freshly touched
  /// variables need no pruning: the new set defines their candidates).
  uint64_t PruneAfterExtension(uint32_t index, bool src_was_touched,
                               bool dst_was_touched);

  /// Total pairs erased through this Burnback instance. Thread-count
  /// invariant.
  uint64_t pairs_erased() const { return pairs_erased_; }

  /// Deepest cascade level any death reached (seed deaths are depth 1).
  /// Diagnostic: schedule-dependent under the parallel drain.
  uint32_t max_cascade_depth() const { return max_depth_; }

  /// Deaths handed off across worklist partitions (0 on serial drains).
  /// Diagnostic: schedule-dependent.
  uint64_t handoffs() const { return handoffs_; }

  /// Wall seconds spent inside this instance's public entry points
  /// (seed scans + cascade drains), summed across calls.
  double seconds() const { return seconds_; }

 private:
  struct Death {
    VarId var;
    NodeId node;
    /// Cascade level: 1 for seeds, parent + 1 for starved neighbors.
    uint32_t depth;
  };

  /// Erases all pairs incident to (d.var, d.node), queueing starved
  /// neighbors onto worklist_. Serial-drain body.
  void KillOne(const Death& d);
  /// Drains worklist_ to fixpoint, serially or in parallel per
  /// BurnbackOptions and the seed size.
  void Drain();
  void DrainSerial();
  void DrainParallel();

  /// True iff c is alive at v considering all materialized incident sets
  /// except `except` (UINT32_MAX to consider all).
  bool AliveExcept(VarId v, NodeId c, uint32_t except) const;

  AnswerGraph* ag_;
  BurnbackOptions options_;
  std::vector<Death> worklist_;
  uint64_t pairs_erased_ = 0;
  uint32_t max_depth_ = 0;
  uint64_t handoffs_ = 0;
  double seconds_ = 0.0;
};

}  // namespace wireframe

#endif  // WIREFRAME_CORE_BURNBACK_H_
