#include "core/wireframe.h"

#include "query/shape.h"
#include "util/timer.h"

namespace wireframe {

Status WireframeEngine::EmitEmbeddings(const QueryGraph& query,
                                       const AnswerGraph& ag,
                                       const EngineOptions& options,
                                       ThreadPool* pool, Sink* sink,
                                       WireframeRunDetail* detail) {
  bool emitted_by_bushy = false;
  if (options_.bushy_phase2) {
    BushyPlanner bushy_planner(query);
    Result<BushyPlan> bushy_plan = bushy_planner.Plan(ag.Stats());
    if (bushy_plan.ok()) {
      BushyExecutor executor(query, ag);
      BushyExecutorOptions bushy_options;
      bushy_options.deadline = options.deadline;
      bushy_options.pool = pool;
      bushy_options.cancel = options.runtime.cancel;
      bushy_options.weight = options.runtime.weight;
      WF_ASSIGN_OR_RETURN(detail->phase2_stats,
                          executor.Emit(*bushy_plan, sink, bushy_options));
      emitted_by_bushy = true;
      detail->used_bushy = true;
    }
    // Capped-out bushy DP falls through to the pipelined defactorizer.
  }
  EmbeddingPlanner embedding_planner(query);
  WF_ASSIGN_OR_RETURN(detail->embedding_plan,
                      embedding_planner.PlanJoinOrder(ag.Stats()));
  if (!emitted_by_bushy) {
    Defactorizer defactorizer(query, ag);
    DefactorizerOptions defac_options;
    defac_options.deadline = options.deadline;
    defac_options.use_chords = options_.chords_in_phase2;
    defac_options.pool = pool;
    defac_options.cancel = options.runtime.cancel;
    defac_options.weight = options.runtime.weight;
    WF_ASSIGN_OR_RETURN(
        detail->phase2_stats,
        defactorizer.Emit(detail->embedding_plan, sink, defac_options));
  }
  return Status::OK();
}

Status WireframeEngine::ExecutePhase2(const QueryGraph& query,
                                      const AnswerGraph& ag,
                                      const EngineOptions& options,
                                      ThreadPool* pool, Sink* sink,
                                      WireframeRunDetail* detail) {
  const AggregateSpec& spec = query.aggregate();
  if (spec.kind == AggregateKind::kNone) {
    return EmitEmbeddings(query, ag, options, pool, sink, detail);
  }
  Stopwatch aggregate_watch;
  detail->has_aggregate = true;
  AggregatePlanner planner(query);
  AggregatePlan plan =
      planner.Plan(spec, AggregateExecutor::MaterializedChords(ag));
  if (plan.mode != AggregateMode::kEnumerate && !ag.IsFrozen()) {
    plan.mode = AggregateMode::kEnumerate;
    plan.reason = "answer graph not frozen (freeze_ag off)";
  }
  if (plan.mode != AggregateMode::kEnumerate) {
    AggregateExecutor executor(query, ag);
    AggregateExecutorOptions exec_options;
    exec_options.deadline = options.deadline;
    exec_options.pool = pool;
    exec_options.cancel = options.runtime.cancel;
    exec_options.weight = options.runtime.weight;
    WF_ASSIGN_OR_RETURN(detail->aggregate,
                        executor.Run(plan, spec, exec_options));
  } else {
    EnumeratingAggregateSink fold(spec);
    const Status enumerated =
        EmitEmbeddings(query, ag, options, pool, &fold, detail);
    if (!enumerated.ok()) return enumerated;
    detail->aggregate = fold.TakeResult();
    detail->aggregate.fallback_reason = plan.reason;
  }
  detail->stats.aggregate_seconds = aggregate_watch.ElapsedSeconds();
  if (auto* aggregate_sink = dynamic_cast<AggregateSink*>(sink)) {
    aggregate_sink->OnAggregate(detail->aggregate);
  }
  return Status::OK();
}

Result<WireframeRunDetail> WireframeEngine::RunDetailed(
    const Database& db, const Catalog& catalog, const QueryGraph& query,
    const EngineOptions& options, Sink* sink) {
  WireframeRunDetail detail;
  Stopwatch total;

  // One pool serves both phases: the shared runtime pool when this run is
  // part of a QueryRuntime, otherwise a private pool (threads==1, the
  // default, never builds one, so the serial paths run exactly as
  // before).
  PoolLease lease(options);
  ThreadPool* pool = lease.get();
  detail.threads = lease.threads();

  // --- Planning: Edgifier (+ Triangulator for cyclic queries). ---
  Stopwatch plan_watch;
  CardinalityEstimator estimator(catalog);
  Edgifier edgifier(query, estimator);
  WF_ASSIGN_OR_RETURN(detail.ag_plan, edgifier.PlanEdgeOrder());

  const QueryShape shape = AnalyzeShape(query);
  detail.cyclic = !shape.acyclic;
  if (!shape.acyclic && options_.triangulate) {
    Triangulator triangulator(query, estimator);
    WF_ASSIGN_OR_RETURN(Chordification chords,
                        triangulator.Triangulate(shape));
    detail.ag_plan.chords = std::move(chords.chords);
    detail.ag_plan.base_triangles = std::move(chords.base_triangles);
    detail.ag_plan.base_triangle_closing_edge =
        std::move(chords.base_triangle_closing_edge);
  }
  detail.plan_seconds = plan_watch.ElapsedSeconds();

  // --- Phase 1: answer-graph generation. ---
  Stopwatch phase1_watch;
  GeneratorOptions gen_options;
  gen_options.triangulate = options_.triangulate;
  gen_options.edge_burnback = options_.edge_burnback;
  gen_options.lookahead = options_.lookahead;
  gen_options.deadline = options.deadline;
  gen_options.pool = pool;
  gen_options.cancel = options.runtime.cancel;
  gen_options.weight = options.runtime.weight;
  gen_options.freeze = options_.freeze_ag;
  AgGenerator generator(db, catalog);
  WF_ASSIGN_OR_RETURN(GeneratorResult gen,
                      generator.Generate(query, detail.ag_plan, gen_options));
  detail.stats.phase1_seconds = phase1_watch.ElapsedSeconds();
  detail.stats.burnback_seconds = gen.burnback_seconds;
  detail.stats.freeze_seconds = gen.freeze_seconds;
  detail.pairs_burned = gen.pairs_burned;
  detail.chord_pairs = gen.chord_pairs;

  // --- Phase 2: embeddings, or the factorized aggregate DP. ---
  Stopwatch phase2_watch;
  {
    const Status phase2 =
        ExecutePhase2(query, *gen.ag, options, pool, sink, &detail);
    if (!phase2.ok()) return phase2;
  }
  detail.stats.phase2_seconds = phase2_watch.ElapsedSeconds();

  detail.stats.seconds = total.ElapsedSeconds();
  detail.stats.edge_walks = gen.edge_walks;
  detail.stats.output_tuples = detail.has_aggregate
                                   ? detail.aggregate.NumRows()
                                   : detail.phase2_stats.emitted;
  detail.stats.ag_pairs = gen.ag->TotalQueryEdgePairs();
  detail.stats.pairs_burned = gen.pairs_burned;
  detail.stats.burnback_depth = gen.burnback_depth;
  detail.stats.burnback_handoffs = gen.burnback_handoffs;
  detail.ag = std::move(gen.ag);
  return detail;
}

Result<WireframeRunDetail> WireframeEngine::RunOverAg(
    const QueryGraph& query, const AnswerGraph& ag,
    const EngineOptions& options, Sink* sink) {
  WF_CHECK(ag.IsFrozen()) << "RunOverAg requires a frozen AnswerGraph";
  WireframeRunDetail detail;
  Stopwatch total;

  PoolLease lease(options);
  ThreadPool* pool = lease.get();
  detail.threads = lease.threads();
  detail.cyclic = !AnalyzeShape(query).acyclic;

  Stopwatch phase2_watch;
  {
    const Status phase2 =
        ExecutePhase2(query, ag, options, pool, sink, &detail);
    if (!phase2.ok()) return phase2;
  }
  detail.stats.phase2_seconds = phase2_watch.ElapsedSeconds();

  detail.stats.seconds = total.ElapsedSeconds();
  detail.stats.output_tuples = detail.has_aggregate
                                   ? detail.aggregate.NumRows()
                                   : detail.phase2_stats.emitted;
  detail.stats.ag_pairs = ag.TotalQueryEdgePairs();
  return detail;
}

Result<EngineStats> WireframeEngine::Run(const Database& db,
                                         const Catalog& catalog,
                                         const QueryGraph& query,
                                         const EngineOptions& options,
                                         Sink* sink) {
  WF_ASSIGN_OR_RETURN(WireframeRunDetail detail,
                      RunDetailed(db, catalog, query, options, sink));
  return detail.stats;
}

Result<std::string> WireframeEngine::Explain(const Database& db,
                                             const Catalog& catalog,
                                             const QueryGraph& query) {
  CardinalityEstimator estimator(catalog);
  Edgifier edgifier(query, estimator);
  WF_ASSIGN_OR_RETURN(AgPlan plan, edgifier.PlanEdgeOrder());

  const QueryShape shape = AnalyzeShape(query);
  if (!shape.acyclic && options_.triangulate) {
    Triangulator triangulator(query, estimator);
    WF_ASSIGN_OR_RETURN(Chordification chords,
                        triangulator.Triangulate(shape));
    plan.chords = std::move(chords.chords);
  }
  auto label_name = [&db](LabelId p) { return db.labels().Term(p); };
  std::string out = query.ToString(label_name) + "\n";
  out += shape.acyclic ? "shape: acyclic\n" : "shape: cyclic\n";
  out += plan.ToString(query, label_name);
  return out;
}

}  // namespace wireframe
