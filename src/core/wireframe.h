#ifndef WIREFRAME_CORE_WIREFRAME_H_
#define WIREFRAME_CORE_WIREFRAME_H_

#include <memory>
#include <string>

#include "core/bushy_executor.h"
#include "core/defactorizer.h"
#include "core/generator.h"
#include "exec/aggregate_executor.h"
#include "exec/engine.h"
#include "planner/edgifier.h"
#include "planner/embedding_planner.h"
#include "planner/triangulator.h"

namespace wireframe {

/// Wireframe-specific knobs beyond EngineOptions.
struct WireframeOptions {
  /// Chordify cyclic queries (Triangulator). Acyclic queries ignore this.
  bool triangulate = true;
  /// Run edge burnback after chord materialization (paper future work;
  /// off reproduces the paper's experimental configuration).
  bool edge_burnback = false;
  /// One-step lookahead existence filter during edge extension (see
  /// GeneratorOptions::lookahead). On by default for the engine: it is
  /// sound, changes no result or final AG, and removes most add-then-burn
  /// churn from phase 1.
  bool lookahead = true;
  /// Check materialized chord sets during defactorization (the paper §6:
  /// "Triangulation promises to reduce this significantly"). Sound; only
  /// affects cyclic queries evaluated with triangulation.
  bool chords_in_phase2 = true;
  /// Use the bushy phase-2 planner/executor (paper §6's richer plan
  /// space) instead of the pipelined left-deep defactorizer. Falls back
  /// to pipelined when the bushy DP is capped out. Default off: pipelined
  /// enumeration over the iAG is already output-optimal for acyclic CQs;
  /// bench_ablation_bushy measures where bushy pays.
  bool bushy_phase2 = false;
  /// Freeze the answer graph into its immutable CSR form between the two
  /// phases (AnswerGraph::Freeze), so defactorization / bushy execution
  /// scan sorted spans instead of probing hash tables. Sound: the frozen
  /// view holds exactly the live pairs, so embeddings and |AG| are
  /// unchanged (the freeze-equivalence suite certifies it). On by
  /// default; off reproduces the historical mutable read path (and hands
  /// back a mutable AG in WireframeRunDetail).
  bool freeze_ag = true;
};

/// Detailed result of one Wireframe run, superset of EngineStats: exposes
/// phase timings and the AG itself for benches and tests.
struct WireframeRunDetail {
  /// Includes the phase wall-time split (stats.phase1_seconds and
  /// friends) — EngineStats is the single copy of those numbers.
  EngineStats stats;
  double plan_seconds = 0.0;
  DefactorizerStats phase2_stats;
  /// True if the bushy executor produced the embeddings.
  bool used_bushy = false;
  /// Resolved worker-thread count the run used (EngineOptions::threads
  /// with 0 mapped to the hardware core count).
  uint32_t threads = 1;
  uint64_t pairs_burned = 0;
  uint64_t chord_pairs = 0;
  bool cyclic = false;
  /// The answer graph (query-edge sets live; chords included when used).
  std::unique_ptr<AnswerGraph> ag;
  AgPlan ag_plan;
  EmbeddingPlan embedding_plan;
  /// Aggregate result, filled when the query carries an AggregateSpec
  /// (kind != kNone): the factorized counting DP's answer when the plan
  /// was DP-eligible, the enumerate-then-count fold otherwise
  /// (aggregate.factorized says which; stats.aggregate_seconds holds
  /// the wall time either way).
  bool has_aggregate = false;
  AggregateResult aggregate;
};

/// The prototype system (paper §5): a two-phase, cost-based evaluator for
/// SPARQL conjunctive queries. Phase 1 plans (Edgifier + Triangulator) and
/// generates the answer graph; phase 2 plans (greedy, on exact AG
/// statistics) and generates the embeddings.
class WireframeEngine : public Engine {
 public:
  explicit WireframeEngine(WireframeOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "WF"; }
  bool SupportsThreads() const override { return true; }

  Result<EngineStats> Run(const Database& db, const Catalog& catalog,
                          const QueryGraph& query, const EngineOptions& options,
                          Sink* sink) override;

  /// Like Run but returns phase-level details and the answer graph.
  Result<WireframeRunDetail> RunDetailed(const Database& db,
                                         const Catalog& catalog,
                                         const QueryGraph& query,
                                         const EngineOptions& options,
                                         Sink* sink);

  /// Phase 2 only, over an already-generated answer graph (the runtime's
  /// AG cache hit path): plans embeddings from the AG's exact statistics
  /// and emits through the same defactorizer / bushy executor as
  /// RunDetailed, honoring the deadline/cancel/pool/weight in `options`.
  /// `ag` is borrowed, must belong to `query`'s shape, and must be frozen
  /// — it may be read concurrently by any number of other runs. The
  /// returned detail has zero phase-1/burnback/freeze seconds and a null
  /// `ag` field (the caller already owns it).
  Result<WireframeRunDetail> RunOverAg(const QueryGraph& query,
                                       const AnswerGraph& ag,
                                       const EngineOptions& options,
                                       Sink* sink);

  /// Renders the two plans for a query without executing (EXPLAIN).
  Result<std::string> Explain(const Database& db, const Catalog& catalog,
                              const QueryGraph& query);

  const WireframeOptions& wireframe_options() const { return options_; }

 private:
  /// Shared phase-2 body of RunDetailed and RunOverAg: routes aggregate
  /// queries to the factorized counting DP (enumerate-then-count when
  /// the plan declines), plain SELECTs to the bushy/pipelined embedding
  /// executors. Delivers aggregate results to `sink` when it is an
  /// AggregateSink.
  Status ExecutePhase2(const QueryGraph& query, const AnswerGraph& ag,
                       const EngineOptions& options, ThreadPool* pool,
                       Sink* sink, WireframeRunDetail* detail);
  /// The plain embedding-enumeration phase 2 (bushy when configured and
  /// plannable, pipelined defactorizer otherwise).
  Status EmitEmbeddings(const QueryGraph& query, const AnswerGraph& ag,
                        const EngineOptions& options, ThreadPool* pool,
                        Sink* sink, WireframeRunDetail* detail);

  WireframeOptions options_;
};

}  // namespace wireframe

#endif  // WIREFRAME_CORE_WIREFRAME_H_
