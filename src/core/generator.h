#ifndef WIREFRAME_CORE_GENERATOR_H_
#define WIREFRAME_CORE_GENERATOR_H_

#include <atomic>
#include <functional>
#include <memory>

#include "catalog/catalog.h"
#include "core/answer_graph.h"
#include "planner/plan.h"
#include "planner/triangulator.h"
#include "query/query_graph.h"
#include "storage/database.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace wireframe {

/// One observable step of answer-graph generation, for tracing (the
/// Fig. 2 walkthrough bench prints these) and diagnostics.
struct GeneratorTraceStep {
  enum class Kind { kExtension, kChord, kEdgeBurnback };
  Kind kind = Kind::kExtension;
  /// Query-edge index (kExtension) or chord index (kChord); unused for
  /// kEdgeBurnback.
  uint32_t index = 0;
  uint64_t pairs_added = 0;
  uint64_t pairs_burned = 0;
  /// |AG| over query edges after the step.
  uint64_t ag_size_after = 0;
};

/// Phase-1 configuration.
struct GeneratorOptions {
  /// Chordify cycles and materialize chords (cyclic queries only).
  bool triangulate = true;
  /// Run the edge-burnback fixpoint after chord materialization. The
  /// paper's experiments leave this off ("our evaluation over cyclic CQs
  /// is without edge burnback"); on, the AG is ideal even for cyclic CQs.
  bool edge_burnback = false;
  /// One-step lookahead existence filter: when an extension reaches a
  /// previously untouched variable, reject pairs whose fresh endpoint has
  /// no data edge at all for some still-unmaterialized incident pattern.
  /// Sound (such pairs are certain to burn back later) and cheap (one
  /// index probe per future pattern); it converts add-then-burn churn
  /// into never-adding. Off by default here so the raw generator traces
  /// the paper's Fig. 2 exactly; WireframeOptions enables it for the
  /// engine. bench_ablation_lookahead quantifies the effect.
  bool lookahead = false;
  Deadline deadline;
  /// Worker pool for morsel-parallel edge extension (not owned). Null or
  /// single-threaded runs the exact serial code path. Each extension
  /// level partitions its frontier into morsels whose workers fill
  /// thread-local PairSetShards; shards merge in morsel order at the
  /// level barrier, so the resulting AnswerGraph — including adjacency
  /// order — is identical for every thread count. Burnback and chord
  /// materialization stay serial (they run at the barrier).
  ThreadPool* pool = nullptr;
  /// Optional cooperative cancellation (borrowed, may be null): polled on
  /// the same amortized cadence as the deadline; once set, generation
  /// stops and Generate returns Status::Cancelled.
  std::atomic<bool>* cancel = nullptr;
  /// Scheduler weight of every task-group this run submits to `pool`
  /// (service class of the owning query; see ParallelForOptions::weight).
  uint32_t weight = 1;
  /// Freeze the answer graph into its immutable CSR form once generation
  /// (including the final burnback and compaction) finishes, so phase 2
  /// scans sorted spans instead of hash tables. Off by default here so
  /// the raw generator hands back a mutable AG (paper-trace benches drive
  /// burnback on it afterwards); WireframeOptions::freeze_ag enables it
  /// for the engine.
  bool freeze = false;
  /// Minimum seed-worklist size before node-burnback cascades drain in
  /// parallel on `pool` (BurnbackOptions::parallel_threshold). Tests pin
  /// this to 1 to force the partitioned drain on small fixtures.
  uint64_t burnback_parallel_threshold = 64;
  /// Optional step observer.
  std::function<void(const GeneratorTraceStep&)> trace;
};

/// Phase-1 output: the answer graph plus cost accounting.
struct GeneratorResult {
  // Held by pointer: AnswerGraph is move-only and large.
  std::unique_ptr<AnswerGraph> ag;
  uint64_t edge_walks = 0;
  uint64_t pairs_burned = 0;
  uint64_t chord_pairs = 0;
  bool used_chords = false;
  /// Deepest cascade level node burnback reached (seeds are depth 1; 0
  /// when nothing burned). Schedule-dependent under the parallel drain.
  uint32_t burnback_depth = 0;
  /// Cascade deaths handed across worklist partitions by the parallel
  /// drain (0 on serial drains). Schedule-dependent.
  uint64_t burnback_handoffs = 0;
  /// Wall seconds inside node burnback (seed scans + cascade drains,
  /// chord-materialization pruning included).
  double burnback_seconds = 0.0;
  /// Wall seconds spent freezing the AG (0 when options.freeze is off).
  double freeze_seconds = 0.0;
};

/// Executes the answer-graph generation phase (paper §3): for each query
/// edge of the plan, an edge-extension step pulls matching labeled edges
/// from G constrained by the current AG node sets, then cascading node
/// burnback removes nodes that failed to extend. For cyclic queries the
/// plan's chords are then materialized; edge burnback optionally culls
/// spurious edges down to the ideal AG.
class AgGenerator {
 public:
  AgGenerator(const Database& db, const Catalog& catalog)
      : db_(&db), catalog_(&catalog) {}

  /// Runs phase 1 under `plan`. The plan's edge_order must be a
  /// permutation of the query's edges.
  Result<GeneratorResult> Generate(const QueryGraph& query, const AgPlan& plan,
                                   const GeneratorOptions& options) const;

 private:
  const Database* db_;
  const Catalog* catalog_;
};

}  // namespace wireframe

#endif  // WIREFRAME_CORE_GENERATOR_H_
