#include "core/defactorizer.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "util/interrupt.h"
#include "util/logging.h"
#include "util/span_kernels.h"

namespace wireframe {

namespace {

/// First-edge pairs per morsel on the parallel path. Each pair roots a
/// whole enumeration subtree, so morsels are small to balance skew; the
/// dispatch cost is one fetch_add per morsel.
constexpr uint64_t kRootMorsel = 64;

/// One chord evaluated by span intersection: at its check depth exactly
/// one endpoint is newly bound, so the chord constrains the extension
/// candidates to the chord-neighbors of the already-bound endpoint — a
/// sorted span fetched once per parent binding (the hoisted form of
/// probing Contains per candidate).
struct IntersectChord {
  uint32_t slot;
  /// The endpoint bound before this depth; its binding keys the span.
  VarId bound_var;
  /// True: the free endpoint is the chord's dst, so candidates are
  /// FwdNeighbors(binding[bound_var]); false: BwdNeighbors.
  bool fwd;
};

/// Per-depth chord strategy, precomputed from the join order (the bound
/// set at each depth is static, so orientation never needs a runtime
/// probe).
struct DepthChords {
  std::vector<IntersectChord> isect;
  /// True iff every chord checked at this depth is in `isect` — the
  /// gate for the intersection fast path. (A depth mixing in a chord
  /// whose endpoints both bind at depth 0 falls back to Contains.)
  bool all_isect = false;
};

/// Recursive enumeration state shared across frames.
struct EmitContext {
  const QueryGraph* query;
  const AnswerGraph* ag;
  const std::vector<uint32_t>* order;
  /// chord_checks[d]: chord slots whose endpoints are both bound once the
  /// edge at depth d has been joined.
  const std::vector<std::vector<uint32_t>>* chord_checks;
  /// depth_chords[d]: the intersection form of chord_checks[d] (frozen
  /// AGs only; empty vector when the AG is unfrozen or chords are off).
  const std::vector<DepthChords>* depth_chords;
  Sink* sink;
  InterruptProbe probe;
  std::vector<NodeId> binding;
  DefactorizerStats stats;
  bool stop = false;  // sink asked to stop (not an error)
  /// True once the depth-0 chords were already applied to the root list
  /// as a batched prefilter (parallel path); the per-root loop then
  /// skips ChordsAccept(_, 0).
  bool roots_prefiltered = false;
  /// Ping-pong intersection scratch, indexed by depth: a frame only
  /// touches its own depth's buffers, so recursion below it is safe.
  std::vector<std::vector<NodeId>> isect_a;
  std::vector<std::vector<NodeId>> isect_b;

  /// Amortized deadline + cancellation probe; also true once the sink
  /// declined more rows.
  bool DeadlineHit() {
    if (stop) return true;
    if (!probe.Hit()) return false;
    stop = true;
    return true;
  }
};

/// True iff every chord becoming checkable at this depth accepts the
/// current binding.
bool ChordsAccept(EmitContext& ctx, size_t depth) {
  for (uint32_t slot : (*ctx.chord_checks)[depth]) {
    const NodeId u = ctx.binding[ctx.ag->SrcVar(slot)];
    const NodeId v = ctx.binding[ctx.ag->DstVar(slot)];
    if (!ctx.ag->Set(slot).Contains(u, v)) {
      ++ctx.stats.chord_rejections;
      return false;
    }
  }
  return true;
}

void EmitStep(EmitContext& ctx, size_t depth);

/// The frozen fast path for a depth whose chords all intersect: instead
/// of scanning `ext` and probing every chord per candidate, intersect
/// the extension span with each chord span (both sorted CSR spans) and
/// recurse only over the survivors. Accounting matches the scan+probe
/// path exactly: one extension per span candidate, one rejection per
/// candidate failing any chord — so stats stay invariant across the two
/// forms (and across dispatch and thread count).
void IntersectAndRecurse(EmitContext& ctx, size_t depth,
                         std::span<const NodeId> ext, NodeId& free_slot) {
  const DepthChords& dc = (*ctx.depth_chords)[depth];
  ctx.stats.extensions += ext.size();
  std::span<const NodeId> current = ext;
  bool into_a = true;
  for (const IntersectChord& chord : dc.isect) {
    if (current.empty()) break;
    const PairSet& cset = ctx.ag->Set(chord.slot);
    const NodeId bound = ctx.binding[chord.bound_var];
    const std::span<const NodeId> cspan =
        chord.fwd ? cset.FwdNeighbors(bound) : cset.BwdNeighbors(bound);
    std::vector<NodeId>& buf = into_a ? ctx.isect_a[depth]
                                      : ctx.isect_b[depth];
    const size_t cap = std::min(current.size(), cspan.size()) + kIntersectPad;
    if (buf.size() < cap) buf.resize(cap);
    const size_t n = IntersectSorted(current, cspan, buf.data());
    current = std::span<const NodeId>(buf.data(), n);
    into_a = !into_a;
  }
  ctx.stats.chord_rejections += ext.size() - current.size();
  for (const NodeId value : current) {
    if (ctx.stop) break;
    free_slot = value;
    EmitStep(ctx, depth + 1);
  }
  free_slot = kInvalidNode;
}

void EmitStep(EmitContext& ctx, size_t depth) {
  if (ctx.stop) return;
  if (depth == ctx.order->size()) {
    ++ctx.stats.emitted;
    if (!ctx.sink->Emit(ctx.binding)) ctx.stop = true;
    return;
  }
  const uint32_t e = (*ctx.order)[depth];
  const QueryEdge& qe = ctx.query->Edge(e);
  const PairSet& set = ctx.ag->Set(e);
  NodeId& src_slot = ctx.binding[qe.src];
  NodeId& dst_slot = ctx.binding[qe.dst];
  const bool src_bound = src_slot != kInvalidNode;
  const bool dst_bound = dst_slot != kInvalidNode;

  if (ctx.DeadlineHit()) return;

  if (src_bound && dst_bound) {
    ++ctx.stats.extensions;
    if (set.Contains(src_slot, dst_slot) && ChordsAccept(ctx, depth)) {
      EmitStep(ctx, depth + 1);
    }
    return;
  }
  const bool isect_chords = !ctx.depth_chords->empty() &&
                            (*ctx.depth_chords)[depth].all_isect;
  if (src_bound) {
    if (isect_chords) {
      IntersectAndRecurse(ctx, depth, set.FwdNeighbors(src_slot), dst_slot);
      return;
    }
    set.ForEachFwd(src_slot, [&](NodeId v) {
      if (ctx.stop) return;
      ++ctx.stats.extensions;
      dst_slot = v;
      if (ChordsAccept(ctx, depth)) EmitStep(ctx, depth + 1);
      dst_slot = kInvalidNode;
    });
    return;
  }
  if (dst_bound) {
    if (isect_chords) {
      IntersectAndRecurse(ctx, depth, set.BwdNeighbors(dst_slot), src_slot);
      return;
    }
    set.ForEachBwd(dst_slot, [&](NodeId u) {
      if (ctx.stop) return;
      ++ctx.stats.extensions;
      src_slot = u;
      if (ChordsAccept(ctx, depth)) EmitStep(ctx, depth + 1);
      src_slot = kInvalidNode;
    });
    return;
  }
  // Neither endpoint bound: only legal for the first edge of a connected
  // plan; enumerate the whole edge set.
  WF_DCHECK(depth == 0) << "disconnected embedding plan";
  set.ForEachPair([&](NodeId u, NodeId v) {
    if (ctx.stop) return;
    ++ctx.stats.extensions;
    src_slot = u;
    dst_slot = v;
    if (ChordsAccept(ctx, depth)) EmitStep(ctx, depth + 1);
    src_slot = kInvalidNode;
    dst_slot = kInvalidNode;
  });
}

/// Builds the per-depth intersection strategy from the static bound-set
/// progression of the join order. Only meaningful on a frozen AG (the
/// spans the kernels need are the CSR form); returns empty otherwise and
/// every depth falls back to the probe path.
std::vector<DepthChords> PlanDepthChords(
    const QueryGraph& query, const AnswerGraph& ag,
    const std::vector<uint32_t>& order,
    const std::vector<std::vector<uint32_t>>& chord_checks) {
  if (!ag.IsFrozen()) return {};
  std::vector<DepthChords> plan(order.size());
  std::vector<bool> bound(query.NumVars(), false);
  for (size_t d = 0; d < order.size(); ++d) {
    DepthChords& dc = plan[d];
    for (uint32_t slot : chord_checks[d]) {
      const VarId cu = ag.SrcVar(slot);
      const VarId cv = ag.DstVar(slot);
      // Endpoints not bound before depth d bind at depth d; a chord with
      // exactly one new endpoint constrains the edge's free variable.
      const bool cu_new = !bound[cu];
      const bool cv_new = !bound[cv];
      if (cu_new != cv_new) {
        dc.isect.push_back({slot, cu_new ? cv : cu, /*fwd=*/cv_new});
      }
    }
    dc.all_isect = !chord_checks[d].empty() &&
                   dc.isect.size() == chord_checks[d].size();
    const QueryEdge& qe = query.Edge(order[d]);
    bound[qe.src] = true;
    bound[qe.dst] = true;
  }
  return plan;
}

}  // namespace

Result<DefactorizerStats> Defactorizer::Emit(
    const EmbeddingPlan& plan, Sink* sink,
    const DefactorizerOptions& options) const {
  WF_CHECK(plan.join_order.size() == query_->NumEdges())
      << "embedding plan must cover every query edge";

  // Precompute which materialized chords become checkable at each depth:
  // the first step after which both endpoint variables are bound.
  std::vector<std::vector<uint32_t>> chord_checks(plan.join_order.size());
  if (options.use_chords) {
    std::vector<bool> bound(query_->NumVars(), false);
    for (size_t d = 0; d < plan.join_order.size(); ++d) {
      const QueryEdge& qe = query_->Edge(plan.join_order[d]);
      bound[qe.src] = true;
      bound[qe.dst] = true;
      for (uint32_t slot = ag_->NumQueryEdges(); slot < ag_->NumEdgeSets();
           ++slot) {
        if (!ag_->IsMaterialized(slot)) continue;
        if (!bound[ag_->SrcVar(slot)] || !bound[ag_->DstVar(slot)]) continue;
        bool already = false;
        for (size_t earlier = 0; earlier < d && !already; ++earlier) {
          for (uint32_t s : chord_checks[earlier]) already |= s == slot;
        }
        if (!already) chord_checks[d].push_back(slot);
      }
    }
  }
  const std::vector<DepthChords> depth_chords =
      PlanDepthChords(*query_, *ag_, plan.join_order, chord_checks);

  auto init_context = [&](EmitContext& ctx) {
    ctx.query = query_;
    ctx.ag = ag_;
    ctx.order = &plan.join_order;
    ctx.chord_checks = &chord_checks;
    ctx.depth_chords = &depth_chords;
    ctx.probe = InterruptProbe(options.deadline, options.cancel);
    ctx.binding.assign(query_->NumVars(), kInvalidNode);
    ctx.isect_a.resize(plan.join_order.size());
    ctx.isect_b.resize(plan.join_order.size());
  };

  ThreadPool* pool = options.pool;
  if (pool != nullptr && pool->num_threads() > 1 &&
      !plan.join_order.empty()) {
    // Parallel enumeration: partition the first edge's pairs; each worker
    // runs the same recursive EmitStep over its own context from depth 1,
    // draining embeddings through a private SinkShard.
    const uint32_t e0 = plan.join_order[0];
    const QueryEdge& qe0 = query_->Edge(e0);
    const PairSet& first = ag_->Set(e0);
    std::vector<std::pair<NodeId, NodeId>> roots;
    roots.reserve(first.Size());
    first.ForEachPair([&](NodeId u, NodeId v) { roots.emplace_back(u, v); });

    // Depth-0 chords (both endpoints bound by the first edge) applied to
    // the whole sorted root list as one batched probe per chord —
    // Csr::ContainsMany walks each span monotonically with prefetch
    // instead of binary-searching per root. Accounting mirrors the
    // per-root loop: one extension charged per discarded root here plus
    // one per surviving root below; one rejection per discarded root.
    uint64_t prefilter_extensions = 0;
    uint64_t prefilter_rejections = 0;
    bool roots_prefiltered = false;
    if (ag_->IsFrozen() && !chord_checks.empty() &&
        !chord_checks[0].empty()) {
      roots_prefiltered = true;
      std::vector<NodeId> keys(roots.size());
      std::vector<NodeId> vals(roots.size());
      std::vector<uint8_t> hits(roots.size());
      for (uint32_t slot : chord_checks[0]) {
        // Depth-0 chords connect exactly the first edge's variables.
        const bool straight = ag_->SrcVar(slot) == qe0.src;
        WF_DCHECK(straight ? (ag_->SrcVar(slot) == qe0.src &&
                              ag_->DstVar(slot) == qe0.dst)
                           : (ag_->SrcVar(slot) == qe0.dst &&
                              ag_->DstVar(slot) == qe0.src));
        for (size_t i = 0; i < roots.size(); ++i) {
          keys[i] = straight ? roots[i].first : roots[i].second;
          vals[i] = straight ? roots[i].second : roots[i].first;
        }
        const Csr& csr = ag_->Set(slot).FwdCsr();
        csr.ContainsMany(std::span<const NodeId>(keys).first(roots.size()),
                         std::span<const NodeId>(vals).first(roots.size()),
                         hits.data());
        size_t kept = 0;
        for (size_t i = 0; i < roots.size(); ++i) {
          if (hits[i] != 0) {
            roots[kept++] = roots[i];
          } else {
            ++prefilter_extensions;
            ++prefilter_rejections;
          }
        }
        roots.resize(kept);
        keys.resize(kept);
        vals.resize(kept);
        hits.resize(kept);
      }
    }

    std::mutex sink_mu;
    std::atomic<bool> stop{false};
    const uint32_t workers = pool->num_threads();
    std::vector<EmitContext> ctxs(workers);
    std::vector<SinkShard> shards;
    shards.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      shards.emplace_back(sink, &sink_mu, &stop);
      init_context(ctxs[w]);
      ctxs[w].roots_prefiltered = roots_prefiltered;
    }
    for (uint32_t w = 0; w < workers; ++w) ctxs[w].sink = &shards[w];

    ParallelForOptions pf;
    pf.morsel_size = kRootMorsel;
    pf.deadline = options.deadline;
    pf.stop = &stop;
    pf.cancel = options.cancel;
    pf.weight = options.weight;
    const Status st = pool->ParallelFor(
        roots.size(), pf,
        [&](uint32_t worker, uint64_t begin, uint64_t end) {
          EmitContext& ctx = ctxs[worker];
          for (uint64_t i = begin; i < end && !ctx.stop; ++i) {
            const auto [u, v] = roots[i];
            ++ctx.stats.extensions;
            ctx.binding[qe0.src] = u;
            ctx.binding[qe0.dst] = v;
            if (ctx.roots_prefiltered || ChordsAccept(ctx, 0)) {
              EmitStep(ctx, 1);
            }
            ctx.binding[qe0.src] = kInvalidNode;
            ctx.binding[qe0.dst] = kInvalidNode;
          }
        });

    DefactorizerStats stats;
    stats.extensions = prefilter_extensions;
    stats.chord_rejections = prefilter_rejections;
    bool timed_out = st.IsTimedOut();
    bool cancelled = st.IsCancelled();
    for (uint32_t w = 0; w < workers; ++w) {
      timed_out |= ctxs[w].probe.timed_out();
      cancelled |= ctxs[w].probe.cancelled();
      stats.extensions += ctxs[w].stats.extensions;
      stats.chord_rejections += ctxs[w].stats.chord_rejections;
    }
    if (cancelled) return Status::Cancelled("embedding generation");
    if (timed_out) return Status::TimedOut("embedding generation");
    for (SinkShard& shard : shards) {
      shard.Flush();
      stats.emitted += shard.count();
    }
    return stats;
  }

  EmitContext ctx;
  init_context(ctx);
  ctx.sink = sink;
  EmitStep(ctx, 0);
  WF_RETURN_NOT_OK(ctx.probe.StatusFor("embedding generation"));
  return ctx.stats;
}

}  // namespace wireframe
