#include "core/defactorizer.h"

#include <atomic>
#include <mutex>
#include <utility>

#include "util/interrupt.h"
#include "util/logging.h"

namespace wireframe {

namespace {

/// First-edge pairs per morsel on the parallel path. Each pair roots a
/// whole enumeration subtree, so morsels are small to balance skew; the
/// dispatch cost is one fetch_add per morsel.
constexpr uint64_t kRootMorsel = 64;

/// Recursive enumeration state shared across frames.
struct EmitContext {
  const QueryGraph* query;
  const AnswerGraph* ag;
  const std::vector<uint32_t>* order;
  /// chord_checks[d]: chord slots whose endpoints are both bound once the
  /// edge at depth d has been joined.
  const std::vector<std::vector<uint32_t>>* chord_checks;
  Sink* sink;
  InterruptProbe probe;
  std::vector<NodeId> binding;
  DefactorizerStats stats;
  bool stop = false;  // sink asked to stop (not an error)

  /// Amortized deadline + cancellation probe; also true once the sink
  /// declined more rows.
  bool DeadlineHit() {
    if (stop) return true;
    if (!probe.Hit()) return false;
    stop = true;
    return true;
  }
};

/// True iff every chord becoming checkable at this depth accepts the
/// current binding.
bool ChordsAccept(EmitContext& ctx, size_t depth) {
  for (uint32_t slot : (*ctx.chord_checks)[depth]) {
    const NodeId u = ctx.binding[ctx.ag->SrcVar(slot)];
    const NodeId v = ctx.binding[ctx.ag->DstVar(slot)];
    if (!ctx.ag->Set(slot).Contains(u, v)) {
      ++ctx.stats.chord_rejections;
      return false;
    }
  }
  return true;
}

void EmitStep(EmitContext& ctx, size_t depth) {
  if (ctx.stop) return;
  if (depth == ctx.order->size()) {
    ++ctx.stats.emitted;
    if (!ctx.sink->Emit(ctx.binding)) ctx.stop = true;
    return;
  }
  const uint32_t e = (*ctx.order)[depth];
  const QueryEdge& qe = ctx.query->Edge(e);
  const PairSet& set = ctx.ag->Set(e);
  NodeId& src_slot = ctx.binding[qe.src];
  NodeId& dst_slot = ctx.binding[qe.dst];
  const bool src_bound = src_slot != kInvalidNode;
  const bool dst_bound = dst_slot != kInvalidNode;

  if (ctx.DeadlineHit()) return;

  if (src_bound && dst_bound) {
    ++ctx.stats.extensions;
    if (set.Contains(src_slot, dst_slot) && ChordsAccept(ctx, depth)) {
      EmitStep(ctx, depth + 1);
    }
    return;
  }
  if (src_bound) {
    set.ForEachFwd(src_slot, [&](NodeId v) {
      if (ctx.stop) return;
      ++ctx.stats.extensions;
      dst_slot = v;
      if (ChordsAccept(ctx, depth)) EmitStep(ctx, depth + 1);
      dst_slot = kInvalidNode;
    });
    return;
  }
  if (dst_bound) {
    set.ForEachBwd(dst_slot, [&](NodeId u) {
      if (ctx.stop) return;
      ++ctx.stats.extensions;
      src_slot = u;
      if (ChordsAccept(ctx, depth)) EmitStep(ctx, depth + 1);
      src_slot = kInvalidNode;
    });
    return;
  }
  // Neither endpoint bound: only legal for the first edge of a connected
  // plan; enumerate the whole edge set.
  WF_DCHECK(depth == 0) << "disconnected embedding plan";
  set.ForEachPair([&](NodeId u, NodeId v) {
    if (ctx.stop) return;
    ++ctx.stats.extensions;
    src_slot = u;
    dst_slot = v;
    if (ChordsAccept(ctx, depth)) EmitStep(ctx, depth + 1);
    src_slot = kInvalidNode;
    dst_slot = kInvalidNode;
  });
}

}  // namespace

Result<DefactorizerStats> Defactorizer::Emit(
    const EmbeddingPlan& plan, Sink* sink,
    const DefactorizerOptions& options) const {
  WF_CHECK(plan.join_order.size() == query_->NumEdges())
      << "embedding plan must cover every query edge";

  // Precompute which materialized chords become checkable at each depth:
  // the first step after which both endpoint variables are bound.
  std::vector<std::vector<uint32_t>> chord_checks(plan.join_order.size());
  if (options.use_chords) {
    std::vector<bool> bound(query_->NumVars(), false);
    for (size_t d = 0; d < plan.join_order.size(); ++d) {
      const QueryEdge& qe = query_->Edge(plan.join_order[d]);
      bound[qe.src] = true;
      bound[qe.dst] = true;
      for (uint32_t slot = ag_->NumQueryEdges(); slot < ag_->NumEdgeSets();
           ++slot) {
        if (!ag_->IsMaterialized(slot)) continue;
        if (!bound[ag_->SrcVar(slot)] || !bound[ag_->DstVar(slot)]) continue;
        bool already = false;
        for (size_t earlier = 0; earlier < d && !already; ++earlier) {
          for (uint32_t s : chord_checks[earlier]) already |= s == slot;
        }
        if (!already) chord_checks[d].push_back(slot);
      }
    }
  }

  ThreadPool* pool = options.pool;
  if (pool != nullptr && pool->num_threads() > 1 &&
      !plan.join_order.empty()) {
    // Parallel enumeration: partition the first edge's pairs; each worker
    // runs the same recursive EmitStep over its own context from depth 1,
    // draining embeddings through a private SinkShard.
    const uint32_t e0 = plan.join_order[0];
    const QueryEdge& qe0 = query_->Edge(e0);
    const PairSet& first = ag_->Set(e0);
    std::vector<std::pair<NodeId, NodeId>> roots;
    roots.reserve(first.Size());
    first.ForEachPair([&](NodeId u, NodeId v) { roots.emplace_back(u, v); });

    std::mutex sink_mu;
    std::atomic<bool> stop{false};
    const uint32_t workers = pool->num_threads();
    std::vector<EmitContext> ctxs(workers);
    std::vector<SinkShard> shards;
    shards.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      shards.emplace_back(sink, &sink_mu, &stop);
      EmitContext& ctx = ctxs[w];
      ctx.query = query_;
      ctx.ag = ag_;
      ctx.order = &plan.join_order;
      ctx.chord_checks = &chord_checks;
      ctx.probe = InterruptProbe(options.deadline, options.cancel);
      ctx.binding.assign(query_->NumVars(), kInvalidNode);
    }
    for (uint32_t w = 0; w < workers; ++w) ctxs[w].sink = &shards[w];

    ParallelForOptions pf;
    pf.morsel_size = kRootMorsel;
    pf.deadline = options.deadline;
    pf.stop = &stop;
    pf.cancel = options.cancel;
    pf.weight = options.weight;
    const Status st = pool->ParallelFor(
        roots.size(), pf,
        [&](uint32_t worker, uint64_t begin, uint64_t end) {
          EmitContext& ctx = ctxs[worker];
          for (uint64_t i = begin; i < end && !ctx.stop; ++i) {
            const auto [u, v] = roots[i];
            ++ctx.stats.extensions;
            ctx.binding[qe0.src] = u;
            ctx.binding[qe0.dst] = v;
            if (ChordsAccept(ctx, 0)) EmitStep(ctx, 1);
            ctx.binding[qe0.src] = kInvalidNode;
            ctx.binding[qe0.dst] = kInvalidNode;
          }
        });

    DefactorizerStats stats;
    bool timed_out = st.IsTimedOut();
    bool cancelled = st.IsCancelled();
    for (uint32_t w = 0; w < workers; ++w) {
      timed_out |= ctxs[w].probe.timed_out();
      cancelled |= ctxs[w].probe.cancelled();
      stats.extensions += ctxs[w].stats.extensions;
      stats.chord_rejections += ctxs[w].stats.chord_rejections;
    }
    if (cancelled) return Status::Cancelled("embedding generation");
    if (timed_out) return Status::TimedOut("embedding generation");
    for (SinkShard& shard : shards) {
      shard.Flush();
      stats.emitted += shard.count();
    }
    return stats;
  }

  EmitContext ctx;
  ctx.query = query_;
  ctx.ag = ag_;
  ctx.order = &plan.join_order;
  ctx.chord_checks = &chord_checks;
  ctx.sink = sink;
  ctx.probe = InterruptProbe(options.deadline, options.cancel);
  ctx.binding.assign(query_->NumVars(), kInvalidNode);
  EmitStep(ctx, 0);
  WF_RETURN_NOT_OK(ctx.probe.StatusFor("embedding generation"));
  return ctx.stats;
}

}  // namespace wireframe
