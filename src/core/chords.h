#ifndef WIREFRAME_CORE_CHORDS_H_
#define WIREFRAME_CORE_CHORDS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/answer_graph.h"
#include "core/burnback.h"
#include "planner/triangulator.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace wireframe {

/// Knobs of one MaterializeChords run.
struct ChordMaterializeOptions {
  Deadline deadline;
  /// Worker pool (borrowed, may be null): each chord's triangle joins and
  /// intersections shard over the triangle's endpoint-candidate pairs,
  /// exactly like regular edge extension. Null or single-threaded runs
  /// the serial path; either way the materialized chord sets are
  /// identical (pairs are canonicalized into ascending packed order
  /// before insertion, so the AG is thread-count-invariant).
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation, polled amortized like the deadline.
  std::atomic<bool>* cancel = nullptr;
  /// Scheduler weight of every task-group this run submits to `pool`
  /// (service class of the owning query; see ParallelForOptions::weight).
  uint32_t weight = 1;
};

/// Runtime counterpart of the Triangulator's chordification (paper §4):
/// materializes chord pair sets and, optionally, runs the edge-burnback
/// fixpoint over all triangles.
///
/// "During evaluation, a chord is maintained as the intersection of the
/// materialized joins of the opposite two edges for each triangle in which
/// it participates." Node burnback treats materialized chords like any
/// other edge set, which keeps node sets minimal; only the edge-burnback
/// extension culls spurious *edges* (the paper's experiments run without
/// it, so both modes are first-class here).
class ChordEvaluator {
 public:
  ChordEvaluator(const Chordification& chordification, AnswerGraph* ag,
                 Burnback* burnback)
      : chordification_(&chordification), ag_(ag), burnback_(burnback) {}

  /// Registers one AG slot per chord. Call once, before query-edge
  /// materialization (unmaterialized slots do not constrain anything).
  void RegisterChordSlots();

  /// Materializes every chord, innermost (DP-tree leaves) first, applying
  /// node burnback after each. Requires all query edges materialized.
  /// Adds the pairs it retrieves to `walks`. Deadline expiry and
  /// cancellation are polled amortized (per morsel on the parallel path,
  /// every few thousand probes on the serial one).
  Status MaterializeChords(const ChordMaterializeOptions& options,
                           uint64_t* walks);

  /// Edge burnback: repeatedly enforces, for every triangle, that each
  /// side pair is witnessed by compatible pairs of the other two sides;
  /// deletions cascade through node burnback. Runs to fixpoint. Returns
  /// the number of pairs erased.
  Result<uint64_t> RunEdgeBurnback(const Deadline& deadline);

  /// AG slot index assigned to chord `chord_index`.
  uint32_t ChordSlot(uint32_t chord_index) const {
    return chord_slots_[chord_index];
  }

 private:
  /// Resolved, oriented view of one triangle: slot ids for the three
  /// sides plus their endpoint vars (u, v, w).
  struct ResolvedTriangle {
    uint32_t uv_slot, uw_slot, wv_slot;
    VarId u, v, w;
  };

  /// Maps a TriangleSide to its AG slot.
  uint32_t SlotOf(const TriangleSide& side) const;

  /// Resolves a chord-or-base triangle into slots and oriented vars;
  /// `uv_slot` is the slot of the closing side.
  ResolvedTriangle Resolve(const Triangle& tri, uint32_t uv_slot) const;

  /// All triangles of the chordification, resolved (filled lazily once
  /// every chord slot exists).
  std::vector<ResolvedTriangle> AllTriangles() const;

  const Chordification* chordification_;
  AnswerGraph* ag_;
  Burnback* burnback_;
  std::vector<uint32_t> chord_slots_;
};

}  // namespace wireframe

#endif  // WIREFRAME_CORE_CHORDS_H_
