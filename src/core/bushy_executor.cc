#include "core/bushy_executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

#include "exec/join_common.h"
#include "util/interrupt.h"
#include "util/logging.h"
#include "util/span_kernels.h"

namespace wireframe {

namespace {

/// Probe rows per morsel on the parallel path.
constexpr uint64_t kProbeMorsel = 1024;
/// Result rows per morsel for the final emit scan.
constexpr uint64_t kEmitMorsel = 256;
/// Shared join keys per morsel on the parallel leaf-merge path.
constexpr uint64_t kMergeMorsel = 128;

/// A leaf⋈leaf join eligible for the sorted-merge fast path: both edges
/// share exactly one variable and neither is a self loop. The shared
/// variable keyed on each side's frozen CSR (forward if the edge leaves
/// the shared var, backward otherwise) turns the join into one kernel
/// intersection of the two sorted key arrays plus a span cross-product
/// per common key — no hash table, no materialized leaf relations.
struct LeafMerge {
  const Csr* left_csr;
  const Csr* right_csr;
  VarId shared, left_other, right_other;
};

bool PlanLeafMerge(const QueryGraph& query, const AnswerGraph& ag,
                   const BushyPlan::Node& lnode,
                   const BushyPlan::Node& rnode, LeafMerge* out) {
  if (!ag.IsFrozen() || !lnode.IsLeaf() || !rnode.IsLeaf()) return false;
  const QueryEdge& lq = query.Edge(lnode.edge);
  const QueryEdge& rq = query.Edge(rnode.edge);
  if (lq.src == lq.dst || rq.src == rq.dst) return false;
  int shared_count = 0;
  VarId shared = 0;
  for (const VarId lv : {lq.src, lq.dst}) {
    if (lv == rq.src || lv == rq.dst) {
      ++shared_count;
      shared = lv;
    }
  }
  if (shared_count != 1) return false;
  const PairSet& lset = ag.Set(lnode.edge);
  const PairSet& rset = ag.Set(rnode.edge);
  out->left_csr = lq.src == shared ? &lset.FwdCsr() : &lset.BwdCsr();
  out->right_csr = rq.src == shared ? &rset.FwdCsr() : &rset.BwdCsr();
  out->shared = shared;
  out->left_other = lq.src == shared ? lq.dst : lq.src;
  out->right_other = rq.src == shared ? rq.dst : rq.src;
  return true;
}

}  // namespace

Result<DefactorizerStats> BushyExecutor::Emit(
    const BushyPlan& plan, Sink* sink,
    const BushyExecutorOptions& options) const {
  DefactorizerStats stats;
  uint64_t total_cells = 0;
  ThreadPool* pool = options.pool;
  const bool parallel = pool != nullptr && pool->num_threads() > 1;

  // Serial-path interrupt probe; the parallel loops get the same checks
  // per morsel from ParallelFor. (`probe` would shadow the join's probe
  // side, hence the name.)
  InterruptProbe interrupt(options.deadline, options.cancel);

  auto materialize = [&](auto&& self,
                         int index) -> Result<JoinRelation> {
    const BushyPlan::Node& node = plan.nodes[index];
    JoinRelation out;
    if (node.IsLeaf()) {
      const QueryEdge& qe = query_->Edge(node.edge);
      out.schema = {qe.src, qe.dst};
      const PairSet& set = ag_->Set(node.edge);
      out.cells.reserve(set.Size() * 2);
      set.ForEachPair([&](NodeId u, NodeId v) {
        out.cells.push_back(u);
        out.cells.push_back(v);
      });
      stats.extensions += set.Size();
      total_cells += out.cells.size();
    } else if (LeafMerge merge; PlanLeafMerge(*query_, *ag_,
                                              plan.nodes[node.left],
                                              plan.nodes[node.right],
                                              &merge)) {
      WF_RETURN_NOT_OK(interrupt.CheckNow("bushy join"));
      const Csr& lcsr = *merge.left_csr;
      const Csr& rcsr = *merge.right_csr;
      out.schema = {merge.shared, merge.left_other, merge.right_other};

      // The join keys are the intersection of the two sorted key arrays —
      // one span-kernel call over the whole join.
      std::vector<NodeId> common(
          std::min(lcsr.Nodes().size(), rcsr.Nodes().size()) + kIntersectPad);
      const size_t num_common =
          IntersectSorted(lcsr.Nodes(), rcsr.Nodes(), common.data());
      common.resize(num_common);

      // Output size is exact before any row materializes, so the memory
      // budget is decided up front — no need for the hash path's
      // in-flight guard.
      uint64_t rows = 0;
      for (const NodeId key : common) {
        rows += static_cast<uint64_t>(lcsr.Neighbors(key).size()) *
                rcsr.Neighbors(key).size();
      }
      if (rows * 3 + total_cells > options.max_cells) {
        return Status::OutOfRange(
            "bushy intermediate exceeded the memory budget");
      }
      // Mirror the hash path's accounting: both leaf scans plus one
      // extension per joined row (invariant across paths, dispatch, and
      // thread count).
      stats.extensions += ag_->Set(plan.nodes[node.left].edge).Size() +
                          ag_->Set(plan.nodes[node.right].edge).Size() + rows;

      // Cross-product span gather per common key, prefetch-pipelined: the
      // next keys' spans are pulled in while the current key's product is
      // written.
      auto gather = [&](uint64_t begin, uint64_t end,
                        std::vector<NodeId>& cells) {
        for (uint64_t c = begin; c < end; ++c) {
          if (c + 2 < end) {
            const NodeId ahead = common[c + 2];
            PrefetchRead(lcsr.Neighbors(ahead).data());
            PrefetchRead(rcsr.Neighbors(ahead).data());
          }
          const NodeId key = common[c];
          for (const NodeId lv : lcsr.Neighbors(key)) {
            for (const NodeId rv : rcsr.Neighbors(key)) {
              cells.push_back(key);
              cells.push_back(lv);
              cells.push_back(rv);
            }
          }
        }
      };
      if (parallel && num_common > kMergeMorsel) {
        const uint64_t num_morsels =
            (num_common + kMergeMorsel - 1) / kMergeMorsel;
        std::vector<std::vector<NodeId>> chunks(num_morsels);
        ParallelForOptions pf;
        pf.morsel_size = kMergeMorsel;
        pf.deadline = options.deadline;
        pf.cancel = options.cancel;
        pf.weight = options.weight;
        const Status st = pool->ParallelFor(
            num_common, pf, [&](uint32_t, uint64_t begin, uint64_t end) {
              gather(begin, end, chunks[begin / kMergeMorsel]);
            });
        if (st.IsCancelled()) return Status::Cancelled("bushy join");
        if (st.IsTimedOut()) return Status::TimedOut("bushy join");
        out.cells.reserve(rows * 3);
        for (const std::vector<NodeId>& chunk : chunks) {
          out.cells.insert(out.cells.end(), chunk.begin(), chunk.end());
        }
      } else {
        out.cells.reserve(rows * 3);
        for (uint64_t c = 0; c < num_common; c += kMergeMorsel) {
          if (interrupt.Hit()) return interrupt.StatusFor("bushy join");
          gather(c, std::min<uint64_t>(c + kMergeMorsel, num_common),
                 out.cells);
        }
      }
      total_cells += out.cells.size();
    } else {
      WF_ASSIGN_OR_RETURN(JoinRelation left, self(self, node.left));
      WF_ASSIGN_OR_RETURN(JoinRelation right, self(self, node.right));
      WF_RETURN_NOT_OK(interrupt.CheckNow("bushy join"));

      // Join columns: variables present on both sides.
      std::vector<int> lcols, rcols;
      for (size_t i = 0; i < left.schema.size(); ++i) {
        const int rc = right.ColumnOf(left.schema[i]);
        if (rc >= 0) {
          lcols.push_back(static_cast<int>(i));
          rcols.push_back(rc);
        }
      }
      WF_CHECK(!lcols.empty()) << "bushy plan produced a cross product";

      // Build on the smaller side.
      const bool build_left = left.NumRows() <= right.NumRows();
      const JoinRelation& build = build_left ? left : right;
      const JoinRelation& probe = build_left ? right : left;
      const std::vector<int>& bcols = build_left ? lcols : rcols;
      const std::vector<int>& pcols = build_left ? rcols : lcols;

      std::unordered_multimap<uint64_t, size_t> table;
      table.reserve(build.NumRows());
      for (size_t r = 0; r < build.NumRows(); ++r) {
        table.emplace(JoinKeyHash(build.Row(r), bcols), r);
      }

      // Output schema: probe side columns + build-only columns.
      out.schema = probe.schema;
      std::vector<int> extra_cols;  // build columns not in the join key
      for (size_t i = 0; i < build.schema.size(); ++i) {
        if (probe.ColumnOf(build.schema[i]) < 0) {
          out.schema.push_back(build.schema[i]);
          extra_cols.push_back(static_cast<int>(i));
        }
      }

      // One probe row's matches, appended to `cells`.
      auto probe_one = [&](size_t r, std::vector<NodeId>& cells,
                           uint64_t& matches) {
        const NodeId* prow = probe.Row(r);
        auto [begin, end] = table.equal_range(JoinKeyHash(prow, pcols));
        for (auto it = begin; it != end; ++it) {
          const NodeId* brow = build.Row(it->second);
          if (!JoinKeysEqual(prow, pcols, brow, bcols)) continue;
          for (size_t c = 0; c < probe.Width(); ++c) {
            cells.push_back(prow[c]);
          }
          for (int c : extra_cols) cells.push_back(brow[c]);
          ++matches;
        }
      };

      if (parallel && probe.NumRows() > kProbeMorsel) {
        // Morsel-parallel probe: each morsel fills a private chunk;
        // chunks concatenate in morsel order, so the joined relation is
        // bit-identical to the serial one. The hash table and both input
        // relations are only read.
        const uint64_t num_probe = probe.NumRows();
        const uint64_t num_morsels =
            (num_probe + kProbeMorsel - 1) / kProbeMorsel;
        std::vector<std::vector<NodeId>> chunks(num_morsels);
        std::vector<uint64_t> chunk_matches(num_morsels, 0);
        // Memory guard while workers run; the deterministic budget
        // decision is re-made against the exact total after the merge.
        std::atomic<uint64_t> cells_in_flight{total_cells};
        std::atomic<bool> over_budget{false};
        ParallelForOptions pf;
        pf.morsel_size = kProbeMorsel;
        pf.deadline = options.deadline;
        pf.stop = &over_budget;
        pf.cancel = options.cancel;
        pf.weight = options.weight;
        const Status st = pool->ParallelFor(
            num_probe, pf,
            [&](uint32_t, uint64_t begin, uint64_t end) {
              const uint64_t m = begin / kProbeMorsel;
              for (uint64_t r = begin; r < end; ++r) {
                probe_one(r, chunks[m], chunk_matches[m]);
              }
              if (cells_in_flight.fetch_add(chunks[m].size(),
                                            std::memory_order_relaxed) +
                      chunks[m].size() >
                  options.max_cells) {
                over_budget.store(true, std::memory_order_relaxed);
              }
            });
        if (st.IsCancelled()) return Status::Cancelled("bushy join");
        if (st.IsTimedOut()) return Status::TimedOut("bushy join");
        uint64_t merged = 0;
        for (const std::vector<NodeId>& chunk : chunks) {
          merged += chunk.size();
        }
        if (over_budget.load(std::memory_order_relaxed) ||
            merged + total_cells > options.max_cells) {
          return Status::OutOfRange(
              "bushy intermediate exceeded the memory budget");
        }
        out.cells.reserve(merged);
        for (uint64_t m = 0; m < num_morsels; ++m) {
          out.cells.insert(out.cells.end(), chunks[m].begin(),
                           chunks[m].end());
          stats.extensions += chunk_matches[m];
        }
      } else {
        for (size_t r = 0; r < probe.NumRows(); ++r) {
          if (interrupt.Hit()) return interrupt.StatusFor("bushy join");
          probe_one(r, out.cells, stats.extensions);
          if (out.cells.size() + total_cells > options.max_cells) {
            return Status::OutOfRange(
                "bushy intermediate exceeded the memory budget");
          }
        }
      }
      total_cells += out.cells.size();
    }
    return out;
  };

  if (plan.root < 0) return Status::InvalidArgument("empty bushy plan");
  WF_ASSIGN_OR_RETURN(JoinRelation result, materialize(materialize, plan.root));

  // Emit rows as full bindings.
  std::vector<int> var_to_col(query_->NumVars(), -1);
  for (size_t c = 0; c < result.schema.size(); ++c) {
    var_to_col[result.schema[c]] = static_cast<int>(c);
  }
  auto fill_binding = [&](const NodeId* row, std::vector<NodeId>& binding) {
    for (VarId v = 0; v < query_->NumVars(); ++v) {
      binding[v] = var_to_col[v] >= 0 ? row[var_to_col[v]] : kInvalidNode;
    }
  };

  if (parallel && result.NumRows() > kEmitMorsel) {
    std::mutex sink_mu;
    std::atomic<bool> stop{false};
    const uint32_t workers = pool->num_threads();
    std::vector<SinkShard> shards;
    std::vector<std::vector<NodeId>> bindings(
        workers, std::vector<NodeId>(query_->NumVars(), kInvalidNode));
    shards.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      shards.emplace_back(sink, &sink_mu, &stop);
    }
    ParallelForOptions pf;
    pf.morsel_size = kEmitMorsel;
    pf.deadline = options.deadline;
    pf.stop = &stop;
    pf.cancel = options.cancel;
    pf.weight = options.weight;
    const Status st = pool->ParallelFor(
        result.NumRows(), pf,
        [&](uint32_t worker, uint64_t begin, uint64_t end) {
          for (uint64_t r = begin; r < end; ++r) {
            fill_binding(result.Row(r), bindings[worker]);
            if (!shards[worker].Emit(bindings[worker])) break;
          }
        });
    if (st.IsCancelled()) return Status::Cancelled("bushy emit");
    if (st.IsTimedOut()) return Status::TimedOut("bushy emit");
    for (SinkShard& shard : shards) {
      shard.Flush();
      stats.emitted += shard.count();
    }
  } else {
    std::vector<NodeId> binding(query_->NumVars(), kInvalidNode);
    for (size_t r = 0; r < result.NumRows(); ++r) {
      if (interrupt.Hit()) return interrupt.StatusFor("bushy emit");
      fill_binding(result.Row(r), binding);
      ++stats.emitted;
      if (!sink->Emit(binding)) break;
    }
  }
  return stats;
}

}  // namespace wireframe
