#include "core/bushy_executor.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"
#include "util/logging.h"

namespace wireframe {

namespace {

/// A materialized intermediate: flat row-major storage over a schema of
/// variables.
struct Relation {
  std::vector<VarId> schema;
  std::vector<NodeId> cells;  // rows.size() * schema.size()

  size_t Width() const { return schema.size(); }
  size_t NumRows() const {
    return schema.empty() ? 0 : cells.size() / schema.size();
  }
  const NodeId* Row(size_t r) const { return cells.data() + r * Width(); }

  int ColumnOf(VarId v) const {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == v) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Hashes the values of `cols` within one row.
uint64_t HashKey(const NodeId* row, const std::vector<int>& cols) {
  uint64_t h = 1469598103934665603ull;
  for (int c : cols) h = Mix64(h ^ row[c]);
  return h;
}

bool KeysEqual(const NodeId* a, const std::vector<int>& acols,
               const NodeId* b, const std::vector<int>& bcols) {
  for (size_t i = 0; i < acols.size(); ++i) {
    if (a[acols[i]] != b[bcols[i]]) return false;
  }
  return true;
}

}  // namespace

Result<DefactorizerStats> BushyExecutor::Emit(
    const BushyPlan& plan, Sink* sink,
    const BushyExecutorOptions& options) const {
  DefactorizerStats stats;
  uint64_t total_cells = 0;

  auto materialize = [&](auto&& self,
                         int index) -> Result<Relation> {
    const BushyPlan::Node& node = plan.nodes[index];
    Relation out;
    if (node.IsLeaf()) {
      const QueryEdge& qe = query_->Edge(node.edge);
      out.schema = {qe.src, qe.dst};
      const PairSet& set = ag_->Set(node.edge);
      out.cells.reserve(set.Size() * 2);
      set.ForEachPair([&](NodeId u, NodeId v) {
        out.cells.push_back(u);
        out.cells.push_back(v);
      });
      stats.extensions += set.Size();
      total_cells += out.cells.size();
    } else {
      WF_ASSIGN_OR_RETURN(Relation left, self(self, node.left));
      WF_ASSIGN_OR_RETURN(Relation right, self(self, node.right));
      if (options.deadline.Expired()) {
        return Status::TimedOut("bushy join");
      }

      // Join columns: variables present on both sides.
      std::vector<int> lcols, rcols;
      for (size_t i = 0; i < left.schema.size(); ++i) {
        const int rc = right.ColumnOf(left.schema[i]);
        if (rc >= 0) {
          lcols.push_back(static_cast<int>(i));
          rcols.push_back(rc);
        }
      }
      WF_CHECK(!lcols.empty()) << "bushy plan produced a cross product";

      // Build on the smaller side.
      const bool build_left = left.NumRows() <= right.NumRows();
      const Relation& build = build_left ? left : right;
      const Relation& probe = build_left ? right : left;
      const std::vector<int>& bcols = build_left ? lcols : rcols;
      const std::vector<int>& pcols = build_left ? rcols : lcols;

      std::unordered_multimap<uint64_t, size_t> table;
      table.reserve(build.NumRows());
      for (size_t r = 0; r < build.NumRows(); ++r) {
        table.emplace(HashKey(build.Row(r), bcols), r);
      }

      // Output schema: probe side columns + build-only columns.
      out.schema = probe.schema;
      std::vector<int> extra_cols;  // build columns not in the join key
      for (size_t i = 0; i < build.schema.size(); ++i) {
        if (probe.ColumnOf(build.schema[i]) < 0) {
          out.schema.push_back(build.schema[i]);
          extra_cols.push_back(static_cast<int>(i));
        }
      }

      uint32_t tick = 0;
      for (size_t r = 0; r < probe.NumRows(); ++r) {
        if (++tick % 4096 == 0 && options.deadline.Expired()) {
          return Status::TimedOut("bushy join");
        }
        const NodeId* prow = probe.Row(r);
        auto [begin, end] = table.equal_range(HashKey(prow, pcols));
        for (auto it = begin; it != end; ++it) {
          const NodeId* brow = build.Row(it->second);
          if (!KeysEqual(prow, pcols, brow, bcols)) continue;
          for (size_t c = 0; c < probe.Width(); ++c) {
            out.cells.push_back(prow[c]);
          }
          for (int c : extra_cols) out.cells.push_back(brow[c]);
          ++stats.extensions;
        }
        if (out.cells.size() + total_cells > options.max_cells) {
          return Status::OutOfRange(
              "bushy intermediate exceeded the memory budget");
        }
      }
      total_cells += out.cells.size();
    }
    return out;
  };

  if (plan.root < 0) return Status::InvalidArgument("empty bushy plan");
  WF_ASSIGN_OR_RETURN(Relation result, materialize(materialize, plan.root));

  // Emit rows as full bindings.
  std::vector<NodeId> binding(query_->NumVars(), kInvalidNode);
  std::vector<int> var_to_col(query_->NumVars(), -1);
  for (size_t c = 0; c < result.schema.size(); ++c) {
    var_to_col[result.schema[c]] = static_cast<int>(c);
  }
  for (size_t r = 0; r < result.NumRows(); ++r) {
    const NodeId* row = result.Row(r);
    for (VarId v = 0; v < query_->NumVars(); ++v) {
      binding[v] = var_to_col[v] >= 0 ? row[var_to_col[v]] : kInvalidNode;
    }
    ++stats.emitted;
    if (!sink->Emit(binding)) break;
  }
  return stats;
}

}  // namespace wireframe
