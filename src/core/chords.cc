#include "core/chords.h"

#include <unordered_set>

#include "util/hash.h"
#include "util/logging.h"

namespace wireframe {

namespace {

/// Iterates partners of `node` (sitting at var `from`) across slot `slot`
/// of `ag`, i.e. all y with an oriented live pair (node@from, y@other).
template <typename Fn>
void ForEachPartner(const AnswerGraph& ag, uint32_t slot, VarId from,
                    NodeId node, Fn&& fn) {
  const PairSet& set = ag.Set(slot);
  if (ag.SrcVar(slot) == from) {
    set.ForEachFwd(node, fn);
  } else {
    WF_DCHECK(ag.DstVar(slot) == from);
    set.ForEachBwd(node, fn);
  }
}

/// True iff slot holds the oriented pair (x@from_var, y@other_var).
bool ContainsOriented(const AnswerGraph& ag, uint32_t slot, VarId from_var,
                      NodeId x, NodeId y) {
  const PairSet& set = ag.Set(slot);
  return ag.SrcVar(slot) == from_var ? set.Contains(x, y)
                                     : set.Contains(y, x);
}

/// Invokes fn(a, b) for every live pair of `slot`, reoriented so `a` sits
/// at var `u`.
template <typename Fn>
void ForEachOrientedPair(const AnswerGraph& ag, uint32_t slot, VarId u,
                         Fn&& fn) {
  const bool straight = ag.SrcVar(slot) == u;
  ag.Set(slot).ForEachPair([&](NodeId x, NodeId y) {
    if (straight) {
      fn(x, y);
    } else {
      fn(y, x);
    }
  });
}

}  // namespace

uint32_t ChordEvaluator::SlotOf(const TriangleSide& side) const {
  if (side.is_chord) {
    WF_CHECK(side.index < chord_slots_.size());
    return chord_slots_[side.index];
  }
  return side.index;
}

void ChordEvaluator::RegisterChordSlots() {
  WF_CHECK(chord_slots_.empty()) << "RegisterChordSlots called twice";
  for (const Chord& chord : chordification_->chords) {
    chord_slots_.push_back(ag_->AddChordSlot(chord.u, chord.v));
  }
}

ChordEvaluator::ResolvedTriangle ChordEvaluator::Resolve(
    const Triangle& tri, uint32_t uv_slot) const {
  ResolvedTriangle r;
  r.uv_slot = uv_slot;
  r.uw_slot = SlotOf(tri.side_uw);
  r.wv_slot = SlotOf(tri.side_wv);
  r.w = tri.apex;
  // u is side_uw's endpoint other than the apex; v likewise for side_wv.
  r.u = ag_->SrcVar(r.uw_slot) == tri.apex ? ag_->DstVar(r.uw_slot)
                                           : ag_->SrcVar(r.uw_slot);
  r.v = ag_->SrcVar(r.wv_slot) == tri.apex ? ag_->DstVar(r.wv_slot)
                                           : ag_->SrcVar(r.wv_slot);
  // Sanity: the closing side must connect u and v.
  WF_DCHECK((ag_->SrcVar(uv_slot) == r.u && ag_->DstVar(uv_slot) == r.v) ||
            (ag_->SrcVar(uv_slot) == r.v && ag_->DstVar(uv_slot) == r.u));
  return r;
}

std::vector<ChordEvaluator::ResolvedTriangle> ChordEvaluator::AllTriangles()
    const {
  std::vector<ResolvedTriangle> out;
  for (size_t c = 0; c < chordification_->chords.size(); ++c) {
    for (const Triangle& tri : chordification_->chords[c].triangles) {
      out.push_back(Resolve(tri, chord_slots_[c]));
    }
  }
  for (size_t t = 0; t < chordification_->base_triangles.size(); ++t) {
    out.push_back(Resolve(chordification_->base_triangles[t],
                          chordification_->base_triangle_closing_edge[t]));
  }
  return out;
}

Status ChordEvaluator::MaterializeChords(const Deadline& deadline,
                                         uint64_t* walks) {
  WF_CHECK(chord_slots_.size() == chordification_->chords.size())
      << "RegisterChordSlots must run first";

  // Innermost chords first: the chord vector is built in DP-tree preorder,
  // so reverse order guarantees a chord's own-triangle sides (query edges
  // or deeper chords) are already materialized.
  for (size_t c = chordification_->chords.size(); c-- > 0;) {
    const Chord& chord = chordification_->chords[c];
    const uint32_t slot = chord_slots_[c];

    std::unordered_set<uint64_t, Hash64> pairs;
    bool first_triangle = true;
    for (const Triangle& tri : chord.triangles) {
      if (!ag_->IsMaterialized(SlotOf(tri.side_uw)) ||
          !ag_->IsMaterialized(SlotOf(tri.side_wv))) {
        // Parent triangles reference sibling chords materialized later;
        // their constraint is enforced by edge burnback instead.
        continue;
      }
      ResolvedTriangle r = Resolve(tri, slot);
      // Orient so `a` ranges over chord.u and `b` over chord.v.
      const bool chord_straight = r.u == chord.u;
      if (first_triangle) {
        // Join side_uw ⋈ side_wv on the apex.
        ForEachOrientedPair(*ag_, r.uw_slot, r.u, [&](NodeId a, NodeId w) {
          ForEachPartner(*ag_, r.wv_slot, r.w, w, [&](NodeId b) {
            ++*walks;
            pairs.insert(chord_straight ? PackPair(a, b) : PackPair(b, a));
          });
        });
        first_triangle = false;
      } else {
        // Intersect with this triangle's join.
        std::unordered_set<uint64_t, Hash64> kept;
        for (uint64_t key : pairs) {
          auto [x, y] = UnpackPair(key);
          const NodeId a = chord_straight ? x : y;
          const NodeId b = chord_straight ? y : x;
          bool supported = false;
          ForEachPartner(*ag_, r.uw_slot, r.u, a, [&](NodeId w) {
            ++*walks;
            if (!supported &&
                ContainsOriented(*ag_, r.wv_slot, r.w, w, b)) {
              supported = true;
            }
          });
          if (supported) kept.insert(key);
        }
        pairs = std::move(kept);
      }
      if (deadline.Expired()) return Status::TimedOut("chord materialization");
    }
    WF_CHECK(!first_triangle)
        << "chord " << c << " had no materializable triangle";

    PairSet& set = ag_->Set(slot);
    for (uint64_t key : pairs) {
      auto [a, b] = UnpackPair(key);
      set.Add(a, b);
    }
    ag_->MarkMaterialized(slot);
    // Chords constrain node sets too: burn back endpoints that lost all
    // support (both endpoints were necessarily touched already).
    burnback_->PruneAfterExtension(slot, /*src_was_touched=*/true,
                                   /*dst_was_touched=*/true);
    if (deadline.Expired()) return Status::TimedOut("chord materialization");
  }
  return Status::OK();
}

Result<uint64_t> ChordEvaluator::RunEdgeBurnback(const Deadline& deadline) {
  const std::vector<ResolvedTriangle> triangles = AllTriangles();
  uint64_t erased_total = 0;

  // Pair deletions cascade both through node burnback (inside ErasePair)
  // and across triangles (a deleted pair may strand a pair of another
  // triangle), so iterate whole passes until quiescent.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ResolvedTriangle& t : triangles) {
      if (deadline.Expired()) return Status::TimedOut("edge burnback");

      // Each side must be witnessed by the other two.
      struct Doomed {
        uint32_t slot;
        NodeId x, y;  // native orientation of the slot
      };
      std::vector<Doomed> doomed;

      // Closing side (u,v): witness ∃w (a,w)∈uw ∧ (w,b)∈wv.
      ForEachOrientedPair(*ag_, t.uv_slot, t.u, [&](NodeId a, NodeId b) {
        bool ok = false;
        ForEachPartner(*ag_, t.uw_slot, t.u, a, [&](NodeId w) {
          if (!ok && ContainsOriented(*ag_, t.wv_slot, t.w, w, b)) ok = true;
        });
        if (!ok) {
          const bool straight = ag_->SrcVar(t.uv_slot) == t.u;
          doomed.push_back({t.uv_slot, straight ? a : b, straight ? b : a});
        }
      });
      // Side (u,w): witness ∃b (w,b)∈wv ∧ (a,b)∈uv.
      ForEachOrientedPair(*ag_, t.uw_slot, t.u, [&](NodeId a, NodeId w) {
        bool ok = false;
        ForEachPartner(*ag_, t.wv_slot, t.w, w, [&](NodeId b) {
          if (!ok && ContainsOriented(*ag_, t.uv_slot, t.u, a, b)) ok = true;
        });
        if (!ok) {
          const bool straight = ag_->SrcVar(t.uw_slot) == t.u;
          doomed.push_back({t.uw_slot, straight ? a : w, straight ? w : a});
        }
      });
      // Side (w,v): witness ∃a (a,w)∈uw ∧ (a,b)∈uv.
      ForEachOrientedPair(*ag_, t.wv_slot, t.w, [&](NodeId w, NodeId b) {
        bool ok = false;
        ForEachPartner(*ag_, t.uw_slot, t.w, w, [&](NodeId a) {
          if (!ok && ContainsOriented(*ag_, t.uv_slot, t.u, a, b)) ok = true;
        });
        if (!ok) {
          const bool straight = ag_->SrcVar(t.wv_slot) == t.w;
          doomed.push_back({t.wv_slot, straight ? w : b, straight ? b : w});
        }
      });

      for (const Doomed& d : doomed) {
        const uint64_t erased = burnback_->ErasePair(d.slot, d.x, d.y);
        if (erased > 0) {
          erased_total += erased;
          changed = true;
        }
      }
    }
  }
  return erased_total;
}

}  // namespace wireframe
