#include "core/chords.h"

#include <algorithm>
#include <utility>

#include "util/hash.h"
#include "util/interrupt.h"
#include "util/logging.h"

namespace wireframe {

namespace {

/// Endpoint-candidate items per morsel on the parallel chord paths. Each
/// item expands into a partner scan (like a frontier node in regular edge
/// extension), so morsels stay small to balance skewed degrees.
constexpr uint64_t kChordMorsel = 128;

/// Serial-path interrupt probes (deadline + cancel) run on this cadence.
constexpr uint32_t kProbeStride = 4096;

/// Sorts ascending and drops duplicates — the canonical form chord pair
/// lists are kept in (see MaterializeChords).
void SortUnique(std::vector<uint64_t>& keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
}

/// Iterates partners of `node` (sitting at var `from`) across slot `slot`
/// of `ag`, i.e. all y with an oriented live pair (node@from, y@other).
template <typename Fn>
void ForEachPartner(const AnswerGraph& ag, uint32_t slot, VarId from,
                    NodeId node, Fn&& fn) {
  const PairSet& set = ag.Set(slot);
  if (ag.SrcVar(slot) == from) {
    set.ForEachFwd(node, fn);
  } else {
    WF_DCHECK(ag.DstVar(slot) == from);
    set.ForEachBwd(node, fn);
  }
}

/// True iff slot holds the oriented pair (x@from_var, y@other_var).
bool ContainsOriented(const AnswerGraph& ag, uint32_t slot, VarId from_var,
                      NodeId x, NodeId y) {
  const PairSet& set = ag.Set(slot);
  return ag.SrcVar(slot) == from_var ? set.Contains(x, y)
                                     : set.Contains(y, x);
}

/// Invokes fn(a, b) for every live pair of `slot`, reoriented so `a` sits
/// at var `u`.
template <typename Fn>
void ForEachOrientedPair(const AnswerGraph& ag, uint32_t slot, VarId u,
                         Fn&& fn) {
  const bool straight = ag.SrcVar(slot) == u;
  ag.Set(slot).ForEachPair([&](NodeId x, NodeId y) {
    if (straight) {
      fn(x, y);
    } else {
      fn(y, x);
    }
  });
}

/// Snapshots slot's live pairs reoriented so .first sits at var `u` —
/// the indexable frontier the parallel chord join shards over.
std::vector<std::pair<NodeId, NodeId>> CollectOrientedPairs(
    const AnswerGraph& ag, uint32_t slot, VarId u) {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(ag.Set(slot).Size());
  ForEachOrientedPair(ag, slot, u,
                      [&](NodeId a, NodeId b) { out.emplace_back(a, b); });
  return out;
}

}  // namespace

uint32_t ChordEvaluator::SlotOf(const TriangleSide& side) const {
  if (side.is_chord) {
    WF_CHECK(side.index < chord_slots_.size());
    return chord_slots_[side.index];
  }
  return side.index;
}

void ChordEvaluator::RegisterChordSlots() {
  WF_CHECK(chord_slots_.empty()) << "RegisterChordSlots called twice";
  for (const Chord& chord : chordification_->chords) {
    chord_slots_.push_back(ag_->AddChordSlot(chord.u, chord.v));
  }
}

ChordEvaluator::ResolvedTriangle ChordEvaluator::Resolve(
    const Triangle& tri, uint32_t uv_slot) const {
  ResolvedTriangle r;
  r.uv_slot = uv_slot;
  r.uw_slot = SlotOf(tri.side_uw);
  r.wv_slot = SlotOf(tri.side_wv);
  r.w = tri.apex;
  // u is side_uw's endpoint other than the apex; v likewise for side_wv.
  r.u = ag_->SrcVar(r.uw_slot) == tri.apex ? ag_->DstVar(r.uw_slot)
                                           : ag_->SrcVar(r.uw_slot);
  r.v = ag_->SrcVar(r.wv_slot) == tri.apex ? ag_->DstVar(r.wv_slot)
                                           : ag_->SrcVar(r.wv_slot);
  // Sanity: the closing side must connect u and v.
  WF_DCHECK((ag_->SrcVar(uv_slot) == r.u && ag_->DstVar(uv_slot) == r.v) ||
            (ag_->SrcVar(uv_slot) == r.v && ag_->DstVar(uv_slot) == r.u));
  return r;
}

std::vector<ChordEvaluator::ResolvedTriangle> ChordEvaluator::AllTriangles()
    const {
  std::vector<ResolvedTriangle> out;
  for (size_t c = 0; c < chordification_->chords.size(); ++c) {
    for (const Triangle& tri : chordification_->chords[c].triangles) {
      out.push_back(Resolve(tri, chord_slots_[c]));
    }
  }
  for (size_t t = 0; t < chordification_->base_triangles.size(); ++t) {
    out.push_back(Resolve(chordification_->base_triangles[t],
                          chordification_->base_triangle_closing_edge[t]));
  }
  return out;
}

Status ChordEvaluator::MaterializeChords(
    const ChordMaterializeOptions& options, uint64_t* walks) {
  WF_CHECK(chord_slots_.size() == chordification_->chords.size())
      << "RegisterChordSlots must run first";

  ThreadPool* pool = options.pool;
  const bool pool_parallel = pool != nullptr && pool->num_threads() > 1;

  // Serial-path interrupt probe, amortized over kProbeStride partner
  // scans; the parallel paths get the same checks per morsel from
  // ParallelFor.
  InterruptProbe probe(options.deadline, options.cancel, kProbeStride);

  // Parallel driver shared by the triangle join and the intersection
  // pass: shards [0, n) into kChordMorsel morsels on the pool, where
  // body(m, begin, end, walks) handles one whole morsel and charges its
  // retrievals to `walks`; per-morsel walk counts merge at the barrier.
  // Deadline/cancel surface as the corresponding non-OK status.
  auto sharded = [&](uint64_t n, auto&& body) -> Status {
    const uint64_t num_morsels = (n + kChordMorsel - 1) / kChordMorsel;
    std::vector<uint64_t> morsel_walks(num_morsels, 0);
    ParallelForOptions pf;
    pf.morsel_size = kChordMorsel;
    pf.deadline = options.deadline;
    pf.cancel = options.cancel;
    pf.weight = options.weight;
    const Status st = pool->ParallelFor(
        n, pf, [&](uint32_t, uint64_t begin, uint64_t end) {
          const uint64_t m = begin / kChordMorsel;
          body(m, begin, end, morsel_walks[m]);
        });
    if (!st.ok()) return st;
    for (uint64_t w : morsel_walks) *walks += w;
    return Status::OK();
  };

  // Innermost chords first: the chord vector is built in DP-tree preorder,
  // so reverse order guarantees a chord's own-triangle sides (query edges
  // or deeper chords) are already materialized.
  for (size_t c = chordification_->chords.size(); c-- > 0;) {
    const Chord& chord = chordification_->chords[c];
    const uint32_t slot = chord_slots_[c];

    // Working chord pairs, packed (chord.u endpoint, chord.v endpoint).
    // Kept sorted ascending after the first triangle: the canonical order
    // makes the materialized PairSet — including adjacency order —
    // identical for every thread count.
    std::vector<uint64_t> pairs;
    bool first_triangle = true;
    for (const Triangle& tri : chord.triangles) {
      if (!ag_->IsMaterialized(SlotOf(tri.side_uw)) ||
          !ag_->IsMaterialized(SlotOf(tri.side_wv))) {
        // Parent triangles reference sibling chords materialized later;
        // their constraint is enforced by edge burnback instead.
        continue;
      }
      ResolvedTriangle r = Resolve(tri, slot);
      // Orient so `a` ranges over chord.u and `b` over chord.v.
      const bool chord_straight = r.u == chord.u;
      if (first_triangle) {
        // Join side_uw ⋈ side_wv on the apex, sharded over side_uw's
        // endpoint-candidate pairs like regular edge extension. Only the
        // parallel path snapshots the frontier (sharding needs random
        // access); the serial path streams it.
        const uint64_t frontier_size = ag_->Set(r.uw_slot).Size();
        if (pool_parallel && frontier_size > kChordMorsel) {
          const std::vector<std::pair<NodeId, NodeId>> frontier =
              CollectOrientedPairs(*ag_, r.uw_slot, r.u);
          std::vector<std::vector<uint64_t>> found(
              (frontier.size() + kChordMorsel - 1) / kChordMorsel);
          WF_RETURN_NOT_OK(sharded(
              frontier.size(), [&](uint64_t m, uint64_t begin, uint64_t end,
                                   uint64_t& morsel_walks) {
                for (uint64_t i = begin; i < end; ++i) {
                  const auto [a, w] = frontier[i];
                  ForEachPartner(
                      *ag_, r.wv_slot, r.w, w, [&](NodeId b) {
                        ++morsel_walks;
                        found[m].push_back(chord_straight ? PackPair(a, b)
                                                          : PackPair(b, a));
                      });
                }
                // Dedup inside the morsel, so a skewed join holds
                // duplicates only morsel-locally, never in the merge.
                SortUnique(found[m]);
              }));
          size_t total = 0;
          for (const std::vector<uint64_t>& chunk : found) {
            total += chunk.size();
          }
          pairs.reserve(total);
          for (const std::vector<uint64_t>& chunk : found) {
            pairs.insert(pairs.end(), chunk.begin(), chunk.end());
          }
        } else {
          // Duplicates are compacted whenever the buffer doubles, so the
          // serial path also peaks at O(distinct + recent walks), not
          // O(total walks). The probe is sticky, so the visitor is cheap
          // once interrupted.
          size_t next_compact = 1024;
          ForEachOrientedPair(*ag_, r.uw_slot, r.u, [&](NodeId a, NodeId w) {
            if (probe.Hit()) return;
            ForEachPartner(*ag_, r.wv_slot, r.w, w, [&](NodeId b) {
              ++*walks;
              pairs.push_back(chord_straight ? PackPair(a, b)
                                             : PackPair(b, a));
            });
            if (pairs.size() >= next_compact) {
              SortUnique(pairs);
              next_compact = std::max<size_t>(1024, pairs.size() * 2);
            }
          });
          if (probe.triggered()) {
            return probe.StatusFor("chord materialization");
          }
        }
        // Canonicalize: different (a,w) frontier items can produce the
        // same chord pair, so dedup; ascending order fixes the insertion
        // order below independently of sharding.
        SortUnique(pairs);
        first_triangle = false;
      } else {
        // Intersect with this triangle's join: keep a pair iff some apex
        // witness supports it. Sharded over the surviving pairs.
        //
        // `pairs` is sorted on the packed key, so consecutive pairs share
        // their high endpoint x. The partner scan keyed on x is loop-
        // invariant across such a run: hoist it into a scratch snapshot
        // (collected once per run, per morsel) and probe the other side
        // per partner — with early exit on the first witness, which the
        // streaming ForEachPartner visitor could not do. Which side x
        // sits on depends on the chord orientation: straight chords put
        // x at r.u (hoist the uw scan, probe wv); flipped chords put x
        // at r.v (hoist the wv scan, probe uw). Walk counts charge the
        // hoisted side's scanned partners — identical for every morsel
        // split, so thread-count-invariant.
        std::vector<uint8_t> keep(pairs.size(), 0);
        struct PartnerScratch {
          NodeId key = kInvalidNode;
          bool valid = false;
          std::vector<NodeId> partners;
        };
        const uint32_t hoist_slot = chord_straight ? r.uw_slot : r.wv_slot;
        const VarId hoist_from = chord_straight ? r.u : r.v;
        const uint32_t probe_slot = chord_straight ? r.wv_slot : r.uw_slot;
        const VarId probe_from = chord_straight ? r.w : r.u;
        auto support_one = [&](uint64_t i, PartnerScratch& scratch,
                               uint64_t& walk_count) {
          const auto [x, y] = UnpackPair(pairs[i]);
          if (!scratch.valid || scratch.key != x) {
            scratch.partners.clear();
            ForEachPartner(*ag_, hoist_slot, hoist_from, x,
                           [&](NodeId w) { scratch.partners.push_back(w); });
            scratch.key = x;
            scratch.valid = true;
          }
          bool supported = false;
          for (const NodeId w : scratch.partners) {
            ++walk_count;
            // Straight: witness (w@r.w, y@r.v) in wv. Flipped: witness
            // (y@r.u, w@r.w) in uw — either way the probe pairs the
            // low endpoint y with the hoisted partner w.
            const NodeId first = chord_straight ? w : y;
            const NodeId second = chord_straight ? y : w;
            if (ContainsOriented(*ag_, probe_slot, probe_from, first,
                                 second)) {
              supported = true;
              break;
            }
          }
          keep[i] = supported ? 1 : 0;
        };
        if (pool_parallel && pairs.size() > kChordMorsel) {
          WF_RETURN_NOT_OK(sharded(
              pairs.size(), [&](uint64_t, uint64_t begin, uint64_t end,
                                uint64_t& morsel_walks) {
                PartnerScratch scratch;
                for (uint64_t i = begin; i < end; ++i) {
                  support_one(i, scratch, morsel_walks);
                }
              }));
        } else {
          PartnerScratch scratch;
          for (uint64_t i = 0; i < pairs.size(); ++i) {
            if (probe.Hit()) return probe.StatusFor("chord materialization");
            support_one(i, scratch, *walks);
          }
        }
        // In-order compaction preserves the canonical ascending order.
        size_t out = 0;
        for (size_t i = 0; i < pairs.size(); ++i) {
          if (keep[i] != 0) pairs[out++] = pairs[i];
        }
        pairs.resize(out);
      }
    }
    WF_CHECK(!first_triangle)
        << "chord " << c << " had no materializable triangle";

    PairSet& set = ag_->Set(slot);
    // The canonical list is exact (sorted, deduped), so pre-size the
    // live-pair index once instead of doubling through the bulk insert.
    set.Reserve(pairs.size());
    for (uint64_t key : pairs) {
      auto [a, b] = UnpackPair(key);
      set.Add(a, b);
    }
    ag_->MarkMaterialized(slot);
    // Chords constrain node sets too: burn back endpoints that lost all
    // support (both endpoints were necessarily touched already). Burnback
    // cascades serially at this barrier, as in regular edge extension.
    burnback_->PruneAfterExtension(slot, /*src_was_touched=*/true,
                                   /*dst_was_touched=*/true);
    WF_RETURN_NOT_OK(probe.CheckNow("chord materialization"));
  }
  return Status::OK();
}

Result<uint64_t> ChordEvaluator::RunEdgeBurnback(const Deadline& deadline) {
  const std::vector<ResolvedTriangle> triangles = AllTriangles();
  uint64_t erased_total = 0;

  // Pair deletions cascade both through node burnback (inside ErasePair)
  // and across triangles (a deleted pair may strand a pair of another
  // triangle), so iterate whole passes until quiescent.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ResolvedTriangle& t : triangles) {
      if (deadline.Expired()) return Status::TimedOut("edge burnback");

      // Each side must be witnessed by the other two.
      struct Doomed {
        uint32_t slot;
        NodeId x, y;  // native orientation of the slot
      };
      std::vector<Doomed> doomed;

      // Closing side (u,v): witness ∃w (a,w)∈uw ∧ (w,b)∈wv.
      ForEachOrientedPair(*ag_, t.uv_slot, t.u, [&](NodeId a, NodeId b) {
        bool ok = false;
        ForEachPartner(*ag_, t.uw_slot, t.u, a, [&](NodeId w) {
          if (!ok && ContainsOriented(*ag_, t.wv_slot, t.w, w, b)) ok = true;
        });
        if (!ok) {
          const bool straight = ag_->SrcVar(t.uv_slot) == t.u;
          doomed.push_back({t.uv_slot, straight ? a : b, straight ? b : a});
        }
      });
      // Side (u,w): witness ∃b (w,b)∈wv ∧ (a,b)∈uv.
      ForEachOrientedPair(*ag_, t.uw_slot, t.u, [&](NodeId a, NodeId w) {
        bool ok = false;
        ForEachPartner(*ag_, t.wv_slot, t.w, w, [&](NodeId b) {
          if (!ok && ContainsOriented(*ag_, t.uv_slot, t.u, a, b)) ok = true;
        });
        if (!ok) {
          const bool straight = ag_->SrcVar(t.uw_slot) == t.u;
          doomed.push_back({t.uw_slot, straight ? a : w, straight ? w : a});
        }
      });
      // Side (w,v): witness ∃a (a,w)∈uw ∧ (a,b)∈uv.
      ForEachOrientedPair(*ag_, t.wv_slot, t.w, [&](NodeId w, NodeId b) {
        bool ok = false;
        ForEachPartner(*ag_, t.uw_slot, t.w, w, [&](NodeId a) {
          if (!ok && ContainsOriented(*ag_, t.uv_slot, t.u, a, b)) ok = true;
        });
        if (!ok) {
          const bool straight = ag_->SrcVar(t.wv_slot) == t.w;
          doomed.push_back({t.wv_slot, straight ? w : b, straight ? b : w});
        }
      });

      for (const Doomed& d : doomed) {
        const uint64_t erased = burnback_->ErasePair(d.slot, d.x, d.y);
        if (erased > 0) {
          erased_total += erased;
          changed = true;
        }
      }
    }
  }
  return erased_total;
}

}  // namespace wireframe
