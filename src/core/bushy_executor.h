#ifndef WIREFRAME_CORE_BUSHY_EXECUTOR_H_
#define WIREFRAME_CORE_BUSHY_EXECUTOR_H_

#include <atomic>

#include "core/answer_graph.h"
#include "core/defactorizer.h"
#include "exec/sink.h"
#include "planner/bushy_planner.h"
#include "query/query_graph.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace wireframe {

/// Options for bushy execution.
struct BushyExecutorOptions {
  Deadline deadline;
  /// Intermediate-memory budget in binding cells (rows x width); exceeding
  /// it aborts with OutOfRange, mirroring the materializing baselines.
  uint64_t max_cells = 400ull << 20;
  /// Worker pool (not owned). Null or single-threaded runs the exact
  /// serial code path. Parallelism is over morsels of each hash join's
  /// probe side (per-morsel row chunks concatenated in morsel order, so
  /// every intermediate relation is bit-identical to the serial run) and
  /// over the final emit scan.
  ThreadPool* pool = nullptr;
  /// Optional cooperative cancellation (borrowed, may be null): polled on
  /// the same amortized cadence as the deadline; once set, execution
  /// stops and Emit returns Status::Cancelled.
  std::atomic<bool>* cancel = nullptr;
  /// Scheduler weight of every task-group this run submits to `pool`
  /// (service class of the owning query; see ParallelForOptions::weight).
  uint32_t weight = 1;
};

/// Executes a BushyPlan over the answer graph: leaves scan AG edge sets,
/// inner nodes hash-join their children on the shared variables, fully
/// materializing each intermediate (that is what distinguishes the bushy
/// plan space from the pipelined left-deep Defactorizer; the DP's job is
/// to keep those intermediates small).
class BushyExecutor {
 public:
  BushyExecutor(const QueryGraph& query, const AnswerGraph& ag)
      : query_(&query), ag_(&ag) {}

  /// Runs the plan, emitting every embedding to `sink`. The stats reuse
  /// DefactorizerStats: `extensions` counts materialized intermediate
  /// rows (the bushy analogue of tuple-extension work).
  Result<DefactorizerStats> Emit(const BushyPlan& plan, Sink* sink,
                                 const BushyExecutorOptions& options) const;

 private:
  const QueryGraph* query_;
  const AnswerGraph* ag_;
};

}  // namespace wireframe

#endif  // WIREFRAME_CORE_BUSHY_EXECUTOR_H_
