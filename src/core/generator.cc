#include "core/generator.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "core/burnback.h"
#include "core/chords.h"
#include "util/interrupt.h"
#include "util/logging.h"

namespace wireframe {

namespace {

/// Extension probes check the deadline on this cadence to stay cheap.
constexpr uint32_t kDeadlineStride = 4096;

/// Frontier items (candidate nodes, or distinct subjects on a cold
/// start) per morsel during parallel extension. Each item expands into a
/// full neighbor scan, so morsels stay small enough to balance skewed
/// degree distributions.
constexpr uint64_t kFrontierMorsel = 256;

/// Snapshots the candidate set of `v` (in ForEachCandidate order, which
/// the parallel path must preserve to keep insertion order identical to
/// the serial path).
std::vector<NodeId> CollectCandidates(const AnswerGraph& ag, VarId v) {
  std::vector<NodeId> out;
  ag.ForEachCandidate(v, [&](NodeId c) { out.push_back(c); });
  return out;
}

}  // namespace

Result<GeneratorResult> AgGenerator::Generate(
    const QueryGraph& query, const AgPlan& plan,
    const GeneratorOptions& options) const {
  WF_CHECK(plan.edge_order.size() == query.NumEdges())
      << "plan must cover every query edge exactly once";
  const TripleStore& store = db_->store();

  GeneratorResult result;
  result.ag = std::make_unique<AnswerGraph>(query);
  AnswerGraph& ag = *result.ag;

  ThreadPool* pool = options.pool;
  const bool parallel = pool != nullptr && pool->num_threads() > 1;

  // Burnback drains its cascades on the same pool (partitioned worklists
  // with ownership by variable) once a seed list crosses the threshold.
  BurnbackOptions burnback_options;
  burnback_options.pool = pool;
  burnback_options.weight = options.weight;
  burnback_options.parallel_threshold = options.burnback_parallel_threshold;
  Burnback burnback(&ag, burnback_options);

  // Chord slots are registered up front (unmaterialized slots are inert)
  // so the chord evaluator and node burnback share one AnswerGraph.
  const bool use_chords =
      options.triangulate && !plan.chords.empty();
  Chordification chordification;
  chordification.chords = plan.chords;
  chordification.base_triangles = plan.base_triangles;
  chordification.base_triangle_closing_edge = plan.base_triangle_closing_edge;
  ChordEvaluator chord_eval(chordification, &ag, &burnback);
  if (use_chords || !plan.base_triangles.empty()) {
    chord_eval.RegisterChordSlots();
  }

  // Serial-path interrupt probe (cancel + deadline), amortized over
  // kDeadlineStride items; the parallel paths get the same checks per
  // morsel from ParallelFor.
  InterruptProbe probe(options.deadline, options.cancel, kDeadlineStride);

  // Lookahead filter support: for a node landing on a fresh variable v
  // via edge e, every other not-yet-materialized query edge incident to v
  // must have at least one matching data edge at that node. `walks` is
  // the charge account of the calling worker (the shard's counter on the
  // parallel path, result.edge_walks on the serial one).
  std::vector<bool> query_edge_done(query.NumEdges(), false);
  auto passes_lookahead = [&](VarId v, NodeId node, uint32_t via_edge,
                              uint64_t& walks) -> bool {
    if (!options.lookahead) return true;
    for (uint32_t f : query.IncidentEdges(v)) {
      if (f == via_edge || query_edge_done[f]) continue;
      const QueryEdge& qf = query.Edge(f);
      if (qf.label >= store.NumPredicates()) return false;
      ++walks;  // the existence probe is an index lookup
      if (qf.src == v) {
        if (store.OutNeighbors(qf.label, node).empty()) return false;
      } else {
        if (store.InNeighbors(qf.label, node).empty()) return false;
      }
    }
    return true;
  };

  // Parallel level driver: runs body(i, shard) over [0, n) in morsels,
  // each morsel filling a private PairSetShard, then merges the shards
  // into `set` in morsel order. The body only reads shared state (store,
  // AG sets of earlier levels); the merge at the barrier is the only
  // writer of `set`. Deadline expiry and cancellation surface as the
  // corresponding non-OK status, in which case nothing is merged.
  auto sharded_extend = [&](uint64_t n, uint64_t morsel, PairSet& set,
                            auto&& body) -> Status {
    const uint64_t num_morsels = n == 0 ? 0 : (n + morsel - 1) / morsel;
    std::vector<PairSetShard> shards(num_morsels);
    ParallelForOptions pf;
    pf.morsel_size = morsel;
    pf.deadline = options.deadline;
    pf.cancel = options.cancel;
    pf.weight = options.weight;
    const Status st = pool->ParallelFor(
        n, pf, [&](uint32_t /*worker*/, uint64_t begin, uint64_t end) {
          PairSetShard& shard = shards[begin / morsel];
          for (uint64_t i = begin; i < end; ++i) body(i, shard);
        });
    if (!st.ok()) return st;
    for (const PairSetShard& shard : shards) {
      set.MergeShard(shard);
      result.edge_walks += shard.edge_walks;
    }
    return Status::OK();
  };

  // --- Edge extension + node burnback, one query edge at a time. ---
  for (uint32_t e : plan.edge_order) {
    const QueryEdge& qe = query.Edge(e);
    const LabelId p = qe.label;
    PairSet& set = ag.Set(e);
    const bool src_touched = ag.IsTouched(qe.src);
    const bool dst_touched = ag.IsTouched(qe.dst);
    Status level_status;  // non-OK on a parallel-path interrupt

    if (p >= store.NumPredicates()) {
      // Label exists in the dictionary but has no triples: the edge set
      // stays empty and burnback below wipes the constrained endpoints.
    } else if (!src_touched && !dst_touched) {
      // Cold start: the whole labeled edge set enters the AG.
      if (parallel) {
        // Morsel over the predicate's distinct subjects (random access
        // into the CSR index — no transient edge-list copy). Subjects
        // ascend and objects ascend within each subject, so the merged
        // insertion order equals the serial ForEachEdge order.
        const std::span<const NodeId> subjects = store.DistinctSubjects(p);
        level_status = sharded_extend(
            subjects.size(), kFrontierMorsel, set,
            [&](uint64_t i, PairSetShard& shard) {
              const NodeId s = subjects[i];
              for (NodeId o : store.OutNeighbors(p, s)) {
                ++shard.edge_walks;
                if (passes_lookahead(qe.src, s, e, shard.edge_walks) &&
                    passes_lookahead(qe.dst, o, e, shard.edge_walks)) {
                  shard.Add(s, o);
                }
              }
            });
      } else {
        store.ForEachEdge(p, [&](NodeId s, NodeId o) {
          if (probe.Hit()) return;  // sticky: the rest of the scan is cheap
          ++result.edge_walks;
          if (passes_lookahead(qe.src, s, e, result.edge_walks) &&
              passes_lookahead(qe.dst, o, e, result.edge_walks)) {
            set.Add(s, o);
          }
        });
      }
    } else if (src_touched && !dst_touched) {
      if (parallel) {
        const std::vector<NodeId> frontier = CollectCandidates(ag, qe.src);
        level_status = sharded_extend(
            frontier.size(), kFrontierMorsel, set,
            [&](uint64_t i, PairSetShard& shard) {
              const NodeId u = frontier[i];
              ++shard.edge_walks;  // one index probe
              for (NodeId o : store.OutNeighbors(p, u)) {
                ++shard.edge_walks;
                if (passes_lookahead(qe.dst, o, e, shard.edge_walks)) {
                  shard.Add(u, o);
                }
              }
            });
      } else {
        ag.ForEachCandidate(qe.src, [&](NodeId u) {
          if (probe.Hit()) return;
          ++result.edge_walks;  // one index probe
          for (NodeId o : store.OutNeighbors(p, u)) {
            ++result.edge_walks;
            if (passes_lookahead(qe.dst, o, e, result.edge_walks)) {
              set.Add(u, o);
            }
          }
        });
      }
    } else if (!src_touched && dst_touched) {
      if (parallel) {
        const std::vector<NodeId> frontier = CollectCandidates(ag, qe.dst);
        level_status = sharded_extend(
            frontier.size(), kFrontierMorsel, set,
            [&](uint64_t i, PairSetShard& shard) {
              const NodeId w = frontier[i];
              ++shard.edge_walks;
              for (NodeId s : store.InNeighbors(p, w)) {
                ++shard.edge_walks;
                if (passes_lookahead(qe.src, s, e, shard.edge_walks)) {
                  shard.Add(s, w);
                }
              }
            });
      } else {
        ag.ForEachCandidate(qe.dst, [&](NodeId w) {
          if (probe.Hit()) return;
          ++result.edge_walks;
          for (NodeId s : store.InNeighbors(p, w)) {
            ++result.edge_walks;
            if (passes_lookahead(qe.src, s, e, result.edge_walks)) {
              set.Add(s, w);
            }
          }
        });
      }
    } else {
      // Both constrained: probe from the side with fewer candidates and
      // filter the far endpoint by aliveness.
      const uint64_t src_cand = ag.CandidateCount(qe.src);
      const uint64_t dst_cand = ag.CandidateCount(qe.dst);
      if (src_cand <= dst_cand) {
        if (parallel) {
          const std::vector<NodeId> frontier = CollectCandidates(ag, qe.src);
          level_status = sharded_extend(
              frontier.size(), kFrontierMorsel, set,
              [&](uint64_t i, PairSetShard& shard) {
                const NodeId u = frontier[i];
                ++shard.edge_walks;
                for (NodeId o : store.OutNeighbors(p, u)) {
                  ++shard.edge_walks;
                  if (ag.IsAlive(qe.dst, o)) shard.Add(u, o);
                }
              });
        } else {
          ag.ForEachCandidate(qe.src, [&](NodeId u) {
            if (probe.Hit()) return;
            ++result.edge_walks;
            for (NodeId o : store.OutNeighbors(p, u)) {
              ++result.edge_walks;
              if (ag.IsAlive(qe.dst, o)) set.Add(u, o);
            }
          });
        }
      } else {
        if (parallel) {
          const std::vector<NodeId> frontier = CollectCandidates(ag, qe.dst);
          level_status = sharded_extend(
              frontier.size(), kFrontierMorsel, set,
              [&](uint64_t i, PairSetShard& shard) {
                const NodeId w = frontier[i];
                ++shard.edge_walks;
                for (NodeId s : store.InNeighbors(p, w)) {
                  ++shard.edge_walks;
                  if (ag.IsAlive(qe.src, s)) shard.Add(s, w);
                }
              });
        } else {
          ag.ForEachCandidate(qe.dst, [&](NodeId w) {
            if (probe.Hit()) return;
            ++result.edge_walks;
            for (NodeId s : store.InNeighbors(p, w)) {
              ++result.edge_walks;
              if (ag.IsAlive(qe.src, s)) set.Add(s, w);
            }
          });
        }
      }
    }
    if (!level_status.ok()) return level_status;
    if (probe.triggered()) return probe.StatusFor("answer-graph generation");

    const uint64_t added = set.Size();
    ag.MarkMaterialized(e);
    query_edge_done[e] = true;
    const uint64_t burned =
        burnback.PruneAfterExtension(e, src_touched, dst_touched);

    if (options.trace) {
      options.trace({GeneratorTraceStep::Kind::kExtension, e, added, burned,
                     ag.TotalQueryEdgePairs()});
    }
    WF_RETURN_NOT_OK(probe.CheckNow("answer-graph generation"));
  }

  // --- Chord materialization (cyclic queries). ---
  if (use_chords) {
    result.used_chords = true;
    uint64_t walks = 0;
    ChordMaterializeOptions chord_options;
    chord_options.deadline = options.deadline;
    chord_options.pool = pool;
    chord_options.cancel = options.cancel;
    chord_options.weight = options.weight;
    Status st = chord_eval.MaterializeChords(chord_options, &walks);
    if (!st.ok()) return st;
    result.edge_walks += walks;
    for (size_t c = 0; c < plan.chords.size(); ++c) {
      result.chord_pairs += ag.Set(chord_eval.ChordSlot(
                                       static_cast<uint32_t>(c)))
                                .Size();
      if (options.trace) {
        options.trace(
            {GeneratorTraceStep::Kind::kChord, static_cast<uint32_t>(c),
             ag.Set(chord_eval.ChordSlot(static_cast<uint32_t>(c))).Size(),
             0, ag.TotalQueryEdgePairs()});
      }
    }
  }

  // --- Optional edge burnback down to the ideal AG. ---
  if (options.edge_burnback &&
      (use_chords || !plan.base_triangles.empty())) {
    WF_ASSIGN_OR_RETURN(uint64_t erased,
                        chord_eval.RunEdgeBurnback(options.deadline));
    if (options.trace) {
      options.trace({GeneratorTraceStep::Kind::kEdgeBurnback, 0, 0, erased,
                     ag.TotalQueryEdgePairs()});
    }
  }

  // Generation is over. Either freeze the AG into its read-optimized CSR
  // form (which replaces the adjacency lists outright, so no compaction
  // is needed first), or drop tombstones so phase 2 iterates clean
  // arrays. Both work set-at-a-time; AnswerGraph::Freeze shards
  // internally on the pool.
  if (options.freeze) {
    const Stopwatch freeze_watch;
    ag.Freeze(parallel ? pool : nullptr, options.weight);
    result.freeze_seconds = freeze_watch.ElapsedSeconds();
  } else if (parallel && ag.NumEdgeSets() > 1) {
    ParallelForOptions pf;
    pf.morsel_size = 1;
    pf.weight = options.weight;
    Status st = pool->ParallelFor(
        ag.NumEdgeSets(), pf,
        [&](uint32_t, uint64_t begin, uint64_t end) {
          for (uint64_t s = begin; s < end; ++s) {
            ag.Set(static_cast<uint32_t>(s)).Compact();
          }
        });
    WF_CHECK(st.ok()) << "compaction has no deadline";
  } else {
    for (uint32_t s = 0; s < ag.NumEdgeSets(); ++s) {
      ag.Set(s).Compact();
    }
  }
  // Every erasure funnels through `burnback`, so its counter is the
  // authoritative total — including the cascades chord materialization
  // triggers internally, which the per-step trace values never see
  // (their per-call returns are discarded inside MaterializeChords).
  result.pairs_burned = burnback.pairs_erased();
  result.burnback_depth = burnback.max_cascade_depth();
  result.burnback_handoffs = burnback.handoffs();
  result.burnback_seconds = burnback.seconds();
  return result;
}

}  // namespace wireframe
