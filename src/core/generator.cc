#include "core/generator.h"

#include <algorithm>

#include "core/burnback.h"
#include "core/chords.h"
#include "util/logging.h"

namespace wireframe {

namespace {

/// Extension probes check the deadline on this cadence to stay cheap.
constexpr uint32_t kDeadlineStride = 4096;

}  // namespace

Result<GeneratorResult> AgGenerator::Generate(
    const QueryGraph& query, const AgPlan& plan,
    const GeneratorOptions& options) const {
  WF_CHECK(plan.edge_order.size() == query.NumEdges())
      << "plan must cover every query edge exactly once";
  const TripleStore& store = db_->store();

  GeneratorResult result;
  result.ag = std::make_unique<AnswerGraph>(query);
  AnswerGraph& ag = *result.ag;
  Burnback burnback(&ag);

  // Chord slots are registered up front (unmaterialized slots are inert)
  // so the chord evaluator and node burnback share one AnswerGraph.
  const bool use_chords =
      options.triangulate && !plan.chords.empty();
  Chordification chordification;
  chordification.chords = plan.chords;
  chordification.base_triangles = plan.base_triangles;
  chordification.base_triangle_closing_edge = plan.base_triangle_closing_edge;
  ChordEvaluator chord_eval(chordification, &ag, &burnback);
  if (use_chords || !plan.base_triangles.empty()) {
    chord_eval.RegisterChordSlots();
  }

  uint32_t probe_tick = 0;
  auto deadline_hit = [&]() -> bool {
    if (++probe_tick % kDeadlineStride != 0) return false;
    return options.deadline.Expired();
  };

  // Lookahead filter support: for a node landing on a fresh variable v
  // via edge e, every other not-yet-materialized query edge incident to v
  // must have at least one matching data edge at that node.
  std::vector<bool> query_edge_done(query.NumEdges(), false);
  auto passes_lookahead = [&](VarId v, NodeId node,
                              uint32_t via_edge) -> bool {
    if (!options.lookahead) return true;
    for (uint32_t f : query.IncidentEdges(v)) {
      if (f == via_edge || query_edge_done[f]) continue;
      const QueryEdge& qf = query.Edge(f);
      if (qf.label >= store.NumPredicates()) return false;
      ++result.edge_walks;  // the existence probe is an index lookup
      if (qf.src == v) {
        if (store.OutNeighbors(qf.label, node).empty()) return false;
      } else {
        if (store.InNeighbors(qf.label, node).empty()) return false;
      }
    }
    return true;
  };

  // --- Edge extension + node burnback, one query edge at a time. ---
  for (uint32_t e : plan.edge_order) {
    const QueryEdge& qe = query.Edge(e);
    const LabelId p = qe.label;
    PairSet& set = ag.Set(e);
    const bool src_touched = ag.IsTouched(qe.src);
    const bool dst_touched = ag.IsTouched(qe.dst);
    bool timed_out = false;

    if (p >= store.NumPredicates()) {
      // Label exists in the dictionary but has no triples: the edge set
      // stays empty and burnback below wipes the constrained endpoints.
    } else if (!src_touched && !dst_touched) {
      // Cold start: the whole labeled edge set enters the AG.
      store.ForEachEdge(p, [&](NodeId s, NodeId o) {
        ++result.edge_walks;
        if (passes_lookahead(qe.src, s, e) &&
            passes_lookahead(qe.dst, o, e)) {
          set.Add(s, o);
        }
      });
    } else if (src_touched && !dst_touched) {
      ag.ForEachCandidate(qe.src, [&](NodeId u) {
        if (timed_out || (timed_out = deadline_hit())) return;
        ++result.edge_walks;  // one index probe
        for (NodeId o : store.OutNeighbors(p, u)) {
          ++result.edge_walks;
          if (passes_lookahead(qe.dst, o, e)) set.Add(u, o);
        }
      });
    } else if (!src_touched && dst_touched) {
      ag.ForEachCandidate(qe.dst, [&](NodeId w) {
        if (timed_out || (timed_out = deadline_hit())) return;
        ++result.edge_walks;
        for (NodeId s : store.InNeighbors(p, w)) {
          ++result.edge_walks;
          if (passes_lookahead(qe.src, s, e)) set.Add(s, w);
        }
      });
    } else {
      // Both constrained: probe from the side with fewer candidates and
      // filter the far endpoint by aliveness.
      const uint64_t src_cand = ag.CandidateCount(qe.src);
      const uint64_t dst_cand = ag.CandidateCount(qe.dst);
      if (src_cand <= dst_cand) {
        ag.ForEachCandidate(qe.src, [&](NodeId u) {
          if (timed_out || (timed_out = deadline_hit())) return;
          ++result.edge_walks;
          for (NodeId o : store.OutNeighbors(p, u)) {
            ++result.edge_walks;
            if (ag.IsAlive(qe.dst, o)) set.Add(u, o);
          }
        });
      } else {
        ag.ForEachCandidate(qe.dst, [&](NodeId w) {
          if (timed_out || (timed_out = deadline_hit())) return;
          ++result.edge_walks;
          for (NodeId s : store.InNeighbors(p, w)) {
            ++result.edge_walks;
            if (ag.IsAlive(qe.src, s)) set.Add(s, w);
          }
        });
      }
    }
    if (timed_out) return Status::TimedOut("answer-graph generation");

    const uint64_t added = set.Size();
    ag.MarkMaterialized(e);
    query_edge_done[e] = true;
    const uint64_t burned =
        burnback.PruneAfterExtension(e, src_touched, dst_touched);
    result.pairs_burned += burned;

    if (options.trace) {
      options.trace({GeneratorTraceStep::Kind::kExtension, e, added, burned,
                     ag.TotalQueryEdgePairs()});
    }
    if (options.deadline.Expired()) {
      return Status::TimedOut("answer-graph generation");
    }
  }

  // --- Chord materialization (cyclic queries). ---
  if (use_chords) {
    result.used_chords = true;
    uint64_t walks = 0;
    Status st = chord_eval.MaterializeChords(options.deadline, &walks);
    if (!st.ok()) return st;
    result.edge_walks += walks;
    for (size_t c = 0; c < plan.chords.size(); ++c) {
      result.chord_pairs += ag.Set(chord_eval.ChordSlot(
                                       static_cast<uint32_t>(c)))
                                .Size();
      if (options.trace) {
        options.trace(
            {GeneratorTraceStep::Kind::kChord, static_cast<uint32_t>(c),
             ag.Set(chord_eval.ChordSlot(static_cast<uint32_t>(c))).Size(),
             0, ag.TotalQueryEdgePairs()});
      }
    }
  }

  // --- Optional edge burnback down to the ideal AG. ---
  if (options.edge_burnback &&
      (use_chords || !plan.base_triangles.empty())) {
    WF_ASSIGN_OR_RETURN(uint64_t erased,
                        chord_eval.RunEdgeBurnback(options.deadline));
    result.pairs_burned += erased;
    if (options.trace) {
      options.trace({GeneratorTraceStep::Kind::kEdgeBurnback, 0, 0, erased,
                     ag.TotalQueryEdgePairs()});
    }
  }

  // Generation is over: drop tombstones so phase 2 iterates clean arrays.
  for (uint32_t s = 0; s < ag.NumEdgeSets(); ++s) {
    ag.Set(s).Compact();
  }
  return result;
}

}  // namespace wireframe
