#ifndef WIREFRAME_CORE_ANSWER_GRAPH_H_
#define WIREFRAME_CORE_ANSWER_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "planner/embedding_planner.h"
#include "query/query_graph.h"
#include "util/common.h"
#include "util/csr.h"
#include "util/flat_hash.h"
#include "util/hash.h"

namespace wireframe {

class ThreadPool;

/// Thread-local builder for one morsel's share of a PairSet.
///
/// During parallel answer-graph generation each worker appends the pairs
/// its morsel produced into a private shard — plain vector pushes, no
/// synchronization, no hashing. At the level barrier the shards are
/// merged into the shared PairSet in shard-index order; because morsel
/// boundaries depend only on the frontier size and the morsel size, the
/// merged insertion sequence is deterministic and identical for every
/// thread count. The split keeps the PairSet itself single-writer: it is
/// only ever mutated by the merging thread, which is what makes the rest
/// of the read-mostly AnswerGraph safe to share across workers.
class PairSetShard {
 public:
  void Add(NodeId u, NodeId v) { pairs_.emplace_back(u, v); }

  uint64_t Size() const { return pairs_.size(); }
  bool Empty() const { return pairs_.empty(); }
  const std::vector<std::pair<NodeId, NodeId>>& pairs() const {
    return pairs_;
  }

  /// Edge walks charged while filling this shard; summed into the
  /// generator's counter at the merge barrier.
  uint64_t edge_walks = 0;

 private:
  std::vector<std::pair<NodeId, NodeId>> pairs_;
};

/// The materialization of one query edge (or chord): a dynamic set of data
/// node pairs with per-endpoint live counters and adjacency.
///
/// The set has two lifecycle forms:
///
///   1. **Build form** (mutable, hash-indexed). Pairs can be deleted
///      individually (edge burnback) or wholesale per endpoint node (node
///      burnback); adjacency lists are append-only and filtered against
///      the live-pair set on iteration, which keeps deletion O(1) per
///      pair at the cost of a membership probe during scans — the classic
///      tombstone trade-off, chosen because burnback deletes in bulk and
///      never re-inserts. Compact() drops the tombstones once generation
///      finishes.
///   2. **Frozen form** (immutable, CSR-indexed). Freeze() converts the
///      live pairs into forward/backward Csr arrays (util/csr.h: sorted
///      neighbor spans, prefix-offset indexed, same shape as
///      TripleStore::PredIndex) and releases the hash tables. Every read
///      then scans cache-linear spans instead of probing hash tables;
///      mutation is no longer allowed. Phase 2 — defactorization, the
///      bushy executor's leaf scans and chord filters — reads the same
///      pair sets millions of times after phase 1 stops mutating them,
///      which is exactly the access pattern CSR wins on.
///
/// All build-form indexes are flat open-addressing tables
/// (util/flat_hash.h); the node-pair insert path is the inner loop of
/// answer-graph generation.
class PairSet {
 public:
  PairSet() = default;

  /// Inserts (u, v); returns false if already present. Must not be called
  /// for a pair that was previously erased (adjacency lists would then
  /// hold duplicates); generation never does.
  bool Add(NodeId u, NodeId v);

  /// True iff (u, v) is live.
  bool Contains(NodeId u, NodeId v) const {
    if (frozen_) return fwd_csr_.Contains(u, v);
    return live_.Contains(PackPair(u, v));
  }

  /// Inserts every pair of `shard` (duplicates are ignored, as in Add).
  /// Returns the number of pairs actually inserted. Single-writer: called
  /// only from the merging thread at a level barrier.
  uint64_t MergeShard(const PairSetShard& shard);

  /// Pre-sizes the live-pair index for `n` pairs (bulk inserts whose
  /// cardinality is known up front, e.g. canonicalized chord lists).
  void Reserve(uint64_t n) { live_.Reserve(n); }

  /// Deletes (u, v); returns false if it was not live.
  bool Erase(NodeId u, NodeId v);

  /// Erases every live pair (u, *) in one reverse sweep over u's
  /// adjacency list — no snapshot; Erase itself is the tombstone filter.
  /// Invokes fn(v) per erased pair and returns the number erased, which
  /// is asserted equal to SrcCount(u) before the sweep (burnback's
  /// accounting must stay exact). The list is cleared afterwards: u is
  /// dead in this set and generation never re-adds erased pairs.
  template <typename Fn>
  uint32_t EraseSrc(NodeId u, Fn&& fn) {
    WF_CHECK(!frozen_) << "EraseSrc on a frozen PairSet";
    std::vector<NodeId>* targets = fwd_.Find(u);
    if (targets == nullptr) return 0;
    const uint32_t live_before = SrcCount(u);
    uint32_t erased = 0;
    for (size_t i = targets->size(); i-- > 0;) {
      const NodeId v = (*targets)[i];
      if (Erase(u, v)) {
        ++erased;
        fn(v);
      }
    }
    WF_DCHECK(erased == live_before) << "EraseSrc accounting drifted";
    targets->clear();
    return erased;
  }

  /// Mirror of EraseSrc for pairs (*, v); invokes fn(u) per erased pair.
  template <typename Fn>
  uint32_t EraseDst(NodeId v, Fn&& fn) {
    WF_CHECK(!frozen_) << "EraseDst on a frozen PairSet";
    std::vector<NodeId>* sources = bwd_.Find(v);
    if (sources == nullptr) return 0;
    const uint32_t live_before = DstCount(v);
    uint32_t erased = 0;
    for (size_t i = sources->size(); i-- > 0;) {
      const NodeId u = (*sources)[i];
      if (Erase(u, v)) {
        ++erased;
        fn(u);
      }
    }
    WF_DCHECK(erased == live_before) << "EraseDst accounting drifted";
    sources->clear();
    return erased;
  }

  /// Rebuilds the adjacency lists without tombstones. After compaction —
  /// and until the next Erase — iteration skips the per-pair liveness
  /// probe, which makes defactorization a pure array scan. Called on
  /// every edge set when answer-graph generation finishes. No-op on a
  /// frozen set (freezing implies compactness).
  void Compact();

  /// True iff iteration currently needs no liveness filtering.
  bool IsCompact() const { return frozen_ || compact_; }

  /// Converts the set into its immutable frozen form: forward/backward
  /// CSR arrays over the live pairs, hash tables released. Idempotent.
  /// After this, Add/Erase/MergeShard are program errors; every reader
  /// scans sorted spans. Iteration order changes from insertion order to
  /// ascending — callers that freeze have left phase 1, where order was
  /// load-bearing for determinism.
  void Freeze();

  /// True iff the set is in its frozen (CSR) form.
  bool IsFrozen() const { return frozen_; }

  /// Heap bytes of the frozen CSR arrays (0 in build form — only frozen
  /// sets are byte-accounted, for the runtime's AG cache quotas).
  uint64_t FrozenByteSize() const {
    return frozen_ ? fwd_csr_.ByteSize() + bwd_csr_.ByteSize() : 0;
  }

  /// Number of live pairs.
  uint64_t Size() const {
    return frozen_ ? fwd_csr_.NumEntries() : live_.Size();
  }

  /// Live pairs with source u / target v.
  uint32_t SrcCount(NodeId u) const;
  uint32_t DstCount(NodeId v) const;

  /// Distinct live sources / targets.
  uint64_t DistinctSrcCount() const {
    return frozen_ ? fwd_csr_.Nodes().size() : distinct_src_;
  }
  uint64_t DistinctDstCount() const {
    return frozen_ ? bwd_csr_.Nodes().size() : distinct_dst_;
  }

  /// Raw frozen spans (program error before Freeze): the sorted
  /// duplicate-free inputs the span kernels (util/span_kernels.h)
  /// operate on. FwdNeighbors(u) = all v with (u, v) live;
  /// BwdNeighbors(v) = all u. Spans stay valid as long as the set —
  /// frozen sets are immutable.
  std::span<const NodeId> FwdNeighbors(NodeId u) const {
    WF_DCHECK(frozen_) << "FwdNeighbors on an unfrozen PairSet";
    return fwd_csr_.Neighbors(u);
  }
  std::span<const NodeId> BwdNeighbors(NodeId v) const {
    WF_DCHECK(frozen_) << "BwdNeighbors on an unfrozen PairSet";
    return bwd_csr_.Neighbors(v);
  }

  /// The frozen CSR forms themselves, for batch entry points
  /// (Csr::ContainsMany, positional scans). Program error before Freeze.
  const Csr& FwdCsr() const {
    WF_DCHECK(frozen_) << "FwdCsr on an unfrozen PairSet";
    return fwd_csr_;
  }
  const Csr& BwdCsr() const {
    WF_DCHECK(frozen_) << "BwdCsr on an unfrozen PairSet";
    return bwd_csr_;
  }

  /// Invokes fn(v) for every live pair (u, v). Frozen: one sorted span
  /// scan. Build form: the underlying list may contain tombstones; fn is
  /// only called for live pairs.
  template <typename Fn>
  void ForEachFwd(NodeId u, Fn&& fn) const {
    if (frozen_) {
      for (NodeId v : fwd_csr_.Neighbors(u)) fn(v);
      return;
    }
    const std::vector<NodeId>* targets = fwd_.Find(u);
    if (targets == nullptr) return;
    if (compact_) {
      for (NodeId v : *targets) fn(v);
      return;
    }
    for (NodeId v : *targets) {
      if (Contains(u, v)) fn(v);
    }
  }

  /// Invokes fn(u) for every live pair (u, v).
  template <typename Fn>
  void ForEachBwd(NodeId v, Fn&& fn) const {
    if (frozen_) {
      for (NodeId u : bwd_csr_.Neighbors(v)) fn(u);
      return;
    }
    const std::vector<NodeId>* sources = bwd_.Find(v);
    if (sources == nullptr) return;
    if (compact_) {
      for (NodeId u : *sources) fn(u);
      return;
    }
    for (NodeId u : *sources) {
      if (Contains(u, v)) fn(u);
    }
  }

  /// Invokes fn(u, v) for every live pair (source-major ascending when
  /// frozen; hash-slot order in build form).
  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    if (frozen_) {
      fwd_csr_.ForEach(fn);
      return;
    }
    live_.ForEach([&](uint64_t key) {
      auto [u, v] = UnpackPair(key);
      fn(u, v);
    });
  }

  /// Invokes fn(u) for every distinct live source.
  template <typename Fn>
  void ForEachSrc(Fn&& fn) const {
    if (frozen_) {
      for (NodeId u : fwd_csr_.Nodes()) fn(u);
      return;
    }
    src_count_.ForEach([&](NodeId u, const uint32_t& count) {
      if (count > 0) fn(u);
    });
  }
  /// Invokes fn(v) for every distinct live target.
  template <typename Fn>
  void ForEachDst(Fn&& fn) const {
    if (frozen_) {
      for (NodeId v : bwd_csr_.Nodes()) fn(v);
      return;
    }
    dst_count_.ForEach([&](NodeId v, const uint32_t& count) {
      if (count > 0) fn(v);
    });
  }

 private:
  PairKeySet live_;
  NodeMap<std::vector<NodeId>> fwd_;
  NodeMap<std::vector<NodeId>> bwd_;
  NodeMap<uint32_t> src_count_;
  NodeMap<uint32_t> dst_count_;
  uint64_t distinct_src_ = 0;
  uint64_t distinct_dst_ = 0;
  /// True while the adjacency lists are tombstone-free (empty set, or
  /// freshly compacted with no erase since).
  bool compact_ = true;
  /// Frozen form (populated by Freeze; empty before).
  Csr fwd_csr_;
  Csr bwd_csr_;
  bool frozen_ = false;
};

/// The factorized answer set (paper §2): for every query edge — and every
/// chord, for cyclic queries — the set of data-graph node pairs that can
/// still participate in an embedding.
///
/// Edge sets are indexed 0..NumEdges-1 for query edges and NumEdges.. for
/// chords. A variable is "touched" once at least one incident edge set has
/// been materialized; its candidate set is then the set of nodes alive at
/// that variable. Aliveness is derived, not stored: node c is alive at var
/// v iff every *materialized* edge set incident to v contains a live pair
/// with c on v's side. Burnback (core/burnback.h) maintains this
/// invariant by cascading deletions.
class AnswerGraph {
 public:
  /// Creates empty edge sets for the query's edges; chords are registered
  /// afterwards via AddChordSlot (they behave like unlabeled query edges).
  explicit AnswerGraph(const QueryGraph& query);

  /// Registers a chord between u and v; returns its edge-set index.
  uint32_t AddChordSlot(VarId u, VarId v);

  uint32_t NumEdgeSets() const {
    return static_cast<uint32_t>(sets_.size());
  }
  uint32_t NumQueryEdges() const { return num_query_edges_; }
  uint32_t NumVars() const {
    return static_cast<uint32_t>(incident_.size());
  }

  PairSet& Set(uint32_t index) { return sets_[index]; }
  const PairSet& Set(uint32_t index) const { return sets_[index]; }

  /// Endpoints of edge-set `index` (query edge direction, or chord (u,v)).
  VarId SrcVar(uint32_t index) const { return src_var_[index]; }
  VarId DstVar(uint32_t index) const { return dst_var_[index]; }

  /// Marks an edge set materialized (it now constrains its endpoints).
  void MarkMaterialized(uint32_t index);
  bool IsMaterialized(uint32_t index) const { return materialized_[index]; }

  /// Freezes every edge set into its immutable CSR form (see
  /// PairSet::Freeze). Call once phase 1 — including the final burnback —
  /// is over; phase 2 then reads sorted spans instead of hash tables.
  /// Sets freeze independently, so a pool (borrowed, may be null)
  /// parallelizes the conversion one set per morsel; `weight` is the
  /// task-group scheduler share on a shared pool. Idempotent.
  void Freeze(ThreadPool* pool = nullptr, uint32_t weight = 1);

  /// True iff Freeze has run.
  bool IsFrozen() const { return frozen_; }

  /// Total heap bytes of the frozen edge sets plus the topology vectors —
  /// what one cached AG costs to keep resident. Meaningful once frozen.
  uint64_t FrozenByteSize() const;

  /// Edge sets incident to variable v (both query edges and chords).
  const std::vector<uint32_t>& IncidentSets(VarId v) const {
    return incident_[v];
  }

  /// True iff any incident edge set of v is materialized.
  bool IsTouched(VarId v) const;

  /// True iff node c is alive at variable v (see class comment). Only
  /// meaningful for touched variables.
  bool IsAlive(VarId v, NodeId c) const;

  /// Number of live pairs incident to (v, c) in edge set `index`.
  uint32_t CountAt(uint32_t index, VarId v, NodeId c) const;

  /// Invokes fn(c) for every node alive at v. Iterates the materialized
  /// incident set with the fewest distinct nodes on v's side and filters
  /// by IsAlive. Requires IsTouched(v).
  template <typename Fn>
  void ForEachCandidate(VarId v, Fn&& fn) const {
    const uint32_t pilot = PilotSet(v);
    const PairSet& set = sets_[pilot];
    auto visit = [&](NodeId c) {
      if (IsAlive(v, c)) fn(c);
    };
    if (src_var_[pilot] == v) {
      set.ForEachSrc(visit);
    } else {
      set.ForEachDst(visit);
    }
  }

  /// Number of nodes alive at v (linear scan; diagnostics and tests).
  uint64_t CandidateCount(VarId v) const;

  /// Total live pairs across the query edges (|AG| as the paper reports
  /// it; chords are bookkeeping, not part of the answer graph proper).
  uint64_t TotalQueryEdgePairs() const;

  /// Exact per-edge statistics for the embedding planner.
  std::vector<AgEdgeStats> Stats() const;

 private:
  /// The materialized incident set of v with fewest distinct nodes at v.
  uint32_t PilotSet(VarId v) const;

  uint32_t num_query_edges_ = 0;
  std::vector<PairSet> sets_;
  std::vector<VarId> src_var_;
  std::vector<VarId> dst_var_;
  std::vector<bool> materialized_;
  std::vector<std::vector<uint32_t>> incident_;
  bool frozen_ = false;
};

}  // namespace wireframe

#endif  // WIREFRAME_CORE_ANSWER_GRAPH_H_
