#include "core/answer_graph.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace wireframe {

bool PairSet::Add(NodeId u, NodeId v) {
  // Hard check in every build type: frozen sets are shared read-only
  // across queries (runtime AG cache), so a mutation that only tripped a
  // debug assert would be silent memory corruption in Release.
  WF_CHECK(!frozen_) << "Add on a frozen PairSet";
  if (!live_.Insert(PackPair(u, v))) return false;
  fwd_[u].push_back(v);
  bwd_[v].push_back(u);
  if (++src_count_[u] == 1) ++distinct_src_;
  if (++dst_count_[v] == 1) ++distinct_dst_;
  return true;
}

uint64_t PairSet::MergeShard(const PairSetShard& shard) {
  uint64_t inserted = 0;
  for (const auto& [u, v] : shard.pairs()) {
    if (Add(u, v)) ++inserted;
  }
  return inserted;
}

bool PairSet::Erase(NodeId u, NodeId v) {
  WF_CHECK(!frozen_) << "Erase on a frozen PairSet";
  if (!live_.Erase(PackPair(u, v))) return false;
  compact_ = false;
  uint32_t* su = src_count_.Find(u);
  WF_DCHECK(su != nullptr && *su > 0);
  if (--*su == 0) --distinct_src_;
  uint32_t* dv = dst_count_.Find(v);
  WF_DCHECK(dv != nullptr && *dv > 0);
  if (--*dv == 0) --distinct_dst_;
  return true;
}

void PairSet::Compact() {
  if (frozen_ || compact_) return;
  fwd_.EraseIf([&](NodeId u, std::vector<NodeId>& targets) {
    size_t keep = 0;
    for (NodeId v : targets) {
      if (Contains(u, v)) targets[keep++] = v;
    }
    targets.resize(keep);
    return keep == 0;
  });
  bwd_.EraseIf([&](NodeId v, std::vector<NodeId>& sources) {
    size_t keep = 0;
    for (NodeId u : sources) {
      if (Contains(u, v)) sources[keep++] = u;
    }
    sources.resize(keep);
    return keep == 0;
  });
  src_count_.EraseIf([](NodeId, uint32_t& count) { return count == 0; });
  dst_count_.EraseIf([](NodeId, uint32_t& count) { return count == 0; });
  compact_ = true;
}

void PairSet::Freeze() {
  if (frozen_) return;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(live_.Size());
  live_.ForEach([&](uint64_t key) {
    pairs.push_back(UnpackPair(key));
  });
  // Release the build-form tables before building the CSRs: only `live_`
  // was read, and dropping the adjacency/count tables here (instead of
  // after) roughly halves the transient peak of freezing a large set —
  // AnswerGraph::Freeze runs several sets concurrently on the pool.
  live_ = PairKeySet();
  fwd_ = NodeMap<std::vector<NodeId>>();
  bwd_ = NodeMap<std::vector<NodeId>>();
  src_count_ = NodeMap<uint32_t>();
  dst_count_ = NodeMap<uint32_t>();
  distinct_src_ = 0;
  distinct_dst_ = 0;
  fwd_csr_ = Csr::Build(std::move(pairs));
  // Rebuild the reversed list from the forward CSR so `pairs` is gone
  // before the second copy exists.
  std::vector<std::pair<NodeId, NodeId>> reversed;
  reversed.reserve(fwd_csr_.NumEntries());
  fwd_csr_.ForEach([&](NodeId u, NodeId v) { reversed.emplace_back(v, u); });
  bwd_csr_ = Csr::Build(std::move(reversed));
  frozen_ = true;
  compact_ = true;
}

uint32_t PairSet::SrcCount(NodeId u) const {
  if (frozen_) return static_cast<uint32_t>(fwd_csr_.Neighbors(u).size());
  const uint32_t* count = src_count_.Find(u);
  return count == nullptr ? 0 : *count;
}

uint32_t PairSet::DstCount(NodeId v) const {
  if (frozen_) return static_cast<uint32_t>(bwd_csr_.Neighbors(v).size());
  const uint32_t* count = dst_count_.Find(v);
  return count == nullptr ? 0 : *count;
}

AnswerGraph::AnswerGraph(const QueryGraph& query)
    : num_query_edges_(query.NumEdges()) {
  incident_.resize(query.NumVars());
  sets_.resize(query.NumEdges());
  materialized_.assign(query.NumEdges(), false);
  src_var_.resize(query.NumEdges());
  dst_var_.resize(query.NumEdges());
  for (uint32_t e = 0; e < query.NumEdges(); ++e) {
    const QueryEdge& qe = query.Edge(e);
    src_var_[e] = qe.src;
    dst_var_[e] = qe.dst;
    incident_[qe.src].push_back(e);
    incident_[qe.dst].push_back(e);
  }
}

uint32_t AnswerGraph::AddChordSlot(VarId u, VarId v) {
  WF_CHECK(u < incident_.size() && v < incident_.size());
  WF_CHECK(!frozen_) << "AddChordSlot on a frozen AnswerGraph";
  const uint32_t index = static_cast<uint32_t>(sets_.size());
  sets_.emplace_back();
  materialized_.push_back(false);
  src_var_.push_back(u);
  dst_var_.push_back(v);
  incident_[u].push_back(index);
  incident_[v].push_back(index);
  return index;
}

void AnswerGraph::MarkMaterialized(uint32_t index) {
  WF_CHECK(index < sets_.size());
  materialized_[index] = true;
}

void AnswerGraph::Freeze(ThreadPool* pool, uint32_t weight) {
  if (frozen_) return;
  frozen_ = true;
  // No Compact first: Freeze reads the live-pair index directly and
  // drops the (possibly tombstoned) adjacency lists wholesale, so
  // compacting them would be pure waste.
  if (pool != nullptr && pool->num_threads() > 1 && sets_.size() > 1) {
    ParallelForOptions pf;
    pf.morsel_size = 1;
    pf.weight = weight;
    const Status st = pool->ParallelFor(
        sets_.size(), pf, [&](uint32_t, uint64_t begin, uint64_t end) {
          for (uint64_t s = begin; s < end; ++s) {
            sets_[s].Freeze();
          }
        });
    WF_CHECK(st.ok()) << "freeze has no deadline";
    return;
  }
  for (PairSet& set : sets_) {
    set.Freeze();
  }
}

uint64_t AnswerGraph::FrozenByteSize() const {
  uint64_t bytes = sets_.size() * sizeof(PairSet) +
                   (src_var_.size() + dst_var_.size()) * sizeof(VarId) +
                   materialized_.size() / 8;
  for (const PairSet& set : sets_) bytes += set.FrozenByteSize();
  for (const std::vector<uint32_t>& inc : incident_) {
    bytes += inc.size() * sizeof(uint32_t);
  }
  return bytes;
}

bool AnswerGraph::IsTouched(VarId v) const {
  for (uint32_t e : incident_[v]) {
    if (materialized_[e]) return true;
  }
  return false;
}

uint32_t AnswerGraph::CountAt(uint32_t index, VarId v, NodeId c) const {
  WF_DCHECK(src_var_[index] == v || dst_var_[index] == v);
  if (src_var_[index] == v) return sets_[index].SrcCount(c);
  return sets_[index].DstCount(c);
}

bool AnswerGraph::IsAlive(VarId v, NodeId c) const {
  bool touched = false;
  for (uint32_t e : incident_[v]) {
    if (!materialized_[e]) continue;
    touched = true;
    if (CountAt(e, v, c) == 0) return false;
  }
  return touched;
}

uint32_t AnswerGraph::PilotSet(VarId v) const {
  uint32_t best = UINT32_MAX;
  uint64_t best_count = UINT64_MAX;
  for (uint32_t e : incident_[v]) {
    if (!materialized_[e]) continue;
    const uint64_t count = src_var_[e] == v ? sets_[e].DistinctSrcCount()
                                            : sets_[e].DistinctDstCount();
    if (count < best_count) {
      best_count = count;
      best = e;
    }
  }
  WF_CHECK(best != UINT32_MAX) << "ForEachCandidate on untouched variable";
  return best;
}

uint64_t AnswerGraph::CandidateCount(VarId v) const {
  uint64_t n = 0;
  ForEachCandidate(v, [&](NodeId) { ++n; });
  return n;
}

uint64_t AnswerGraph::TotalQueryEdgePairs() const {
  uint64_t total = 0;
  for (uint32_t e = 0; e < num_query_edges_; ++e) total += sets_[e].Size();
  return total;
}

std::vector<AgEdgeStats> AnswerGraph::Stats() const {
  std::vector<AgEdgeStats> stats(num_query_edges_);
  for (uint32_t e = 0; e < num_query_edges_; ++e) {
    stats[e].pairs = sets_[e].Size();
    stats[e].distinct_src = sets_[e].DistinctSrcCount();
    stats[e].distinct_dst = sets_[e].DistinctDstCount();
  }
  return stats;
}

}  // namespace wireframe
