#include "datagen/figures.h"

#include "query/parser.h"

namespace wireframe {

Database MakeFig1Graph() {
  DatabaseBuilder b;
  auto n = [](int i) { return "n" + std::to_string(i); };
  // A-edges: three fan in to n5; n4 reaches the doomed n6.
  b.Add(n(1), "A", n(5));
  b.Add(n(2), "A", n(5));
  b.Add(n(3), "A", n(5));
  b.Add(n(4), "A", n(6));
  // B-edges.
  b.Add(n(5), "B", n(9));
  b.Add(n(6), "B", n(10));
  // C-edges fan out of n9; n8→n11 never meets the query's candidates.
  b.Add(n(9), "C", n(12));
  b.Add(n(9), "C", n(13));
  b.Add(n(9), "C", n(14));
  b.Add(n(9), "C", n(15));
  b.Add(n(8), "C", n(11));
  return std::move(b).Build();
}

Result<QueryGraph> MakeFig1Query(const Database& db) {
  return SparqlParser::ParseAndBind(
      "select ?w ?x ?y ?z where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
}

Database MakeFig4Graph() {
  DatabaseBuilder b;
  auto n = [](int i) { return "n" + std::to_string(i); };
  b.Add(n(3), "A", n(4));
  b.Add(n(7), "A", n(8));
  b.Add(n(3), "B", n(2));
  b.Add(n(7), "B", n(6));
  b.Add(n(4), "C", n(1));
  b.Add(n(8), "C", n(5));
  b.Add(n(1), "D", n(2));
  b.Add(n(5), "D", n(6));
  // Spurious under node burnback: every endpoint is alive, yet neither
  // edge participates in an embedding (paper Fig. 4's ⟨1,6⟩ and ⟨5,2⟩).
  b.Add(n(1), "D", n(6));
  b.Add(n(5), "D", n(2));
  return std::move(b).Build();
}

Result<QueryGraph> MakeFig4Query(const Database& db) {
  return SparqlParser::ParseAndBind(
      "select ?x ?e ?y ?z where { ?x A ?e . ?x B ?z . ?e C ?y . ?y D ?z . }",
      db);
}

}  // namespace wireframe
