#ifndef WIREFRAME_DATAGEN_YAGO_LIKE_H_
#define WIREFRAME_DATAGEN_YAGO_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/database.h"

namespace wireframe {

/// Configuration of the synthetic YAGO2s-like knowledge graph.
///
/// The real YAGO2s (242M triples, 104 predicates) is replaced by a typed
/// generator that preserves what the paper's evaluation actually exercises:
///   - the ~21 predicates its ten queries mention, connecting typed entity
///     populations (people act in movies, are born in cities, cities sit in
///     countries, ...) with realistic skew (Zipfian popularity), and
///   - enough filler predicates to reach 104, so catalog statistics and the
///     query miner face a realistic search space.
/// Fan-in/fan-out of the query predicates is tuned so that snowflake
/// queries multiply into millions of embeddings while their ideal answer
/// graphs stay small — the Table 1 regime.
struct YagoLikeConfig {
  /// Linear scale on entity populations; 1.0 gives roughly one million
  /// triples. Table 1 benches default to 1.0; tests use ~0.02.
  double scale = 1.0;
  uint64_t seed = 42;
  /// Total predicate count including fillers (YAGO2s has 104).
  uint32_t num_predicates = 104;
};

/// Entity-population sizes actually used by a generation run (after
/// scaling), reported for documentation/EXPERIMENTS.md.
struct YagoLikeInfo {
  uint32_t persons = 0;
  uint32_t movies = 0;
  uint32_t cities = 0;
  uint32_t countries = 0;
  uint32_t orgs = 0;
  uint32_t events = 0;
  uint32_t dates = 0;
  uint32_t durations = 0;
  uint32_t prizes = 0;
  uint32_t products = 0;
  uint32_t words = 0;
  uint64_t triples = 0;
};

/// Generates the database. Deterministic in config.seed.
Database MakeYagoLike(const YagoLikeConfig& config,
                      YagoLikeInfo* info = nullptr);

/// The ten Table-1 queries, expressed in the SPARQL fragment the parser
/// accepts, against MakeYagoLike's predicate vocabulary. Index 0..4 are
/// the snowflake-shaped CQ_S instances, 5..9 the diamond-shaped CQ_D
/// instances (paper Table 1 rows 1..10).
std::vector<std::string> Table1Queries();

/// Human-readable predicate list of one Table-1 query, e.g.
/// "hasChild/influences/actedIn/..." (the paper's row labels).
std::string Table1RowLabel(size_t index);

/// The exact snowflake conjunctive query of the paper's Fig. 3:
///   ?x linksTo ?m . ?x isAffiliatedTo ?y . ?x wasBornIn ?z .
///   ?m participatedIn ?a . ?m created ?b . ?y sameAs ?c . ?y owns ?d .
///   ?z isLocatedIn ?e . ?z isPreferredMeaningOf ?f
/// All nine predicates exist in MakeYagoLike's schema.
std::string Fig3Query();

}  // namespace wireframe

#endif  // WIREFRAME_DATAGEN_YAGO_LIKE_H_
