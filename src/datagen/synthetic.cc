#include "datagen/synthetic.h"

#include "util/logging.h"

namespace wireframe {

Database MakeChainBlowupGraph(uint32_t fan_in, uint32_t fan_out,
                              uint32_t noise) {
  WF_CHECK(fan_in >= 1 && fan_out >= 1);
  DatabaseBuilder b;
  const std::string hub = "hub";
  const std::string mid = "mid";
  for (uint32_t i = 0; i < fan_in; ++i) {
    b.Add("w" + std::to_string(i), "A", hub);
  }
  b.Add(hub, "B", mid);
  for (uint32_t i = 0; i < fan_out; ++i) {
    b.Add(mid, "C", "z" + std::to_string(i));
  }
  // Dead branches: A into a hub with no B, B into a node with no C.
  for (uint32_t i = 0; i < noise; ++i) {
    const std::string dead_hub = "dead_hub" + std::to_string(i);
    b.Add("dw" + std::to_string(i), "A", dead_hub);
    b.Add(dead_hub, "B", "dead_mid" + std::to_string(i));
    b.Add("stray" + std::to_string(i), "C", "sink" + std::to_string(i));
  }
  return std::move(b).Build();
}

Database MakeRandomGraph(uint32_t num_nodes, uint32_t num_labels,
                         uint64_t num_edges, uint64_t seed) {
  WF_CHECK(num_nodes >= 2 && num_labels >= 1);
  Rng rng(seed);
  DatabaseBuilder b;
  // Intern nodes and labels up front so ids are dense and predictable.
  for (uint32_t i = 0; i < num_nodes; ++i) {
    b.nodes().Intern("n" + std::to_string(i));
  }
  for (uint32_t j = 0; j < num_labels; ++j) {
    b.labels().Intern("p" + std::to_string(j));
  }
  for (uint64_t k = 0; k < num_edges; ++k) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(num_nodes));
    NodeId o = static_cast<NodeId>(rng.Uniform(num_nodes));
    if (o == s) o = (o + 1) % num_nodes;
    const LabelId p = static_cast<LabelId>(rng.Uniform(num_labels));
    b.Add(s, p, o);
  }
  return std::move(b).Build();
}

QueryGraph MakeRandomQuery(Rng& rng, uint32_t num_edges, uint32_t max_vars,
                           uint32_t num_labels) {
  WF_CHECK(num_edges >= 1 && max_vars >= 2 && num_labels >= 1);
  QueryGraph q;
  q.AddVar("v0");
  q.AddVar("v1");

  for (uint32_t e = 0; e < num_edges; ++e) {
    // Pick one existing var; the other endpoint is new with probability
    // shrinking as we approach max_vars.
    const VarId a = static_cast<VarId>(rng.Uniform(q.NumVars()));
    VarId b;
    const bool can_add = q.NumVars() < max_vars;
    if (e == 0) {
      b = a == 0 ? 1 : 0;
    } else if (can_add && rng.Bernoulli(0.6)) {
      b = q.AddVar("v" + std::to_string(q.NumVars()));
    } else {
      b = static_cast<VarId>(rng.Uniform(q.NumVars()));
      if (b == a) b = (b + 1) % q.NumVars();
    }
    const LabelId label = static_cast<LabelId>(rng.Uniform(num_labels));
    if (rng.Bernoulli(0.5)) {
      q.AddEdge(a, label, b);
    } else {
      q.AddEdge(b, label, a);
    }
  }
  return q;
}

}  // namespace wireframe
