#include "datagen/yago_like.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace wireframe {

namespace {

/// A contiguous block of node ids (one entity class).
struct Range {
  NodeId begin = 0;
  uint32_t count = 0;

  NodeId At(uint32_t i) const {
    WF_DCHECK(i < count);
    return begin + i;
  }
};

Range InternRange(DatabaseBuilder& b, const std::string& prefix,
                  uint32_t count) {
  Range r;
  r.count = count;
  r.begin = b.nodes().Intern(prefix + "0");
  for (uint32_t i = 1; i < count; ++i) {
    b.nodes().Intern(prefix + std::to_string(i));
  }
  return r;
}

/// Degree sampler with mean `1 + mean_extra` (geometric tail, capped).
uint32_t SampleDegree(Rng& rng, double mean_extra) {
  uint32_t deg = 1;
  if (mean_extra <= 0) return deg;
  const double q = mean_extra / (1.0 + mean_extra);  // continue probability
  while (deg < 64 && rng.Bernoulli(q)) ++deg;
  return deg;
}

/// Emits edges pred: src-class -> dst-class. A fraction `coverage` of the
/// sources participates; each participating source gets degree
/// 1+geometric(mean_extra); targets are Zipf-popular (skew `zipf_s`).
void EmitClassEdges(DatabaseBuilder& b, Rng& rng, LabelId pred, Range src,
                    double coverage, double mean_extra, Range dst,
                    const ZipfSampler& dst_zipf) {
  WF_CHECK(dst_zipf.n() == dst.count);
  for (uint32_t i = 0; i < src.count; ++i) {
    if (!rng.Bernoulli(coverage)) continue;
    const uint32_t deg = SampleDegree(rng, mean_extra);
    for (uint32_t k = 0; k < deg; ++k) {
      const NodeId target = dst.At(static_cast<uint32_t>(dst_zipf.Sample(rng)));
      const NodeId source = src.At(i);
      if (target == source) continue;  // classes can overlap (e.g. linksTo)
      b.Add(source, pred, target);
    }
  }
}

/// One target class of a mixture-emitted predicate.
struct MixTarget {
  const Range* range;
  const ZipfSampler* zipf;
  double weight;
};

/// Emits edges whose targets are drawn from a weighted class mixture with
/// per-class Zipf popularity — the wiki-link regime: linksTo concentrates
/// on popular people, countries, organizations, and prizes, which is what
/// lets the paper's diamond queries close their cycles.
void EmitMixedEdges(DatabaseBuilder& b, Rng& rng, LabelId pred, Range src,
                    double coverage, double mean_extra,
                    const std::vector<MixTarget>& targets) {
  double total_weight = 0;
  for (const MixTarget& t : targets) total_weight += t.weight;
  for (uint32_t i = 0; i < src.count; ++i) {
    if (!rng.Bernoulli(coverage)) continue;
    const uint32_t deg = SampleDegree(rng, mean_extra);
    for (uint32_t k = 0; k < deg; ++k) {
      double pick = rng.NextDouble() * total_weight;
      const MixTarget* chosen = &targets.back();
      for (const MixTarget& t : targets) {
        if (pick < t.weight) {
          chosen = &t;
          break;
        }
        pick -= t.weight;
      }
      const NodeId target = chosen->range->At(
          static_cast<uint32_t>(chosen->zipf->Sample(rng)));
      const NodeId source = src.At(i);
      if (target == source) continue;
      b.Add(source, pred, target);
    }
  }
}

uint32_t Scaled(double base, double scale) {
  return std::max(1u, static_cast<uint32_t>(std::lround(base * scale)));
}

}  // namespace

Database MakeYagoLike(const YagoLikeConfig& config, YagoLikeInfo* info) {
  DatabaseBuilder b;
  Rng rng(config.seed);
  const double s = config.scale;

  // --- Predicates, queries' vocabulary first (stable label ids). ---
  const char* kQueryPreds[] = {
      "actedIn",       "created",        "influences",    "diedIn",
      "wasBornIn",     "livesIn",        "isCitizenOf",   "isMarriedTo",
      "hasChild",      "owns",           "graduatedFrom", "isLeaderOf",
      "hasWonPrize",   "participatedIn", "isAffiliatedTo", "wasBornOnDate",
      "wasCreatedOnDate", "hasDuration", "isLocatedIn",   "exports",
      "happenedIn",    "isPreferredMeaningOf", "sameAs",  "linksTo",
  };
  for (const char* p : kQueryPreds) b.labels().Intern(p);
  auto pred = [&b](const char* name) -> LabelId {
    const uint32_t id = b.labels().Lookup(name);
    WF_CHECK(id != Dictionary::kNotFound) << "unknown predicate " << name;
    return id;
  };

  // --- Entity populations (contiguous id ranges). ---
  const Range persons = InternRange(b, "Person_", Scaled(30000, s));
  const Range movies = InternRange(b, "Movie_", Scaled(8000, s));
  const Range cities = InternRange(b, "City_", Scaled(1500, s));
  const Range countries =
      InternRange(b, "Country_", Scaled(150, std::min(1.0, s)));
  const Range orgs = InternRange(b, "Org_", Scaled(2000, s));
  const Range events = InternRange(b, "Event_", Scaled(2000, s));
  const Range dates = InternRange(b, "Date_", Scaled(6000, s));
  const Range durations =
      InternRange(b, "Duration_", Scaled(200, std::min(1.0, s)));
  const Range prizes = InternRange(b, "Prize_", Scaled(200, std::min(1.0, s)));
  const Range products =
      InternRange(b, "Product_", Scaled(400, std::min(1.0, s)));
  const Range words = InternRange(b, "Word_", Scaled(3000, s));
  const Range all_entities{0, b.nodes().Size()};

  // --- Popularity distributions. ---
  const ZipfSampler zipf_persons(persons.count, 0.85);
  const ZipfSampler zipf_movies(movies.count, 0.95);
  const ZipfSampler zipf_cities(cities.count, 0.9);
  const ZipfSampler zipf_countries(countries.count, 0.9);
  const ZipfSampler zipf_orgs(orgs.count, 0.8);
  const ZipfSampler zipf_events(events.count, 0.8);
  const ZipfSampler zipf_dates(dates.count, 0.7);
  const ZipfSampler zipf_durations(durations.count, 0.6);
  const ZipfSampler zipf_prizes(prizes.count, 0.8);
  const ZipfSampler zipf_products(products.count, 0.7);
  const ZipfSampler zipf_words(words.count, 0.6);
  const ZipfSampler zipf_all(all_entities.count, 0.75);

  // --- Query-predicate edges. Coverages/degrees are tuned so many-many
  // joins (actedIn, linksTo, influences) multiply while attribute-like
  // predicates (dates, durations) stay functional with heavy fan-in. ---
  EmitClassEdges(b, rng, pred("actedIn"), persons, 0.50, 9.0, movies,
                 zipf_movies);
  EmitClassEdges(b, rng, pred("created"), persons, 0.25, 2.5, movies,
                 zipf_movies);
  EmitClassEdges(b, rng, pred("influences"), persons, 0.35, 2.5, persons,
                 zipf_persons);
  EmitClassEdges(b, rng, pred("diedIn"), persons, 0.35, 0.0, cities,
                 zipf_cities);
  EmitClassEdges(b, rng, pred("wasBornIn"), persons, 0.60, 0.0, cities,
                 zipf_cities);
  EmitClassEdges(b, rng, pred("livesIn"), persons, 0.70, 0.3, cities,
                 zipf_cities);
  EmitClassEdges(b, rng, pred("isCitizenOf"), persons, 0.90, 0.15, countries,
                 zipf_countries);
  EmitClassEdges(b, rng, pred("isMarriedTo"), persons, 0.30, 0.0, persons,
                 zipf_persons);
  EmitClassEdges(b, rng, pred("hasChild"), persons, 0.40, 1.2, persons,
                 zipf_persons);
  EmitClassEdges(b, rng, pred("owns"), persons, 0.10, 0.5, orgs, zipf_orgs);
  // Clubs/companies own products too (the Fig. 3 snowflake's ?y owns ?d
  // arm hangs off an isAffiliatedTo organization).
  EmitClassEdges(b, rng, pred("owns"), orgs, 0.40, 1.0, products,
                 zipf_products);
  EmitClassEdges(b, rng, pred("graduatedFrom"), persons, 0.30, 0.2, orgs,
                 zipf_orgs);
  EmitClassEdges(b, rng, pred("isLeaderOf"), persons, 0.02, 0.1, orgs,
                 zipf_orgs);
  EmitClassEdges(b, rng, pred("hasWonPrize"), persons, 0.08, 0.4, prizes,
                 zipf_prizes);
  EmitClassEdges(b, rng, pred("participatedIn"), persons, 0.25, 0.5, events,
                 zipf_events);
  EmitClassEdges(b, rng, pred("isAffiliatedTo"), persons, 0.60, 0.4, orgs,
                 zipf_orgs);
  EmitClassEdges(b, rng, pred("wasBornOnDate"), persons, 0.60, 0.0, dates,
                 zipf_dates);
  EmitClassEdges(b, rng, pred("wasCreatedOnDate"), movies, 0.65, 0.0, dates,
                 zipf_dates);
  EmitClassEdges(b, rng, pred("hasDuration"), movies, 0.55, 0.0, durations,
                 zipf_durations);
  EmitClassEdges(b, rng, pred("isLocatedIn"), cities, 1.00, 0.0, countries,
                 zipf_countries);
  EmitClassEdges(b, rng, pred("exports"), countries, 0.95, 7.0, products,
                 zipf_products);
  EmitClassEdges(b, rng, pred("happenedIn"), events, 0.95, 0.0, cities,
                 zipf_cities);
  EmitClassEdges(b, rng, pred("isPreferredMeaningOf"), cities, 0.40, 0.0,
                 words, zipf_words);
  EmitClassEdges(b, rng, pred("isPreferredMeaningOf"), movies, 0.30, 0.0,
                 words, zipf_words);
  EmitClassEdges(b, rng, pred("sameAs"), persons, 0.15, 0.0, persons,
                 zipf_persons);
  EmitClassEdges(b, rng, pred("sameAs"), cities, 0.30, 0.0, cities,
                 zipf_cities);
  EmitClassEdges(b, rng, pred("sameAs"), orgs, 0.35, 0.0, orgs, zipf_orgs);
  // linksTo is the wiki-link predicate: dense, from everything, targeting
  // a weighted mixture of classes with per-class popularity — articles
  // link to famous people, big countries, major organizations and prizes.
  const std::vector<MixTarget> wiki_targets = {
      {&persons, &zipf_persons, 0.28},  {&movies, &zipf_movies, 0.14},
      {&cities, &zipf_cities, 0.10},    {&countries, &zipf_countries, 0.12},
      {&orgs, &zipf_orgs, 0.16},        {&events, &zipf_events, 0.05},
      {&prizes, &zipf_prizes, 0.07},    {&products, &zipf_products, 0.04},
      {&words, &zipf_words, 0.02},      {&dates, &zipf_dates, 0.02},
  };
  EmitMixedEdges(b, rng, pred("linksTo"), all_entities, 0.50, 5.0,
                 wiki_targets);
  (void)zipf_all;

  // --- Filler predicates up to num_predicates (catalog realism and miner
  // search space). Classes and rates are drawn deterministically. ---
  const Range classes[] = {persons, movies,    cities, countries,
                           orgs,    events,    dates,  durations,
                           prizes,  products,  words};
  const ZipfSampler* samplers[] = {
      &zipf_persons, &zipf_movies,    &zipf_cities, &zipf_countries,
      &zipf_orgs,    &zipf_events,    &zipf_dates,  &zipf_durations,
      &zipf_prizes,  &zipf_products,  &zipf_words};
  const uint32_t num_classes = static_cast<uint32_t>(std::size(classes));
  const uint32_t base_preds = b.labels().Size();
  for (uint32_t k = base_preds; k < config.num_predicates; ++k) {
    const LabelId p = b.labels().Intern("filler" + std::to_string(k));
    const uint32_t src_class = static_cast<uint32_t>(rng.Uniform(num_classes));
    const uint32_t dst_class = static_cast<uint32_t>(rng.Uniform(num_classes));
    const double coverage = 0.03 + 0.10 * rng.NextDouble();
    const double mean_extra = rng.NextDouble();
    EmitClassEdges(b, rng, p, classes[src_class], coverage, mean_extra,
                   classes[dst_class], *samplers[dst_class]);
  }

  if (info) {
    info->persons = persons.count;
    info->movies = movies.count;
    info->cities = cities.count;
    info->countries = countries.count;
    info->orgs = orgs.count;
    info->events = events.count;
    info->dates = dates.count;
    info->durations = durations.count;
    info->prizes = prizes.count;
    info->products = products.count;
    info->words = words.count;
    info->triples = b.NumAdded();
  }
  return std::move(b).Build();
}

std::vector<std::string> Table1Queries() {
  // Snowflake (CQ_S) rows 1-5 and diamond (CQ_D) rows 6-10. Predicate
  // multisets follow Table 1; arm assignments are chosen type-consistently
  // for the synthetic schema (see EXPERIMENTS.md for the two documented
  // substitutions in rows 3 and 5).
  return {
      // 1: diedIn/influences/actedIn/owns/wasCreatedOnDate/actedIn/created/
      //    hasDuration/wasCreatedOnDate
      "select distinct * where { ?x influences ?m . ?x actedIn ?y . "
      "?x actedIn ?z . ?m diedIn ?a . ?m owns ?b . ?y hasDuration ?c . "
      "?y wasCreatedOnDate ?d . ?e created ?z . ?z wasCreatedOnDate ?f . }",
      // 2: hasChild/influences/actedIn/actedIn/wasBornIn/created/actedIn/
      //    hasDuration/wasCreatedOnDate
      "select distinct * where { ?x hasChild ?m . ?x influences ?y . "
      "?x actedIn ?z . ?m actedIn ?a . ?m wasBornIn ?b . ?y created ?c . "
      "?y actedIn ?d . ?z hasDuration ?e . ?z wasCreatedOnDate ?f . }",
      // 3: isCitizenOf/influences/actedIn/exports/wasCreatedOnDate(->linksTo)/
      //    actedIn/created/hasDuration/wasCreatedOnDate
      "select distinct * where { ?x influences ?m . ?x actedIn ?y . "
      "?x isCitizenOf ?z . ?m actedIn ?a . ?m created ?b . "
      "?y hasDuration ?c . ?y wasCreatedOnDate ?d . ?z exports ?e . "
      "?z linksTo ?f . }",
      // 4: isMarriedTo/influences/actedIn/actedIn/wasBornOnDate/created/
      //    actedIn/hasDuration/wasCreatedOnDate
      "select distinct * where { ?x isMarriedTo ?m . ?x influences ?y . "
      "?x actedIn ?z . ?m actedIn ?a . ?m wasBornOnDate ?b . "
      "?y created ?c . ?y actedIn ?d . ?z hasDuration ?e . "
      "?z wasCreatedOnDate ?f . }",
      // 5: isMarriedTo/diedIn/actedIn/actedIn/wasBornIn/owns(->linksTo)/
      //    wasCreatedOnDate/hasDuration/wasCreatedOnDate
      "select distinct * where { ?x isMarriedTo ?m . ?x actedIn ?y . "
      "?x actedIn ?z . ?m wasBornIn ?a . ?m diedIn ?b . "
      "?y wasCreatedOnDate ?c . ?y hasDuration ?d . ?z wasCreatedOnDate ?e . "
      "?z linksTo ?f . }",
      // 6: livesIn/isCitizenOf/isLocatedIn/linksTo
      "select distinct * where { ?x livesIn ?c . ?c isLocatedIn ?k . "
      "?y isCitizenOf ?k . ?y linksTo ?x . }",
      // 7: livesIn/isCitizenOf/linksTo/happenedIn
      "select distinct * where { ?x livesIn ?c . ?e happenedIn ?c . "
      "?x isCitizenOf ?k . ?e linksTo ?k . }",
      // 8: diedIn/linksTo/wasBornIn/graduatedFrom
      "select distinct * where { ?x diedIn ?c . ?y wasBornIn ?c . "
      "?y graduatedFrom ?u . ?x linksTo ?u . }",
      // 9: diedIn/linksTo/wasBornIn/isLeaderOf
      "select distinct * where { ?x diedIn ?c . ?y wasBornIn ?c . "
      "?y isLeaderOf ?o . ?x linksTo ?o . }",
      // 10: diedIn/linksTo/wasBornIn/hasWonPrize
      "select distinct * where { ?x diedIn ?c . ?y wasBornIn ?c . "
      "?y hasWonPrize ?p . ?x linksTo ?p . }",
  };
}

std::string Fig3Query() {
  return "select distinct * where { ?x linksTo ?m . ?x isAffiliatedTo ?y . "
         "?x wasBornIn ?z . ?m participatedIn ?a . ?m created ?b . "
         "?y sameAs ?c . ?y owns ?d . ?z isLocatedIn ?e . "
         "?z isPreferredMeaningOf ?f . }";
}

std::string Table1RowLabel(size_t index) {
  static const char* kLabels[] = {
      "diedIn/influences/actedIn/owns/wasCreatedOnDate/actedIn/created/"
      "hasDuration/wasCreatedOnDate",
      "hasChild/influences/actedIn/actedIn/wasBornIn/created/actedIn/"
      "hasDuration/wasCreatedOnDate",
      "isCitizenOf/influences/actedIn/exports/linksTo/actedIn/created/"
      "hasDuration/wasCreatedOnDate",
      "isMarriedTo/influences/actedIn/actedIn/wasBornOnDate/created/actedIn/"
      "hasDuration/wasCreatedOnDate",
      "isMarriedTo/diedIn/actedIn/actedIn/wasBornIn/linksTo/"
      "wasCreatedOnDate/hasDuration/wasCreatedOnDate",
      "livesIn/isCitizenOf/isLocatedIn/linksTo",
      "livesIn/isCitizenOf/linksTo/happenedIn",
      "diedIn/linksTo/wasBornIn/graduatedFrom",
      "diedIn/linksTo/wasBornIn/isLeaderOf",
      "diedIn/linksTo/wasBornIn/hasWonPrize",
  };
  WF_CHECK(index < std::size(kLabels));
  return kLabels[index];
}

}  // namespace wireframe
