#ifndef WIREFRAME_DATAGEN_SYNTHETIC_H_
#define WIREFRAME_DATAGEN_SYNTHETIC_H_

#include <cstdint>

#include "query/query_graph.h"
#include "storage/database.h"
#include "util/random.h"

namespace wireframe {

/// Parametric generators for tests and sweeps.

/// Generalization of the Fig. 1 chain: `fan_in` w-nodes reach one hub via
/// A, the hub reaches one y via B, which fans out to `fan_out` z-nodes via
/// C. Plus `noise` extra dead-end branches per label that burnback must
/// remove. Embeddings = fan_in * fan_out; ideal AG = fan_in + 1 + fan_out.
Database MakeChainBlowupGraph(uint32_t fan_in, uint32_t fan_out,
                              uint32_t noise = 0);

/// A uniformly random labeled multigraph: `num_edges` triples drawn over
/// `num_nodes` nodes and `num_labels` labels (node terms "n<i>", label
/// terms "p<j>"). Deterministic in `seed`.
Database MakeRandomGraph(uint32_t num_nodes, uint32_t num_labels,
                         uint64_t num_edges, uint64_t seed);

/// A random *connected* query: `num_edges` patterns over at most
/// `max_vars` variables with labels < num_labels. Each new pattern shares
/// at least one variable with the earlier ones; direction is random.
/// Cyclic patterns arise naturally when edges close on existing vars.
QueryGraph MakeRandomQuery(Rng& rng, uint32_t num_edges, uint32_t max_vars,
                           uint32_t num_labels);

}  // namespace wireframe

#endif  // WIREFRAME_DATAGEN_SYNTHETIC_H_
