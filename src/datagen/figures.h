#ifndef WIREFRAME_DATAGEN_FIGURES_H_
#define WIREFRAME_DATAGEN_FIGURES_H_

#include "query/query_graph.h"
#include "storage/database.h"
#include "util/result.h"

namespace wireframe {

/// Exact reconstructions of the paper's running examples, used by tests
/// and the figure benches to check the algorithms against ground truth the
/// paper states explicitly.

/// The data graph of Fig. 1 / Fig. 2: nodes n1..n15, labels A, B, C.
///   A: n1→n5, n2→n5, n3→n5, n4→n6
///   B: n5→n9, n6→n10
///   C: n9→n12, n9→n13, n9→n14, n9→n15, n8→n11 (distractor)
/// The chain query CQ_C = ?w -A-> ?x -B-> ?y -C-> ?z has 12 embeddings;
/// its ideal answer graph has 8 edges (A:3, B:1, C:4), reached after the
/// Fig. 2 cascading burnback removes n10, n6, and n4.
Database MakeFig1Graph();

/// CQ_C over the Fig. 1 graph (vars w, x, y, z in that order).
Result<QueryGraph> MakeFig1Query(const Database& db);

/// Fig. 1 ground truth.
inline constexpr uint64_t kFig1Embeddings = 12;
inline constexpr uint64_t kFig1IdealAgEdges = 8;

/// The data graph of Fig. 4: nodes n1..n8, labels A, B, C, D.
///   A: n3→n4, n7→n8        (?x -A-> ?e)
///   B: n3→n2, n7→n6        (?x -B-> ?z)
///   C: n4→n1, n8→n5        (?e -C-> ?y)
///   D: n1→n2, n5→n6, n1→n6, n5→n2   (?y -D-> ?z; last two are spurious)
Database MakeFig4Graph();

/// The cyclic diamond CQ_D of Fig. 4 (vars x, e, y, z).
Result<QueryGraph> MakeFig4Query(const Database& db);

/// Fig. 4 ground truth: 2 embeddings; node burnback alone leaves 10 AG
/// edges (the two spurious D edges survive); the ideal AG has 8.
inline constexpr uint64_t kFig4Embeddings = 2;
inline constexpr uint64_t kFig4NodeBurnbackAgEdges = 10;
inline constexpr uint64_t kFig4IdealAgEdges = 8;

}  // namespace wireframe

#endif  // WIREFRAME_DATAGEN_FIGURES_H_
