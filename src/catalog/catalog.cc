#include "catalog/catalog.h"

#include <algorithm>

namespace wireframe {

namespace {

/// One fact: node `v` appears `count` times as the `slot` endpoint
/// (slot = label*2 + end).
struct EndpointFact {
  NodeId node;
  uint32_t slot;
  uint32_t count;
};

}  // namespace

Catalog Catalog::Build(const TripleStore& store) {
  Catalog cat;
  cat.num_labels_ = store.NumPredicates();
  cat.num_nodes_ = store.NumNodes();
  cat.num_triples_ = store.NumTriples();
  cat.num_slots_ = cat.num_labels_ * 2;

  cat.edge_count_.assign(cat.num_labels_, 0);
  cat.distinct_.assign(cat.num_slots_, 0);
  cat.join_count_.assign(static_cast<size_t>(cat.num_slots_) * cat.num_slots_,
                         0);
  cat.matched_.assign(static_cast<size_t>(cat.num_slots_) * cat.num_slots_, 0);
  cat.shared_.assign(static_cast<size_t>(cat.num_slots_) * cat.num_slots_, 0);

  // Collect (node, slot, count) facts from the CSR group structure.
  std::vector<EndpointFact> facts;
  for (LabelId p = 0; p < cat.num_labels_; ++p) {
    cat.edge_count_[p] = store.PredicateCardinality(p);
    auto subjects = store.DistinctSubjects(p);
    auto objects = store.DistinctObjects(p);
    cat.distinct_[p * 2 + 0] = subjects.size();
    cat.distinct_[p * 2 + 1] = objects.size();
    for (NodeId s : subjects) {
      facts.push_back(
          {s, p * 2 + 0,
           static_cast<uint32_t>(store.OutNeighbors(p, s).size())});
    }
    for (NodeId o : objects) {
      facts.push_back(
          {o, p * 2 + 1,
           static_cast<uint32_t>(store.InNeighbors(p, o).size())});
    }
  }

  std::sort(facts.begin(), facts.end(),
            [](const EndpointFact& a, const EndpointFact& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.slot < b.slot;
            });

  // For each node, accumulate all pairwise slot statistics.
  const size_t stride = cat.num_slots_;
  size_t i = 0;
  while (i < facts.size()) {
    size_t j = i;
    while (j < facts.size() && facts[j].node == facts[i].node) ++j;
    for (size_t a = i; a < j; ++a) {
      for (size_t b = i; b < j; ++b) {
        const size_t cell = facts[a].slot * stride + facts[b].slot;
        cat.join_count_[cell] +=
            static_cast<uint64_t>(facts[a].count) * facts[b].count;
        cat.matched_[cell] += facts[a].count;
        cat.shared_[cell] += 1;
      }
    }
    i = j;
  }
  return cat;
}

uint64_t Catalog::MemoryBytes() const {
  return (edge_count_.size() + distinct_.size() + join_count_.size() +
          matched_.size() + shared_.size()) *
         sizeof(uint64_t);
}

}  // namespace wireframe
