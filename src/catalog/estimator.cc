#include "catalog/estimator.h"

#include <algorithm>

namespace wireframe {

namespace {
double SafeDiv(double a, double b) { return b <= 0 ? 0.0 : a / b; }
}  // namespace

double CardinalityEstimator::SurvivalRatio(LabelId p, End end,
                                           const VarEstimate& v) const {
  const Catalog& cat = *catalog_;
  const double total = static_cast<double>(cat.EdgeCount(p));
  if (total <= 0) return 0.0;
  if (!v.bound) return 1.0;

  if (v.anchor_label != kInvalidLabel) {
    // Exact semijoin survivor fraction against the full anchor set ...
    const double base =
        SafeDiv(static_cast<double>(
                    cat.MatchedEdges(p, end, v.anchor_label, v.anchor_end)),
                total);
    // ... scaled by how much of the anchor's distinct set is still alive.
    const double anchor_size = static_cast<double>(
        cat.DistinctCount(v.anchor_label, v.anchor_end));
    const double alive = std::min(1.0, SafeDiv(v.candidates, anchor_size));
    return base * alive;
  }
  // No anchor: assume candidates are drawn uniformly from p's own
  // distinct endpoint values (containment of value sets).
  const double distinct = static_cast<double>(cat.DistinctCount(p, end));
  return std::min(1.0, SafeDiv(v.candidates, distinct));
}

ExtensionEstimate CardinalityEstimator::EstimateExtension(
    LabelId p, const VarEstimate& src, const VarEstimate& dst) const {
  const Catalog& cat = *catalog_;
  ExtensionEstimate est;
  const double total = static_cast<double>(cat.EdgeCount(p));
  if (total <= 0) return est;

  const double ratio_s = SurvivalRatio(p, End::kSubject, src);
  const double ratio_o = SurvivalRatio(p, End::kObject, dst);
  est.matched_edges = total * ratio_s * ratio_o;

  if (!src.bound && !dst.bound) {
    est.probes = 1.0;  // one full scan of the label
  } else if (src.bound && dst.bound) {
    est.probes = std::min(src.candidates, dst.candidates);
  } else {
    est.probes = src.bound ? src.candidates : dst.candidates;
  }

  // Distinct endpoints among the surviving edges, assuming survivors keep
  // the label's average degree.
  const double frac = SafeDiv(est.matched_edges, total);
  const double surv_src =
      static_cast<double>(cat.DistinctCount(p, End::kSubject)) * frac;
  const double surv_dst =
      static_cast<double>(cat.DistinctCount(p, End::kObject)) * frac;
  est.new_src_candidates =
      src.bound ? std::min(src.candidates, surv_src) : surv_src;
  est.new_dst_candidates =
      dst.bound ? std::min(dst.candidates, surv_dst) : surv_dst;
  return est;
}

double CardinalityEstimator::JoinFanout(LabelId from_label, End from_end,
                                        LabelId to_label, End to_end) const {
  const Catalog& cat = *catalog_;
  return SafeDiv(
      static_cast<double>(
          cat.JoinCount(from_label, from_end, to_label, to_end)),
      static_cast<double>(cat.DistinctCount(from_label, from_end)));
}

}  // namespace wireframe
