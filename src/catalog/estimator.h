#ifndef WIREFRAME_CATALOG_ESTIMATOR_H_
#define WIREFRAME_CATALOG_ESTIMATOR_H_

#include "catalog/catalog.h"
#include "util/common.h"

namespace wireframe {

/// Planner-side estimate of one query variable's state while simulating a
/// plan prefix: how many candidate nodes remain, and which (label, end)
/// statistic anchors that estimate so 2-grams can be applied to the next
/// extension touching the variable.
struct VarEstimate {
  bool bound = false;
  double candidates = 0.0;
  /// The label/end whose distinct-value set the candidate set descends
  /// from; kInvalidLabel when the variable is bound by other means.
  LabelId anchor_label = kInvalidLabel;
  End anchor_end = End::kSubject;

  static VarEstimate Unbound() { return {}; }
};

/// Result of simulating one edge-extension step.
struct ExtensionEstimate {
  /// Edges of the extended label expected to enter the answer graph.
  double matched_edges = 0.0;
  /// Index probes performed (one per candidate on the probing side, or a
  /// single scan when neither side is bound).
  double probes = 0.0;
  /// Post-extension candidate estimates for the two endpoints.
  double new_src_candidates = 0.0;
  double new_dst_candidates = 0.0;
};

/// Cardinality model over the 1-gram/2-gram catalog.
///
/// The model makes the classic System-R-style independence and containment
/// assumptions, sharpened by 2-grams: when a variable's candidate set
/// descends from the distinct values of a known (label, end), the fraction
/// of the next label's edges that survive the semijoin is taken from the
/// exact MatchedEdges 2-gram and scaled linearly by how much of the anchor
/// set is still alive.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Catalog& catalog) : catalog_(&catalog) {}

  /// Simulates extending edge ?src --p--> ?dst from the given var states.
  ExtensionEstimate EstimateExtension(LabelId p, const VarEstimate& src,
                                      const VarEstimate& dst) const;

  /// Estimated embeddings of a full join of the plan's edges (used by the
  /// embedding planner's greedy ordering and by tests); multiplies the
  /// join-count ratios along edges. Exposed mainly for diagnostics.
  double JoinFanout(LabelId from_label, End from_end, LabelId to_label,
                    End to_end) const;

  const Catalog& catalog() const { return *catalog_; }

 private:
  /// Fraction of p's `end` endpoint edges surviving a semijoin with the
  /// anchor of `v`, scaled by the anchor's remaining fraction.
  double SurvivalRatio(LabelId p, End end, const VarEstimate& v) const;

  const Catalog* catalog_;
};

}  // namespace wireframe

#endif  // WIREFRAME_CATALOG_ESTIMATOR_H_
