#ifndef WIREFRAME_CATALOG_CATALOG_H_
#define WIREFRAME_CATALOG_CATALOG_H_

#include <cstdint>
#include <vector>

#include "storage/triple_store.h"
#include "util/common.h"

namespace wireframe {

/// Which endpoint of a predicate's edge set a statistic refers to.
enum class End : uint8_t { kSubject = 0, kObject = 1 };

/// Offline edge-label statistics, the paper's "catalog consisting of 1-gram
/// and 2-gram edge-label statistics computed offline" (§4). Built once per
/// database; all queries share it.
///
/// 1-grams, per label p:
///   - EdgeCount(p): number of p-edges
///   - DistinctCount(p, end): distinct subjects/objects of p
///
/// 2-grams, per (label p, end ep) x (label q, end eq):
///   - JoinCount:     Σ_v cnt_p^ep(v) · cnt_q^eq(v)  — cardinality of the
///     equi-join of the two edge sets on those endpoints
///   - MatchedEdges:  Σ_{v shared} cnt_p^ep(v)       — how many p-edges
///     survive a semijoin against q's eq endpoint
///   - SharedDistinct: |vals_p^ep ∩ vals_q^eq|
///
/// These are exact (not sampled): the build makes one pass that groups all
/// (node, label, end, count) facts by node and accumulates pairwise
/// products per node. Cost is Σ_v profile(v)², small in practice because
/// few labels touch any one node.
class Catalog {
 public:
  /// Computes all statistics for `store`.
  static Catalog Build(const TripleStore& store);

  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  uint32_t num_labels() const { return num_labels_; }
  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t num_triples() const { return num_triples_; }

  /// 1-gram: |p|.
  uint64_t EdgeCount(LabelId p) const { return edge_count_[p]; }
  /// 1-gram: number of distinct subject/object nodes of p.
  uint64_t DistinctCount(LabelId p, End end) const {
    return distinct_[Slot(p, end)];
  }
  /// Mean out-degree (end=kSubject) or in-degree (end=kObject) among nodes
  /// that have at least one incident p-edge on that end.
  double AvgDegree(LabelId p, End end) const {
    uint64_t d = DistinctCount(p, end);
    return d == 0 ? 0.0 : static_cast<double>(EdgeCount(p)) / d;
  }

  /// 2-gram: Σ_v cnt_p^ep(v)·cnt_q^eq(v).
  uint64_t JoinCount(LabelId p, End ep, LabelId q, End eq) const {
    return join_count_[Slot(p, ep) * num_slots_ + Slot(q, eq)];
  }
  /// 2-gram: p-edges whose ep endpoint also appears as the eq endpoint of
  /// some q-edge (semijoin survivor count).
  uint64_t MatchedEdges(LabelId p, End ep, LabelId q, End eq) const {
    return matched_[Slot(p, ep) * num_slots_ + Slot(q, eq)];
  }
  /// 2-gram: |distinct ep values of p ∩ distinct eq values of q|.
  uint64_t SharedDistinct(LabelId p, End ep, LabelId q, End eq) const {
    return shared_[Slot(p, ep) * num_slots_ + Slot(q, eq)];
  }

  /// Approximate in-memory footprint (bytes), for reporting.
  uint64_t MemoryBytes() const;

 private:
  Catalog() = default;

  uint32_t Slot(LabelId p, End end) const {
    return p * 2 + static_cast<uint32_t>(end);
  }

  uint32_t num_labels_ = 0;
  uint32_t num_nodes_ = 0;
  uint64_t num_triples_ = 0;
  uint32_t num_slots_ = 0;
  std::vector<uint64_t> edge_count_;   // [labels]
  std::vector<uint64_t> distinct_;     // [slots]
  std::vector<uint64_t> join_count_;   // [slots x slots]
  std::vector<uint64_t> matched_;      // [slots x slots]
  std::vector<uint64_t> shared_;       // [slots x slots]
};

}  // namespace wireframe

#endif  // WIREFRAME_CATALOG_CATALOG_H_
