#include "net/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/random.h"

namespace wireframe {
namespace net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t LoadU32Le(const unsigned char* data) {
  return static_cast<uint32_t>(data[0]) |
         static_cast<uint32_t>(data[1]) << 8 |
         static_cast<uint32_t>(data[2]) << 16 |
         static_cast<uint32_t>(data[3]) << 24;
}

const char* DirectionName(FaultDirection direction) {
  return direction == FaultDirection::kRead ? "read" : "write";
}

}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kDelay:
      return "delay";
    case FaultOp::kBitFlip:
      return "bit-flip";
    case FaultOp::kShortIo:
      return "short-io";
    case FaultOp::kBlackhole:
      return "blackhole";
    case FaultOp::kClose:
      return "close";
    case FaultOp::kReset:
      return "reset";
  }
  return "unknown";
}

FaultSchedule FaultSchedule::Random(uint64_t seed) {
  // Everything below derives from `seed` via the repo's deterministic
  // Rng, so a sweep over seeds is a sweep over reproducible schedules.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  FaultSchedule schedule;
  const int count = 1 + static_cast<int>(rng.Uniform(4));
  for (int i = 0; i < count; ++i) {
    FaultAction action;
    action.op = static_cast<FaultOp>(rng.Uniform(6));
    action.direction = rng.Bernoulli(0.5) ? FaultDirection::kWrite
                                          : FaultDirection::kRead;
    if (rng.Bernoulli(0.6)) {
      // Pin to an early frame: the handshake and first queries are
      // where a fault hurts the protocol state machine most.
      action.at_frame = static_cast<int64_t>(rng.Uniform(4));
      action.at_byte = rng.Uniform(32);
    } else {
      action.at_frame = -1;
      action.at_byte = rng.Uniform(256);
    }
    action.delay_ms = action.op == FaultOp::kBlackhole
                          ? 30 + static_cast<uint32_t>(rng.Uniform(90))
                          : 5 + static_cast<uint32_t>(rng.Uniform(35));
    action.bit_mask = static_cast<uint8_t>(1u << rng.Uniform(8));
    action.span_bytes = 16 + rng.Uniform(112);
    schedule.actions.push_back(action);
  }
  return schedule;
}

std::string FaultSchedule::ToString() const {
  std::string out;
  for (const FaultAction& action : actions) {
    if (!out.empty()) out += ", ";
    out += FaultOpName(action.op);
    out += "@";
    out += DirectionName(action.direction);
    if (action.at_frame >= 0) {
      out += ":frame" + std::to_string(action.at_frame) + "+" +
             std::to_string(action.at_byte);
    } else {
      out += ":byte" + std::to_string(action.at_byte);
    }
  }
  return out.empty() ? "none" : out;
}

FaultInjector::FaultInjector(FaultSchedule schedule) {
  pending_.reserve(schedule.actions.size());
  for (const FaultAction& action : schedule.actions) {
    PendingAction pending;
    pending.action = action;
    if (action.at_frame < 0) {
      pending.offset = action.at_byte;
      pending.resolved = true;
    }
    pending_.push_back(pending);
  }
  // Frame 0 of each direction starts at offset 0 — resolvable now.
  ResolveFramePinsLocked(FaultDirection::kRead);
  ResolveFramePinsLocked(FaultDirection::kWrite);
}

void FaultInjector::ResolveFramePinsLocked(FaultDirection direction) {
  const StreamState& ss = streams_[static_cast<int>(direction)];
  for (PendingAction& p : pending_) {
    if (p.resolved || p.action.direction != direction) continue;
    if (p.action.at_frame == static_cast<int64_t>(ss.frame_index)) {
      p.offset = ss.offset + p.action.at_byte;
      p.resolved = true;
    }
  }
}

Status FaultInjector::BeforeIo(FaultDirection direction, size_t n,
                               FaultIoPlan* plan) {
  uint32_t sleep_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const StreamState& ss = streams_[static_cast<int>(direction)];
    plan->max_bytes = n;
    plan->swallow = false;
    plan->terminate = FaultTermination::kNone;
    for (PendingAction& p : pending_) {
      if (p.fired || !p.resolved || p.action.direction != direction) {
        continue;
      }
      if (ss.offset < p.offset) {
        // Trigger inside this attempt: split the attempt at the trigger
        // so the next one starts exactly on it and the op fires there.
        // (Bit flips need no split — they are applied at the exact byte
        // within an attempt by StageWrite/AfterIo.)
        if (p.action.op != FaultOp::kBitFlip &&
            p.offset < ss.offset + plan->max_bytes) {
          plan->max_bytes = static_cast<size_t>(p.offset - ss.offset);
        }
        continue;
      }
      switch (p.action.op) {
        case FaultOp::kClose:
          p.fired = true;
          ++counters_.closes;
          plan->terminate = FaultTermination::kClose;
          return Status::ConnectionReset(
              std::string("injected close at ") +
              DirectionName(direction) + " offset " +
              std::to_string(ss.offset));
        case FaultOp::kReset:
          p.fired = true;
          ++counters_.resets;
          plan->terminate = FaultTermination::kReset;
          return Status::ConnectionReset(
              std::string("injected RST at ") + DirectionName(direction) +
              " offset " + std::to_string(ss.offset));
        case FaultOp::kDelay:
          p.fired = true;
          ++counters_.delays;
          sleep_ms += p.action.delay_ms;
          break;
        case FaultOp::kBlackhole: {
          const int64_t now = NowMs();
          if (p.opened_ms == 0) p.opened_ms = now;
          if (now - p.opened_ms <
              static_cast<int64_t>(p.action.delay_ms)) {
            if (direction == FaultDirection::kRead) {
              plan->max_bytes = 0;  // no data this round
            } else {
              plan->swallow = true;  // bytes vanish from the wire
            }
          } else {
            p.fired = true;
            ++counters_.blackholes;
          }
          break;
        }
        case FaultOp::kShortIo:
          if (ss.offset < p.offset + p.action.span_bytes) {
            // Counted when it first engages: the stream may legally end
            // inside the span (nothing left to trickle).
            if (!p.engaged) {
              p.engaged = true;
              ++counters_.short_io_spans;
            }
            plan->max_bytes = std::min<size_t>(plan->max_bytes, 1);
          } else {
            p.fired = true;
          }
          break;
        case FaultOp::kBitFlip:
          break;  // applied in StageWrite/AfterIo at the exact byte
      }
    }
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return Status::OK();
}

bool FaultInjector::StageWrite(const char* data, size_t n,
                               std::string* scratch) {
  std::lock_guard<std::mutex> lock(mu_);
  const StreamState& ss = streams_[static_cast<int>(FaultDirection::kWrite)];
  bool staged = false;
  for (const PendingAction& p : pending_) {
    if (p.fired || !p.resolved || p.action.op != FaultOp::kBitFlip ||
        p.action.direction != FaultDirection::kWrite) {
      continue;
    }
    if (p.offset < ss.offset || p.offset >= ss.offset + n) continue;
    if (!staged) {
      scratch->assign(data, n);
      staged = true;
    }
    (*scratch)[p.offset - ss.offset] =
        static_cast<char>((*scratch)[p.offset - ss.offset] ^
                          p.action.bit_mask);
  }
  return staged;
}

void FaultInjector::AfterIo(FaultDirection direction, char* data,
                            size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  StreamState& ss = streams_[static_cast<int>(direction)];
  for (PendingAction& p : pending_) {
    if (p.fired || !p.resolved || p.action.op != FaultOp::kBitFlip ||
        p.action.direction != direction) {
      continue;
    }
    if (p.offset < ss.offset || p.offset >= ss.offset + n) continue;
    if (direction == FaultDirection::kRead) {
      // Damage the received byte in place, after the kernel copy —
      // exactly as if the wire had flipped it.
      data[p.offset - ss.offset] = static_cast<char>(
          data[p.offset - ss.offset] ^ p.action.bit_mask);
    }
    // Write-side flips were staged pre-send; either way the damaged
    // byte has now moved, so the action is spent.
    p.fired = true;
    ++counters_.bit_flips;
  }
  AdvanceLocked(direction, data, n);
}

void FaultInjector::AdvanceLocked(FaultDirection direction,
                                  const char* data, size_t n) {
  StreamState& ss = streams_[static_cast<int>(direction)];
  for (size_t i = 0; i < n; ++i) {
    if (ss.in_payload) {
      // Fast-forward through payload bytes of this chunk.
      const uint64_t take =
          std::min<uint64_t>(ss.payload_left, n - i);
      ss.payload_left -= take;
      i += static_cast<size_t>(take) - 1;
      if (ss.payload_left == 0) {
        ss.in_payload = false;
        ++ss.frame_index;
        // Resolve pins against the next frame's first-byte offset
        // (chunk base + bytes consumed so far); the chunk's full length
        // lands on ss.offset once at the end.
        ss.offset += i + 1;
        ResolveFramePinsLocked(direction);
        ss.offset -= i + 1;
      }
      continue;
    }
    ss.header[ss.header_have++] = static_cast<unsigned char>(data[i]);
    if (ss.header_have == sizeof ss.header) {
      ss.header_have = 0;
      ss.payload_left = LoadU32Le(ss.header);
      if (ss.payload_left > 0) {
        ss.in_payload = true;
      } else {
        ++ss.frame_index;
        ss.offset += i + 1;
        ResolveFramePinsLocked(direction);
        ss.offset -= i + 1;
      }
    }
  }
  ss.offset += n;
}

bool FaultInjector::Drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const PendingAction& p : pending_) {
    if (!p.fired) return false;
  }
  return true;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace net
}  // namespace wireframe
