#ifndef WIREFRAME_NET_SERVER_H_
#define WIREFRAME_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "runtime/server.h"

namespace wireframe {
namespace net {

struct SocketServerOptions {
  /// Listen address: "HOST:PORT" (PORT 0 = kernel-assigned, read back
  /// with address()) or "unix:PATH".
  std::string listen = "127.0.0.1:0";
  int backlog = 64;
  /// Frames past this payload size are rejected before the payload is
  /// read; echoed to clients in HELLO-ACK.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Rows per ROW-BATCH frame (clamped per query so one frame never
  /// exceeds half the send buffer — that keeps the back-pressure bound
  /// strict).
  uint32_t rows_per_batch = 1024;
  /// Per-connection send-buffer cap in encoded-frame bytes. When the
  /// result stream fills it, the emitting sink suspends in short
  /// cancel/deadline-probing waits: the slow reader throttles its own
  /// query, never another tenant's (each query's driver thread advances
  /// it independently of the shared pool).
  uint64_t send_buffer_bytes = 1u << 20;
  /// Kernel-level SO_SNDBUF for accepted sockets; 0 keeps the kernel
  /// default. The app-level send_buffer_bytes bound only engages once
  /// the kernel buffer is full — on loopback the default is large
  /// enough to swallow a whole result stream, so tests (and deployments
  /// that want the back-pressure contract to bite at a known size) pin
  /// this to a small value.
  int kernel_send_buffer_bytes = 0;
  /// Bound on COMPLETING a frame whose first byte arrived (header +
  /// payload). A peer that starts a frame and stalls mid-way is cut
  /// here — this is a transfer bound, not the idle bound below.
  int read_timeout_ms = 30'000;
  /// Idle bound between frames of an established session. Clients ping
  /// every ClientOptions::ping_interval_ms (5 s default) whenever they
  /// are waiting, so 15 s ≈ three missed pings: a HELLO'd-then-silent
  /// connection is reaped in seconds, not minutes, and a live-but-idle
  /// client stays connected indefinitely just by pinging.
  int idle_timeout_ms = 15'000;
  /// Bound on one blocked write. A client that stopped reading past the
  /// send buffer AND this long is declared dead: the connection aborts
  /// and its in-flight query is cancelled.
  int write_timeout_ms = 30'000;
  /// Wait for the HELLO after accept (tighter than read_timeout_ms so
  /// idle port scanners do not pin connection slots).
  int hello_timeout_ms = 10'000;
};

/// The socket front-end of runtime::Server: an acceptor thread plus one
/// reader and one writer thread per connection, speaking the net/wire.h
/// frame protocol. One connection = one session stream — HELLO picks the
/// service class, then queries run strictly one at a time per
/// connection (concurrency comes from connections; the runtime
/// interleaves all of them at morsel granularity).
///
/// Robustness contract:
///  - malformed or oversized frames get a typed ERROR, then the
///    connection closes (the byte stream is no longer trustworthy);
///  - client disconnect mid-stream cancels the in-flight query
///    immediately and never disturbs other connections;
///  - Stop() drains gracefully: stop accepting, cancel in-flight
///    queries, flush every queued frame, then GOODBYE — GOODBYE is
///    always the last frame of a connection.
class SocketServer {
 public:
  /// `server` is borrowed and must outlive this object.
  SocketServer(runtime::Server* server, SocketServerOptions options = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the acceptor. address() is valid once
  /// this returned OK.
  Status Start();

  /// Graceful drain; idempotent, also run by the destructor.
  void Stop();

  /// The resolved listen address (actual port for TCP port 0).
  const SocketAddress& address() const { return address_; }

  /// Runtime stats with the network slice filled in: totals plus one
  /// ConnectionStats entry per live connection.
  runtime::RuntimeStats stats() const;

 private:
  struct Connection;
  class StreamSink;

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WriterLoop(const std::shared_ptr<Connection>& conn);
  /// One HELLO -> ... -> GOODBYE session; runs on the reader thread.
  void ServeSession(Connection& conn);
  /// Runs one QUERY end to end: submit, pump cancel/disconnect while it
  /// executes, then stream AGGREGATE/REPORT. False when the connection
  /// died and the session must end.
  bool ServeQuery(Connection& conn, const QueryFrame& query);
  /// Reads one complete frame (header + payload). Errors: kTimedOut
  /// (idle), kInvalidArgument/kParseError (malformed — reply then
  /// close), kIOError (disconnect), kCancelled (abort/drain).
  Result<Frame> ReadFrame(Connection& conn, int timeout_ms);
  /// Enqueues one frame behind everything already queued, waiting for
  /// buffer room. False when the connection aborted (frame dropped).
  bool PushFrame(Connection& conn, FrameType type,
                 const std::string& payload);
  /// Encoded STATUS payload: point-in-time queue depths, per-tenant
  /// load, and the overload flag.
  std::string EncodeStatusSnapshot() const;
  static void Abort(Connection& conn);

  runtime::Server* server_;
  const SocketServerOptions options_;
  SocketAddress address_;
  Socket listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_connection_id_{1};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> malformed_frames_{0};
  std::atomic<uint64_t> aborted_streams_{0};
  std::thread acceptor_;
  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  bool started_ = false;
};

}  // namespace net
}  // namespace wireframe

#endif  // WIREFRAME_NET_SERVER_H_
