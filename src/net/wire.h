#ifndef WIREFRAME_NET_WIRE_H_
#define WIREFRAME_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "exec/aggregate_executor.h"
#include "runtime/server.h"
#include "util/common.h"
#include "util/result.h"
#include "util/status.h"

namespace wireframe {
namespace net {

/// Protocol version carried in every frame header. A server rejects any
/// other value with a typed ERROR frame and closes the connection (no
/// in-band negotiation: the handshake is one HELLO/HELLO-ACK exchange).
/// v2 repurposed the reserved header u16 as a payload checksum and added
/// the PING/PONG/STATUS liveness frames.
inline constexpr uint8_t kWireVersion = 2;

/// Default cap on a single frame's payload. Anything larger is rejected
/// as oversized BEFORE the payload is read, so a hostile length prefix
/// cannot make the server allocate.
inline constexpr uint32_t kDefaultMaxFrameBytes = 4u << 20;

/// Frame types of the query stream protocol. One connection carries one
/// session: HELLO -> HELLO-ACK, then any number of QUERY -> (ROW-BATCH*
/// [AGGREGATE] REPORT) exchanges, one query in flight at a time. CANCEL
/// addresses the in-flight query; GOODBYE drains and closes (the server
/// flushes every pending frame, then answers GOODBYE — that ordering is
/// part of the contract). ERROR is sent for protocol violations; framing
/// violations (bad version, unknown type, oversized or malformed
/// payload) additionally close the connection, since the byte stream can
/// no longer be trusted.
enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kQuery = 3,
  kRowBatch = 4,
  kAggregate = 5,
  kReport = 6,
  kError = 7,
  kCancel = 8,
  kGoodbye = 9,
  // v2 liveness frames. PING/PONG carry empty payloads and may be sent
  // by the client at any point after HELLO, including while a query
  // streams; the server answers in stream order and resets its idle
  // clock. STATUS (empty payload from the client) asks for a load
  // snapshot; the server replies with an encoded StatusFrame.
  kPing = 10,
  kPong = 11,
  kStatus = 12,
};

const char* FrameTypeName(FrameType type);

/// Fixed 8-byte frame header, little-endian on the wire:
///   u32 payload_length | u8 version | u8 type | u16 checksum
/// The checksum is Fletcher-16 over the six non-checksum header bytes
/// (payload_length, version, type — exactly as laid out on the wire)
/// followed by the payload bytes. It exists so a flipped bit in transit
/// becomes a typed kFrameCorrupt error instead of a silently different —
/// but still parseable — frame: covering the header too means a damaged
/// type byte cannot turn one valid frame kind into another (a corrupted
/// QUERY must never run as a valid query with wrong-but-plausible rows,
/// and a HELLO must never arrive as an AGGREGATE).
struct FrameHeader {
  uint32_t payload_length = 0;
  uint8_t version = kWireVersion;
  FrameType type = FrameType::kError;
  uint16_t checksum = 0;
};

inline constexpr size_t kFrameHeaderBytes = 8;

/// Fletcher-16 over `n` bytes. Cheap (two adds per byte), catches every
/// single-bit flip and all but ~0.002% of random corruption — plenty for
/// detecting fault-injected damage; this is not a cryptographic MAC.
uint16_t FrameChecksum(const char* data, size_t n);

/// The checksum a well-formed frame of `type` carrying `payload` must
/// carry: Fletcher-16 over the reconstructed 6-byte header prefix
/// (payload_length = n, version = kWireVersion, type) followed by the
/// payload. Both AppendFrame and VerifyFramePayload use this, so header
/// damage is caught with the same machinery as payload damage.
uint16_t FrameChecksum(FrameType type, const char* payload, size_t n);

/// Verifies `payload` against the checksum carried in `header`. Returns
/// kFrameCorrupt on mismatch. Every frame-read site calls this after
/// reading the payload bytes.
Status VerifyFramePayload(const FrameHeader& header,
                          const std::string& payload);

/// One decoded frame: header plus raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Serializes `header` into exactly kFrameHeaderBytes at `out`.
void EncodeFrameHeader(const FrameHeader& header, char* out);

/// Parses a header from exactly kFrameHeaderBytes. Rejects bad version,
/// unknown type, and payloads past `max_frame_bytes` (the oversized case
/// names the limit so clients can tell it apart from corruption). The
/// checksum is parsed but NOT verified here — the payload has not been
/// read yet; callers verify with VerifyFramePayload.
Result<FrameHeader> DecodeFrameHeader(const char* data,
                                      uint32_t max_frame_bytes);

/// Appends header + payload to `out` as one wire-ready frame.
void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out);

/// Little-endian payload writer. All multi-byte integers are LE; strings
/// are u32 length + bytes.
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendRaw(&v, sizeof v); }
  void U64(uint64_t v) { AppendRaw(&v, sizeof v); }
  void I64(int64_t v) { AppendRaw(&v, sizeof v); }
  void F64(double v) { AppendRaw(&v, sizeof v); }
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }

  std::string Take() { return std::move(out_); }

 private:
  void AppendRaw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

/// Bounds-checked payload reader: every read that would run past the end
/// trips the failed() flag instead of reading garbage, so decoders check
/// once at the end and report one malformed-payload error.
class WireReader {
 public:
  explicit WireReader(const std::string& data) : data_(data) {}

  uint8_t U8() {
    uint8_t v = 0;
    ReadRaw(&v, sizeof v);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    ReadRaw(&v, sizeof v);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    ReadRaw(&v, sizeof v);
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    ReadRaw(&v, sizeof v);
    return v;
  }
  double F64() {
    double v = 0;
    ReadRaw(&v, sizeof v);
    return v;
  }
  std::string String() {
    const uint32_t n = U32();
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return {};
    }
    std::string s(data_.data() + pos_, n);
    pos_ += n;
    return s;
  }

  bool failed() const { return failed_; }
  /// True iff every byte was consumed and nothing failed — decoders
  /// require this so trailing garbage counts as malformed.
  bool Exhausted() const { return !failed_ && pos_ == data_.size(); }

 private:
  void ReadRaw(void* p, size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }
  const std::string& data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// --- Typed payloads. Encode returns the payload; Decode validates that
// --- the payload parses exactly (no trailing bytes) and is otherwise
// --- malformed.

/// HELLO (client -> server, must be the first frame): the service class
/// every query of this connection runs as (empty = server default).
struct HelloFrame {
  std::string service_class;
};
std::string EncodeHello(const HelloFrame& hello);
Result<HelloFrame> DecodeHello(const std::string& payload);

/// HELLO-ACK (server -> client): the limits the client must respect.
struct HelloAckFrame {
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  uint32_t rows_per_batch = 0;
  std::string resolved_service_class;
};
std::string EncodeHelloAck(const HelloAckFrame& ack);
Result<HelloAckFrame> DecodeHelloAck(const std::string& payload);

/// QUERY: SPARQL text plus per-query overrides (negative = inherit the
/// server default, mirroring QueryRequest).
struct QueryFrame {
  std::string sparql;
  double timeout_seconds = -1.0;
  int64_t row_budget = -1;
};
std::string EncodeQuery(const QueryFrame& query);
Result<QueryFrame> DecodeQuery(const std::string& payload);

/// ROW-BATCH: a run of result rows, row-major. `width` is the query's
/// variable count and every batch of one stream carries the same width.
struct RowBatchFrame {
  uint32_t width = 0;
  std::vector<NodeId> data;  // rows() x width, row-major

  size_t rows() const { return width == 0 ? 0 : data.size() / width; }
};
std::string EncodeRowBatch(const RowBatchFrame& batch);
Result<RowBatchFrame> DecodeRowBatch(const std::string& payload);

/// AGGREGATE: the out-of-band aggregate answer (COUNT/ASK/GROUP BY), sent
/// once before REPORT when the query carried one.
std::string EncodeAggregate(const AggregateResult& result);
Result<AggregateResult> DecodeAggregate(const std::string& payload);

/// REPORT: the terminal frame of one query — a flattened
/// runtime::QueryReport (minus the aggregate, which travels in its own
/// frame so huge GROUP BY answers do not bloat every report).
std::string EncodeReport(const runtime::QueryReport& report);
Result<runtime::QueryReport> DecodeReport(const std::string& payload);

/// STATUS (server -> client): a point-in-time load snapshot so callers
/// can observe pressure and back off before the brownout watermark
/// sheds them. The client requests one with an empty-payload kStatus
/// frame between queries.
struct TenantLoadFrame {
  std::string name;
  uint32_t weight = 0;
  uint32_t running = 0;
  uint32_t queued = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t brownout_rejected = 0;
};
struct StatusFrame {
  uint32_t running = 0;
  uint32_t queued = 0;
  uint32_t max_inflight = 0;
  uint32_t max_queued = 0;
  uint8_t overloaded = 0;  // 1 iff the brownout watermark is exceeded
  uint32_t retry_after_ms = 0;  // backoff hint when overloaded
  std::vector<TenantLoadFrame> tenants;
};
std::string EncodeStatus(const StatusFrame& status);
Result<StatusFrame> DecodeStatus(const std::string& payload);

/// ERROR: a typed status for protocol-level failures (malformed frame,
/// oversized frame, QUERY before HELLO, double HELLO, ...). Query-level
/// failures (parse errors, admission rejections) travel in REPORT
/// instead — they terminate a query, not the connection.
struct ErrorFrame {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  Status ToStatus() const { return Status(code, message); }
};
std::string EncodeError(const ErrorFrame& error);
Result<ErrorFrame> DecodeError(const std::string& payload);

}  // namespace net
}  // namespace wireframe

#endif  // WIREFRAME_NET_WIRE_H_
