#include "net/wire.h"

namespace wireframe {
namespace net {

namespace {

/// Little-endian store/load of the header fields. The payload helpers
/// memcpy native-endian; the repo targets little-endian hosts only (the
/// same assumption storage/serializer.cc bakes into snapshots), so the
/// header is the one place spelled out byte by byte — it is what a
/// foreign client would implement first.
void StoreU32Le(uint32_t v, char* out) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t LoadU32Le(const char* data) {
  return static_cast<uint32_t>(static_cast<unsigned char>(data[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(data[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[3])) << 24;
}

bool KnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kStatus);
}

bool KnownStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kStreamBroken);
}

Status Malformed(const char* what) {
  return Status::ParseError(std::string("malformed ") + what + " payload");
}

void WriteAggregateValue(WireWriter* w, const AggregateValue& v) {
  w->U64(v.lo);
  w->U64(v.hi);
  w->U8(v.saturated ? 1 : 0);
}

AggregateValue ReadAggregateValue(WireReader* r) {
  AggregateValue v;
  v.lo = r->U64();
  v.hi = r->U64();
  v.saturated = r->U8() != 0;
  return v;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kHelloAck:
      return "HELLO-ACK";
    case FrameType::kQuery:
      return "QUERY";
    case FrameType::kRowBatch:
      return "ROW-BATCH";
    case FrameType::kAggregate:
      return "AGGREGATE";
    case FrameType::kReport:
      return "REPORT";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kCancel:
      return "CANCEL";
    case FrameType::kGoodbye:
      return "GOODBYE";
    case FrameType::kPing:
      return "PING";
    case FrameType::kPong:
      return "PONG";
    case FrameType::kStatus:
      return "STATUS";
  }
  return "unknown";
}

namespace {

/// Resumable Fletcher-16 with the customary 255 modulus, deferred so the
/// inner loop is two adds per byte. Resumability lets the frame checksum
/// chain the 6-byte header prefix and the payload without concatenating.
struct Fletcher16 {
  uint32_t sum1 = 0;
  uint32_t sum2 = 0;

  void Mix(const char* data, size_t n) {
    size_t i = 0;
    while (i < n) {
      // 5802 iterations is the largest block that cannot overflow u32
      // (both sums enter each block already reduced below 255).
      const size_t block = n - i < 5802 ? n - i : 5802;
      for (size_t end = i + block; i < end; ++i) {
        sum1 += static_cast<unsigned char>(data[i]);
        sum2 += sum1;
      }
      sum1 %= 255;
      sum2 %= 255;
    }
  }

  uint16_t Take() const {
    return static_cast<uint16_t>((sum2 << 8) | sum1);
  }
};

}  // namespace

uint16_t FrameChecksum(const char* data, size_t n) {
  Fletcher16 fletcher;
  fletcher.Mix(data, n);
  return fletcher.Take();
}

uint16_t FrameChecksum(FrameType type, const char* payload, size_t n) {
  // The prefix is the header's six non-checksum bytes exactly as
  // EncodeFrameHeader lays them out, so any flipped header bit — length,
  // version, or type — breaks the checksum just like payload damage.
  char prefix[6];
  StoreU32Le(static_cast<uint32_t>(n), prefix);
  prefix[4] = static_cast<char>(kWireVersion);
  prefix[5] = static_cast<char>(type);
  Fletcher16 fletcher;
  fletcher.Mix(prefix, sizeof(prefix));
  fletcher.Mix(payload, n);
  return fletcher.Take();
}

Status VerifyFramePayload(const FrameHeader& header,
                          const std::string& payload) {
  // Reconstruct the prefix from the header EXACTLY as received (not
  // from payload.size()): a flipped length or type bit then breaks the
  // match even though the payload bytes themselves arrived intact.
  char prefix[6];
  StoreU32Le(header.payload_length, prefix);
  prefix[4] = static_cast<char>(header.version);
  prefix[5] = static_cast<char>(header.type);
  Fletcher16 fletcher;
  fletcher.Mix(prefix, sizeof(prefix));
  fletcher.Mix(payload.data(), payload.size());
  if (fletcher.Take() != header.checksum) {
    return Status::FrameCorrupt(
        std::string("corrupt ") + FrameTypeName(header.type) +
        " frame: header/payload checksum mismatch");
  }
  return Status::OK();
}

void EncodeFrameHeader(const FrameHeader& header, char* out) {
  StoreU32Le(header.payload_length, out);
  out[4] = static_cast<char>(header.version);
  out[5] = static_cast<char>(header.type);
  out[6] = static_cast<char>(header.checksum & 0xff);
  out[7] = static_cast<char>((header.checksum >> 8) & 0xff);
}

Result<FrameHeader> DecodeFrameHeader(const char* data,
                                      uint32_t max_frame_bytes) {
  FrameHeader header;
  header.payload_length = LoadU32Le(data);
  header.version = static_cast<uint8_t>(data[4]);
  const uint8_t type = static_cast<uint8_t>(data[5]);
  if (header.version != kWireVersion) {
    return Status::InvalidArgument(
        "unsupported wire version " + std::to_string(header.version) +
        " (this server speaks version " + std::to_string(kWireVersion) + ")");
  }
  if (!KnownFrameType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  header.checksum = static_cast<uint16_t>(
      static_cast<unsigned char>(data[6]) |
      static_cast<unsigned char>(data[7]) << 8);
  if (header.payload_length > max_frame_bytes) {
    return Status::InvalidArgument(
        "oversized frame: " + std::to_string(header.payload_length) +
        " byte payload exceeds the " + std::to_string(max_frame_bytes) +
        " byte limit");
  }
  header.type = static_cast<FrameType>(type);
  return header;
}

void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(
      {static_cast<uint32_t>(payload.size()), kWireVersion, type,
       FrameChecksum(type, payload.data(), payload.size())},
      header);
  out->append(header, kFrameHeaderBytes);
  out->append(payload);
}

std::string EncodeHello(const HelloFrame& hello) {
  WireWriter w;
  w.String(hello.service_class);
  return w.Take();
}

Result<HelloFrame> DecodeHello(const std::string& payload) {
  WireReader r(payload);
  HelloFrame hello;
  hello.service_class = r.String();
  if (!r.Exhausted()) return Malformed("HELLO");
  return hello;
}

std::string EncodeHelloAck(const HelloAckFrame& ack) {
  WireWriter w;
  w.U32(ack.max_frame_bytes);
  w.U32(ack.rows_per_batch);
  w.String(ack.resolved_service_class);
  return w.Take();
}

Result<HelloAckFrame> DecodeHelloAck(const std::string& payload) {
  WireReader r(payload);
  HelloAckFrame ack;
  ack.max_frame_bytes = r.U32();
  ack.rows_per_batch = r.U32();
  ack.resolved_service_class = r.String();
  if (!r.Exhausted()) return Malformed("HELLO-ACK");
  return ack;
}

std::string EncodeQuery(const QueryFrame& query) {
  WireWriter w;
  w.String(query.sparql);
  w.F64(query.timeout_seconds);
  w.I64(query.row_budget);
  return w.Take();
}

Result<QueryFrame> DecodeQuery(const std::string& payload) {
  WireReader r(payload);
  QueryFrame query;
  query.sparql = r.String();
  query.timeout_seconds = r.F64();
  query.row_budget = r.I64();
  if (!r.Exhausted()) return Malformed("QUERY");
  return query;
}

std::string EncodeRowBatch(const RowBatchFrame& batch) {
  WireWriter w;
  w.U32(batch.width);
  w.U32(static_cast<uint32_t>(batch.rows()));
  std::string payload = w.Take();
  payload.append(reinterpret_cast<const char*>(batch.data.data()),
                 batch.data.size() * sizeof(NodeId));
  return payload;
}

Result<RowBatchFrame> DecodeRowBatch(const std::string& payload) {
  if (payload.size() < 8) return Malformed("ROW-BATCH");
  RowBatchFrame batch;
  batch.width = LoadU32Le(payload.data());
  const uint32_t rows = LoadU32Le(payload.data() + 4);
  const size_t expected =
      8 + static_cast<size_t>(rows) * batch.width * sizeof(NodeId);
  if (batch.width == 0 || payload.size() != expected) {
    return Malformed("ROW-BATCH");
  }
  batch.data.resize(static_cast<size_t>(rows) * batch.width);
  std::memcpy(batch.data.data(), payload.data() + 8,
              batch.data.size() * sizeof(NodeId));
  return batch;
}

std::string EncodeAggregate(const AggregateResult& result) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(result.kind));
  WriteAggregateValue(&w, result.value);
  w.U8(result.ask ? 1 : 0);
  w.U8(result.factorized ? 1 : 0);
  w.String(result.fallback_reason);
  w.U32(static_cast<uint32_t>(result.groups.size()));
  for (const AggregateGroup& group : result.groups) {
    w.U32(group.key);
    WriteAggregateValue(&w, group.value);
  }
  return w.Take();
}

Result<AggregateResult> DecodeAggregate(const std::string& payload) {
  WireReader r(payload);
  AggregateResult result;
  result.kind = static_cast<AggregateKind>(r.U8());
  result.value = ReadAggregateValue(&r);
  result.ask = r.U8() != 0;
  result.factorized = r.U8() != 0;
  result.fallback_reason = r.String();
  const uint32_t groups = r.U32();
  // Cap preflight: each group costs 21 payload bytes, so a hostile count
  // cannot drive the reserve below past the actual payload size.
  if (r.failed() || static_cast<uint64_t>(groups) * 21 > payload.size()) {
    return Malformed("AGGREGATE");
  }
  result.groups.reserve(groups);
  for (uint32_t i = 0; i < groups; ++i) {
    AggregateGroup group;
    group.key = r.U32();
    group.value = ReadAggregateValue(&r);
    result.groups.push_back(group);
  }
  if (!r.Exhausted()) return Malformed("AGGREGATE");
  return result;
}

std::string EncodeReport(const runtime::QueryReport& report) {
  WireWriter w;
  w.U64(report.index);
  w.U8(static_cast<uint8_t>(report.outcome));
  w.U8(report.admitted ? 1 : 0);
  w.U8(report.cache_hit ? 1 : 0);
  w.U8(report.has_aggregate ? 1 : 0);
  w.U8(static_cast<uint8_t>(report.status.code()));
  w.String(report.status.message());
  w.String(report.service_class);
  w.U64(report.rows);
  w.F64(report.queue_seconds);
  w.F64(report.run_seconds);
  w.U32(report.retry_after_ms);
  w.U64(report.stats.output_tuples);
  w.U64(report.stats.ag_pairs);
  w.U64(report.stats.edge_walks);
  w.U64(report.stats.pairs_burned);
  w.F64(report.stats.seconds);
  w.F64(report.stats.phase1_seconds);
  w.F64(report.stats.burnback_seconds);
  w.F64(report.stats.freeze_seconds);
  w.F64(report.stats.phase2_seconds);
  w.F64(report.stats.aggregate_seconds);
  return w.Take();
}

Result<runtime::QueryReport> DecodeReport(const std::string& payload) {
  WireReader r(payload);
  runtime::QueryReport report;
  report.index = r.U64();
  const uint8_t outcome = r.U8();
  if (outcome > static_cast<uint8_t>(runtime::QueryOutcome::kFailed)) {
    return Malformed("REPORT");
  }
  report.outcome = static_cast<runtime::QueryOutcome>(outcome);
  report.admitted = r.U8() != 0;
  report.cache_hit = r.U8() != 0;
  report.has_aggregate = r.U8() != 0;
  const uint8_t code = r.U8();
  if (!KnownStatusCode(code)) return Malformed("REPORT");
  std::string message = r.String();
  report.status = Status(static_cast<StatusCode>(code), std::move(message));
  report.service_class = r.String();
  report.rows = r.U64();
  report.queue_seconds = r.F64();
  report.run_seconds = r.F64();
  report.retry_after_ms = r.U32();
  report.stats.output_tuples = r.U64();
  report.stats.ag_pairs = r.U64();
  report.stats.edge_walks = r.U64();
  report.stats.pairs_burned = r.U64();
  report.stats.seconds = r.F64();
  report.stats.phase1_seconds = r.F64();
  report.stats.burnback_seconds = r.F64();
  report.stats.freeze_seconds = r.F64();
  report.stats.phase2_seconds = r.F64();
  report.stats.aggregate_seconds = r.F64();
  if (!r.Exhausted()) return Malformed("REPORT");
  return report;
}

std::string EncodeStatus(const StatusFrame& status) {
  WireWriter w;
  w.U32(status.running);
  w.U32(status.queued);
  w.U32(status.max_inflight);
  w.U32(status.max_queued);
  w.U8(status.overloaded);
  w.U32(status.retry_after_ms);
  w.U32(static_cast<uint32_t>(status.tenants.size()));
  for (const TenantLoadFrame& tenant : status.tenants) {
    w.String(tenant.name);
    w.U32(tenant.weight);
    w.U32(tenant.running);
    w.U32(tenant.queued);
    w.U64(tenant.completed);
    w.U64(tenant.shed);
    w.U64(tenant.brownout_rejected);
  }
  return w.Take();
}

Result<StatusFrame> DecodeStatus(const std::string& payload) {
  WireReader r(payload);
  StatusFrame status;
  status.running = r.U32();
  status.queued = r.U32();
  status.max_inflight = r.U32();
  status.max_queued = r.U32();
  status.overloaded = r.U8();
  status.retry_after_ms = r.U32();
  const uint32_t tenants = r.U32();
  // Cap preflight, same discipline as DecodeAggregate: each tenant
  // costs at least 40 payload bytes, so a hostile count cannot drive
  // the reserve below past the actual payload size.
  if (r.failed() || static_cast<uint64_t>(tenants) * 40 > payload.size()) {
    return Malformed("STATUS");
  }
  status.tenants.reserve(tenants);
  for (uint32_t i = 0; i < tenants; ++i) {
    TenantLoadFrame tenant;
    tenant.name = r.String();
    tenant.weight = r.U32();
    tenant.running = r.U32();
    tenant.queued = r.U32();
    tenant.completed = r.U64();
    tenant.shed = r.U64();
    tenant.brownout_rejected = r.U64();
    status.tenants.push_back(std::move(tenant));
  }
  if (!r.Exhausted()) return Malformed("STATUS");
  return status;
}

std::string EncodeError(const ErrorFrame& error) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(error.code));
  w.String(error.message);
  return w.Take();
}

Result<ErrorFrame> DecodeError(const std::string& payload) {
  WireReader r(payload);
  ErrorFrame error;
  const uint8_t code = r.U8();
  if (!KnownStatusCode(code)) return Malformed("ERROR");
  error.code = static_cast<StatusCode>(code);
  error.message = r.String();
  if (!r.Exhausted()) return Malformed("ERROR");
  return error;
}

}  // namespace net
}  // namespace wireframe
