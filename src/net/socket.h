#ifndef WIREFRAME_NET_SOCKET_H_
#define WIREFRAME_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace wireframe {
namespace net {

class FaultInjector;

/// A listen/connect address. Two spellings:
///   "HOST:PORT"   TCP (HOST may be a dotted quad or "localhost"; PORT 0
///                 asks the kernel for a free port — read it back with
///                 Socket::BoundPort)
///   "unix:PATH"   Unix-domain stream socket at PATH
struct SocketAddress {
  bool is_unix = false;
  std::string host_or_path;
  uint16_t port = 0;

  static Result<SocketAddress> Parse(const std::string& text);
  std::string ToString() const;
};

/// Move-only RAII wrapper over one stream socket fd. All blocking waits
/// go through poll() with a millisecond timeout so callers can bound
/// every I/O step; the optional `abort` flag turns a wait into an
/// immediate kCancelled, which is how the server detaches reader and
/// writer threads from a dying connection.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_), fault_(other.fault_) {
    other.fd_ = -1;
    other.fault_ = nullptr;
  }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      fault_ = other.fault_;
      other.fd_ = -1;
      other.fault_ = nullptr;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Binds + listens. Unix paths are unlinked first so a stale socket
  /// file from a crashed server does not block restart.
  static Result<Socket> Listen(const SocketAddress& address, int backlog);

  /// Connects with a bounded wait (non-blocking connect + poll).
  /// `recv_buffer_bytes` > 0 shrinks SO_RCVBUF BEFORE connect(2) — the
  /// TCP window is negotiated at connect time, so setting it later
  /// leaves the peer free to blast past the nominal buffer.
  static Result<Socket> Connect(const SocketAddress& address,
                                int timeout_ms,
                                int recv_buffer_bytes = 0);

  /// Waits up to `timeout_ms` for one pending connection. kTimedOut when
  /// none arrived, kCancelled when `abort` flipped, kIOError on a dead
  /// listener.
  Result<Socket> Accept(int timeout_ms,
                        const std::atomic<bool>* abort = nullptr);

  /// The port a TCP listener actually bound (use after Listen on port 0).
  Result<uint16_t> BoundPort() const;

  /// Waits until the socket has readable data (or the peer hung up —
  /// the following read then reports it precisely). kTimedOut after
  /// `timeout_ms`, kCancelled when `abort` flipped. The server's reader
  /// threads idle here in short slices so cancel frames, disconnects,
  /// and shutdown drains are all noticed within ~10 ms.
  Status WaitReadable(int timeout_ms,
                      const std::atomic<bool>* abort = nullptr);

  /// Reads exactly `n` bytes. `timeout_ms` bounds the TOTAL wait for the
  /// n bytes; kTimedOut on expiry (partial data discarded), kIOError on
  /// peer close or socket error (the message says which), kCancelled on
  /// abort.
  Status ReadExact(void* buffer, size_t n, int timeout_ms,
                   const std::atomic<bool>* abort = nullptr);

  /// Writes all `n` bytes, same timeout/abort contract as ReadExact.
  Status WriteAll(const void* buffer, size_t n, int timeout_ms,
                  const std::atomic<bool>* abort = nullptr);

  /// Half-closes the write side (peer sees EOF after draining).
  void ShutdownWrite();
  /// Hard-resets the connection: SO_LINGER 0 + close sends RST instead
  /// of FIN, which is how tests simulate a killed client.
  void Reset();
  void Close();

  /// Arms a deterministic fault plane (net/fault_injection.h) on this
  /// socket's read/write path; null disarms. The injector is borrowed
  /// and must outlive the socket's I/O. An unarmed socket pays exactly
  /// one pointer null check per I/O attempt — the fault plane is
  /// compiled in always so tests and production run the same code.
  void ArmFaults(FaultInjector* injector) { fault_ = injector; }
  FaultInjector* armed_faults() const { return fault_; }

  /// Shrinks the kernel receive buffer (SO_RCVBUF). Only fully
  /// effective before the connection is established — prefer the
  /// Connect parameter for client sockets.
  Status SetReceiveBufferBytes(int bytes);
  /// Shrinks the kernel send buffer (SO_SNDBUF). The server applies
  /// this to accepted sockets so loopback cannot absorb an entire
  /// result stream into kernel memory and defeat the app-level
  /// back-pressure bound.
  Status SetSendBufferBytes(int bytes);

 private:
  int fd_ = -1;
  FaultInjector* fault_ = nullptr;
};

/// Human-readable peer name of a connected socket ("1.2.3.4:5678" for
/// TCP, "unix" for unix-domain peers, "?" when the fd is dead).
std::string PeerName(int fd);

}  // namespace net
}  // namespace wireframe

#endif  // WIREFRAME_NET_SOCKET_H_
