#include "net/socket.h"

#include "net/fault_injection.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace wireframe {
namespace net {

namespace {

/// Wait granularity: every blocking poll wakes at least this often to
/// check the abort flag, so a flipped flag unsticks an I/O wait within
/// ~10 ms regardless of the caller's total timeout.
constexpr int kPollSliceMs = 10;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Classifies errno into the typed transport statuses retry policy
/// keys on: refused connects and reset/broken-pipe streams get their
/// own codes; everything else stays a generic kIOError.
Status ErrnoStatus(const char* what, int err) {
  const std::string msg = std::string(what) + ": " + std::strerror(err);
  if (err == ECONNREFUSED) return Status::ConnectionRefused(msg);
  if (err == ECONNRESET || err == EPIPE) {
    return Status::ConnectionReset(msg);
  }
  return Status::IOError(msg);
}

Status Errno(const char* what) { return ErrnoStatus(what, errno); }

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Polls `fd` for `events` in abort-aware slices. Returns OK when ready,
/// kTimedOut / kCancelled / kIOError otherwise. `deadline_ms` < 0 waits
/// forever (still slicing for abort).
Status PollFor(int fd, short events, int64_t deadline_ms,
               const std::atomic<bool>* abort, const char* what) {
  for (;;) {
    if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
      return Status::Cancelled(std::string(what) + " aborted");
    }
    int wait = kPollSliceMs;
    if (deadline_ms >= 0) {
      const int64_t left = deadline_ms - NowMs();
      if (left <= 0) {
        return Status::TimedOut(std::string(what) + " timed out");
      }
      if (left < wait) wait = static_cast<int>(left);
    }
    struct pollfd pfd = {fd, events, 0};
    const int rc = poll(&pfd, 1, wait);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno(what);
    }
    if (rc == 0) continue;  // slice expired, re-check abort/deadline
    if ((pfd.revents & (events | POLLHUP | POLLERR)) != 0) {
      return Status::OK();  // readable/writable — or hung up, which the
                            // following read/write reports precisely
    }
  }
}

Result<SocketAddress> ParseTcp(const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return Status::InvalidArgument(
        "expected HOST:PORT or unix:PATH, got '" + text + "'");
  }
  SocketAddress address;
  address.host_or_path = text.substr(0, colon);
  char* end = nullptr;
  const unsigned long port = std::strtoul(text.c_str() + colon + 1, &end,
                                          10);
  if (*end != '\0' || port > 65535) {
    return Status::InvalidArgument("bad port in '" + text + "'");
  }
  address.port = static_cast<uint16_t>(port);
  return address;
}

Result<struct sockaddr_in> TcpSockaddr(const SocketAddress& address) {
  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sin_family = AF_INET;
  sa.sin_port = htons(address.port);
  std::string host = address.host_or_path;
  if (host == "localhost" || host.empty()) host = "127.0.0.1";
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidArgument("cannot resolve host '" + host +
                                   "' (dotted quad or localhost only)");
  }
  return sa;
}

Result<struct sockaddr_un> UnixSockaddr(const SocketAddress& address) {
  struct sockaddr_un sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sun_family = AF_UNIX;
  if (address.host_or_path.size() >= sizeof sa.sun_path) {
    return Status::InvalidArgument("unix socket path too long: " +
                                   address.host_or_path);
  }
  std::memcpy(sa.sun_path, address.host_or_path.c_str(),
              address.host_or_path.size() + 1);
  return sa;
}

}  // namespace

Result<SocketAddress> SocketAddress::Parse(const std::string& text) {
  if (text.rfind("unix:", 0) == 0) {
    SocketAddress address;
    address.is_unix = true;
    address.host_or_path = text.substr(5);
    if (address.host_or_path.empty()) {
      return Status::InvalidArgument("empty unix socket path");
    }
    return address;
  }
  return ParseTcp(text);
}

std::string SocketAddress::ToString() const {
  if (is_unix) return "unix:" + host_or_path;
  return host_or_path + ":" + std::to_string(port);
}

Result<Socket> Socket::Listen(const SocketAddress& address, int backlog) {
  const int domain = address.is_unix ? AF_UNIX : AF_INET;
  Socket sock(::socket(domain, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  WF_RETURN_NOT_OK(SetNonBlocking(sock.fd()));
  if (address.is_unix) {
    ::unlink(address.host_or_path.c_str());
    WF_ASSIGN_OR_RETURN(auto sa, UnixSockaddr(address));
    if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&sa),
               sizeof sa) < 0) {
      return Errno("bind");
    }
  } else {
    const int one = 1;
    setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    WF_ASSIGN_OR_RETURN(auto sa, TcpSockaddr(address));
    if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&sa),
               sizeof sa) < 0) {
      return Errno("bind");
    }
  }
  if (::listen(sock.fd(), backlog) < 0) return Errno("listen");
  return sock;
}

Result<Socket> Socket::Connect(const SocketAddress& address,
                               int timeout_ms, int recv_buffer_bytes) {
  const int domain = address.is_unix ? AF_UNIX : AF_INET;
  Socket sock(::socket(domain, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  WF_RETURN_NOT_OK(SetNonBlocking(sock.fd()));
  if (recv_buffer_bytes > 0) {
    // Before connect(2): the receive window is negotiated during the
    // handshake and never shrinks afterwards.
    WF_RETURN_NOT_OK(sock.SetReceiveBufferBytes(recv_buffer_bytes));
  }
  int rc;
  if (address.is_unix) {
    WF_ASSIGN_OR_RETURN(auto sa, UnixSockaddr(address));
    rc = ::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&sa),
                   sizeof sa);
  } else {
    WF_ASSIGN_OR_RETURN(auto sa, TcpSockaddr(address));
    rc = ::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&sa),
                   sizeof sa);
  }
  if (rc < 0 && errno != EINPROGRESS) return Errno("connect");
  if (rc < 0) {
    const int64_t deadline =
        timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
    WF_RETURN_NOT_OK(
        PollFor(sock.fd(), POLLOUT, deadline, nullptr, "connect"));
    int err = 0;
    socklen_t len = sizeof err;
    if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      const std::string what = "connect to " + address.ToString();
      return ErrnoStatus(what.c_str(), err != 0 ? err : errno);
    }
  }
  if (!address.is_unix) {
    const int one = 1;
    setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return sock;
}

Result<Socket> Socket::Accept(int timeout_ms,
                              const std::atomic<bool>* abort) {
  const int64_t deadline = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  for (;;) {
    WF_RETURN_NOT_OK(PollFor(fd_, POLLIN, deadline, abort, "accept"));
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      Socket sock(client);
      WF_RETURN_NOT_OK(SetNonBlocking(sock.fd()));
      const int one = 1;
      setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return sock;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      continue;  // raced another accept or the client gave up; re-poll
    }
    return Errno("accept");
  }
}

Result<uint16_t> Socket::BoundPort() const {
  struct sockaddr_in sa;
  socklen_t len = sizeof sa;
  if (getsockname(fd_, reinterpret_cast<struct sockaddr*>(&sa), &len) <
          0 ||
      sa.sin_family != AF_INET) {
    return Errno("getsockname");
  }
  return ntohs(sa.sin_port);
}

Status Socket::WaitReadable(int timeout_ms,
                            const std::atomic<bool>* abort) {
  const int64_t deadline = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  return PollFor(fd_, POLLIN, deadline, abort, "read");
}

Status Socket::ReadExact(void* buffer, size_t n, int timeout_ms,
                         const std::atomic<bool>* abort) {
  char* out = static_cast<char*>(buffer);
  size_t got = 0;
  const int64_t deadline = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  while (got < n) {
    size_t want = n - got;
    if (fault_ != nullptr) {
      FaultIoPlan plan;
      Status injected =
          fault_->BeforeIo(FaultDirection::kRead, want, &plan);
      if (!injected.ok()) {
        if (plan.terminate == FaultTermination::kReset) {
          Reset();
        } else {
          Close();
        }
        return injected;
      }
      if (plan.max_bytes == 0) {
        // Blackholed: deliver nothing this round, but keep honoring
        // the caller's deadline and abort flag — a fault must never
        // turn a bounded wait into a hang.
        if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
          return Status::Cancelled("read aborted");
        }
        if (deadline >= 0 && NowMs() >= deadline) {
          return Status::TimedOut("read timed out");
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kPollSliceMs));
        continue;
      }
      want = plan.max_bytes;
    }
    const ssize_t rc = ::read(fd_, out + got, want);
    if (rc > 0) {
      if (fault_ != nullptr) {
        fault_->AfterIo(FaultDirection::kRead, out + got,
                        static_cast<size_t>(rc));
      }
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      // Typed: an EOF here is the peer tearing the stream down, which
      // retry policy must be able to tell apart from local I/O trouble.
      return Status::ConnectionReset(got == 0
                                         ? "connection closed by peer"
                                         : "connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return Errno("read");
    WF_RETURN_NOT_OK(PollFor(fd_, POLLIN, deadline, abort, "read"));
  }
  return Status::OK();
}

Status Socket::WriteAll(const void* buffer, size_t n, int timeout_ms,
                        const std::atomic<bool>* abort) {
  const char* in = static_cast<const char*>(buffer);
  size_t sent = 0;
  const int64_t deadline = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  std::string scratch;
  while (sent < n) {
    size_t chunk = n - sent;
    const char* src = in + sent;
    if (fault_ != nullptr) {
      FaultIoPlan plan;
      Status injected =
          fault_->BeforeIo(FaultDirection::kWrite, chunk, &plan);
      if (!injected.ok()) {
        if (plan.terminate == FaultTermination::kReset) {
          Reset();
        } else {
          Close();
        }
        return injected;
      }
      chunk = plan.max_bytes;
      if (plan.swallow) {
        // Blackholed: the bytes vanish from the wire but the caller
        // sees success — the peer is now mid-frame forever, which is
        // what liveness timeouts are for.
        fault_->AfterIo(FaultDirection::kWrite, const_cast<char*>(src),
                        chunk);
        sent += chunk;
        continue;
      }
      if (fault_->StageWrite(src, chunk, &scratch)) src = scratch.data();
    }
    const ssize_t rc = ::send(fd_, src, chunk, MSG_NOSIGNAL);
    if (rc > 0) {
      if (fault_ != nullptr) {
        fault_->AfterIo(FaultDirection::kWrite, const_cast<char*>(src),
                        static_cast<size_t>(rc));
      }
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return Errno("write");
    }
    WF_RETURN_NOT_OK(PollFor(fd_, POLLOUT, deadline, abort, "write"));
  }
  return Status::OK();
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::Reset() {
  if (fd_ < 0) return;
  struct linger lg = {1, 0};
  setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  Close();
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SetReceiveBufferBytes(int bytes) {
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes) < 0) {
    return Errno("setsockopt(SO_RCVBUF)");
  }
  return Status::OK();
}

Status Socket::SetSendBufferBytes(int bytes) {
  if (setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes) < 0) {
    return Errno("setsockopt(SO_SNDBUF)");
  }
  return Status::OK();
}

std::string PeerName(int fd) {
  struct sockaddr_storage ss;
  socklen_t len = sizeof ss;
  if (fd < 0 ||
      getpeername(fd, reinterpret_cast<struct sockaddr*>(&ss), &len) < 0) {
    return "?";
  }
  if (ss.ss_family == AF_UNIX) return "unix";
  if (ss.ss_family == AF_INET) {
    const auto* sa = reinterpret_cast<struct sockaddr_in*>(&ss);
    char host[INET_ADDRSTRLEN] = {0};
    inet_ntop(AF_INET, &sa->sin_addr, host, sizeof host);
    return std::string(host) + ":" + std::to_string(ntohs(sa->sin_port));
  }
  return "?";
}

}  // namespace net
}  // namespace wireframe
