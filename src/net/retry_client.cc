#include "net/retry_client.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

namespace wireframe {
namespace net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RetryingClient::RetryingClient(std::string address, ClientOptions options,
                               RetryPolicy policy)
    : address_(std::move(address)), options_(std::move(options)),
      policy_(std::move(policy)),
      rng_(policy_.seed * 0x9e3779b97f4a7c15ULL + 1) {}

RetryingClient::Budget RetryingClient::NewBudget() const {
  Budget budget;
  budget.attempts_left = std::max(1, policy_.max_attempts);
  budget.deadline_ms =
      policy_.retry_budget_seconds > 0
          ? NowMs() + static_cast<int64_t>(policy_.retry_budget_seconds *
                                           1000.0)
          : std::numeric_limits<int64_t>::max();
  budget.prev_backoff_ms = std::max(1, policy_.base_backoff_ms);
  return budget;
}

bool RetryingClient::MayRetry(const Budget& budget) const {
  return budget.attempts_left > 0 && NowMs() < budget.deadline_ms;
}

void RetryingClient::Backoff(Budget* budget, int min_sleep_ms) {
  // Decorrelated jitter: draw from [base, prev * multiplier], cap, and
  // remember the draw as the next round's upper-bound seed.
  const int64_t lo = std::max(1, policy_.base_backoff_ms);
  const int64_t hi = std::max(
      lo, static_cast<int64_t>(budget->prev_backoff_ms *
                               std::max(1.0, policy_.multiplier)));
  int64_t sleep = rng_.UniformRange(lo, hi);
  sleep = std::min<int64_t>(sleep, std::max(1, policy_.max_backoff_ms));
  budget->prev_backoff_ms = static_cast<int>(sleep);
  // A server retry-after hint floors the sleep (it may exceed the cap:
  // the server knows its own drain rate better than our policy does).
  sleep = std::max<int64_t>(sleep, min_sleep_ms);
  // Never sleep past the deadline; the loop re-checks it right after.
  if (budget->deadline_ms != std::numeric_limits<int64_t>::max()) {
    sleep = std::min(sleep, std::max<int64_t>(0, budget->deadline_ms -
                                                     NowMs()));
  }
  if (sleep > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep));
    stats_.backoff_ms_total += static_cast<uint64_t>(sleep);
  }
}

bool RetryingClient::RetryableTransport(const Status& status) {
  // Transport-level losses where nothing about the caller's request was
  // wrong: reconnecting gets a fresh, trustworthy stream. kTimedOut
  // here is a client-side io stall (query-level timeouts come back
  // inside a successful REPORT, not as a transport status).
  return status.IsConnectionRefused() || status.IsConnectionReset() ||
         status.IsFrameCorrupt() ||
         status.code() == StatusCode::kIOError || status.IsTimedOut();
}

void RetryingClient::Disconnect() {
  if (client_ != nullptr) {
    client_->socket().Close();
    client_.reset();
  }
}

Status RetryingClient::EnsureConnected(Budget* budget) {
  if (client_ != nullptr) return Status::OK();
  Status last = Status::OK();
  for (;;) {
    if (!MayRetry(*budget)) {
      return Status::RetryExhausted(
          "connect retries exhausted after " +
          std::to_string(policy_.max_attempts - budget->attempts_left) +
          " attempt(s): " + last.message());
    }
    const int attempt = policy_.max_attempts - budget->attempts_left + 1;
    if (connect_hook_) connect_hook_(attempt);
    Result<std::unique_ptr<Client>> connected =
        Client::Connect(address_, options_);
    if (connected.ok()) {
      client_ = std::move(connected).value();
      ++stats_.connects;
      return Status::OK();
    }
    // Only FAILED connects burn an attempt: the fault-free path keeps
    // its full query-attempt budget.
    --budget->attempts_left;
    last = connected.status();
    ++stats_.connect_failures;
    if (!RetryableTransport(last)) return last;
    if (MayRetry(*budget)) Backoff(budget, 0);
  }
}

Result<QueryResult> RetryingClient::Run(const QueryFrame& query,
                                        const Client::BatchHook& hook) {
  Budget budget = NewBudget();
  Status last = Status::OK();
  for (;;) {
    WF_RETURN_NOT_OK(EnsureConnected(&budget));
    // Replay-safety sentinel: counts ROW-BATCH frames handed to the
    // caller. Wrapped around the user hook so delivery is observed
    // even when the caller passed none.
    uint64_t delivered_batches = 0;
    const Client::BatchHook counting =
        [&](const RowBatchFrame& batch) {
          ++delivered_batches;
          if (hook) hook(batch);
        };
    --budget.attempts_left;
    ++stats_.query_attempts;
    Result<QueryResult> result = client_->Run(query, counting);
    if (result.ok()) {
      const runtime::QueryReport& report = result->report;
      if (policy_.retry_rejections &&
          report.status.code() == StatusCode::kOverloaded) {
        // Brownout shed: nothing executed, so a rerun is always safe.
        // The server's retry-after hint floors the backoff.
        last = report.status;
        if (!MayRetry(budget)) break;
        ++stats_.rejection_retries;
        Backoff(&budget, static_cast<int>(report.retry_after_ms));
        continue;
      }
      return result;
    }
    last = result.status();
    if (!RetryableTransport(last)) return last;
    Disconnect();
    if (delivered_batches > 0) {
      // Retrying now could hand the caller duplicate rows through the
      // hook — surface the break as typed, let the caller decide.
      return Status::StreamBroken(
          "result stream broken after " +
          std::to_string(delivered_batches) +
          " delivered batch(es): " + last.message());
    }
    if (!MayRetry(budget)) break;
    ++stats_.transport_retries;
    Backoff(&budget, 0);
  }
  return Status::RetryExhausted(
      "retries exhausted after " +
      std::to_string(policy_.max_attempts - budget.attempts_left) +
      " attempt(s): " + last.message());
}

Status RetryingClient::Ping() {
  Budget budget = NewBudget();
  Status last = Status::OK();
  for (;;) {
    WF_RETURN_NOT_OK(EnsureConnected(&budget));
    --budget.attempts_left;
    last = client_->Ping();
    if (last.ok() || !RetryableTransport(last)) return last;
    Disconnect();
    if (!MayRetry(budget)) {
      return Status::RetryExhausted(
          "ping retries exhausted after " +
          std::to_string(policy_.max_attempts - budget.attempts_left) +
          " attempt(s): " + last.message());
    }
    Backoff(&budget, 0);
  }
}

Result<StatusFrame> RetryingClient::QueryStatus() {
  Budget budget = NewBudget();
  Status last = Status::OK();
  for (;;) {
    WF_RETURN_NOT_OK(EnsureConnected(&budget));
    --budget.attempts_left;
    Result<StatusFrame> status = client_->QueryStatus();
    if (status.ok() || !RetryableTransport(status.status())) {
      return status;
    }
    last = status.status();
    Disconnect();
    if (!MayRetry(budget)) {
      return Status::RetryExhausted(
          "status retries exhausted after " +
          std::to_string(policy_.max_attempts - budget.attempts_left) +
          " attempt(s): " + last.message());
    }
    Backoff(&budget, 0);
  }
}

Status RetryingClient::Goodbye() {
  if (client_ == nullptr) return Status::OK();
  const Status status = client_->Goodbye();
  client_.reset();
  return status;
}

}  // namespace net
}  // namespace wireframe
