#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/interrupt.h"

namespace wireframe {
namespace net {

namespace {

/// Poll cadence of a reader thread while a query is in flight: how fast
/// CANCEL frames, disconnects, and server drains are noticed.
constexpr int kPumpSliceMs = 10;
/// Poll cadence of an idle reader (between queries) and the acceptor.
constexpr int kIdleSliceMs = 50;
/// Wait slice of a suspended sink or a control-frame push: short enough
/// that cancel/deadline probes stay responsive while the send buffer is
/// full.
constexpr auto kPushSlice = std::chrono::milliseconds(2);

bool IsMalformed(const Status& status) {
  return status.IsInvalidArgument() || status.IsParseError() ||
         status.IsFrameCorrupt();
}

}  // namespace

/// One live connection. The reader thread owns the protocol state
/// machine; the writer thread drains the send queue; engine pool threads
/// reach the queue through the query's StreamSink. Queue state and stats
/// are guarded by `mu`; `abort` is the one-way kill switch every
/// blocking wait polls.
struct SocketServer::Connection {
  uint64_t id = 0;
  Socket sock;
  std::string service_class;  // from HELLO, verbatim
  std::atomic<bool> abort{false};
  /// Client sent GOODBYE mid-query (the reader finishes the query's
  /// REPORT first, then answers GOODBYE — drain ordering contract).
  bool client_goodbye = false;

  std::mutex mu;
  std::condition_variable can_push;
  std::condition_variable can_pop;
  std::deque<std::string> queue;  // encoded frames, FIFO
  uint64_t queue_bytes = 0;
  /// No more pushes; the writer exits once the queue is empty, which is
  /// what makes GOODBYE the last frame out.
  bool closing = false;
  runtime::ConnectionStats stats;

  std::thread reader;
  std::thread writer;
  std::atomic<bool> finished{false};
};

/// The per-query result sink: batches rows into ROW-BATCH frames and
/// pushes them into the connection's bounded send queue. When the queue
/// is full it suspends in kPushSlice waits, probing the same
/// cancel/deadline pair the engine's own loops probe (InterruptProbe) —
/// so a slow reader throttles exactly its own query: the engine blocks
/// inside Emit on this query's driver thread, while every other query
/// keeps its own driver and the pool's morsel interleaving.
class SocketServer::StreamSink : public Sink {
 public:
  StreamSink(const SocketServerOptions& options, Connection* conn,
             double timeout_seconds)
      : options_(options), conn_(conn),
        timeout_seconds_(timeout_seconds) {}

  bool Emit(const std::vector<NodeId>& binding) override {
    if (!stream_status_.ok()) return false;  // sticky after any failure
    if (width_ == 0) {
      width_ = static_cast<uint32_t>(binding.size());
      // Set the width immediately: batch_.rows() divides by it, and the
      // flush-at-batch_rows_ check below depends on a real row count.
      batch_.width = width_;
      const uint64_t row_bytes =
          std::max<uint64_t>(1, width_ * sizeof(NodeId));
      // One encoded frame must fit in half the send buffer (strict
      // high-water bound) and under the frame cap.
      const uint64_t half_buffer =
          options_.send_buffer_bytes / 2 > 16
              ? options_.send_buffer_bytes / 2 - 16
              : 1;
      const uint64_t frame_cap = options_.max_frame_bytes > 8
                                     ? options_.max_frame_bytes - 8
                                     : 1;
      uint64_t rows = options_.rows_per_batch;
      rows = std::min(rows, half_buffer / row_bytes);
      rows = std::min(rows, frame_cap / row_bytes);
      batch_rows_ = std::max<uint64_t>(1, rows);
      // The stream budget starts at the first row, not at admission: a
      // suspended stream still times out, just measured from here.
      probe_ = InterruptProbe(timeout_seconds_ > 0
                                  ? Deadline::AfterSeconds(timeout_seconds_)
                                  : Deadline(),
                              &cancel_);
    }
    batch_.data.insert(batch_.data.end(), binding.begin(), binding.end());
    ++emitted_;
    if (batch_.rows() + 1 > batch_rows_) return FlushBatch();
    return true;
  }

  uint64_t count() const override { return emitted_; }

  /// Flushes the partial tail batch. Call after the session finished
  /// (no Emit can be in flight).
  void Finish() {
    if (stream_status_.ok() && !batch_.data.empty()) FlushBatch();
  }

  /// Reader thread: unstick a suspended Emit (CANCEL frame, GOODBYE,
  /// server drain). Pairs with QuerySession::Cancel.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  /// OK while the stream is healthy; kTimedOut / kCancelled when a
  /// suspension probe fired; kIOError when the connection died under
  /// the stream. The server folds this into the REPORT outcome (the
  /// engine itself sees a declined sink and reports a clean stop).
  const Status& stream_status() const { return stream_status_; }

 private:
  bool FlushBatch() {
    batch_.width = width_;
    std::string frame;
    AppendFrame(FrameType::kRowBatch, EncodeRowBatch(batch_), &frame);
    batch_.data.clear();
    return Push(std::move(frame));
  }

  /// Back-pressured enqueue; on refusal records why in stream_status_.
  bool Push(std::string frame) {
    std::unique_lock<std::mutex> lock(conn_->mu);
    bool stalled = false;
    for (;;) {
      if (conn_->abort.load(std::memory_order_relaxed)) {
        stream_status_ =
            Status::IOError("connection aborted mid-stream");
        return false;
      }
      if (conn_->closing) {
        stream_status_ = Status::Cancelled("connection closing");
        return false;
      }
      Status probed = probe_.CheckNow(
          "result stream suspended past the query budget");
      if (!probed.ok()) {
        stream_status_ = probed;
        return false;
      }
      if (conn_->queue.empty() ||
          conn_->queue_bytes + frame.size() <=
              options_.send_buffer_bytes) {
        break;
      }
      if (!stalled) {
        stalled = true;
        ++conn_->stats.send_stalls;
      }
      conn_->can_push.wait_for(lock, kPushSlice);
    }
    conn_->queue_bytes += frame.size();
    conn_->stats.buffer_bytes = conn_->queue_bytes;
    conn_->stats.buffer_high_water =
        std::max(conn_->stats.buffer_high_water, conn_->queue_bytes);
    conn_->queue.push_back(std::move(frame));
    conn_->can_pop.notify_one();
    return true;
  }

  const SocketServerOptions& options_;
  Connection* conn_;
  const double timeout_seconds_;
  uint32_t width_ = 0;
  uint64_t batch_rows_ = 1;
  RowBatchFrame batch_;
  uint64_t emitted_ = 0;
  std::atomic<bool> cancel_{false};
  InterruptProbe probe_;
  Status stream_status_;
};

SocketServer::SocketServer(runtime::Server* server,
                           SocketServerOptions options)
    : server_(server), options_(std::move(options)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  WF_ASSIGN_OR_RETURN(address_, SocketAddress::Parse(options_.listen));
  WF_ASSIGN_OR_RETURN(listener_,
                      Socket::Listen(address_, options_.backlog));
  if (!address_.is_unix && address_.port == 0) {
    WF_ASSIGN_OR_RETURN(address_.port, listener_.BoundPort());
  }
  started_ = true;
  acceptor_ = std::thread(&SocketServer::AcceptLoop, this);
  return Status::OK();
}

void SocketServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  // Readers notice stopping_ within one poll slice, cancel their
  // in-flight query, flush the queue, and send GOODBYE last.
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

runtime::RuntimeStats SocketServer::stats() const {
  runtime::RuntimeStats stats = server_->runtime().stats();
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.net_malformed_frames =
      malformed_frames_.load(std::memory_order_relaxed);
  stats.net_aborted_streams =
      aborted_streams_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& conn : conns_) {
    if (conn->finished.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    stats.connections.push_back(conn->stats);
  }
  stats.connections_active =
      static_cast<uint32_t>(stats.connections.size());
  return stats;
}

void SocketServer::AcceptLoop() {
  for (;;) {
    Result<Socket> client = listener_.Accept(kIdleSliceMs, &stopping_);
    {
      // Reap finished connections so a long-lived server does not
      // accumulate joined-out thread objects.
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->finished.load(std::memory_order_acquire)) {
          if ((*it)->reader.joinable()) (*it)->reader.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!client.ok()) {
      if (client.status().IsCancelled()) break;  // Stop()
      continue;  // accept timeout slice or transient error
    }
    auto conn = std::make_shared<Connection>();
    conn->id = next_connection_id_.fetch_add(1);
    conn->sock = std::move(client).value();
    if (options_.kernel_send_buffer_bytes > 0) {
      // Best effort: a failed shrink costs back-pressure precision,
      // not correctness.
      (void)conn->sock.SetSendBufferBytes(
          options_.kernel_send_buffer_bytes);
    }
    conn->stats.id = conn->id;
    conn->stats.peer = PeerName(conn->sock.fd());
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conn->writer = std::thread(&SocketServer::WriterLoop, this, conn);
    conn->reader = std::thread(&SocketServer::ReaderLoop, this, conn);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void SocketServer::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  ServeSession(*conn);
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closing = true;
  }
  conn->can_pop.notify_all();
  if (conn->writer.joinable()) conn->writer.join();
  conn->sock.Close();
  conn->finished.store(true, std::memory_order_release);
}

void SocketServer::WriterLoop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    std::string frame;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->can_pop.wait(lock, [&] {
        return conn->abort.load(std::memory_order_relaxed) ||
               conn->closing || !conn->queue.empty();
      });
      if (conn->abort.load(std::memory_order_relaxed)) break;
      if (conn->queue.empty()) {
        if (conn->closing) break;
        continue;
      }
      frame = std::move(conn->queue.front());
      conn->queue.pop_front();
      // queue_bytes stays charged until the write finished: the bound
      // covers bytes queued OR in flight, so back-pressure cannot hide
      // a frame the kernel has not accepted yet.
    }
    const Status written = conn->sock.WriteAll(
        frame.data(), frame.size(), options_.write_timeout_ms,
        &conn->abort);
    if (!written.ok()) {
      // Dead or stuck client: cut the connection. The reader notices
      // the abort within one poll slice and cancels any in-flight
      // query.
      Abort(*conn);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->queue_bytes -= frame.size();
      conn->stats.buffer_bytes = conn->queue_bytes;
      conn->stats.bytes_out += frame.size();
      ++conn->stats.frames_out;
    }
    conn->can_push.notify_all();
  }
  conn->can_push.notify_all();
}

void SocketServer::Abort(Connection& conn) {
  conn.abort.store(true, std::memory_order_relaxed);
  conn.can_push.notify_all();
  conn.can_pop.notify_all();
}

Result<Frame> SocketServer::ReadFrame(Connection& conn, int timeout_ms) {
  // First-byte wait in short slices: server drain and aborts must be
  // noticed long before the (deliberately generous) idle timeout.
  Stopwatch idle;
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("server draining");
    }
    const Status ready = conn.sock.WaitReadable(kIdleSliceMs, &conn.abort);
    if (ready.ok()) break;
    if (!ready.IsTimedOut()) return ready;  // cancelled (abort) / io
    if (timeout_ms >= 0 && idle.ElapsedMillis() >= timeout_ms) {
      return Status::TimedOut("no frame within the read timeout");
    }
  }
  char header_bytes[kFrameHeaderBytes];
  WF_RETURN_NOT_OK(conn.sock.ReadExact(header_bytes, kFrameHeaderBytes,
                                       options_.read_timeout_ms,
                                       &conn.abort));
  Result<FrameHeader> decoded =
      DecodeFrameHeader(header_bytes, options_.max_frame_bytes);
  if (!decoded.ok()) {
    // Our own client never emits an undecodable header, so one on the
    // wire means the byte stream itself went bad (damaged or lost
    // bytes) — typed, mirroring the client's mid-session rule.
    return Status::FrameCorrupt("undecodable frame header (" +
                                decoded.status().message() + ")");
  }
  const FrameHeader header = decoded.value();
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_length);
  if (header.payload_length > 0) {
    WF_RETURN_NOT_OK(conn.sock.ReadExact(frame.payload.data(),
                                         header.payload_length,
                                         options_.read_timeout_ms,
                                         &conn.abort));
  }
  // A bad checksum is typed kFrameCorrupt: a flipped bit in a QUERY
  // must surface as corruption, never run as a different valid query.
  WF_RETURN_NOT_OK(VerifyFramePayload(header, frame.payload));
  std::lock_guard<std::mutex> lock(conn.mu);
  conn.stats.bytes_in += kFrameHeaderBytes + header.payload_length;
  ++conn.stats.frames_in;
  return frame;
}

std::string SocketServer::EncodeStatusSnapshot() const {
  const runtime::RuntimeStats rs = server_->runtime().stats();
  const runtime::AdmissionControl& adm =
      server_->runtime().options().admission;
  StatusFrame status;
  for (const runtime::TenantStats& ts : rs.tenants) {
    status.running += ts.running;
    status.queued += ts.queued;
    TenantLoadFrame tenant;
    tenant.name = ts.tenant;
    tenant.weight = ts.weight;
    tenant.running = ts.running;
    tenant.queued = ts.queued;
    tenant.completed = ts.completed;
    tenant.shed = ts.rejected;
    tenant.brownout_rejected = ts.brownout_rejected;
    status.tenants.push_back(std::move(tenant));
  }
  status.max_inflight = adm.max_inflight;
  status.max_queued = adm.max_queued;
  status.overloaded = server_->runtime().overloaded() ? 1 : 0;
  status.retry_after_ms =
      status.overloaded != 0 ? adm.brownout_retry_after_ms : 0;
  return EncodeStatus(status);
}

bool SocketServer::PushFrame(Connection& conn, FrameType type,
                             const std::string& payload) {
  std::string frame;
  AppendFrame(type, payload, &frame);
  std::unique_lock<std::mutex> lock(conn.mu);
  for (;;) {
    if (conn.abort.load(std::memory_order_relaxed)) return false;
    if (conn.closing) return false;
    if (conn.queue.empty() ||
        conn.queue_bytes + frame.size() <= options_.send_buffer_bytes) {
      break;
    }
    // Bounded overall: a client that neither reads nor dies trips the
    // writer's write timeout, which aborts the connection and pops us
    // out of this wait.
    conn.can_push.wait_for(lock, kPushSlice);
  }
  conn.queue_bytes += frame.size();
  conn.stats.buffer_bytes = conn.queue_bytes;
  conn.stats.buffer_high_water =
      std::max(conn.stats.buffer_high_water, conn.queue_bytes);
  conn.queue.push_back(std::move(frame));
  conn.can_pop.notify_one();
  return true;
}

void SocketServer::ServeSession(Connection& conn) {
  const auto reply_error = [&](const Status& status) {
    PushFrame(conn, FrameType::kError,
              EncodeError({status.code(), status.message()}));
  };

  // Handshake: HELLO must be the first frame, within its own (tight)
  // timeout so half-open connections cannot pin a session slot.
  Result<Frame> first = ReadFrame(conn, options_.hello_timeout_ms);
  if (!first.ok()) {
    if (IsMalformed(first.status())) {
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      reply_error(first.status());
    } else if (first.status().IsTimedOut()) {
      reply_error(Status::TimedOut("expected HELLO within the handshake "
                                   "timeout"));
    }
    return;  // disconnect / drain: close silently
  }
  if (first->type != FrameType::kHello) {
    reply_error(Status::InvalidArgument(
        std::string("expected HELLO as the first frame, got ") +
        FrameTypeName(first->type)));
    return;
  }
  Result<HelloFrame> hello = DecodeHello(first->payload);
  if (!hello.ok()) {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    reply_error(hello.status());
    return;
  }
  conn.service_class = hello->service_class;
  const std::string resolved = server_->runtime().ResolveServiceClassName(
      conn.service_class.empty()
          ? server_->options().default_service_class
          : conn.service_class);
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    conn.stats.service_class = resolved;
  }
  HelloAckFrame ack;
  ack.max_frame_bytes = options_.max_frame_bytes;
  ack.rows_per_batch = options_.rows_per_batch;
  ack.resolved_service_class = resolved;
  if (!PushFrame(conn, FrameType::kHelloAck, EncodeHelloAck(ack))) return;

  bool want_goodbye = false;
  for (bool session_open = true; session_open;) {
    if (stopping_.load(std::memory_order_relaxed)) {
      want_goodbye = true;
      break;
    }
    if (conn.abort.load(std::memory_order_relaxed)) break;
    Result<Frame> frame = ReadFrame(conn, options_.idle_timeout_ms);
    if (!frame.ok()) {
      const Status& status = frame.status();
      if (IsMalformed(status)) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        reply_error(status);
      } else if (status.IsTimedOut()) {
        reply_error(Status::TimedOut(
            "idle connection reaped: no frame (not even a PING) within "
            "the idle timeout"));
      } else if (status.IsCancelled() &&
                 stopping_.load(std::memory_order_relaxed)) {
        want_goodbye = true;
      }
      break;
    }
    switch (frame->type) {
      case FrameType::kQuery: {
        Result<QueryFrame> query = DecodeQuery(frame->payload);
        if (!query.ok()) {
          malformed_frames_.fetch_add(1, std::memory_order_relaxed);
          reply_error(query.status());
          session_open = false;
          break;
        }
        session_open = ServeQuery(conn, *query);
        break;
      }
      case FrameType::kCancel:
        break;  // nothing in flight; harmless
      case FrameType::kPing:
        if (!PushFrame(conn, FrameType::kPong, std::string())) {
          session_open = false;
        }
        break;
      case FrameType::kStatus:
        if (!PushFrame(conn, FrameType::kStatus, EncodeStatusSnapshot())) {
          session_open = false;
        }
        break;
      case FrameType::kGoodbye:
        want_goodbye = true;
        session_open = false;
        break;
      case FrameType::kHello:
        reply_error(Status::InvalidArgument("duplicate HELLO"));
        session_open = false;
        break;
      default:
        reply_error(Status::InvalidArgument(
            std::string("unexpected ") + FrameTypeName(frame->type) +
            " frame from client"));
        session_open = false;
        break;
    }
  }
  if (conn.client_goodbye ||
      (stopping_.load(std::memory_order_relaxed) &&
       !conn.abort.load(std::memory_order_relaxed))) {
    want_goodbye = true;
  }
  if (want_goodbye && !conn.abort.load(std::memory_order_relaxed)) {
    PushFrame(conn, FrameType::kGoodbye, std::string());
  }
}

bool SocketServer::ServeQuery(Connection& conn, const QueryFrame& query) {
  uint64_t sequence;
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    sequence = conn.stats.queries++;
  }
  // The sink's suspension budget mirrors the query's execution budget
  // (request override, else server default, else admission default).
  double effective_timeout = query.timeout_seconds;
  if (effective_timeout < 0) {
    effective_timeout = server_->options().timeout_seconds;
  }
  if (effective_timeout < 0) {
    effective_timeout = server_->runtime()
                            .options()
                            .admission.default_timeout_seconds;
  }
  StreamSink sink(options_, &conn, effective_timeout);
  runtime::SubmitRejection rejection;
  Result<std::shared_ptr<runtime::QuerySession>> submitted =
      server_->Submit(query.sparql, &sink, conn.service_class,
                      query.timeout_seconds, query.row_budget, &rejection);
  if (!submitted.ok()) {
    // Rejected before a session existed (parse error or admission
    // shed): same report shape RunBatch produces — resolved class,
    // admitted=false, the status saying why. A brownout rejection also
    // carries its retry-after hint so well-behaved clients back off by
    // at least that much.
    runtime::QueryReport report;
    report.index = sequence;
    report.admitted = false;
    report.outcome = runtime::QueryOutcome::kFailed;
    report.status = submitted.status();
    report.retry_after_ms = rejection.retry_after_ms;
    report.service_class = server_->runtime().ResolveServiceClassName(
        conn.service_class.empty()
            ? server_->options().default_service_class
            : conn.service_class);
    return PushFrame(conn, FrameType::kReport, EncodeReport(report));
  }
  std::shared_ptr<runtime::QuerySession> session =
      std::move(submitted).value();

  // Pump the socket while the query runs: CANCEL, GOODBYE, disconnect,
  // and server drain all need to reach a running (or suspended) query.
  bool disconnected = false;
  while (!session->done()) {
    if (stopping_.load(std::memory_order_relaxed)) {
      session->Cancel();
      sink.RequestCancel();
    }
    if (conn.abort.load(std::memory_order_relaxed)) {
      session->Cancel();
      sink.RequestCancel();
      disconnected = true;
      session->Wait();
      break;
    }
    // Completion wakes the cv wait immediately; the socket then gets
    // one short poll so CANCEL/GOODBYE/EOF are still noticed within a
    // pump slice — without the query's result latency paying the slice.
    if (session->WaitFor(kPumpSliceMs / 1000.0)) break;
    const Status ready = conn.sock.WaitReadable(1, &conn.abort);
    if (ready.IsTimedOut()) continue;
    if (!ready.ok()) {
      session->Cancel();
      sink.RequestCancel();
      disconnected = true;
      session->Wait();
      break;
    }
    Result<Frame> frame = ReadFrame(conn, options_.read_timeout_ms);
    if (!frame.ok()) {
      session->Cancel();
      sink.RequestCancel();
      if (IsMalformed(frame.status())) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        PushFrame(conn, FrameType::kError,
                  EncodeError({frame.status().code(),
                               frame.status().message()}));
        session->Wait();
        return false;  // framing broken: ERROR flushed, then close
      }
      disconnected = true;
      session->Wait();
      break;
    }
    switch (frame->type) {
      case FrameType::kCancel:
        session->Cancel();
        sink.RequestCancel();
        break;
      case FrameType::kGoodbye:
        conn.client_goodbye = true;
        session->Cancel();
        sink.RequestCancel();
        break;
      case FrameType::kPing:
        // Answered even mid-query: PONG rides the same ordered stream,
        // so a client waiting out a long query sees proof of life.
        PushFrame(conn, FrameType::kPong, std::string());
        break;
      case FrameType::kStatus:
        PushFrame(conn, FrameType::kStatus, EncodeStatusSnapshot());
        break;
      default:
        PushFrame(
            conn, FrameType::kError,
            EncodeError({StatusCode::kInvalidArgument,
                         std::string("unexpected ") +
                             FrameTypeName(frame->type) +
                             " while a query is in flight (one query "
                             "at a time per connection)"}));
        break;
    }
  }
  session->Wait();

  if (disconnected) {
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      ++conn.stats.aborted_streams;
    }
    aborted_streams_.fetch_add(1, std::memory_order_relaxed);
    Abort(conn);
    return false;
  }

  sink.Finish();
  if (!sink.stream_status().ok() &&
      sink.stream_status().code() == StatusCode::kIOError) {
    // The connection died under the stream; no REPORT can be delivered.
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      ++conn.stats.aborted_streams;
    }
    aborted_streams_.fetch_add(1, std::memory_order_relaxed);
    Abort(conn);
    return false;
  }

  runtime::QueryReport report;
  report.index = sequence;
  report.admitted = true;
  report.service_class = session->service_class();
  report.outcome = session->outcome();
  report.status = session->status();
  report.stats = session->stats();
  report.cache_hit = session->cache_hit();
  report.has_aggregate = session->has_aggregate();
  report.rows = session->rows_emitted();
  report.queue_seconds = session->queue_seconds();
  report.run_seconds = session->run_seconds();
  // A sink that refused rows reads as a clean stop to the engine; the
  // suspension record says what actually happened.
  if (report.outcome == runtime::QueryOutcome::kCompleted &&
      !sink.stream_status().ok()) {
    report.status = sink.stream_status();
    report.outcome = sink.stream_status().IsTimedOut()
                         ? runtime::QueryOutcome::kTimedOut
                         : runtime::QueryOutcome::kCancelled;
  }

  if (report.has_aggregate) {
    const std::string aggregate = EncodeAggregate(session->aggregate());
    if (aggregate.size() > options_.max_frame_bytes) {
      report.has_aggregate = false;
      PushFrame(conn, FrameType::kError,
                EncodeError({StatusCode::kResourceExhausted,
                             "aggregate result exceeds the frame size "
                             "limit"}));
    } else if (!PushFrame(conn, FrameType::kAggregate, aggregate)) {
      return false;
    }
  }
  if (!PushFrame(conn, FrameType::kReport, EncodeReport(report))) {
    return false;
  }
  return !conn.client_goodbye;
}

}  // namespace net
}  // namespace wireframe
