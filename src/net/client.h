#ifndef WIREFRAME_NET_CLIENT_H_
#define WIREFRAME_NET_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace wireframe {
namespace net {

struct ClientOptions {
  /// Service class carried in HELLO; every query of the connection runs
  /// as this tenant (empty = server default).
  std::string service_class;
  int connect_timeout_ms = 10'000;
  /// Bound on each blocking read/write. Generous by default: a frame
  /// arrives only when the server has something to say, and a long
  /// query says nothing for a while.
  int io_timeout_ms = 600'000;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// > 0 shrinks SO_RCVBUF before the handshake. The slow-reader tests
  /// use this: without it, loopback hides back-pressure inside a
  /// multi-megabyte kernel buffer.
  int recv_buffer_bytes = 0;
};

/// One streamed query's results, collected.
struct QueryResult {
  uint32_t width = 0;
  std::vector<std::vector<NodeId>> rows;
  /// Terminal REPORT, with the AGGREGATE frame (if any) folded back into
  /// report.aggregate.
  runtime::QueryReport report;
};

/// Blocking client of net::SocketServer — used by tests, bench_net, the
/// CI e2e driver, and `wf_shell --connect`. Not thread-safe; one query
/// in flight at a time (the protocol's rule, too).
class Client {
 public:
  /// Called on every ROW-BATCH as it is read off the wire, before the
  /// rows are appended to the result. Tests use it to pace reads (slow
  /// reader) or to fire a CANCEL mid-stream.
  using BatchHook = std::function<void(const RowBatchFrame& batch)>;

  /// Connects and completes the HELLO handshake.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& address, ClientOptions options = {});

  /// What the server granted in HELLO-ACK.
  const HelloAckFrame& hello() const { return hello_; }

  /// Runs one query to its REPORT. Protocol ERRORs and transport
  /// failures surface as the error status; query-level failures (parse,
  /// admission, timeout) come back as a successful Result whose
  /// report.status / report.outcome say what happened — mirroring
  /// RunBatch.
  Result<QueryResult> Run(const QueryFrame& query,
                          const BatchHook& hook = nullptr);
  Result<QueryResult> Run(const std::string& sparql,
                          const BatchHook& hook = nullptr) {
    QueryFrame query;
    query.sparql = sparql;
    return Run(query, hook);
  }

  /// Requests cancellation of the in-flight query (legal to call from a
  /// BatchHook: the socket is full-duplex). The query still terminates
  /// with a REPORT — outcome kCancelled if the cancel won the race.
  Status SendCancel();

  /// Drain contract: sends GOODBYE, then reads until the server's
  /// GOODBYE — every frame the server queued before it arrives first.
  /// Closes the socket either way.
  Status Goodbye();

  /// Escape hatch for tests: the raw socket (e.g. Reset() simulates a
  /// client killed mid-stream).
  Socket& socket() { return sock_; }

 private:
  Client(Socket sock, ClientOptions options)
      : sock_(std::move(sock)), options_(std::move(options)) {}

  Status SendFrame(FrameType type, const std::string& payload);
  Result<Frame> ReadFrame();

  Socket sock_;
  ClientOptions options_;
  HelloAckFrame hello_;
};

}  // namespace net
}  // namespace wireframe

#endif  // WIREFRAME_NET_CLIENT_H_
