#ifndef WIREFRAME_NET_CLIENT_H_
#define WIREFRAME_NET_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace wireframe {
namespace net {

struct ClientOptions {
  /// Service class carried in HELLO; every query of the connection runs
  /// as this tenant (empty = server default).
  std::string service_class;
  int connect_timeout_ms = 10'000;
  /// Bound on each blocking read/write. Generous by default: a frame
  /// arrives only when the server has something to say, and a long
  /// query says nothing for a while.
  int io_timeout_ms = 600'000;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// > 0 shrinks SO_RCVBUF before the handshake. The slow-reader tests
  /// use this: without it, loopback hides back-pressure inside a
  /// multi-megabyte kernel buffer.
  int recv_buffer_bytes = 0;
  /// Liveness: while waiting for frames, send a PING every
  /// `ping_interval_ms`; if NO frame at all (PONG included) arrives for
  /// `ping_timeout_ms`, the peer is declared unresponsive with a typed
  /// kConnectionReset — a half-dead server can no longer hold a client
  /// for the full io_timeout_ms. 0 disables pinging (the io_timeout_ms
  /// bound still applies).
  int ping_interval_ms = 5'000;
  int ping_timeout_ms = 15'000;
  /// > 0 bounds one WHOLE Run() call, wall-clock, returning a typed
  /// kTimedOut when exceeded. Liveness pings alone cannot provide this
  /// bound: a peer that lost our QUERY (e.g. the bytes vanished in
  /// transit) still answers every PING, so both sides idle happily
  /// forever — PONG proves the peer is alive, not that the query is
  /// progressing. 0 keeps Run unbounded (io_timeout_ms still bounds
  /// each read).
  int query_timeout_ms = 0;
  /// Optional deterministic fault plane (borrowed; see
  /// net/fault_injection.h) armed on the connection's socket BEFORE the
  /// handshake, so scheduled faults hit from the first HELLO byte.
  FaultInjector* fault_injector = nullptr;
};

/// One streamed query's results, collected.
struct QueryResult {
  uint32_t width = 0;
  std::vector<std::vector<NodeId>> rows;
  /// Terminal REPORT, with the AGGREGATE frame (if any) folded back into
  /// report.aggregate.
  runtime::QueryReport report;
};

/// Blocking client of net::SocketServer — used by tests, bench_net, the
/// CI e2e driver, and `wf_shell --connect`. Not thread-safe; one query
/// in flight at a time (the protocol's rule, too).
class Client {
 public:
  /// Called on every ROW-BATCH as it is read off the wire, before the
  /// rows are appended to the result. Tests use it to pace reads (slow
  /// reader) or to fire a CANCEL mid-stream.
  using BatchHook = std::function<void(const RowBatchFrame& batch)>;

  /// Connects and completes the HELLO handshake.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& address, ClientOptions options = {});

  /// What the server granted in HELLO-ACK.
  const HelloAckFrame& hello() const { return hello_; }

  /// Runs one query to its REPORT. Protocol ERRORs and transport
  /// failures surface as the error status; query-level failures (parse,
  /// admission, timeout) come back as a successful Result whose
  /// report.status / report.outcome say what happened — mirroring
  /// RunBatch.
  Result<QueryResult> Run(const QueryFrame& query,
                          const BatchHook& hook = nullptr);
  Result<QueryResult> Run(const std::string& sparql,
                          const BatchHook& hook = nullptr) {
    QueryFrame query;
    query.sparql = sparql;
    return Run(query, hook);
  }

  /// Requests cancellation of the in-flight query (legal to call from a
  /// BatchHook: the socket is full-duplex). The query still terminates
  /// with a REPORT — outcome kCancelled if the cancel won the race.
  Status SendCancel();

  /// Explicit liveness probe: sends PING and blocks until the matching
  /// PONG (or a transport error). Legal between queries only.
  Status Ping();

  /// Asks the server for its load snapshot (queue depths, per-tenant
  /// load, overload flag). Legal between queries only.
  Result<StatusFrame> QueryStatus();

  /// Drain contract: sends GOODBYE, then reads until the server's
  /// GOODBYE — every frame the server queued before it arrives first.
  /// Closes the socket either way.
  Status Goodbye();

  /// Escape hatch for tests: the raw socket (e.g. Reset() simulates a
  /// client killed mid-stream).
  Socket& socket() { return sock_; }

 private:
  Client(Socket sock, ClientOptions options)
      : sock_(std::move(sock)), options_(std::move(options)) {}

  Status SendFrame(FrameType type, const std::string& payload);
  Result<Frame> ReadFrame();
  /// ReadFrame plus the ping-while-waiting liveness policy (see
  /// ClientOptions::ping_interval_ms).
  Result<Frame> ReadFrameWithLiveness();

  Socket sock_;
  ClientOptions options_;
  HelloAckFrame hello_;
};

}  // namespace net
}  // namespace wireframe

#endif  // WIREFRAME_NET_CLIENT_H_
