#include "net/client.h"

#include <utility>

namespace wireframe {
namespace net {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& address,
                                               ClientOptions options) {
  WF_ASSIGN_OR_RETURN(SocketAddress parsed, SocketAddress::Parse(address));
  WF_ASSIGN_OR_RETURN(Socket sock,
                      Socket::Connect(parsed, options.connect_timeout_ms,
                                      options.recv_buffer_bytes));
  std::unique_ptr<Client> client(
      new Client(std::move(sock), std::move(options)));
  HelloFrame hello;
  hello.service_class = client->options_.service_class;
  WF_RETURN_NOT_OK(
      client->SendFrame(FrameType::kHello, EncodeHello(hello)));
  WF_ASSIGN_OR_RETURN(Frame ack, client->ReadFrame());
  if (ack.type == FrameType::kError) {
    WF_ASSIGN_OR_RETURN(ErrorFrame error, DecodeError(ack.payload));
    return error.ToStatus();
  }
  if (ack.type != FrameType::kHelloAck) {
    return Status::Internal(
        std::string("expected HELLO-ACK, got ") + FrameTypeName(ack.type));
  }
  WF_ASSIGN_OR_RETURN(client->hello_, DecodeHelloAck(ack.payload));
  return client;
}

Status Client::SendFrame(FrameType type, const std::string& payload) {
  std::string frame;
  AppendFrame(type, payload, &frame);
  return sock_.WriteAll(frame.data(), frame.size(),
                        options_.io_timeout_ms);
}

Result<Frame> Client::ReadFrame() {
  char header_bytes[kFrameHeaderBytes];
  WF_RETURN_NOT_OK(sock_.ReadExact(header_bytes, kFrameHeaderBytes,
                                   options_.io_timeout_ms));
  WF_ASSIGN_OR_RETURN(
      FrameHeader header,
      DecodeFrameHeader(header_bytes, options_.max_frame_bytes));
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_length);
  if (header.payload_length > 0) {
    WF_RETURN_NOT_OK(sock_.ReadExact(frame.payload.data(),
                                     header.payload_length,
                                     options_.io_timeout_ms));
  }
  return frame;
}

Result<QueryResult> Client::Run(const QueryFrame& query,
                                const BatchHook& hook) {
  WF_RETURN_NOT_OK(SendFrame(FrameType::kQuery, EncodeQuery(query)));
  QueryResult result;
  bool have_aggregate = false;
  AggregateResult aggregate;
  for (;;) {
    WF_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    switch (frame.type) {
      case FrameType::kRowBatch: {
        WF_ASSIGN_OR_RETURN(RowBatchFrame batch,
                            DecodeRowBatch(frame.payload));
        if (hook) hook(batch);
        if (result.width == 0) result.width = batch.width;
        if (batch.width != result.width) {
          return Status::Internal("row batch width changed mid-stream");
        }
        const size_t rows = batch.rows();
        for (size_t r = 0; r < rows; ++r) {
          result.rows.emplace_back(
              batch.data.begin() + r * batch.width,
              batch.data.begin() + (r + 1) * batch.width);
        }
        break;
      }
      case FrameType::kAggregate: {
        WF_ASSIGN_OR_RETURN(aggregate, DecodeAggregate(frame.payload));
        have_aggregate = true;
        break;
      }
      case FrameType::kReport: {
        WF_ASSIGN_OR_RETURN(result.report, DecodeReport(frame.payload));
        if (have_aggregate) result.report.aggregate = aggregate;
        return result;
      }
      case FrameType::kError: {
        WF_ASSIGN_OR_RETURN(ErrorFrame error, DecodeError(frame.payload));
        return error.ToStatus();
      }
      default:
        return Status::Internal(std::string("unexpected ") +
                                FrameTypeName(frame.type) +
                                " frame in a query stream");
    }
  }
}

Status Client::SendCancel() {
  return SendFrame(FrameType::kCancel, std::string());
}

Status Client::Goodbye() {
  Status status = SendFrame(FrameType::kGoodbye, std::string());
  while (status.ok()) {
    Result<Frame> frame = ReadFrame();
    if (!frame.ok()) {
      status = frame.status();
      break;
    }
    if (frame->type == FrameType::kGoodbye) break;
    // Anything still queued ahead of the GOODBYE drains through here.
  }
  sock_.Close();
  return status;
}

}  // namespace net
}  // namespace wireframe
