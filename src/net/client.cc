#include "net/client.h"

#include <chrono>
#include <utility>

#include "net/fault_injection.h"

namespace wireframe {
namespace net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Poll slice while waiting for frames with liveness enabled: short
/// enough that ping deadlines are honored promptly.
constexpr int kLivenessSliceMs = 50;

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& address,
                                               ClientOptions options) {
  WF_ASSIGN_OR_RETURN(SocketAddress parsed, SocketAddress::Parse(address));
  WF_ASSIGN_OR_RETURN(Socket sock,
                      Socket::Connect(parsed, options.connect_timeout_ms,
                                      options.recv_buffer_bytes));
  if (options.fault_injector != nullptr) {
    sock.ArmFaults(options.fault_injector);
  }
  std::unique_ptr<Client> client(
      new Client(std::move(sock), std::move(options)));
  HelloFrame hello;
  hello.service_class = client->options_.service_class;
  WF_RETURN_NOT_OK(
      client->SendFrame(FrameType::kHello, EncodeHello(hello)));
  WF_ASSIGN_OR_RETURN(Frame ack, client->ReadFrame());
  if (ack.type == FrameType::kError) {
    WF_ASSIGN_OR_RETURN(ErrorFrame error, DecodeError(ack.payload));
    return error.ToStatus();
  }
  if (ack.type != FrameType::kHelloAck) {
    return Status::Internal(
        std::string("expected HELLO-ACK, got ") + FrameTypeName(ack.type));
  }
  WF_ASSIGN_OR_RETURN(client->hello_, DecodeHelloAck(ack.payload));
  return client;
}

Status Client::SendFrame(FrameType type, const std::string& payload) {
  std::string frame;
  AppendFrame(type, payload, &frame);
  return sock_.WriteAll(frame.data(), frame.size(),
                        options_.io_timeout_ms);
}

Result<Frame> Client::ReadFrame() {
  char header_bytes[kFrameHeaderBytes];
  WF_RETURN_NOT_OK(sock_.ReadExact(header_bytes, kFrameHeaderBytes,
                                   options_.io_timeout_ms));
  Result<FrameHeader> header =
      DecodeFrameHeader(header_bytes, options_.max_frame_bytes);
  if (!header.ok()) {
    // The handshake already proved the server speaks our protocol, so
    // an undecodable header mid-session means the byte stream itself
    // went bad (lost or damaged bytes) — typed so retry policy treats
    // it as a broken stream, not a caller bug.
    return Status::FrameCorrupt("undecodable frame header (" +
                                header.status().message() + ")");
  }
  Frame frame;
  frame.type = header->type;
  frame.payload.resize(header->payload_length);
  if (header->payload_length > 0) {
    WF_RETURN_NOT_OK(sock_.ReadExact(frame.payload.data(),
                                     header->payload_length,
                                     options_.io_timeout_ms));
  }
  WF_RETURN_NOT_OK(VerifyFramePayload(*header, frame.payload));
  return frame;
}

Result<Frame> Client::ReadFrameWithLiveness() {
  if (options_.ping_interval_ms <= 0) return ReadFrame();
  const int64_t start = NowMs();
  int64_t last_ping = start;
  for (;;) {
    Status ready = sock_.WaitReadable(kLivenessSliceMs);
    if (ready.ok()) return ReadFrame();
    if (!ready.IsTimedOut()) return ready;
    const int64_t now = NowMs();
    if (options_.io_timeout_ms >= 0 &&
        now - start >= options_.io_timeout_ms) {
      return Status::TimedOut("read timed out");
    }
    // Any frame at all resets the clock (this function returns on each
    // one), so "silent past the ping timeout despite pings" can only
    // mean a dead or wedged peer — a live server answers PING with
    // PONG in stream order even while a query runs.
    if (options_.ping_timeout_ms > 0 &&
        now - start >= options_.ping_timeout_ms) {
      return Status::ConnectionReset(
          "peer unresponsive: no frame for " +
          std::to_string(now - start) + " ms despite pings");
    }
    if (now - last_ping >= options_.ping_interval_ms) {
      WF_RETURN_NOT_OK(SendFrame(FrameType::kPing, std::string()));
      last_ping = now;
    }
  }
}

Result<QueryResult> Client::Run(const QueryFrame& query,
                                const BatchHook& hook) {
  WF_RETURN_NOT_OK(SendFrame(FrameType::kQuery, EncodeQuery(query)));
  QueryResult result;
  bool have_aggregate = false;
  AggregateResult aggregate;
  // Overall deadline for the whole query, PONG traffic included — see
  // ClientOptions::query_timeout_ms for why liveness alone cannot bound
  // this loop.
  const int64_t deadline =
      options_.query_timeout_ms > 0
          ? NowMs() + options_.query_timeout_ms
          : -1;
  for (;;) {
    if (deadline >= 0 && NowMs() >= deadline) {
      return Status::TimedOut(
          "query deadline exceeded after " +
          std::to_string(options_.query_timeout_ms) +
          " ms (peer alive but the result stream is not progressing)");
    }
    WF_ASSIGN_OR_RETURN(Frame frame, ReadFrameWithLiveness());
    switch (frame.type) {
      case FrameType::kPong:
        break;  // liveness answer — not part of the query stream
      case FrameType::kRowBatch: {
        WF_ASSIGN_OR_RETURN(RowBatchFrame batch,
                            DecodeRowBatch(frame.payload));
        if (hook) hook(batch);
        if (result.width == 0) result.width = batch.width;
        if (batch.width != result.width) {
          return Status::Internal("row batch width changed mid-stream");
        }
        const size_t rows = batch.rows();
        for (size_t r = 0; r < rows; ++r) {
          result.rows.emplace_back(
              batch.data.begin() + r * batch.width,
              batch.data.begin() + (r + 1) * batch.width);
        }
        break;
      }
      case FrameType::kAggregate: {
        WF_ASSIGN_OR_RETURN(aggregate, DecodeAggregate(frame.payload));
        have_aggregate = true;
        break;
      }
      case FrameType::kReport: {
        WF_ASSIGN_OR_RETURN(result.report, DecodeReport(frame.payload));
        if (have_aggregate) result.report.aggregate = aggregate;
        return result;
      }
      case FrameType::kError: {
        WF_ASSIGN_OR_RETURN(ErrorFrame error, DecodeError(frame.payload));
        return error.ToStatus();
      }
      default:
        return Status::Internal(std::string("unexpected ") +
                                FrameTypeName(frame.type) +
                                " frame in a query stream");
    }
  }
}

Status Client::SendCancel() {
  return SendFrame(FrameType::kCancel, std::string());
}

Status Client::Ping() {
  WF_RETURN_NOT_OK(SendFrame(FrameType::kPing, std::string()));
  for (;;) {
    WF_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == FrameType::kPong) return Status::OK();
    if (frame.type == FrameType::kError) {
      WF_ASSIGN_OR_RETURN(ErrorFrame error, DecodeError(frame.payload));
      return error.ToStatus();
    }
    // Anything else still in flight drains past the probe.
  }
}

Result<StatusFrame> Client::QueryStatus() {
  WF_RETURN_NOT_OK(SendFrame(FrameType::kStatus, std::string()));
  for (;;) {
    WF_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == FrameType::kStatus) {
      return DecodeStatus(frame.payload);
    }
    if (frame.type == FrameType::kError) {
      WF_ASSIGN_OR_RETURN(ErrorFrame error, DecodeError(frame.payload));
      return error.ToStatus();
    }
    if (frame.type == FrameType::kPong) continue;
    return Status::Internal(std::string("unexpected ") +
                            FrameTypeName(frame.type) +
                            " frame while awaiting STATUS");
  }
}

Status Client::Goodbye() {
  Status status = SendFrame(FrameType::kGoodbye, std::string());
  while (status.ok()) {
    Result<Frame> frame = ReadFrame();
    if (!frame.ok()) {
      status = frame.status();
      break;
    }
    if (frame->type == FrameType::kGoodbye) break;
    // Anything still queued ahead of the GOODBYE drains through here.
  }
  sock_.Close();
  return status;
}

}  // namespace net
}  // namespace wireframe
