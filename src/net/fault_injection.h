#ifndef WIREFRAME_NET_FAULT_INJECTION_H_
#define WIREFRAME_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace wireframe {
namespace net {

/// Deterministic fault plane for the Socket read/write path. A test (or
/// the chaos driver) builds a FaultSchedule — an explicit list of
/// actions pinned to byte or frame offsets of one direction of the
/// stream — arms a FaultInjector on a Socket, and every fault then
/// fires at exactly the scheduled offset, every run, regardless of
/// timing. Compiled in always; a socket with no injector armed pays one
/// null check per I/O attempt.
///
/// The injector is stateful across reconnects on purpose: stream
/// offsets continue monotonically over the connections it is armed on,
/// so a finite schedule eventually drains and a retrying client's later
/// attempts run fault-free — which is what lets the chaos driver assert
/// that every query ultimately completes or fails typed.

/// Which half of the stream an action applies to, from the armed
/// socket's point of view.
enum class FaultDirection : uint8_t { kRead = 0, kWrite = 1 };

enum class FaultOp : uint8_t {
  /// Stall the stream once for `delay_ms` at the trigger offset.
  kDelay,
  /// XOR `bit_mask` into the byte at the trigger offset (write-side
  /// flips damage the bytes on the wire, not the caller's buffer).
  kBitFlip,
  /// Cap every I/O attempt at 1 byte for `span_bytes` bytes past the
  /// trigger — emulates a full kernel buffer (short writes) or
  /// trickling reads (headers split across reads).
  kShortIo,
  /// For `delay_ms` past the trigger: writes are swallowed (reported
  /// as sent, never hitting the wire), reads deliver nothing. Lost
  /// bytes leave the peer mid-frame — exactly the half-dead-peer case
  /// liveness timeouts exist for.
  kBlackhole,
  /// Orderly local close at the trigger offset (peer sees FIN, the
  /// local caller a typed kConnectionReset).
  kClose,
  /// Hard RST at the trigger offset (SO_LINGER 0).
  kReset,
};

const char* FaultOpName(FaultOp op);

/// One scheduled fault. Triggers resolve against the direction's
/// cumulative stream offset: either an absolute byte offset
/// (`at_frame < 0`) or `at_byte` bytes past the first byte of frame
/// number `at_frame` (0-based, counted per direction by parsing the
/// 8-byte headers as bytes flow). Every action fires at most once.
struct FaultAction {
  FaultOp op = FaultOp::kDelay;
  FaultDirection direction = FaultDirection::kWrite;
  int64_t at_frame = -1;
  uint64_t at_byte = 0;
  /// kDelay: stall length. kBlackhole: how long the hole lasts.
  uint32_t delay_ms = 0;
  /// kBitFlip: mask XORed into the triggered byte (must be nonzero).
  uint8_t bit_mask = 0x01;
  /// kShortIo: how many bytes move one-at-a-time.
  uint64_t span_bytes = 64;
};

/// A whole schedule, plus the deterministic generator the chaos driver
/// sweeps.
struct FaultSchedule {
  std::vector<FaultAction> actions;

  /// Generates a small adversarial schedule from `seed` alone: 1–4
  /// actions across both directions, offsets inside the first few
  /// frames of a session (where the handshake and the first query
  /// live), every op represented across the sweep. Identical seeds
  /// yield identical schedules on every platform.
  static FaultSchedule Random(uint64_t seed);

  std::string ToString() const;
};

/// Counts of faults actually fired, for asserting a schedule drained.
struct FaultCounters {
  uint64_t delays = 0;
  uint64_t bit_flips = 0;
  uint64_t short_io_spans = 0;
  uint64_t blackholes = 0;
  uint64_t closes = 0;
  uint64_t resets = 0;

  uint64_t total() const {
    return delays + bit_flips + short_io_spans + blackholes + closes +
           resets;
  }
};

/// What Socket must do to the connection after a non-OK BeforeIo.
enum class FaultTermination : uint8_t { kNone, kClose, kReset };

/// Plan for one I/O attempt, filled by BeforeIo.
struct FaultIoPlan {
  /// Cap on the attempt's byte count. 0 = make no syscall this round;
  /// the socket burns one poll slice (deadline/abort still honored)
  /// and asks again.
  size_t max_bytes = 0;
  /// Write only: report `max_bytes` as sent without touching the fd.
  bool swallow = false;
  /// Non-kNone iff BeforeIo returned non-OK: how to tear down the fd.
  FaultTermination terminate = FaultTermination::kNone;
};

/// The armed fault plane. Thread-safe (a connection's reader and writer
/// may run on different threads); one injector may outlive and span
/// many sockets, and usually should — see the class comment above.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule);

  /// Consulted before every raw read(2)/send(2) attempt of up to `n`
  /// bytes. May sleep (kDelay), cap or suppress the attempt
  /// (kShortIo/kBlackhole), or order the connection torn down —
  /// returning the typed status the caller surfaces and setting
  /// plan->terminate.
  Status BeforeIo(FaultDirection direction, size_t n, FaultIoPlan* plan);

  /// Write staging: when a pending bit flip lands inside the next `n`
  /// bytes, copies them into *scratch, applies the flip there, and
  /// returns true (the socket sends the scratch bytes; the caller's
  /// buffer stays intact). The flip is not marked fired until AfterIo
  /// reports the flipped byte actually moved — a short write before
  /// the flip offset re-stages it on the next attempt.
  bool StageWrite(const char* data, size_t n, std::string* scratch);

  /// Reports `n` bytes moved by a successful attempt. Read-side bit
  /// flips mutate `data` in place (pass the buffer just filled); the
  /// stream tracker parses frame headers from the moved bytes and
  /// advances the direction's offsets, resolving frame-pinned
  /// triggers. For swallowed writes pass the bytes that would have
  /// been sent.
  void AfterIo(FaultDirection direction, char* data, size_t n);

  /// True once every scheduled action fired.
  bool Drained() const;
  FaultCounters counters() const;

 private:
  struct PendingAction {
    FaultAction action;
    /// Absolute byte offset once resolved (at_frame pins resolve when
    /// their frame starts).
    uint64_t offset = 0;
    bool resolved = false;
    bool fired = false;
    /// kShortIo: span entered (counted once even if the stream ends
    /// before the span does).
    bool engaged = false;
    /// kBlackhole: steady-clock ms when the hole opened (0 = not yet).
    int64_t opened_ms = 0;
  };

  /// Per-direction stream tracker: cumulative offset plus a header
  /// parser so frame-pinned triggers resolve to byte offsets.
  struct StreamState {
    uint64_t offset = 0;
    uint64_t frame_index = 0;
    size_t header_have = 0;
    unsigned char header[8] = {0};
    uint64_t payload_left = 0;
    bool in_payload = false;
  };

  void ResolveFramePinsLocked(FaultDirection direction);
  void AdvanceLocked(FaultDirection direction, const char* data, size_t n);

  mutable std::mutex mu_;
  std::vector<PendingAction> pending_;
  StreamState streams_[2];
  FaultCounters counters_;
};

}  // namespace net
}  // namespace wireframe

#endif  // WIREFRAME_NET_FAULT_INJECTION_H_
