#ifndef WIREFRAME_NET_RETRY_CLIENT_H_
#define WIREFRAME_NET_RETRY_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/client.h"
#include "util/random.h"

namespace wireframe {
namespace net {

/// Retry/backoff policy of a RetryingClient. All sleeps are computed
/// with decorrelated jitter: each backoff is drawn uniformly from
/// [base_backoff_ms, previous * multiplier], capped at max_backoff_ms —
/// herds of clients that failed together spread out instead of
/// reconnecting in lockstep.
struct RetryPolicy {
  /// Attempts per logical operation: each QUERY send and each FAILED
  /// connect burns one (a successful connect is free, so the fault-free
  /// path keeps its full budget).
  int max_attempts = 5;
  int base_backoff_ms = 50;
  int max_backoff_ms = 2'000;
  double multiplier = 3.0;
  /// Wall-clock budget across ALL attempts of one operation, sleeps
  /// included. <= 0 means unlimited (attempts alone bound the loop).
  /// Backoff sleeps are clipped to the remaining budget, and a retry
  /// never starts once the budget is spent — the deadline wins over
  /// the attempt count.
  double retry_budget_seconds = 30.0;
  /// Seed of the jitter stream; fixed seeds make retry schedules
  /// reproducible in tests and in the chaos driver.
  uint64_t seed = 1;
  /// Also retry admission rejections (typed kOverloaded in the REPORT),
  /// honoring the server's retry-after hint as a floor under the
  /// backoff. Rejections never execute, so this is always replay-safe.
  bool retry_rejections = true;
};

/// Counters of one RetryingClient, cumulative across operations.
struct RetryStats {
  uint64_t connects = 0;          ///< successful (re)connections
  uint64_t connect_failures = 0;  ///< failed connection attempts
  uint64_t query_attempts = 0;    ///< QUERY frames actually sent
  uint64_t transport_retries = 0; ///< replay-safe reruns after transport loss
  uint64_t rejection_retries = 0; ///< reruns after typed kOverloaded
  uint64_t backoff_ms_total = 0;  ///< total time slept backing off
};

/// A Client wrapper that survives the network: it reconnects, backs off
/// with decorrelated jitter, retries within a deadline budget, and —
/// crucially — never silently duplicates results.
///
/// Replay-safety contract: a query is retried transparently ONLY while
/// nothing of its result stream has been delivered (no ROW-BATCH and no
/// AGGREGATE seen). Once the first result frame was handed to the
/// caller's BatchHook, a transport failure surfaces as a typed
/// kStreamBroken — re-running could deliver duplicate rows, so the
/// caller must decide. When every retry avenue is spent the last error
/// is wrapped in a typed kRetryExhausted. Both are errors a driver can
/// branch on; neither ever yields a wrong or duplicated row.
///
/// Not thread-safe, mirroring Client: one operation at a time.
class RetryingClient {
 public:
  /// Called just before each (re)connection attempt with the 1-based
  /// attempt number. Tests use it to re-arm fault schedules or flip
  /// a server back on.
  using ConnectHook = std::function<void(int attempt)>;

  RetryingClient(std::string address, ClientOptions options = {},
                 RetryPolicy policy = {});

  /// Runs one query with retries per the policy. Same result contract
  /// as Client::Run, plus the typed kRetryExhausted / kStreamBroken
  /// failure modes described above.
  Result<QueryResult> Run(const QueryFrame& query,
                          const Client::BatchHook& hook = nullptr);
  Result<QueryResult> Run(const std::string& sparql,
                          const Client::BatchHook& hook = nullptr) {
    QueryFrame query;
    query.sparql = sparql;
    return Run(query, hook);
  }

  /// Liveness probe with reconnect-and-retry (idempotent, so always
  /// replay-safe).
  Status Ping();

  /// Load snapshot with reconnect-and-retry (read-only, replay-safe).
  Result<StatusFrame> QueryStatus();

  /// Graceful close of the current connection, if any.
  Status Goodbye();

  const RetryStats& stats() const { return stats_; }

  /// Currently-connected client, or nullptr between connections.
  Client* client() { return client_.get(); }

  void set_connect_hook(ConnectHook hook) {
    connect_hook_ = std::move(hook);
  }

 private:
  /// One retry loop's bookkeeping: attempt counter, deadline, and the
  /// decorrelated-jitter state.
  struct Budget {
    int attempts_left;
    int64_t deadline_ms;  ///< absolute; INT64_MAX when unlimited
    int prev_backoff_ms;
  };

  Budget NewBudget() const;
  /// True if another attempt may start; false when attempts or the
  /// deadline ran out.
  bool MayRetry(const Budget& budget) const;
  /// Sleeps the next decorrelated-jitter backoff (floored at
  /// `min_sleep_ms`, clipped to the remaining budget) and charges it.
  void Backoff(Budget* budget, int min_sleep_ms);
  /// Connects if not connected, burning attempts/backoff on failure.
  /// Returns the last connect error when the budget ran out.
  Status EnsureConnected(Budget* budget);
  void Disconnect();
  static bool RetryableTransport(const Status& status);

  const std::string address_;
  const ClientOptions options_;
  const RetryPolicy policy_;
  std::unique_ptr<Client> client_;
  Rng rng_;
  RetryStats stats_;
  ConnectHook connect_hook_;
};

}  // namespace net
}  // namespace wireframe

#endif  // WIREFRAME_NET_RETRY_CLIENT_H_
