// Reproduces Fig. 3: the two-phase cost-based optimizer on the snowflake
// CQ_S. Shows the Edgifier's DP-chosen answer-graph plan and the greedy
// embedding plan, then quantifies plan quality: the DP plan's *actual*
// edge walks versus random and adversarial (reversed-DP) orders.
//
// Usage: bench_fig3_planner [--scale=0.2] [--orders=40]
//                            [--query=0 (Fig.3) | 1..10 (Table 1 row)]

#include <algorithm>
#include <iostream>

#include "catalog/catalog.h"
#include "catalog/estimator.h"
#include "core/generator.h"
#include "core/wireframe.h"
#include "datagen/yago_like.h"
#include "planner/cost_model.h"
#include "planner/edgifier.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

/// Executes one order and reports real edge walks + time.
struct RealCost {
  uint64_t walks = 0;
  double seconds = 0;
  bool ok = false;
};

RealCost Execute(const Database& db, const Catalog& catalog,
                 const QueryGraph& q, const std::vector<uint32_t>& order) {
  AgPlan plan;
  plan.edge_order = order;
  AgGenerator gen(db, catalog);
  GeneratorOptions options;
  options.deadline = Deadline::AfterSeconds(30);
  Stopwatch watch;
  auto result = gen.Generate(q, plan, options);
  RealCost cost;
  if (!result.ok()) return cost;
  cost.ok = true;
  cost.walks = result->edge_walks;
  cost.seconds = watch.ElapsedSeconds();
  return cost;
}

std::vector<uint32_t> RandomConnectedOrder(const QueryGraph& q, Rng& rng) {
  std::vector<uint32_t> order;
  std::vector<bool> used(q.NumEdges(), false);
  std::vector<bool> bound(q.NumVars(), false);
  while (order.size() < q.NumEdges()) {
    std::vector<uint32_t> frontier;
    for (uint32_t e = 0; e < q.NumEdges(); ++e) {
      if (used[e]) continue;
      if (order.empty() || bound[q.Edge(e).src] || bound[q.Edge(e).dst]) {
        frontier.push_back(e);
      }
    }
    uint32_t pick = frontier[rng.Uniform(frontier.size())];
    used[pick] = true;
    bound[q.Edge(pick).src] = true;
    bound[q.Edge(pick).dst] = true;
    order.push_back(pick);
  }
  return order;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.2);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int num_orders = static_cast<int>(flags.GetInt("orders", 40));
  // Default: the exact CQ_S of Fig. 3; --query=1..10 picks a Table-1 row.
  const int64_t query_flag = flags.GetInt("query", 0);

  std::cout << "=== Fig. 3: the two-phase cost-based optimizer ===\n\n";
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "data: " << db.store().NumTriples() << " triples\n\n";

  const std::string text = query_flag >= 1
                               ? Table1Queries()[query_flag - 1]
                               : Fig3Query();
  auto q = SparqlParser::ParseAndBind(text, db);
  if (!q.ok()) {
    std::cerr << q.status().ToString() << "\n";
    return 1;
  }

  // Show both plans, as the figure does.
  WireframeEngine engine;
  auto explain = engine.Explain(db, catalog, *q);
  if (explain.ok()) std::cout << *explain << "\n";
  {
    CountingSink sink;
    EngineOptions options;
    options.deadline = Deadline::AfterSeconds(60);
    auto detail = engine.RunDetailed(db, catalog, *q, options, &sink);
    if (detail.ok()) {
      auto label = [&db](LabelId p) { return db.labels().Term(p); };
      std::cout << detail->embedding_plan.ToString(*q, label) << "\n";
    }
  }

  // Plan quality: DP order vs random connected orders (real walks).
  CardinalityEstimator est(catalog);
  Edgifier edgifier(*q, est);
  auto dp_plan = edgifier.PlanEdgeOrder();
  if (!dp_plan.ok()) return 1;
  RealCost dp = Execute(db, catalog, *q, dp_plan->edge_order);

  Rng rng(1234);
  uint64_t best_random = UINT64_MAX, worst_random = 0, sum_random = 0;
  int ok_orders = 0;
  for (int i = 0; i < num_orders; ++i) {
    RealCost c =
        Execute(db, catalog, *q, RandomConnectedOrder(*q, rng));
    if (!c.ok) continue;
    ++ok_orders;
    best_random = std::min(best_random, c.walks);
    worst_random = std::max(worst_random, c.walks);
    sum_random += c.walks;
  }

  TablePrinter table({"order", "edge walks", "vs DP"});
  auto ratio = [&](uint64_t walks) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx",
                  dp.walks ? static_cast<double>(walks) / dp.walks : 0.0);
    return std::string(buf);
  };
  table.AddRow({"Edgifier DP", TablePrinter::FormatCount(dp.walks), "1.00x"});
  if (ok_orders > 0) {
    table.AddRow({"best random", TablePrinter::FormatCount(best_random),
                  ratio(best_random)});
    table.AddRow({"mean random",
                  TablePrinter::FormatCount(sum_random / ok_orders),
                  ratio(sum_random / ok_orders)});
    table.AddRow({"worst random", TablePrinter::FormatCount(worst_random),
                  ratio(worst_random)});
  }
  table.Print(std::cout);
  std::cout << "(" << ok_orders << "/" << num_orders
            << " random orders finished; DP plan executed in "
            << TablePrinter::FormatSeconds(dp.seconds) << " s)\n";
  return 0;
}
