// Reproduces the paper's mining statistics (§5: "we mined 218,014
// snowflake-shaped queries and 18,743 diamond-shaped queries"): runs the
// query miner over the YAGO-like graph's full 104-predicate vocabulary
// with the same template shapes and reports mined counts, pruning power,
// and throughput. Counts differ (synthetic data, capped search); the
// shape — 2-grams pruning the overwhelming majority of the space — holds.
//
// Usage: bench_miner [--scale=0.05] [--max_queries=20000]
//                    [--max_candidates=5000000] [--timeout=30]

#include <iostream>

#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "query/miner.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.05);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "=== Query mining over 104 predicates (paper §5) ===\n";
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "data: " << db.store().NumTriples() << " triples, "
            << db.store().NumPredicates() << " predicates\n\n";

  MinerOptions options;
  options.max_queries =
      static_cast<uint64_t>(flags.GetInt("max_queries", 20000));
  options.max_candidates =
      static_cast<uint64_t>(flags.GetInt("max_candidates", 5'000'000));
  options.deadline =
      Deadline::AfterSeconds(flags.GetDouble("timeout", 30.0));

  TablePrinter table({"template", "mined", "candidates", "2-gram pruned",
                      "rejected empty", "exhausted", "ms"});
  QueryMiner miner(db, catalog);
  for (const QueryTemplate& tmpl :
       {ChainTemplate(2), ChainTemplate(3), DiamondTemplate(),
        SnowflakeTemplate()}) {
    MinerReport report;
    Stopwatch watch;
    auto mined = miner.Mine(tmpl, options, &report);
    if (!mined.ok()) {
      std::cerr << tmpl.name << ": " << mined.status().ToString() << "\n";
      continue;
    }
    table.AddRow({tmpl.name, TablePrinter::FormatCount(report.mined),
                  TablePrinter::FormatCount(report.candidates),
                  TablePrinter::FormatCount(report.pruned_by_2gram),
                  TablePrinter::FormatCount(report.rejected_empty),
                  report.exhausted ? "yes" : "no",
                  std::to_string(watch.ElapsedMillis())});
  }
  table.Print(std::cout);
  return 0;
}
