// Reproduces Table 1, rows 6-10 (diamond-shaped cyclic CQ_D queries):
// query execution time per system plus |AG| (not necessarily ideal — the
// paper's cyclic runs use node burnback only) and |Embeddings|.
//
// Paper reference (YAGO2s, 300 s timeout):
//   row  6: PG *  WF 103  VT *    MD *  NJ *    |AG| 833,355  |E| 58,785,214
//   row  7: PG *  WF 118  VT 38   MD *  NJ 127  |AG|  22,555  |E|    100,160
//   row  8: PG *  WF  20  VT 110  MD *  NJ 213  |AG|  68,720  |E|    106,214
//   row  9: PG *  WF  18  VT 22   MD *  NJ 139  |AG|  87,459  |E|     22,216
//   row 10: PG *  WF  53  VT 126  MD *  NJ *    |AG|  52,975  |E|     99,891
// Shape target: WF completes everything; materializing engines (PG, MD)
// blow up on the cyclic many-many joins; pipelined engines (VT, NJ) are
// competitive on selective diamonds only.
//
// WF here runs the paper's experimental configuration: triangulated, node
// burnback, NO edge burnback (see bench_ablation_burnback for the rest).
//
// Usage: bench_table1_diamond [--scale=2.0] [--timeout=20] [--reps=2]
//                             [--threads=1] [--json=<path>]

#include <iostream>

#include "benchlib/harness.h"
#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 2.0);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "=== Table 1 (rows 6-10): diamond-shaped cyclic queries ===\n";
  Stopwatch watch;
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "data: " << db.store().NumTriples() << " triples (scale "
            << config.scale << ", built in " << watch.ElapsedMillis()
            << " ms)\n\n";

  BenchConfig bench;
  bench.timeout_seconds = flags.GetDouble("timeout", 20.0);
  bench.repetitions = static_cast<int>(flags.GetInt("reps", 2));
  bench.verbose = flags.GetBool("verbose", false);
  bench.threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  JsonResultWriter json;
  if (flags.Has("json")) bench.json = &json;
  Table1Harness harness(db, catalog, bench);

  std::vector<BenchQuery> queries;
  std::vector<std::string> texts = Table1Queries();
  for (size_t i = 5; i < 10; ++i) {
    auto q = SparqlParser::ParseAndBind(texts[i], db);
    if (!q.ok()) {
      std::cerr << "query " << i << ": " << q.status().ToString() << "\n";
      return 1;
    }
    queries.push_back(
        {std::to_string(i + 1), Table1RowLabel(i), std::move(q).value()});
  }
  harness.RunSuite(queries, std::cout);
  std::cout << "('*' = timed out after " << bench.timeout_seconds
            << " s or exceeded the intermediate-result memory budget)\n";
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
