// Component microbenchmarks (google-benchmark): the storage, catalog,
// burnback, and defactorization primitives whose costs the paper's edge
// walk model abstracts.

#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "core/answer_graph.h"
#include "core/burnback.h"
#include "core/defactorizer.h"
#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "query/templates.h"
#include "util/random.h"

namespace wireframe {
namespace {

const Database& SharedYago() {
  static Database* db = [] {
    YagoLikeConfig config;
    config.scale = 0.05;
    config.seed = 42;
    return new Database(MakeYagoLike(config));
  }();
  return *db;
}

const Catalog& SharedCatalog() {
  static Catalog* cat = new Catalog(Catalog::Build(SharedYago().store()));
  return *cat;
}

void BM_TripleStoreBuild(benchmark::State& state) {
  const uint32_t nodes = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    Database db = MakeRandomGraph(nodes, 8, nodes * 8ull, 7);
    benchmark::DoNotOptimize(db.store().NumTriples());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_TripleStoreBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_OutNeighborLookup(benchmark::State& state) {
  const Database& db = SharedYago();
  const LabelId p = *db.LabelOf("actedIn");
  auto subjects = db.store().DistinctSubjects(p);
  size_t i = 0;
  for (auto _ : state) {
    auto span = db.store().OutNeighbors(p, subjects[i++ % subjects.size()]);
    benchmark::DoNotOptimize(span.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OutNeighborLookup);

void BM_HasTriple(benchmark::State& state) {
  const Database& db = SharedYago();
  const LabelId p = *db.LabelOf("linksTo");
  auto subjects = db.store().DistinctSubjects(p);
  size_t i = 0;
  for (auto _ : state) {
    const NodeId s = subjects[i++ % subjects.size()];
    benchmark::DoNotOptimize(
        db.store().HasTriple(s, p, static_cast<NodeId>(i % 1000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HasTriple);

void BM_CatalogBuild(benchmark::State& state) {
  const Database& db = SharedYago();
  for (auto _ : state) {
    Catalog cat = Catalog::Build(db.store());
    benchmark::DoNotOptimize(cat.num_labels());
  }
  state.SetItemsProcessed(state.iterations() * db.store().NumTriples());
}
BENCHMARK(BM_CatalogBuild)->Unit(benchmark::kMillisecond);

void BM_PairSetAdd(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    PairSet set;
    for (uint32_t i = 0; i < n; ++i) {
      set.Add(i % 997, i % 1009);
    }
    benchmark::DoNotOptimize(set.Size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PairSetAdd)->Arg(1000)->Arg(100000);

void BM_BurnbackCascade(benchmark::State& state) {
  const uint32_t fan = static_cast<uint32_t>(state.range(0));
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  for (auto _ : state) {
    state.PauseTiming();
    AnswerGraph ag(q);
    for (uint32_t i = 0; i < fan; ++i) ag.Set(0).Add(i, 1000000);
    ag.MarkMaterialized(0);
    ag.Set(1).Add(1000000, 2000000);
    ag.MarkMaterialized(1);
    state.ResumeTiming();
    Burnback bb(&ag);
    bb.KillNode(q.FindVar("v2"), 2000000);
    benchmark::DoNotOptimize(bb.pairs_erased());
  }
  state.SetItemsProcessed(state.iterations() * (fan + 2));
}
BENCHMARK(BM_BurnbackCascade)->Arg(100)->Arg(10000);

void BM_Defactorize(benchmark::State& state) {
  const uint32_t fan = static_cast<uint32_t>(state.range(0));
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  AnswerGraph ag(q);
  for (uint32_t i = 0; i < fan; ++i) ag.Set(0).Add(i, 1000000);
  for (uint32_t i = 0; i < fan; ++i) ag.Set(1).Add(1000000, 2000000 + i);
  ag.MarkMaterialized(0);
  ag.MarkMaterialized(1);
  EmbeddingPlan plan;
  plan.join_order = {0, 1};
  Defactorizer defac(q, ag);
  for (auto _ : state) {
    CountingSink sink;
    auto n = defac.Emit(plan, &sink, DefactorizerOptions{});
    benchmark::DoNotOptimize(n.ok());
  }
  state.SetItemsProcessed(state.iterations() * fan * fan);
}
BENCHMARK(BM_Defactorize)->Arg(32)->Arg(256);

void BM_WireframeEndToEnd(benchmark::State& state) {
  const Database& db = SharedYago();
  const Catalog& cat = SharedCatalog();
  auto q = SparqlParser::ParseAndBind(Table1Queries()[1], db);
  if (!q.ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  WireframeEngine engine;
  for (auto _ : state) {
    CountingSink sink;
    auto stats = engine.Run(db, cat, *q, EngineOptions{}, &sink);
    if (!stats.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_WireframeEndToEnd)->Unit(benchmark::kMillisecond);

void BM_SparqlParse(benchmark::State& state) {
  const std::string text = Table1Queries()[1];
  for (auto _ : state) {
    auto parsed = SparqlParser::Parse(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparqlParse);

}  // namespace
}  // namespace wireframe

BENCHMARK_MAIN();
