// Component microbenchmarks (google-benchmark): the storage, catalog,
// burnback, and defactorization primitives whose costs the paper's edge
// walk model abstracts.

#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "core/answer_graph.h"
#include "core/burnback.h"
#include "core/defactorizer.h"
#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "query/templates.h"
#include "util/csr.h"
#include "util/random.h"
#include "util/span_kernels.h"

namespace wireframe {
namespace {

const Database& SharedYago() {
  static Database* db = [] {
    YagoLikeConfig config;
    config.scale = 0.05;
    config.seed = 42;
    return new Database(MakeYagoLike(config));
  }();
  return *db;
}

const Catalog& SharedCatalog() {
  static Catalog* cat = new Catalog(Catalog::Build(SharedYago().store()));
  return *cat;
}

void BM_TripleStoreBuild(benchmark::State& state) {
  const uint32_t nodes = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    Database db = MakeRandomGraph(nodes, 8, nodes * 8ull, 7);
    benchmark::DoNotOptimize(db.store().NumTriples());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_TripleStoreBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_OutNeighborLookup(benchmark::State& state) {
  const Database& db = SharedYago();
  const LabelId p = *db.LabelOf("actedIn");
  auto subjects = db.store().DistinctSubjects(p);
  size_t i = 0;
  for (auto _ : state) {
    auto span = db.store().OutNeighbors(p, subjects[i++ % subjects.size()]);
    benchmark::DoNotOptimize(span.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OutNeighborLookup);

void BM_HasTriple(benchmark::State& state) {
  const Database& db = SharedYago();
  const LabelId p = *db.LabelOf("linksTo");
  auto subjects = db.store().DistinctSubjects(p);
  size_t i = 0;
  for (auto _ : state) {
    const NodeId s = subjects[i++ % subjects.size()];
    benchmark::DoNotOptimize(
        db.store().HasTriple(s, p, static_cast<NodeId>(i % 1000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HasTriple);

void BM_CatalogBuild(benchmark::State& state) {
  const Database& db = SharedYago();
  for (auto _ : state) {
    Catalog cat = Catalog::Build(db.store());
    benchmark::DoNotOptimize(cat.num_labels());
  }
  state.SetItemsProcessed(state.iterations() * db.store().NumTriples());
}
BENCHMARK(BM_CatalogBuild)->Unit(benchmark::kMillisecond);

void BM_PairSetAdd(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    PairSet set;
    for (uint32_t i = 0; i < n; ++i) {
      set.Add(i % 997, i % 1009);
    }
    benchmark::DoNotOptimize(set.Size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PairSetAdd)->Arg(1000)->Arg(100000);

void BM_BurnbackCascade(benchmark::State& state) {
  const uint32_t fan = static_cast<uint32_t>(state.range(0));
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  for (auto _ : state) {
    state.PauseTiming();
    AnswerGraph ag(q);
    for (uint32_t i = 0; i < fan; ++i) ag.Set(0).Add(i, 1000000);
    ag.MarkMaterialized(0);
    ag.Set(1).Add(1000000, 2000000);
    ag.MarkMaterialized(1);
    state.ResumeTiming();
    Burnback bb(&ag);
    bb.KillNode(q.FindVar("v2"), 2000000);
    benchmark::DoNotOptimize(bb.pairs_erased());
  }
  state.SetItemsProcessed(state.iterations() * (fan + 2));
}
BENCHMARK(BM_BurnbackCascade)->Arg(100)->Arg(10000);

void BM_Defactorize(benchmark::State& state) {
  const uint32_t fan = static_cast<uint32_t>(state.range(0));
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  AnswerGraph ag(q);
  for (uint32_t i = 0; i < fan; ++i) ag.Set(0).Add(i, 1000000);
  for (uint32_t i = 0; i < fan; ++i) ag.Set(1).Add(1000000, 2000000 + i);
  ag.MarkMaterialized(0);
  ag.MarkMaterialized(1);
  EmbeddingPlan plan;
  plan.join_order = {0, 1};
  Defactorizer defac(q, ag);
  for (auto _ : state) {
    CountingSink sink;
    auto n = defac.Emit(plan, &sink, DefactorizerOptions{});
    benchmark::DoNotOptimize(n.ok());
  }
  state.SetItemsProcessed(state.iterations() * fan * fan);
}
BENCHMARK(BM_Defactorize)->Arg(32)->Arg(256);

void BM_WireframeEndToEnd(benchmark::State& state) {
  const Database& db = SharedYago();
  const Catalog& cat = SharedCatalog();
  auto q = SparqlParser::ParseAndBind(Table1Queries()[1], db);
  if (!q.ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  WireframeEngine engine;
  for (auto _ : state) {
    CountingSink sink;
    auto stats = engine.Run(db, cat, *q, EngineOptions{}, &sink);
    if (!stats.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_WireframeEndToEnd)->Unit(benchmark::kMillisecond);

// --- Span kernels (the frozen-CSR hot-loop primitives) ---------------
// Each cell runs twice: dispatch=auto (AVX2 where compiled+supported)
// and dispatch=scalar (forced portable path), so one report shows what
// the SIMD body buys per shape. range(0) is the larger side; range(1)
// the size ratio (1, 2, 4 stay in the merge regime; 10000 crosses the
// galloping threshold and is dispatch-invariant by design).

std::vector<NodeId> RandomSortedIds(Rng& rng, size_t n, uint32_t max_gap) {
  std::vector<NodeId> out;
  out.reserve(n);
  NodeId cur = 0;
  for (size_t i = 0; i < n; ++i) {
    cur += 1 + static_cast<NodeId>(rng.Uniform(max_gap));
    out.push_back(cur);
  }
  return out;
}

void IntersectCell(benchmark::State& state, bool force_scalar) {
  ForceScalarKernels(force_scalar);
  const size_t big = static_cast<size_t>(state.range(0));
  const size_t small = std::max<size_t>(1, big / state.range(1));
  Rng rng(99);
  // Interleave draws from a shared universe so ~half the smaller side
  // hits — the worst case for a branchy scalar merge.
  const std::vector<NodeId> universe = RandomSortedIds(rng, 2 * big, 4);
  std::vector<NodeId> a, b;
  for (size_t i = 0; i < universe.size(); ++i) {
    if (a.size() < big && rng.Bernoulli(0.5)) a.push_back(universe[i]);
    if (b.size() < small && rng.Bernoulli(0.5)) b.push_back(universe[i]);
  }
  std::vector<NodeId> out(std::min(a.size(), b.size()) + kIntersectPad);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectSorted(a, b, out.data()));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
  state.SetLabel(KernelCpuFeaturesMeta());
  ForceScalarKernels(false);
}

void BM_IntersectSortedAuto(benchmark::State& state) {
  IntersectCell(state, /*force_scalar=*/false);
}
void BM_IntersectSortedScalar(benchmark::State& state) {
  IntersectCell(state, /*force_scalar=*/true);
}
BENCHMARK(BM_IntersectSortedAuto)
    ->Args({65536, 1})
    ->Args({65536, 2})
    ->Args({65536, 4})
    ->Args({65536, 10000});
BENCHMARK(BM_IntersectSortedScalar)
    ->Args({65536, 1})
    ->Args({65536, 2})
    ->Args({65536, 4})
    ->Args({65536, 10000});

void ContainsManyCell(benchmark::State& state, bool force_scalar) {
  ForceScalarKernels(force_scalar);
  const size_t nkeys = 4096;
  Rng rng(41);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (size_t k = 0; k < nkeys; ++k) {
    NodeId v = 0;
    const size_t deg = 4 + rng.Uniform(24);
    for (size_t d = 0; d < deg; ++d) {
      v += 1 + static_cast<NodeId>(rng.Uniform(8));
      pairs.emplace_back(static_cast<NodeId>(k), v);
    }
  }
  const Csr csr = Csr::Build(std::move(pairs));
  const size_t nprobes = static_cast<size_t>(state.range(0));
  std::vector<NodeId> keys, vals;
  for (size_t i = 0; i < nprobes; ++i) {
    keys.push_back(static_cast<NodeId>((i * nkeys) / nprobes));
    vals.push_back(static_cast<NodeId>(rng.Uniform(256)));
  }
  std::vector<uint8_t> hits(nprobes);
  for (auto _ : state) {
    csr.ContainsMany(keys, vals, hits.data());
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * nprobes);
  state.SetLabel(KernelCpuFeaturesMeta());
  ForceScalarKernels(false);
}

void BM_CsrContainsManyAuto(benchmark::State& state) {
  ContainsManyCell(state, /*force_scalar=*/false);
}
void BM_CsrContainsManyScalar(benchmark::State& state) {
  ContainsManyCell(state, /*force_scalar=*/true);
}
BENCHMARK(BM_CsrContainsManyAuto)->Arg(65536);
BENCHMARK(BM_CsrContainsManyScalar)->Arg(65536);

void BM_CsrForEachGather(benchmark::State& state) {
  Rng rng(43);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  const size_t nkeys = static_cast<size_t>(state.range(0));
  for (size_t k = 0; k < nkeys; ++k) {
    NodeId v = 0;
    const size_t deg = 2 + rng.Uniform(12);
    for (size_t d = 0; d < deg; ++d) {
      v += 1 + static_cast<NodeId>(rng.Uniform(64));
      pairs.emplace_back(static_cast<NodeId>(k), v);
    }
  }
  const Csr csr = Csr::Build(std::move(pairs));
  for (auto _ : state) {
    uint64_t sum = 0;
    csr.ForEach([&sum](NodeId, NodeId v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * csr.NumEntries());
}
BENCHMARK(BM_CsrForEachGather)->Arg(32768);

void BM_SparqlParse(benchmark::State& state) {
  const std::string text = Table1Queries()[1];
  for (auto _ : state) {
    auto parsed = SparqlParser::Parse(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparqlParse);

}  // namespace
}  // namespace wireframe

BENCHMARK_MAIN();
