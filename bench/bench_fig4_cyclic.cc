// Reproduces Fig. 4: on cyclic CQs, node burnback alone leaves spurious
// edges in the answer graph; triangulation with edge burnback recovers
// the ideal AG. Checks the paper's exact example, then measures AG size
// versus the ideal across the five Table-1 diamonds.
//
// Usage: bench_fig4_cyclic [--scale=0.2] [--timeout=30] [--threads=1]
//                          [--json=<path>]

#include <iostream>

#include "benchlib/json_writer.h"
#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/figures.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace wireframe;

namespace {

struct ModeResult {
  bool ok = false;
  bool timed_out = false;  // timeout or memory-budget abort specifically
  uint64_t ag = 0;
  uint64_t embeddings = 0;
  uint64_t edge_walks = 0;
  double seconds = 0;
};

ModeResult RunMode(const Database& db, const Catalog& catalog,
                   const QueryGraph& q, bool triangulate, bool edge_burnback,
                   double timeout, uint32_t threads) {
  WireframeOptions options;
  options.triangulate = triangulate;
  options.edge_burnback = edge_burnback;
  WireframeEngine engine(options);
  CountingSink sink;
  EngineOptions run;
  run.deadline = Deadline::AfterSeconds(timeout);
  run.threads = threads;
  auto stats = engine.Run(db, catalog, q, run, &sink);
  ModeResult r;
  if (!stats.ok()) {
    r.timed_out = stats.status().IsTimedOut() ||
                  stats.status().code() == StatusCode::kOutOfRange;
    return r;
  }
  r.ok = true;
  r.ag = stats->ag_pairs;
  r.embeddings = stats->output_tuples;
  r.edge_walks = stats->edge_walks;
  r.seconds = stats->seconds;
  return r;
}

BenchRecord ModeRecord(const std::string& query_id, const ModeResult& r,
                       uint32_t threads) {
  BenchRecord record;
  record.engine = "WF";
  record.query = query_id;
  record.ok = r.ok;
  record.timed_out = r.timed_out;
  record.seconds = r.seconds;
  record.edge_walks = r.edge_walks;
  record.output_tuples = r.embeddings;
  record.ag_pairs = r.ag;
  record.threads = threads;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double timeout = flags.GetDouble("timeout", 30.0);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 1));
  JsonResultWriter json;

  std::cout << "=== Fig. 4: spurious edges in cyclic answer graphs ===\n\n";

  // Part 1: the paper's exact example.
  {
    Database db = MakeFig4Graph();
    Catalog catalog = Catalog::Build(db.store());
    auto q = MakeFig4Query(db);
    if (!q.ok()) return 1;
    ModeResult plain = RunMode(db, catalog, *q, false, false, timeout,
                               threads);
    ModeResult ideal = RunMode(db, catalog, *q, true, true, timeout,
                               threads);
    std::cout << "paper example: node burnback |AG| = " << plain.ag
              << " (paper: 10, incl. spurious <1,6>, <5,2>),\n"
              << "               edge burnback |iAG| = " << ideal.ag
              << " (paper: 8); embeddings = " << plain.embeddings
              << " (paper: 2)\n\n";
  }

  // Part 2: the five Table-1 diamonds at laptop scale.
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.2);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "data: " << db.store().NumTriples() << " triples\n\n";

  TablePrinter table({"#", "query", "|AG| node-bb", "|AG| chordified",
                      "|iAG| edge-bb", "|Embeddings|", "AG/iAG"});
  std::vector<std::string> texts = Table1Queries();
  for (size_t i = 5; i < 10; ++i) {
    auto q = SparqlParser::ParseAndBind(texts[i], db);
    if (!q.ok()) return 1;
    ModeResult plain = RunMode(db, catalog, *q, false, false, timeout,
                               threads);
    ModeResult chord = RunMode(db, catalog, *q, true, false, timeout,
                               threads);
    ModeResult ideal = RunMode(db, catalog, *q, true, true, timeout,
                               threads);
    if (flags.Has("json")) {
      const std::string id = "T1-Q" + std::to_string(i + 1);
      json.Add(ModeRecord(id + "-nodebb", plain, threads));
      json.Add(ModeRecord(id + "-chord", chord, threads));
      json.Add(ModeRecord(id + "-edgebb", ideal, threads));
    }
    auto count = [](const ModeResult& r, uint64_t v) {
      return r.ok ? TablePrinter::FormatCount(v) : TablePrinter::Timeout();
    };
    char ratio[32] = "?";
    if (plain.ok && ideal.ok && ideal.ag > 0) {
      std::snprintf(ratio, sizeof(ratio), "%.2fx",
                    static_cast<double>(plain.ag) / ideal.ag);
    }
    table.AddRow({std::to_string(i + 1), Table1RowLabel(i).substr(0, 40),
                  count(plain, plain.ag), count(chord, chord.ag),
                  count(ideal, ideal.ag), count(plain, plain.embeddings),
                  ratio});
  }
  table.Print(std::cout);
  std::cout
      << "(paper §5: \"the resulting AGs can be significantly larger than\n"
         " the ideal, sometimes close to the number of embeddings\")\n";
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
