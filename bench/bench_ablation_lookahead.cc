// Ablation: the one-step lookahead existence filter in edge extension.
// Lookahead rejects, at extension time, pairs whose fresh endpoint has no
// data edge for some future incident pattern — pairs that are certain to
// burn back later. It never changes the final AG or the embeddings; it
// trades one index probe per candidate for the add-then-burn churn.
// This bench quantifies the trade on all ten Table-1 queries.
//
// Usage: bench_ablation_lookahead [--scale=1.0] [--timeout=30]

#include <iostream>

#include "catalog/catalog.h"
#include "catalog/estimator.h"
#include "core/generator.h"
#include "core/wireframe.h"
#include "datagen/yago_like.h"
#include "planner/edgifier.h"
#include "query/parser.h"
#include "query/shape.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double timeout = flags.GetDouble("timeout", 30.0);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 1.0);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "=== Ablation: lookahead existence filter (phase 1) ===\n";
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "data: " << db.store().NumTriples() << " triples\n\n";

  TablePrinter table({"#", "mode", "phase1 (s)", "walks", "burned", "|AG|"});
  std::vector<std::string> texts = Table1Queries();
  for (size_t i = 0; i < texts.size(); ++i) {
    auto q = SparqlParser::ParseAndBind(texts[i], db);
    if (!q.ok()) return 1;
    CardinalityEstimator est(catalog);
    Edgifier edgifier(*q, est);
    auto plan = edgifier.PlanEdgeOrder();
    if (!plan.ok()) return 1;
    if (!IsAcyclic(*q)) {
      Triangulator tri(*q, est);
      auto chords = tri.Triangulate(AnalyzeShape(*q));
      if (!chords.ok()) return 1;
      plan->chords = std::move(chords->chords);
      plan->base_triangles = std::move(chords->base_triangles);
      plan->base_triangle_closing_edge =
          std::move(chords->base_triangle_closing_edge);
    }

    uint64_t ag_with = 0, ag_without = 0;
    for (bool lookahead : {false, true}) {
      GeneratorOptions options;
      options.lookahead = lookahead;
      options.deadline = Deadline::AfterSeconds(timeout);
      AgGenerator gen(db, catalog);
      Stopwatch watch;
      auto result = gen.Generate(*q, *plan, options);
      if (!result.ok()) {
        table.AddRow({std::to_string(i + 1),
                      lookahead ? "lookahead" : "plain",
                      TablePrinter::Timeout(), "", "", ""});
        continue;
      }
      const uint64_t ag = result->ag->TotalQueryEdgePairs();
      (lookahead ? ag_with : ag_without) = ag;
      table.AddRow({std::to_string(i + 1),
                    lookahead ? "lookahead" : "plain",
                    TablePrinter::FormatSeconds(watch.ElapsedSeconds()),
                    TablePrinter::FormatCount(result->edge_walks),
                    TablePrinter::FormatCount(result->pairs_burned),
                    TablePrinter::FormatCount(ag)});
    }
    if (ag_with != ag_without) {
      std::cerr << "BUG: lookahead changed the answer graph on query "
                << (i + 1) << "\n";
      return 1;
    }
  }
  table.Print(std::cout);
  std::cout << "(identical |AG| per query: the filter is sound; it only\n"
               " avoids adding pairs that were guaranteed to burn)\n";
  return 0;
}
