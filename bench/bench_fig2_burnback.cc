// Reproduces Fig. 2: the interleaved edge-extension / cascading node
// burnback evaluation model. Prints the step-by-step trace on the paper's
// exact example graph, then measures burnback's amortized cost claim
// (paper §4: "the cost of node burnback is amortised: every edge added
// that does not survive to the iAG is at some point removed") — total
// pairs burned never exceeds total pairs added, across plan orders and
// noise levels.
//
// Usage: bench_fig2_burnback [--noise_max=4096]

#include <iostream>

#include "catalog/catalog.h"
#include "catalog/estimator.h"
#include "core/generator.h"
#include "datagen/figures.h"
#include "datagen/synthetic.h"
#include "planner/edgifier.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t noise_max =
      static_cast<uint32_t>(flags.GetInt("noise_max", 4096));

  std::cout << "=== Fig. 2: edge extension + cascading node burnback ===\n\n";

  // Part 1: trace the paper's example, plan order A, B, C.
  {
    Database db = MakeFig1Graph();
    Catalog catalog = Catalog::Build(db.store());
    auto q = MakeFig1Query(db);
    if (!q.ok()) return 1;
    AgGenerator gen(db, catalog);
    AgPlan plan;
    plan.edge_order = {0, 1, 2};
    GeneratorOptions options;
    options.trace = [&](const GeneratorTraceStep& step) {
      const QueryEdge& qe = q->Edge(step.index);
      std::cout << "  extend ?" << q->VarName(qe.src) << " --"
                << db.labels().Term(qe.label) << "--> ?"
                << q->VarName(qe.dst) << ": +" << step.pairs_added
                << " pairs, burned " << step.pairs_burned << ", |AG| now "
                << step.ag_size_after << "\n";
    };
    auto result = gen.Generate(*q, plan, options);
    if (!result.ok()) return 1;
    std::cout << "  final |AG| = " << result->ag->TotalQueryEdgePairs()
              << " (paper's final answer graph: 8 edges)\n\n";
  }

  // Part 2: amortization sweep — pairs burned <= pairs added, and the
  // generation cost (edge walks) scales with what was touched, not with
  // the data graph size.
  TablePrinter table({"noise branches", "walks", "pairs added(+burned)",
                      "burned", "|iAG|", "gen time (ms)"});
  for (uint32_t noise = 16; noise <= noise_max; noise *= 4) {
    Database db = MakeChainBlowupGraph(64, 64, noise);
    Catalog catalog = Catalog::Build(db.store());
    auto q = SparqlParser::ParseAndBind(
        "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
    if (!q.ok()) return 1;
    CardinalityEstimator est(catalog);
    Edgifier edgifier(*q, est);
    auto plan = edgifier.PlanEdgeOrder();
    if (!plan.ok()) return 1;

    AgGenerator gen(db, catalog);
    Stopwatch watch;
    auto result = gen.Generate(*q, *plan, GeneratorOptions{});
    if (!result.ok()) return 1;
    const double ms = watch.ElapsedSeconds() * 1e3;
    const uint64_t added =
        result->ag->TotalQueryEdgePairs() + result->pairs_burned;
    table.AddRow({TablePrinter::FormatCount(noise),
                  TablePrinter::FormatCount(result->edge_walks),
                  TablePrinter::FormatCount(added),
                  TablePrinter::FormatCount(result->pairs_burned),
                  TablePrinter::FormatCount(
                      result->ag->TotalQueryEdgePairs()),
                  TablePrinter::FormatSeconds(ms)});
    if (result->pairs_burned > added) {
      std::cerr << "AMORTIZATION VIOLATED\n";
      return 1;
    }
  }
  table.Print(std::cout);
  std::cout << "(burned <= added at every noise level: burnback cost is\n"
               " amortized into the extensions that created the pairs)\n";
  return 0;
}
