// Span-kernel microbench: the sorted-span intersection, batched probe,
// and span-gather kernels behind the frozen-CSR hot loops, timed on
// synthetic sorted inputs that isolate each regime. Run once with
// --dispatch=scalar and once with --dispatch=auto into two JSON files
// and diff them to measure what the SIMD path buys on this machine:
//
//   ./bench_kernels --dispatch=scalar --cells=isect
//       --json=BENCH_pr7_kernels_scalar.json
//   ./bench_kernels --dispatch=auto --cells=isect
//       --json=BENCH_pr7_kernels.json
//   scripts/bench_diff.py BENCH_pr7_kernels_scalar.json
//       BENCH_pr7_kernels.json
//
// --cells=isect restricts to the merge-regime intersection cells (the
// shapes the AVX2 kernel targets); --cells=all adds the galloping,
// batched-probe, and gather cells, which are dispatch-invariant by
// design — useful for regression tracking, dilutive in a SIMD-vs-scalar
// diff. meta.cpu_features records which dispatch actually ran, so
// bench_diff warns when two recordings compare different paths.
//
// Usage: bench_kernels [--dispatch=auto|scalar] [--cells=isect|all]
//                      [--scale=1.0] [--reps=3] [--json=<path>]

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/json_writer.h"
#include "util/csr.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/span_kernels.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

/// Sorted distinct ids with uniform random gaps in [1, max_gap].
std::vector<NodeId> MakeSorted(Rng& rng, size_t n, uint32_t max_gap) {
  std::vector<NodeId> out;
  out.reserve(n);
  NodeId cur = 0;
  for (size_t i = 0; i < n; ++i) {
    cur += 1 + static_cast<NodeId>(rng.Uniform(max_gap));
    out.push_back(cur);
  }
  return out;
}

/// Draws a sorted subset keeping each element with probability p.
std::vector<NodeId> Subset(Rng& rng, const std::vector<NodeId>& base,
                           double p) {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(static_cast<double>(base.size()) * p) + 8);
  for (NodeId x : base) {
    if (rng.Bernoulli(p)) out.push_back(x);
  }
  return out;
}

struct Cell {
  std::string id;
  bool isect;  // part of the merge-regime intersection set
  // Runs `iters` kernel invocations and returns a checksum (keeps the
  // optimizer honest; printed so two dispatches can be eyeballed equal).
  std::function<uint64_t(int iters)> run;
  int iters;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string dispatch = flags.GetString("dispatch", "auto");
  const std::string cells = flags.GetString("cells", "all");
  const double scale = flags.GetDouble("scale", 1.0);
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  if (dispatch == "scalar") {
    ForceScalarKernels(true);
  } else if (dispatch != "auto") {
    std::cerr << "unknown --dispatch=" << dispatch
              << " (want auto|scalar)\n";
    return 1;
  }
  const bool isect_only = cells == "isect";

  std::cout << "=== Span kernels (" << KernelCpuFeaturesMeta() << ") ===\n\n";

  Rng rng(20260808);
  const size_t big = std::max<size_t>(1024, static_cast<size_t>(
                                               65536.0 * scale));

  // Merge-regime intersections: both sides within the galloping
  // crossover, ~50% of the smaller side hits. These are the shapes the
  // AVX2 block kernel targets; scalar and SIMD walk identical inputs.
  std::vector<Cell> bench;
  const std::vector<NodeId> universe = MakeSorted(rng, 2 * big, 4);
  const std::vector<NodeId> side_a = Subset(rng, universe, 0.5);
  for (const auto& [label, frac] :
       std::vector<std::pair<const char*, double>>{
           {"isect-1to1", 0.5}, {"isect-2to1", 0.25}, {"isect-4to1", 0.125}}) {
    std::vector<NodeId> side_b = Subset(rng, universe, frac);
    const size_t cap =
        std::min(side_a.size(), side_b.size()) + kIntersectPad;
    bench.push_back(
        {label, /*isect=*/true,
         [&side_a, b = std::move(side_b),
          out = std::vector<NodeId>(cap)](int iters) mutable {
           uint64_t sum = 0;
           for (int it = 0; it < iters; ++it) {
             sum += IntersectSorted(side_a, b, out.data());
           }
           return sum;
         },
         /*iters=*/48});
  }

  // Galloping regime: one side 10^4 times smaller — crossover picks the
  // exponential-probe path on every dispatch, so this cell is
  // dispatch-invariant by construction (it guards the crossover from
  // regressing, not the SIMD body).
  {
    std::vector<NodeId> small = Subset(rng, universe, 0.0002);
    if (small.empty()) small.push_back(universe[universe.size() / 2]);
    const size_t cap = small.size() + kIntersectPad;
    bench.push_back({"gallop-1to10k", /*isect=*/false,
                     [&universe, s = std::move(small),
                      out = std::vector<NodeId>(cap)](int iters) mutable {
                       uint64_t sum = 0;
                       for (int it = 0; it < iters; ++it) {
                         sum += IntersectSorted(s, universe, out.data());
                       }
                       return sum;
                     },
                     /*iters=*/20000});
  }

  // Batched sorted probes against a CSR: the chord-prefilter access
  // pattern (sorted batch, monotone span walks, prefetched offset rows).
  {
    const size_t nkeys = std::max<size_t>(256, big / 16);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(nkeys * 16);
    for (size_t k = 0; k < nkeys; ++k) {
      NodeId v = 0;
      const size_t deg = 4 + rng.Uniform(24);
      for (size_t d = 0; d < deg; ++d) {
        v += 1 + static_cast<NodeId>(rng.Uniform(8));
        pairs.emplace_back(static_cast<NodeId>(k), v);
      }
    }
    Csr csr = Csr::Build(std::move(pairs));
    std::vector<NodeId> keys, vals;
    const size_t nprobes = big;
    keys.reserve(nprobes);
    vals.reserve(nprobes);
    for (size_t i = 0; i < nprobes; ++i) {
      keys.push_back(static_cast<NodeId>((i * nkeys) / nprobes));
      vals.push_back(static_cast<NodeId>(rng.Uniform(256)));
    }
    bench.push_back({"containsmany", /*isect=*/false,
                     [c = std::move(csr), k = std::move(keys),
                      v = std::move(vals),
                      hits = std::vector<uint8_t>(nprobes)](
                         int iters) mutable {
                       uint64_t sum = 0;
                       for (int it = 0; it < iters; ++it) {
                         c.ContainsMany(k, v, hits.data());
                         for (uint8_t h : hits) sum += h;
                       }
                       return sum;
                     },
                     /*iters=*/24});
  }

  // Dense positional span gather: ForEach with the span-ahead prefetch —
  // the frozen leaf-scan access pattern.
  {
    const size_t nkeys = std::max<size_t>(256, big / 2);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(nkeys * 8);
    for (size_t k = 0; k < nkeys; ++k) {
      NodeId v = 0;
      const size_t deg = 2 + rng.Uniform(12);
      for (size_t d = 0; d < deg; ++d) {
        v += 1 + static_cast<NodeId>(rng.Uniform(64));
        pairs.emplace_back(static_cast<NodeId>(k), v);
      }
    }
    Csr csr = Csr::Build(std::move(pairs));
    bench.push_back({"gather-foreach", /*isect=*/false,
                     [c = std::move(csr)](int iters) {
                       uint64_t sum = 0;
                       for (int it = 0; it < iters; ++it) {
                         c.ForEach([&sum](NodeId, NodeId v) { sum += v; });
                       }
                       return sum;
                     },
                     /*iters=*/32});
  }

  JsonResultWriter json;
  json.SetMeta("bench", "bench_kernels");
  json.SetMeta("hardware_threads",
               std::to_string(ThreadPool::ResolveThreads(0)));
  json.SetMeta("cpu_features", KernelCpuFeaturesMeta());
  json.SetMeta("dispatch", dispatch);
  json.SetMeta("cells", cells);
  {
    char scale_meta[32];
    std::snprintf(scale_meta, sizeof(scale_meta), "%g", scale);
    json.SetMeta("scale", scale_meta);
  }
  json.SetMeta("reps", std::to_string(reps));

  TablePrinter table({"cell", "seconds", "checksum"});
  for (Cell& cell : bench) {
    if (isect_only && !cell.isect) continue;
    const int iters =
        std::max(1, static_cast<int>(static_cast<double>(cell.iters)));
    double seconds = 0.0;
    uint64_t checksum = 0;
    int timed_runs = 0;
    for (int rep = 0; rep < std::max(1, reps); ++rep) {
      Stopwatch timer;
      checksum = cell.run(iters);
      const double elapsed = timer.ElapsedSeconds();
      // First rep warms the cache (and the AVX2 dispatch latch) when
      // there is a rep to spare.
      if (rep > 0 || reps == 1) {
        seconds += elapsed;
        ++timed_runs;
      }
    }
    BenchRecord record;
    record.engine = "KRN";
    record.query = cell.id;
    record.threads = 1;
    record.ok = true;
    record.seconds = seconds / std::max(1, timed_runs);
    json.Add(record);
    table.AddRow({cell.id, TablePrinter::FormatSeconds(record.seconds),
                  std::to_string(checksum)});
  }
  table.Print(std::cout);
  std::cout << "(checksums must match across --dispatch=auto and\n"
               " --dispatch=scalar runs — different sums mean the kernels"
               " diverged)\n";
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
