// Reproduces Table 1, rows 1-5 (snowflake-shaped CQ_S queries): query
// execution time per system — PG / WF / VT / MD / NJ — plus |iAG| and
// |Embeddings|, on the synthetic YAGO-like graph.
//
// Paper reference (YAGO2s, 242M triples, 300 s timeout):
//   row 1:  PG 51   WF 16  VT *    MD *  NJ *   |iAG|  1,660  |E| 2,931,986
//   row 2:  PG 88   WF  5  VT 151  MD *  NJ *   |iAG|    993  |E| 2,847,184
//   row 3:  PG 69   WF 12  VT *    MD *  NJ *   |iAG|  1,140  |E| 2,670,339
//   row 4:  PG 78   WF  8  VT *    MD *  NJ *   |iAG|  3,317  |E| 2,569,017
//   row 5:  PG 42   WF 12  VT *    MD *  NJ *   |iAG| 10,761  |E| 1,306,406
// The reproduction target is the *shape*: WF fastest by a wide margin,
// materializing engines struggling or timing out, |iAG| orders of
// magnitude below |Embeddings|. Absolute numbers differ (laptop-scale
// synthetic data, in-process baselines).
//
// Usage: bench_table1_snowflake [--scale=2.0] [--timeout=20] [--reps=2]
//                               [--threads=1] [--json=<path>]

#include <iostream>

#include "benchlib/harness.h"
#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 2.0);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "=== Table 1 (rows 1-5): snowflake-shaped queries ===\n";
  Stopwatch watch;
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "data: " << db.store().NumTriples() << " triples, "
            << db.store().NumPredicates() << " predicates (scale "
            << config.scale << ", built in " << watch.ElapsedMillis()
            << " ms)\n\n";

  BenchConfig bench;
  bench.timeout_seconds = flags.GetDouble("timeout", 20.0);
  bench.repetitions = static_cast<int>(flags.GetInt("reps", 2));
  bench.verbose = flags.GetBool("verbose", false);
  bench.threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  JsonResultWriter json;
  if (flags.Has("json")) bench.json = &json;
  Table1Harness harness(db, catalog, bench);

  std::vector<BenchQuery> queries;
  std::vector<std::string> texts = Table1Queries();
  for (size_t i = 0; i < 5; ++i) {
    auto q = SparqlParser::ParseAndBind(texts[i], db);
    if (!q.ok()) {
      std::cerr << "query " << i << ": " << q.status().ToString() << "\n";
      return 1;
    }
    queries.push_back(
        {std::to_string(i + 1), Table1RowLabel(i), std::move(q).value()});
  }
  harness.RunSuite(queries, std::cout);
  std::cout << "('*' = timed out after " << bench.timeout_seconds
            << " s or exceeded the intermediate-result memory budget,\n"
               " as in the paper's 300 s protocol)\n";
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
