// Factorized aggregates: COUNT(*) evaluated by the counting DP directly
// on the frozen CSR answer graph vs enumerate-then-count (the same WF
// pipeline materializing every embedding into a counting sink) vs the
// hash-join baseline (PG) folding its rows. The DP is AG-size-bound
// where enumeration is output-size-bound, so the blowup cells (dense
// square, bushy) are where it pays orders of magnitude.
//
// Every cell cross-checks the three counts and fails the run (exit 1)
// on any disagreement — the speedup is only worth recording if the
// answers are bit-identical.
//
//   ./bench_aggregates --json=BENCH_pr8_aggregates.json
//   scripts/bench_diff.py BENCH_pr8_aggregates.json <later>.json
//
// Usage: bench_aggregates [--scale=1.0] [--reps=3] [--threads_list=1,0]
//                         [--timeout=60] [--json=<path>]

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/json_writer.h"
#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "exec/aggregate_executor.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/span_kernels.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

struct Workload {
  std::string id;
  Database db;
  Catalog catalog;
  QueryGraph count_query;  // select (count(*) as ?c) where { ... }
  QueryGraph plain_query;  // select * where { ... } — same patterns
  bool bushy = false;
};

std::vector<uint32_t> ParseThreads(const std::string& csv) {
  std::vector<uint32_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const uint32_t resolved = ThreadPool::ResolveThreads(
        static_cast<uint32_t>(std::atoi(item.c_str())));
    bool seen = false;
    for (uint32_t t : out) seen |= t == resolved;
    if (!seen) out.push_back(resolved);
  }
  return out;
}

bool AddWorkload(std::vector<Workload>* out, const std::string& id,
                 Database db, const std::string& patterns,
                 bool bushy = false) {
  Catalog cat = Catalog::Build(db.store());
  auto count_q = SparqlParser::ParseAndBind(
      "select (count(*) as ?c) where " + patterns, db);
  auto plain_q = SparqlParser::ParseAndBind("select * where " + patterns, db);
  if (!count_q.ok() || !plain_q.ok()) {
    std::cerr << "workload " << id << ": parse/bind failed\n";
    return false;
  }
  out->push_back({id, std::move(db), std::move(cat), std::move(*count_q),
                  std::move(*plain_q), bushy});
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const double timeout = flags.GetDouble("timeout", 60.0);
  const std::vector<uint32_t> thread_counts =
      ParseThreads(flags.GetString("threads_list", "1,0"));

  std::cout << "=== Factorized COUNT(*) (DP on the frozen AG) vs"
               " enumerate-then-count ===\n\n";

  std::vector<Workload> workloads;
  {
    // Acyclic chain blowup: |iAG| ~ 2n+1 pairs but n^2 embeddings — the
    // DP reads each span once where enumeration walks n^2 rows.
    const uint32_t fan =
        std::max(8u, static_cast<uint32_t>(600 * scale));
    if (!AddWorkload(&workloads, "chain",
                     MakeChainBlowupGraph(fan, fan, /*noise=*/50),
                     "{ ?w A ?x . ?x B ?y . ?y C ?z . }")) {
      return 1;
    }
  }
  {
    // Cyclic square on a sparse random graph: the cycle DP sweeps the
    // materialized chord with per-pair span intersections.
    const uint64_t edges =
        std::max<uint64_t>(256, static_cast<uint64_t>(6000 * scale));
    if (!AddWorkload(&workloads, "square", MakeRandomGraph(80, 3, edges, 777),
                     "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }")) {
      return 1;
    }
  }
  {
    // Dense square: same shape, much denser graph — embedding count
    // explodes while the AG stays quadratic in the node count.
    const uint64_t edges =
        std::max<uint64_t>(512, static_cast<uint64_t>(24000 * scale));
    if (!AddWorkload(&workloads, "dense-square",
                     MakeRandomGraph(60, 3, edges, 991),
                     "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }")) {
      return 1;
    }
  }
  {
    // Bushy star-of-stars: two hub variables with independent fans, so
    // embeddings multiply across branches while the AG stays linear.
    // Kept small — the multiplicative blowup crosses billions of rows
    // (an enumeration timeout, which is the point, but the cell must
    // finish in both modes to certify the count).
    const uint64_t edges =
        std::max<uint64_t>(512, static_cast<uint64_t>(3000 * scale));
    if (!AddWorkload(&workloads, "bushy", MakeRandomGraph(70, 3, edges, 555),
                     "{ ?r p0 ?a . ?r p0 ?b . ?r p1 ?m . ?m p2 ?x . "
                     "?m p2 ?y . }",
                     /*bushy=*/true)) {
      return 1;
    }
  }

  JsonResultWriter json;
  json.SetMeta("bench", "bench_aggregates");
  json.SetMeta("hardware_threads",
               std::to_string(ThreadPool::ResolveThreads(0)));
  json.SetMeta("cpu_features", KernelCpuFeaturesMeta());
  {
    char scale_meta[32];
    std::snprintf(scale_meta, sizeof(scale_meta), "%g", scale);
    json.SetMeta("scale", scale_meta);
  }

  TablePrinter table({"cell", "mode", "threads", "total (s)", "agg (s)",
                      "count", "speedup"});

  bool mismatch = false;
  for (const Workload& w : workloads) {
    WireframeOptions wf_options;
    wf_options.bushy_phase2 = w.bushy;
    // The reference count of this cell (from the first finished mode);
    // every later mode must reproduce it exactly.
    bool have_reference = false;
    std::string reference;
    double enum_seconds = 0.0;  // single-thread enumerate-then-count
    struct Mode {
      std::string tag;
      bool aggregate;  // run the COUNT query (vs plain SELECT + count)
      std::string engine;
    };
    // Enumerate-then-count runs first so its single-thread cell anchors
    // the reference count and the speedup column of the later modes.
    const std::vector<Mode> modes = {{"WF-ENUM", false, "WF"},
                                     {"WF-AGG", true, "WF"},
                                     {"PG", false, "PG"}};
    for (const Mode& mode : modes) {
      for (uint32_t threads : thread_counts) {
        if (mode.engine == "PG" && threads != thread_counts.front()) {
          continue;  // the baseline is single-configuration
        }
        BenchRecord record;
        record.engine = mode.tag;
        record.query = w.id;
        record.threads = threads;
        double seconds = 0.0, aggregate_seconds = 0.0;
        int timed_runs = 0;
        bool failed = false;
        std::string count_str;
        for (int rep = 0; rep < std::max(1, reps); ++rep) {
          EngineOptions options;
          options.deadline = Deadline::AfterSeconds(timeout);
          options.threads = threads;
          Stopwatch watch;
          if (mode.engine == "WF") {
            WireframeEngine engine(wf_options);
            CollectingAggregateSink agg_sink;
            CountingSink row_sink;
            Sink* sink = mode.aggregate
                             ? static_cast<Sink*>(&agg_sink)
                             : static_cast<Sink*>(&row_sink);
            const QueryGraph& q =
                mode.aggregate ? w.count_query : w.plain_query;
            auto detail = engine.RunDetailed(w.db, w.catalog, q, options,
                                             sink);
            if (!detail.ok()) {
              record.timed_out = detail.status().IsTimedOut();
              failed = true;
              break;
            }
            count_str = mode.aggregate
                            ? detail->aggregate.value.ToString()
                            : std::to_string(row_sink.count());
            record.edge_walks = detail->stats.edge_walks;
            record.output_tuples = detail->stats.output_tuples;
            record.ag_pairs = detail->stats.ag_pairs;
            if (rep > 0 || reps == 1) {
              seconds += detail->stats.seconds;
              aggregate_seconds += detail->stats.aggregate_seconds;
              ++timed_runs;
            }
          } else {
            std::unique_ptr<Engine> engine = MakeEngine(mode.engine);
            CountingSink row_sink;
            auto stats = engine->Run(w.db, w.catalog, w.plain_query,
                                     options, &row_sink);
            if (!stats.ok()) {
              record.timed_out = stats.status().IsTimedOut();
              failed = true;
              break;
            }
            count_str = std::to_string(row_sink.count());
            record.output_tuples = row_sink.count();
            if (rep > 0 || reps == 1) {
              seconds += watch.ElapsedSeconds();
              ++timed_runs;
            }
          }
        }
        if (failed) {
          table.AddRow({w.id, mode.tag, std::to_string(threads),
                        TablePrinter::Timeout(), "-", "-", "-"});
          json.Add(record);
          continue;
        }
        const int divisor = std::max(1, timed_runs);
        record.ok = true;
        record.seconds = seconds / divisor;
        record.aggregate_seconds = aggregate_seconds / divisor;
        if (!have_reference) {
          have_reference = true;
          reference = count_str;
        } else if (count_str != reference) {
          std::cerr << "COUNT MISMATCH in cell " << w.id << " mode "
                    << mode.tag << " threads " << threads << ": got "
                    << count_str << ", reference " << reference << "\n";
          mismatch = true;
        }
        if (mode.tag == "WF-ENUM" && threads == thread_counts.front()) {
          enum_seconds = record.seconds;
        }
        std::string speedup = "-";
        if (mode.tag != "WF-ENUM" && enum_seconds > 0.0 &&
            record.seconds > 0.0) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.1fx",
                        enum_seconds / record.seconds);
          speedup = buf;
        }
        table.AddRow({w.id, mode.tag, std::to_string(threads),
                      TablePrinter::FormatSeconds(record.seconds),
                      TablePrinter::FormatSeconds(record.aggregate_seconds),
                      count_str, speedup});
        json.Add(record);
      }
    }
  }
  table.Print(std::cout);
  std::cout << "(WF-AGG = counting DP on the frozen AG, no embedding"
               " materialized;\n WF-ENUM = same pipeline enumerating into"
               " a counting sink; PG = hash join.\n Speedup column is vs"
               " the single-thread WF-ENUM cell, where available.)\n";
  if (mismatch) {
    std::cerr << "\nFAILED: counts disagree between modes\n";
    return 1;
  }
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
