// Scaling sweep (implicit in the paper's title: *large* graphs): WF vs
// the baseline regimes as the YAGO-like graph grows. The answer-graph
// method's advantage should widen with scale because baselines pay per
// embedding (or per materialized intermediate) while WF's phase 1 pays
// per answer-graph edge.
//
// Usage: bench_scaling [--scales=0.05,0.1,0.2,0.4] [--timeout=30]
//                      [--query=2]

#include <iostream>
#include <sstream>

#include "benchlib/harness.h"
#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double timeout = flags.GetDouble("timeout", 30.0);
  const size_t query_index =
      static_cast<size_t>(flags.GetInt("query", 2)) - 1;

  std::vector<double> scales;
  {
    std::stringstream ss(flags.GetString("scales", "0.05,0.1,0.2,0.4"));
    std::string item;
    while (std::getline(ss, item, ',')) scales.push_back(std::atof(item.c_str()));
  }

  std::cout << "=== Scaling: Table-1 query " << (query_index + 1)
            << " vs graph size ===\n\n";

  TablePrinter table({"scale", "triples", "WF (s)", "PG (s)", "VT (s)",
                      "NJ (s)", "|AG|", "|Embeddings|"});
  for (double scale : scales) {
    YagoLikeConfig config;
    config.scale = scale;
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    Database db = MakeYagoLike(config);
    Catalog catalog = Catalog::Build(db.store());
    auto q = SparqlParser::ParseAndBind(Table1Queries()[query_index], db);
    if (!q.ok()) return 1;

    BenchConfig bench;
    bench.timeout_seconds = timeout;
    bench.repetitions = 2;
    Table1Harness harness(db, catalog, bench);

    auto cell = [&](const char* name) {
      BenchCell c = harness.RunCell(*q, name);
      return std::pair<std::string, BenchCell>(
          c.ok ? TablePrinter::FormatSeconds(c.seconds)
               : TablePrinter::Timeout(),
          c);
    };
    auto [wf_text, wf] = cell("WF");
    auto [pg_text, pg] = cell("PG");
    auto [vt_text, vt] = cell("VT");
    auto [nj_text, nj] = cell("NJ");

    char scale_text[32];
    std::snprintf(scale_text, sizeof(scale_text), "%.2f", scale);
    table.AddRow({scale_text,
                  TablePrinter::FormatCount(db.store().NumTriples()),
                  wf_text, pg_text, vt_text, nj_text,
                  wf.ok ? TablePrinter::FormatCount(wf.stats.ag_pairs) : "?",
                  wf.ok ? TablePrinter::FormatCount(wf.stats.output_tuples)
                        : "?"});
  }
  table.Print(std::cout);
  return 0;
}
