// Scaling sweeps (implicit in the paper's title: *large* graphs).
//
// Default mode: WF vs the baseline regimes as the YAGO-like graph grows.
// The answer-graph method's advantage should widen with scale because
// baselines pay per embedding (or per materialized intermediate) while
// WF's phase 1 pays per answer-graph edge.
//
// --threads_sweep mode: fixed graph, sweep the worker-thread count over
// the morsel-driven parallel phases (phase-1 generation, phase-2
// enumeration, and the PG baseline's build side) and report per-phase
// wall-clock plus the speedup curve relative to threads=1. One command
// produces the whole curve:
//
//   bench_scaling --threads_sweep --scale=1.0 --json=BENCH_pr2.json
//
// Usage: bench_scaling [--scales=0.05,0.1,0.2,0.4] [--timeout=30]
//                      [--query=2] [--threads=1] [--json=<path>]
//        bench_scaling --threads_sweep [--threads_list=1,2,4,8]
//                      [--scale=1.0] [--query=2] [--reps=2]
//                      [--timeout=60] [--json=<path>]

#include <iostream>
#include <sstream>

#include "benchlib/harness.h"
#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/span_kernels.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

std::vector<double> ParseList(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::atof(item.c_str()));
  return out;
}

/// One measured WF run at a given thread count: phase split from
/// RunDetailed, averaged over the warm repetitions.
struct SweepPoint {
  bool ok = false;
  bool timed_out = false;  // timeout or memory-budget abort, paper-style
  double seconds = 0.0;
  double phase1 = 0.0;
  double burnback = 0.0;
  double freeze = 0.0;
  double phase2 = 0.0;
  uint64_t ag_pairs = 0;
  uint64_t embeddings = 0;
  uint64_t edge_walks = 0;
};

SweepPoint RunWfPoint(const Database& db, const Catalog& catalog,
                      const QueryGraph& q, uint32_t threads, int reps,
                      double timeout) {
  SweepPoint point;
  WireframeEngine engine;
  int timed_runs = 0;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    EngineOptions options;
    options.deadline = Deadline::AfterSeconds(timeout);
    options.threads = threads;
    CountingSink sink;
    auto detail = engine.RunDetailed(db, catalog, q, options, &sink);
    if (!detail.ok()) {
      point.timed_out = detail.status().IsTimedOut() ||
                        detail.status().code() == StatusCode::kOutOfRange;
      return point;
    }
    // Warm-cache averaging: skip the first (cold) run when we have more.
    if (rep > 0 || reps == 1) {
      point.seconds += detail->stats.seconds;
      point.phase1 += detail->stats.phase1_seconds;
      point.burnback += detail->stats.burnback_seconds;
      point.freeze += detail->stats.freeze_seconds;
      point.phase2 += detail->stats.phase2_seconds;
      ++timed_runs;
    }
    point.ag_pairs = detail->stats.ag_pairs;
    point.embeddings = detail->stats.output_tuples;
    point.edge_walks = detail->stats.edge_walks;
  }
  point.ok = true;
  point.seconds /= std::max(1, timed_runs);
  point.phase1 /= std::max(1, timed_runs);
  point.burnback /= std::max(1, timed_runs);
  point.freeze /= std::max(1, timed_runs);
  point.phase2 /= std::max(1, timed_runs);
  return point;
}

/// Validates --query against the Table-1 suite; returns the 0-based
/// index or -1 after printing a usage error.
int64_t Table1QueryIndex(const Flags& flags) {
  const int64_t query = flags.GetInt("query", 2);
  const size_t num = Table1Queries().size();
  if (query < 1 || static_cast<size_t>(query) > num) {
    std::cerr << "--query must be in [1, " << num << "], got " << query
              << "\n";
    return -1;
  }
  return query - 1;
}

int RunThreadsSweep(const Flags& flags) {
  const double timeout = flags.GetDouble("timeout", 60.0);
  const int reps = static_cast<int>(flags.GetInt("reps", 2));
  const int64_t query_signed = Table1QueryIndex(flags);
  if (query_signed < 0) return 1;
  const size_t query_index = static_cast<size_t>(query_signed);
  std::vector<double> thread_counts =
      ParseList(flags.GetString("threads_list", "1,2,4,8"));

  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 1.0);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Stopwatch watch;
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(Table1Queries()[query_index], db);
  if (!q.ok()) {
    std::cerr << q.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Threads sweep: Table-1 query " << (query_index + 1)
            << ", scale " << config.scale << " ("
            << db.store().NumTriples() << " triples, built in "
            << watch.ElapsedMillis() << " ms) ===\n"
            << "hardware threads available: "
            << ThreadPool::ResolveThreads(0) << "\n\n";

  JsonResultWriter json;
  // Provenance: a sweep recorded on a single-core box legitimately shows
  // a flat curve, so the JSON must say what it ran on. The scale is the
  // resolved value the graph was actually built with.
  char scale_meta[32];
  std::snprintf(scale_meta, sizeof(scale_meta), "%g", config.scale);
  json.SetMeta("bench", "bench_scaling --threads_sweep");
  json.SetMeta("hardware_threads",
               std::to_string(ThreadPool::ResolveThreads(0)));
  json.SetMeta("cpu_features", KernelCpuFeaturesMeta());
  json.SetMeta("scale", scale_meta);
  json.SetMeta("reps", std::to_string(reps));
  const std::string query_id = "T1-Q" + std::to_string(query_index + 1);

  TablePrinter table({"threads", "WF total (s)", "phase1 (s)", "phase2 (s)",
                      "p1 speedup", "p2 speedup", "PG (s)", "PG speedup"});
  SweepPoint wf_base;
  double pg_base = 0.0;
  uint32_t base_threads = 0;  // 0 until the first completed row
  for (double t : thread_counts) {
    // Resolve up front (0 = all cores) so the table and the JSON records
    // both report the thread count the row actually ran with.
    const uint32_t threads =
        ThreadPool::ResolveThreads(static_cast<uint32_t>(t));
    SweepPoint wf =
        RunWfPoint(db, catalog, *q, threads, reps, timeout);

    BenchConfig bench;
    bench.timeout_seconds = timeout;
    bench.repetitions = reps;
    bench.threads = threads;
    Table1Harness harness(db, catalog, bench);
    BenchCell pg = harness.RunCell(*q, "PG");

    // Each engine's speedups are relative to its first row that
    // completed (normally the threads=1 entry of the default list); a
    // timed-out row must not lock in a zero baseline.
    if (base_threads == 0 && wf.ok) {
      wf_base = wf;
      base_threads = threads;
    }
    if (pg_base == 0.0 && pg.ok) pg_base = pg.seconds;
    auto speedup = [](double base, double now) -> std::string {
      if (base <= 0.0 || now <= 0.0) return "?";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", base / now);
      return buf;
    };
    table.AddRow({std::to_string(threads),
                  wf.ok ? TablePrinter::FormatSeconds(wf.seconds)
                        : TablePrinter::Timeout(),
                  TablePrinter::FormatSeconds(wf.phase1),
                  TablePrinter::FormatSeconds(wf.phase2),
                  speedup(wf_base.phase1, wf.phase1),
                  speedup(wf_base.phase2, wf.phase2),
                  pg.ok ? TablePrinter::FormatSeconds(pg.seconds)
                        : TablePrinter::Timeout(),
                  speedup(pg_base, pg.ok ? pg.seconds : 0.0)});

    BenchRecord record;
    record.engine = "WF";
    record.query = query_id;
    record.ok = wf.ok;
    record.timed_out = wf.timed_out;
    record.seconds = wf.seconds;
    record.edge_walks = wf.edge_walks;
    record.output_tuples = wf.embeddings;
    record.ag_pairs = wf.ag_pairs;
    record.threads = threads;
    record.phase1_seconds = wf.phase1;
    record.burnback_seconds = wf.burnback;
    record.freeze_seconds = wf.freeze;
    record.phase2_seconds = wf.phase2;
    json.Add(record);
    json.Add(ToRecord("PG", query_id, pg));
  }
  table.Print(std::cout);
  std::cout << "(speedups are relative to threads="
            << (base_threads == 0 ? 1 : base_threads)
            << "; the embedding multiset\n"
               " and |AG| are identical at every thread count)\n";
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("threads_sweep", false)) return RunThreadsSweep(flags);

  const double timeout = flags.GetDouble("timeout", 30.0);
  const int64_t query_signed = Table1QueryIndex(flags);
  if (query_signed < 0) return 1;
  const size_t query_index = static_cast<size_t>(query_signed);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 1));
  std::vector<double> scales =
      ParseList(flags.GetString("scales", "0.05,0.1,0.2,0.4"));

  std::cout << "=== Scaling: Table-1 query " << (query_index + 1)
            << " vs graph size ===\n\n";

  JsonResultWriter json;
  TablePrinter table({"scale", "triples", "WF (s)", "PG (s)", "VT (s)",
                      "NJ (s)", "|AG|", "|Embeddings|"});
  for (double scale : scales) {
    YagoLikeConfig config;
    config.scale = scale;
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    Database db = MakeYagoLike(config);
    Catalog catalog = Catalog::Build(db.store());
    auto q = SparqlParser::ParseAndBind(Table1Queries()[query_index], db);
    if (!q.ok()) return 1;

    BenchConfig bench;
    bench.timeout_seconds = timeout;
    bench.repetitions = 2;
    bench.threads = threads;
    Table1Harness harness(db, catalog, bench);

    char scale_text[32];
    std::snprintf(scale_text, sizeof(scale_text), "%.2f", scale);
    auto cell = [&](const char* name) {
      BenchCell c = harness.RunCell(*q, name);
      if (flags.Has("json")) {
        json.Add(ToRecord(name, std::string("scale") + scale_text, c));
      }
      return std::pair<std::string, BenchCell>(
          c.ok ? TablePrinter::FormatSeconds(c.seconds)
               : TablePrinter::Timeout(),
          c);
    };
    auto [wf_text, wf] = cell("WF");
    auto [pg_text, pg] = cell("PG");
    auto [vt_text, vt] = cell("VT");
    auto [nj_text, nj] = cell("NJ");

    table.AddRow({scale_text,
                  TablePrinter::FormatCount(db.store().NumTriples()),
                  wf_text, pg_text, vt_text, nj_text,
                  wf.ok ? TablePrinter::FormatCount(wf.stats.ag_pairs) : "?",
                  wf.ok ? TablePrinter::FormatCount(wf.stats.output_tuples)
                        : "?"});
  }
  table.Print(std::cout);
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
