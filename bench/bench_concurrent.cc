// Concurrent multi-query serving: the shared QueryRuntime vs back-to-back
// per-query pools.
//
// A batch of Table-1 queries is served two ways over the same YAGO-like
// graph:
//
//   - shared:  a runtime::Server with one process-wide ThreadPool and
//              admission control, at 1/4/16 in-flight queries. In-flight
//              queries' morsel loops interleave fairly on the one pool.
//   - backtoback: the historical mode — each query runs alone with a
//              private pool (EngineOptions::threads), one after another.
//
// Reported per cell: batch wall clock, aggregate throughput (queries/s),
// and p50/p99 end-to-end latency (admission queue wait + execution). On a
// multi-core box the 4-in-flight shared row should beat back-to-back on
// throughput: single-query scaling stalls on planning and the phase
// barriers, and the shared pool backfills those gaps with other queries'
// morsels. The embedding counts are identical in every mode.
//
// Usage: bench_concurrent [--scale=0.4] [--queries=20] [--timeout=60]
//                         [--inflight_list=1,4,16] [--threads=0]
//                         [--row_budget=0] [--json=<path>]

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "exec/engine.h"
#include "query/parser.h"
#include "runtime/server.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

std::vector<uint32_t> ParseIntList(const std::string& csv) {
  std::vector<uint32_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<uint32_t>(std::atoi(item.c_str())));
  }
  return out;
}

/// Nearest-rank percentile of `values` (p in [0, 100]).
double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

struct CellResult {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t ok = 0;
  uint64_t total_rows = 0;
};

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.4);
  const double timeout = flags.GetDouble("timeout", 60.0);
  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", 20));
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 0));
  const int64_t row_budget = flags.GetInt("row_budget", 0);
  std::vector<uint32_t> inflight_list =
      ParseIntList(flags.GetString("inflight_list", "1,4,16"));

  YagoLikeConfig config;
  config.scale = scale;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Stopwatch build_watch;
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());

  // The workload: the Table-1 suite, cycled to the requested batch size.
  const std::vector<std::string> suite = Table1Queries();
  std::vector<std::string> workload;
  workload.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    workload.push_back(suite[i % suite.size()]);
  }

  const uint32_t pool_threads = ThreadPool::ResolveThreads(threads);
  std::cout << "=== Concurrent serving: " << workload.size()
            << " Table-1 queries, scale " << scale << " ("
            << db.store().NumTriples() << " triples, built in "
            << build_watch.ElapsedMillis() << " ms), pool threads "
            << pool_threads << " ===\n\n";

  JsonResultWriter json;
  char scale_meta[32];
  std::snprintf(scale_meta, sizeof(scale_meta), "%g", config.scale);
  json.SetMeta("bench", "bench_concurrent");
  json.SetMeta("hardware_threads",
               std::to_string(ThreadPool::ResolveThreads(0)));
  json.SetMeta("pool_threads", std::to_string(pool_threads));
  json.SetMeta("scale", scale_meta);
  json.SetMeta("queries", std::to_string(workload.size()));

  auto add_record = [&](const std::string& mode, const CellResult& cell) {
    BenchRecord record;
    record.engine = "WF";
    record.query = mode;
    record.ok = cell.ok == workload.size();
    record.seconds = cell.wall_seconds;
    record.output_tuples = cell.total_rows;
    record.threads = pool_threads;
    record.p50_seconds = cell.p50_ms / 1e3;
    record.p99_seconds = cell.p99_ms / 1e3;
    json.Add(record);
  };

  TablePrinter table({"mode", "in-flight", "wall (s)", "queries/s",
                      "p50 (ms)", "p99 (ms)", "ok", "rows"});

  // --- Back-to-back baseline: private pool per query, no sharing. ---
  CellResult back;
  {
    std::vector<double> latencies;
    Stopwatch wall;
    for (const std::string& text : workload) {
      auto query = SparqlParser::ParseAndBind(text, db);
      if (!query.ok()) continue;
      auto engine = MakeEngine("WF");
      EngineOptions options;
      options.threads = threads;  // private pool (0 = all cores)
      options.deadline = Deadline::AfterSeconds(timeout);
      CountingSink sink;
      Stopwatch one;
      auto stats = engine->Run(db, catalog, *query, options, &sink);
      latencies.push_back(one.ElapsedSeconds() * 1e3);
      if (stats.ok()) {
        ++back.ok;
        back.total_rows += stats->output_tuples;
      }
    }
    back.wall_seconds = wall.ElapsedSeconds();
    back.qps = static_cast<double>(workload.size()) / back.wall_seconds;
    back.p50_ms = Percentile(latencies, 50);
    back.p99_ms = Percentile(latencies, 99);
    table.AddRow({"backtoback", "1", TablePrinter::FormatSeconds(
                                         back.wall_seconds),
                  TablePrinter::FormatSeconds(back.qps),
                  FormatMs(back.p50_ms), FormatMs(back.p99_ms),
                  std::to_string(back.ok) + "/" +
                      std::to_string(workload.size()),
                  TablePrinter::FormatCount(back.total_rows)});
    add_record("backtoback", back);
  }

  // --- Shared runtime at each in-flight level. ---
  double shared4_qps = 0.0;
  for (uint32_t inflight : inflight_list) {
    runtime::ServerOptions server_options;
    server_options.runtime.pool_threads = threads;
    server_options.runtime.admission.max_inflight = inflight;
    // The whole batch may wait: this bench measures scheduling, not load
    // shedding.
    server_options.runtime.admission.max_queued =
        static_cast<uint32_t>(workload.size());
    server_options.timeout_seconds = timeout;
    server_options.row_budget = row_budget > 0 ? row_budget : -1;
    runtime::Server server(db, catalog, server_options);

    Stopwatch wall;
    const std::vector<runtime::QueryReport> reports =
        server.RunBatch(workload);
    CellResult cell;
    cell.wall_seconds = wall.ElapsedSeconds();
    std::vector<double> latencies;
    for (const runtime::QueryReport& report : reports) {
      latencies.push_back((report.queue_seconds + report.run_seconds) * 1e3);
      if (report.outcome == runtime::QueryOutcome::kCompleted ||
          report.outcome == runtime::QueryOutcome::kBudgetExhausted) {
        ++cell.ok;
        cell.total_rows += report.rows;
      }
    }
    cell.qps = static_cast<double>(workload.size()) / cell.wall_seconds;
    cell.p50_ms = Percentile(latencies, 50);
    cell.p99_ms = Percentile(latencies, 99);
    if (inflight == 4) shared4_qps = cell.qps;
    table.AddRow({"shared", std::to_string(inflight),
                  TablePrinter::FormatSeconds(cell.wall_seconds),
                  TablePrinter::FormatSeconds(cell.qps),
                  FormatMs(cell.p50_ms), FormatMs(cell.p99_ms),
                  std::to_string(cell.ok) + "/" +
                      std::to_string(workload.size()),
                  TablePrinter::FormatCount(cell.total_rows)});
    add_record("shared-x" + std::to_string(inflight), cell);
  }
  table.Print(std::cout);

  if (shared4_qps > 0.0 && back.qps > 0.0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\nshared 4-in-flight vs back-to-back throughput: %.2fx\n",
                  shared4_qps / back.qps);
    std::cout << buf
              << "(row counts are identical across modes; on a single-core "
                 "box expect parity)\n";
  }
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
