// Concurrent multi-query serving: the shared QueryRuntime vs back-to-back
// per-query pools.
//
// A batch of Table-1 queries is served two ways over the same YAGO-like
// graph:
//
//   - shared:  a runtime::Server with one process-wide ThreadPool and
//              admission control, at 1/4/16 in-flight queries. In-flight
//              queries' morsel loops interleave fairly on the one pool.
//   - backtoback: the historical mode — each query runs alone with a
//              private pool (EngineOptions::threads), one after another.
//
// Reported per cell: batch wall clock, aggregate throughput (queries/s),
// and p50/p99 end-to-end latency (admission queue wait + execution). On a
// multi-core box the 4-in-flight shared row should beat back-to-back on
// throughput: single-query scaling stalls on planning and the phase
// barriers, and the shared pool backfills those gaps with other queries'
// morsels. The embedding counts are identical in every mode.
//
// Mixed-class mode (--mixed): one latency-class query stream vs N
// continuously re-submitted batch-class queries on one runtime, run twice
// — fair (no service classes: every query is "default", the PR 3
// scheduler) and prioritized (latency weight 16 + a batch in-flight
// quota) — reporting per-class p50/p99 and batch throughput. The
// prioritized run must cut the latency class's p99 below the fair
// baseline while batch throughput stays within a few percent (the quota
// only re-orders batch work, it does not drop it). Recorded as
// BENCH_pr4_priority.json.
//
// Zipf cache mix (--zipf): the Table-1 suite sampled Zipf-skewed into a
// batch of repeats, served twice on one graph — cache off (every run
// cold) and with the answer-graph cache on (repeats of a canonical shape
// reuse the frozen AG and skip phase 1 + burnback). Per-query row counts
// must be identical in both modes; the JSON records split the cached run
// into hit-path and miss-path phase timings (hit-path phase1/burnback
// are 0 by construction) and carry the per-tenant hit/miss/evict
// counters. Recorded as BENCH_pr6_cache.json.
//
// Usage: bench_concurrent [--scale=0.4] [--queries=20] [--timeout=60]
//                         [--inflight_list=1,4,16] [--threads=0]
//                         [--row_budget=0] [--json=<path>]
//        bench_concurrent --mixed [--batch_inflight=16] [--window=5]
//                         [--interval_ms=50] [--latency_weight=16]
//                         [--batch_quota=2] [--scale=0.4] [--threads=0]
//                         [--timeout=60] [--json=<path>]
//        bench_concurrent --zipf [--queries=60] [--zipf_s=1.0]
//                         [--cache_mb=256] [--inflight=4] [--scale=0.4]
//                         [--threads=0] [--timeout=60] [--seed=42]
//                         [--json=<path>]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/harness.h"
#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "exec/engine.h"
#include "query/parser.h"
#include "runtime/server.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/span_kernels.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

std::vector<uint32_t> ParseIntList(const std::string& csv) {
  std::vector<uint32_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<uint32_t>(std::atoi(item.c_str())));
  }
  return out;
}

/// Nearest-rank percentile of `values` (p in [0, 100]).
double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

struct CellResult {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t ok = 0;
  uint64_t total_rows = 0;
};

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

// --- Mixed-class serving (--mixed). ---

struct MixedConfig {
  uint32_t batch_inflight = 16;
  /// The latency tenant is an OPEN-LOOP stream: one query submitted every
  /// interval_seconds for window_seconds, whether or not the previous one
  /// finished. Both modes therefore offer the identical latency load, so
  /// their batch throughputs are directly comparable — a closed loop
  /// (submit-wait-resubmit) would let the prioritized run issue far more
  /// latency queries and masquerade stolen batch CPU as a scheduling
  /// effect. Backed-up arrivals simply overlap; the pile-up shows where
  /// it belongs, in the latency class's own p99.
  double window_seconds = 5.0;
  double interval_seconds = 0.05;
  int warmup_iters = 3;
  uint32_t latency_weight = 16;
  uint32_t batch_quota = 2;
  uint32_t threads = 0;
  double timeout = 60.0;
  /// false = fair baseline (no tenants), true = service classes on.
  bool priority = false;
};

struct MixedResult {
  std::vector<double> latency_ms;  // end-to-end, one per latency iteration
  uint64_t batch_completed = 0;    // batch queries finished in the window
  double window_seconds = 0.0;     // latency stream duration
  bool ok = true;
};

/// Runs one mixed-class scenario: `batch_inflight` load threads keep one
/// batch-class query in flight each (resubmitting on completion) while
/// the calling thread plays the latency tenant's open-loop arrival
/// process, timing every query end-to-end (admission queue wait +
/// execution). Batch throughput is counted over the arrival window only,
/// which has the same length in both modes.
MixedResult RunMixed(const Database& db, const Catalog& cat,
                     const std::string& latency_query,
                     const std::vector<std::string>& batch_queries,
                     const MixedConfig& cfg) {
  runtime::ServerOptions server_options;
  server_options.runtime.pool_threads = cfg.threads;
  // Heavily backed-up latency arrivals (fair mode) overlap; leave them
  // driver room and queue space beyond the batch load.
  server_options.runtime.admission.max_inflight = cfg.batch_inflight + 8;
  server_options.runtime.admission.max_queued = cfg.batch_inflight + 1024;
  server_options.timeout_seconds = cfg.timeout;
  if (cfg.priority) {
    runtime::TenantSpec latency;
    latency.name = "latency";
    latency.weight = cfg.latency_weight;
    runtime::TenantSpec batch;
    batch.name = "batch";
    batch.weight = 1;
    batch.max_inflight = cfg.batch_quota;
    batch.when_at_quota = runtime::QuotaPolicy::kQueue;
    server_options.runtime.admission.tenants = {latency, batch};
  }
  runtime::Server server(db, cat, server_options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batch_completed{0};
  std::vector<std::thread> load;
  load.reserve(cfg.batch_inflight);
  for (uint32_t t = 0; t < cfg.batch_inflight; ++t) {
    load.emplace_back([&, t] {
      size_t i = t;  // stagger the cycle so the mix stays heterogeneous
      while (!stop.load(std::memory_order_relaxed)) {
        auto session = server.Submit(
            batch_queries[i % batch_queries.size()], nullptr, "batch");
        if (!session.ok()) break;  // shutdown race; the window is over
        (*session)->Wait();
        batch_completed.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  // Saturation barrier: every load thread has a query in the system
  // before the first measured latency iteration.
  while (server.runtime().stats().submitted < cfg.batch_inflight) {
    std::this_thread::yield();
  }

  MixedResult result;
  // Warmup: a few closed-loop completions touch every code path before
  // the measured window opens.
  for (int it = 0; it < cfg.warmup_iters && result.ok; ++it) {
    auto session = server.Submit(latency_query, nullptr, "latency");
    if (!session.ok()) {
      result.ok = false;
      break;
    }
    (*session)->Wait();
    if ((*session)->outcome() != runtime::QueryOutcome::kCompleted) {
      result.ok = false;
    }
  }

  const int arrivals = std::max(
      1, static_cast<int>(cfg.window_seconds / cfg.interval_seconds));
  std::vector<std::shared_ptr<runtime::QuerySession>> sessions;
  sessions.reserve(arrivals);
  const uint64_t batch_before = batch_completed.load();
  const auto start = std::chrono::steady_clock::now();
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(cfg.interval_seconds));
  Stopwatch window;
  for (int k = 0; k < arrivals && result.ok; ++k) {
    std::this_thread::sleep_until(start + k * interval);
    auto session = server.Submit(latency_query, nullptr, "latency");
    if (!session.ok()) {
      result.ok = false;
      break;
    }
    sessions.push_back(std::move(session).value());
  }
  // Batch throughput over the arrival window only: same wall length in
  // both modes (the backlog drain below is excluded).
  result.window_seconds = window.ElapsedSeconds();
  result.batch_completed = batch_completed.load() - batch_before;
  for (auto& session : sessions) {
    session->Wait();
    if (session->outcome() != runtime::QueryOutcome::kCompleted) {
      result.ok = false;
    }
    result.latency_ms.push_back(
        (session->queue_seconds() + session->run_seconds()) * 1e3);
  }
  stop.store(true);
  for (std::thread& t : load) t.join();
  return result;
}

int MainMixed(Flags& flags) {
  MixedConfig cfg;
  cfg.batch_inflight =
      static_cast<uint32_t>(flags.GetInt("batch_inflight", 16));
  cfg.window_seconds = flags.GetDouble("window", 5.0);
  cfg.interval_seconds = flags.GetDouble("interval_ms", 50.0) / 1e3;
  cfg.warmup_iters = static_cast<int>(flags.GetInt("warmup_iters", 3));
  cfg.latency_weight =
      static_cast<uint32_t>(flags.GetInt("latency_weight", 16));
  cfg.batch_quota = static_cast<uint32_t>(flags.GetInt("batch_quota", 2));
  cfg.threads = static_cast<uint32_t>(flags.GetInt("threads", 0));
  cfg.timeout = flags.GetDouble("timeout", 60.0);
  const double scale = flags.GetDouble("scale", 0.4);

  YagoLikeConfig config;
  config.scale = scale;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());

  // The latency tenant runs the suite's cheapest query (probed serially);
  // the batch tenants cycle the whole suite.
  const std::vector<std::string> suite = Table1Queries();
  size_t cheapest = 0;
  double cheapest_seconds = -1.0;
  for (size_t i = 0; i < suite.size(); ++i) {
    auto query = SparqlParser::ParseAndBind(suite[i], db);
    if (!query.ok()) continue;
    auto engine = MakeEngine("WF");
    EngineOptions options;
    options.deadline = Deadline::AfterSeconds(cfg.timeout);
    CountingSink sink;
    Stopwatch one;
    auto stats = engine->Run(db, catalog, *query, options, &sink);
    const double seconds = one.ElapsedSeconds();
    if (!stats.ok()) continue;
    if (cheapest_seconds < 0.0 || seconds < cheapest_seconds) {
      cheapest_seconds = seconds;
      cheapest = i;
    }
  }

  const uint32_t pool_threads = ThreadPool::ResolveThreads(cfg.threads);
  std::cout << "=== Mixed-class serving: open-loop latency stream ("
            << cfg.window_seconds << " s window, one suite-query-" << cheapest
            << " arrival per " << cfg.interval_seconds * 1e3 << " ms) vs "
            << cfg.batch_inflight
            << " in-flight batch queries, scale " << scale << " ("
            << db.store().NumTriples() << " triples), pool threads "
            << pool_threads << " ===\n"
            << "priority run: latency weight " << cfg.latency_weight
            << ", batch quota " << cfg.batch_quota << " (kQueue)\n\n";

  MixedConfig fair = cfg;
  fair.priority = false;
  const MixedResult fair_result =
      RunMixed(db, catalog, suite[cheapest], suite, fair);
  MixedConfig prio = cfg;
  prio.priority = true;
  const MixedResult prio_result =
      RunMixed(db, catalog, suite[cheapest], suite, prio);

  JsonResultWriter json;
  char scale_meta[32];
  std::snprintf(scale_meta, sizeof(scale_meta), "%g", config.scale);
  json.SetMeta("bench", "bench_concurrent --mixed");
  json.SetMeta("hardware_threads",
               std::to_string(ThreadPool::ResolveThreads(0)));
  json.SetMeta("cpu_features", KernelCpuFeaturesMeta());
  json.SetMeta("pool_threads", std::to_string(pool_threads));
  json.SetMeta("scale", scale_meta);
  json.SetMeta("batch_inflight", std::to_string(cfg.batch_inflight));
  char window_meta[32];
  std::snprintf(window_meta, sizeof(window_meta), "%g", cfg.window_seconds);
  json.SetMeta("window_seconds", window_meta);
  char interval_meta[32];
  std::snprintf(interval_meta, sizeof(interval_meta), "%g",
                cfg.interval_seconds * 1e3);
  json.SetMeta("latency_interval_ms", interval_meta);
  json.SetMeta("latency_weight", std::to_string(cfg.latency_weight));
  json.SetMeta("batch_quota", std::to_string(cfg.batch_quota));

  TablePrinter table({"mode", "class", "p50 (ms)", "p99 (ms)",
                      "batch done", "batch q/s", "window (s)", "ok"});
  auto report = [&](const char* mode, const MixedResult& result) {
    const double p50 = Percentile(result.latency_ms, 50);
    const double p99 = Percentile(result.latency_ms, 99);
    const double batch_qps =
        result.window_seconds > 0.0
            ? static_cast<double>(result.batch_completed) /
                  result.window_seconds
            : 0.0;
    table.AddRow({mode, "latency", FormatMs(p50), FormatMs(p99),
                  std::to_string(result.batch_completed),
                  TablePrinter::FormatSeconds(batch_qps),
                  TablePrinter::FormatSeconds(result.window_seconds),
                  result.ok ? "yes" : "NO"});
    BenchRecord latency_record;
    latency_record.engine = "WF";
    latency_record.query = std::string("mixed-latency-") + mode;
    latency_record.ok = result.ok;
    latency_record.seconds = result.window_seconds;
    latency_record.output_tuples = result.latency_ms.size();
    latency_record.threads = pool_threads;
    latency_record.p50_seconds = p50 / 1e3;
    latency_record.p99_seconds = p99 / 1e3;
    json.Add(latency_record);
    BenchRecord batch_record;
    batch_record.engine = "WF";
    batch_record.query = std::string("mixed-batch-") + mode;
    batch_record.ok = result.ok;
    batch_record.seconds = result.window_seconds;
    batch_record.output_tuples = result.batch_completed;
    batch_record.threads = pool_threads;
    json.Add(batch_record);
  };
  report("fair", fair_result);
  report("priority", prio_result);
  table.Print(std::cout);

  const double fair_p99 = Percentile(fair_result.latency_ms, 99);
  const double prio_p99 = Percentile(prio_result.latency_ms, 99);
  const double fair_qps =
      fair_result.window_seconds > 0.0
          ? fair_result.batch_completed / fair_result.window_seconds
          : 0.0;
  const double prio_qps =
      prio_result.window_seconds > 0.0
          ? prio_result.batch_completed / prio_result.window_seconds
          : 0.0;
  if (fair_p99 > 0.0 && prio_p99 > 0.0) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\nlatency p99 priority vs fair: %.2fx (lower is better); "
                  "batch throughput ratio: %.2fx\n",
                  prio_p99 / fair_p99,
                  fair_qps > 0.0 ? prio_qps / fair_qps : 0.0);
    std::cout << buf;
  }
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return fair_result.ok && prio_result.ok ? 0 : 1;
}

// --- Zipf cache mix (--zipf). ---

/// One serving pass over the sampled workload plus the runtime's
/// final per-tenant cache counters.
struct ZipfRun {
  std::vector<runtime::QueryReport> reports;
  runtime::TenantStats tenant;
  double wall_seconds = 0.0;
};

int MainZipf(Flags& flags) {
  const double scale = flags.GetDouble("scale", 0.4);
  const double timeout = flags.GetDouble("timeout", 60.0);
  const double zipf_s = flags.GetDouble("zipf_s", 1.0);
  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", 60));
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 0));
  const uint32_t inflight =
      static_cast<uint32_t>(flags.GetInt("inflight", 4));
  const uint64_t cache_mb =
      static_cast<uint64_t>(flags.GetInt("cache_mb", 256));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  YagoLikeConfig config;
  config.scale = scale;
  config.seed = seed;
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());

  // Zipf(s) over the Table-1 suite ranked in suite order: rank r is
  // drawn proportionally to 1/(r+1)^s, so a few shapes dominate the mix
  // the way hot dashboard queries do.
  const std::vector<std::string> suite = Table1Queries();
  std::vector<double> cumulative(suite.size());
  double total = 0.0;
  for (size_t r = 0; r < suite.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), zipf_s);
    cumulative[r] = total;
  }
  Rng rng(seed * 1000003 + 17);
  std::vector<size_t> workload_index;
  std::vector<std::string> workload;
  workload.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    const double u = rng.NextDouble() * total;
    size_t pick = suite.size() - 1;
    for (size_t r = 0; r < cumulative.size(); ++r) {
      if (u <= cumulative[r]) {
        pick = r;
        break;
      }
    }
    workload_index.push_back(pick);
    workload.push_back(suite[pick]);
  }
  std::vector<size_t> frequency(suite.size(), 0);
  for (size_t pick : workload_index) ++frequency[pick];
  size_t distinct = 0;
  for (size_t f : frequency) distinct += f > 0 ? 1 : 0;

  const uint32_t pool_threads = ThreadPool::ResolveThreads(threads);
  std::cout << "=== Zipf cache mix: " << workload.size()
            << " queries over " << distinct << " distinct Table-1 shapes"
            << " (s=" << zipf_s << "), scale " << scale << " ("
            << db.store().NumTriples() << " triples), " << inflight
            << " in-flight, pool threads " << pool_threads
            << ", cache quota " << cache_mb << " MiB ===\n\n";

  auto run_mode = [&](bool cached) {
    runtime::ServerOptions server_options;
    server_options.runtime.pool_threads = threads;
    server_options.runtime.admission.max_inflight = inflight;
    server_options.runtime.admission.max_queued =
        static_cast<uint32_t>(workload.size());
    if (cached) {
      server_options.runtime.admission.ag_cache_bytes = cache_mb << 20;
    }
    server_options.timeout_seconds = timeout;
    runtime::Server server(db, catalog, server_options);
    ZipfRun run;
    Stopwatch wall;
    run.reports = server.RunBatch(workload);
    run.wall_seconds = wall.ElapsedSeconds();
    run.tenant = server.runtime().stats().tenants.at(0);
    return run;
  };
  const ZipfRun cold = run_mode(/*cached=*/false);
  const ZipfRun cached = run_mode(/*cached=*/true);

  // Correctness gate: the cache must change no result. Row counts are
  // compared per batch position.
  bool rows_match = true;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (cold.reports[i].rows != cached.reports[i].rows ||
        cold.reports[i].outcome != cached.reports[i].outcome) {
      rows_match = false;
      std::cerr << "MISMATCH query " << i << " (suite "
                << workload_index[i] << "): cold rows "
                << cold.reports[i].rows << " vs cached rows "
                << cached.reports[i].rows << "\n";
    }
  }

  /// Sums one side (hits or misses) of a cached run's reports.
  struct PathAggregate {
    uint64_t queries = 0;
    uint64_t rows = 0;
    double phase1 = 0.0;
    double burnback = 0.0;
    double phase2 = 0.0;
    std::vector<double> latencies_ms;
  };
  auto aggregate = [](const std::vector<runtime::QueryReport>& reports,
                      bool hits) {
    PathAggregate agg;
    for (const runtime::QueryReport& report : reports) {
      if (report.cache_hit != hits) continue;
      ++agg.queries;
      agg.rows += report.rows;
      agg.phase1 += report.stats.phase1_seconds;
      agg.burnback += report.stats.burnback_seconds;
      agg.phase2 += report.stats.phase2_seconds;
      agg.latencies_ms.push_back(
          (report.queue_seconds + report.run_seconds) * 1e3);
    }
    return agg;
  };
  const PathAggregate hit_path = aggregate(cached.reports, true);
  const PathAggregate miss_path = aggregate(cached.reports, false);
  const PathAggregate cold_path = aggregate(cold.reports, false);

  JsonResultWriter json;
  char scale_meta[32];
  std::snprintf(scale_meta, sizeof(scale_meta), "%g", config.scale);
  char zipf_meta[32];
  std::snprintf(zipf_meta, sizeof(zipf_meta), "%g", zipf_s);
  json.SetMeta("bench", "bench_concurrent --zipf");
  json.SetMeta("hardware_threads",
               std::to_string(ThreadPool::ResolveThreads(0)));
  json.SetMeta("cpu_features", KernelCpuFeaturesMeta());
  json.SetMeta("pool_threads", std::to_string(pool_threads));
  json.SetMeta("scale", scale_meta);
  json.SetMeta("queries", std::to_string(workload.size()));
  json.SetMeta("distinct_queries", std::to_string(distinct));
  json.SetMeta("zipf_s", zipf_meta);
  json.SetMeta("cache_mb", std::to_string(cache_mb));
  json.SetMeta("inflight", std::to_string(inflight));

  auto add_cell = [&](const std::string& name, const ZipfRun& run,
                      const PathAggregate& agg, bool attach_counters) {
    BenchRecord record;
    record.engine = "WF";
    record.query = name;
    record.ok = rows_match;
    record.seconds = run.wall_seconds;
    record.output_tuples = agg.rows;
    record.ag_pairs = agg.queries;
    record.threads = pool_threads;
    record.phase1_seconds = agg.phase1;
    record.burnback_seconds = agg.burnback;
    record.phase2_seconds = agg.phase2;
    record.p50_seconds = Percentile(agg.latencies_ms, 50) / 1e3;
    record.p99_seconds = Percentile(agg.latencies_ms, 99) / 1e3;
    if (attach_counters) {
      record.cache_hits = run.tenant.cache_hits;
      record.cache_misses = run.tenant.cache_misses;
      record.cache_evictions = run.tenant.cache_evictions;
    }
    json.Add(record);
  };
  // ag_pairs doubles as the cell's query count; the phase columns are
  // sums over that side of the split.
  add_cell("zipf-nocache", cold, cold_path, /*attach_counters=*/false);
  add_cell("zipf-cache", cached, hit_path, /*attach_counters=*/true);
  add_cell("zipf-cache-misspath", cached, miss_path,
           /*attach_counters=*/false);

  TablePrinter table({"mode", "queries", "wall (s)", "q/s", "p50 (ms)",
                      "p99 (ms)", "phase1 (s)", "burnback (s)", "hits",
                      "misses", "evict"});
  auto row = [&](const char* mode, const ZipfRun& run,
                 const PathAggregate& agg, bool counters) {
    table.AddRow(
        {mode, std::to_string(agg.queries),
         TablePrinter::FormatSeconds(run.wall_seconds),
         TablePrinter::FormatSeconds(static_cast<double>(workload.size()) /
                                     run.wall_seconds),
         FormatMs(Percentile(agg.latencies_ms, 50)),
         FormatMs(Percentile(agg.latencies_ms, 99)),
         TablePrinter::FormatSeconds(agg.phase1),
         TablePrinter::FormatSeconds(agg.burnback),
         counters ? std::to_string(run.tenant.cache_hits) : "-",
         counters ? std::to_string(run.tenant.cache_misses) : "-",
         counters ? std::to_string(run.tenant.cache_evictions) : "-"});
  };
  row("nocache", cold, cold_path, false);
  row("cache:hits", cached, hit_path, true);
  row("cache:misses", cached, miss_path, true);
  table.Print(std::cout);

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\nrows identical across modes: %s; cached wall vs cold: "
                "%.2fx; hit-path phase1+burnback: %.6f s over %llu hits\n",
                rows_match ? "yes" : "NO",
                cached.wall_seconds > 0.0
                    ? cold.wall_seconds / cached.wall_seconds
                    : 0.0,
                hit_path.phase1 + hit_path.burnback,
                static_cast<unsigned long long>(hit_path.queries));
  std::cout << buf;
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return rows_match ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("mixed")) return MainMixed(flags);
  if (flags.Has("zipf")) return MainZipf(flags);
  const double scale = flags.GetDouble("scale", 0.4);
  const double timeout = flags.GetDouble("timeout", 60.0);
  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", 20));
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 0));
  const int64_t row_budget = flags.GetInt("row_budget", 0);
  std::vector<uint32_t> inflight_list =
      ParseIntList(flags.GetString("inflight_list", "1,4,16"));

  YagoLikeConfig config;
  config.scale = scale;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Stopwatch build_watch;
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());

  // The workload: the Table-1 suite, cycled to the requested batch size.
  const std::vector<std::string> suite = Table1Queries();
  std::vector<std::string> workload;
  workload.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    workload.push_back(suite[i % suite.size()]);
  }

  const uint32_t pool_threads = ThreadPool::ResolveThreads(threads);
  std::cout << "=== Concurrent serving: " << workload.size()
            << " Table-1 queries, scale " << scale << " ("
            << db.store().NumTriples() << " triples, built in "
            << build_watch.ElapsedMillis() << " ms), pool threads "
            << pool_threads << " ===\n\n";

  JsonResultWriter json;
  char scale_meta[32];
  std::snprintf(scale_meta, sizeof(scale_meta), "%g", config.scale);
  json.SetMeta("bench", "bench_concurrent");
  json.SetMeta("hardware_threads",
               std::to_string(ThreadPool::ResolveThreads(0)));
  json.SetMeta("cpu_features", KernelCpuFeaturesMeta());
  json.SetMeta("pool_threads", std::to_string(pool_threads));
  json.SetMeta("scale", scale_meta);
  json.SetMeta("queries", std::to_string(workload.size()));

  auto add_record = [&](const std::string& mode, const CellResult& cell) {
    BenchRecord record;
    record.engine = "WF";
    record.query = mode;
    record.ok = cell.ok == workload.size();
    record.seconds = cell.wall_seconds;
    record.output_tuples = cell.total_rows;
    record.threads = pool_threads;
    record.p50_seconds = cell.p50_ms / 1e3;
    record.p99_seconds = cell.p99_ms / 1e3;
    json.Add(record);
  };

  TablePrinter table({"mode", "in-flight", "wall (s)", "queries/s",
                      "p50 (ms)", "p99 (ms)", "ok", "rows"});

  // --- Back-to-back baseline: private pool per query, no sharing. ---
  CellResult back;
  {
    std::vector<double> latencies;
    Stopwatch wall;
    for (const std::string& text : workload) {
      auto query = SparqlParser::ParseAndBind(text, db);
      if (!query.ok()) continue;
      auto engine = MakeEngine("WF");
      EngineOptions options;
      options.threads = threads;  // private pool (0 = all cores)
      options.deadline = Deadline::AfterSeconds(timeout);
      CountingSink sink;
      Stopwatch one;
      auto stats = engine->Run(db, catalog, *query, options, &sink);
      latencies.push_back(one.ElapsedSeconds() * 1e3);
      if (stats.ok()) {
        ++back.ok;
        back.total_rows += stats->output_tuples;
      }
    }
    back.wall_seconds = wall.ElapsedSeconds();
    back.qps = static_cast<double>(workload.size()) / back.wall_seconds;
    back.p50_ms = Percentile(latencies, 50);
    back.p99_ms = Percentile(latencies, 99);
    table.AddRow({"backtoback", "1", TablePrinter::FormatSeconds(
                                         back.wall_seconds),
                  TablePrinter::FormatSeconds(back.qps),
                  FormatMs(back.p50_ms), FormatMs(back.p99_ms),
                  std::to_string(back.ok) + "/" +
                      std::to_string(workload.size()),
                  TablePrinter::FormatCount(back.total_rows)});
    add_record("backtoback", back);
  }

  // --- Shared runtime at each in-flight level. ---
  double shared4_qps = 0.0;
  for (uint32_t inflight : inflight_list) {
    runtime::ServerOptions server_options;
    server_options.runtime.pool_threads = threads;
    server_options.runtime.admission.max_inflight = inflight;
    // The whole batch may wait: this bench measures scheduling, not load
    // shedding.
    server_options.runtime.admission.max_queued =
        static_cast<uint32_t>(workload.size());
    server_options.timeout_seconds = timeout;
    server_options.row_budget = row_budget > 0 ? row_budget : -1;
    runtime::Server server(db, catalog, server_options);

    Stopwatch wall;
    const std::vector<runtime::QueryReport> reports =
        server.RunBatch(workload);
    CellResult cell;
    cell.wall_seconds = wall.ElapsedSeconds();
    std::vector<double> latencies;
    for (const runtime::QueryReport& report : reports) {
      latencies.push_back((report.queue_seconds + report.run_seconds) * 1e3);
      if (report.outcome == runtime::QueryOutcome::kCompleted ||
          report.outcome == runtime::QueryOutcome::kBudgetExhausted) {
        ++cell.ok;
        cell.total_rows += report.rows;
      }
    }
    cell.qps = static_cast<double>(workload.size()) / cell.wall_seconds;
    cell.p50_ms = Percentile(latencies, 50);
    cell.p99_ms = Percentile(latencies, 99);
    if (inflight == 4) shared4_qps = cell.qps;
    table.AddRow({"shared", std::to_string(inflight),
                  TablePrinter::FormatSeconds(cell.wall_seconds),
                  TablePrinter::FormatSeconds(cell.qps),
                  FormatMs(cell.p50_ms), FormatMs(cell.p99_ms),
                  std::to_string(cell.ok) + "/" +
                      std::to_string(workload.size()),
                  TablePrinter::FormatCount(cell.total_rows)});
    add_record("shared-x" + std::to_string(inflight), cell);
  }
  table.Print(std::cout);

  if (shared4_qps > 0.0 && back.qps > 0.0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\nshared 4-in-flight vs back-to-back throughput: %.2fx\n",
                  shared4_qps / back.qps);
    std::cout << buf
              << "(row counts are identical across modes; on a single-core "
                 "box expect parity)\n";
  }
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
