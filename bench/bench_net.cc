// Socket front-end overhead: the Table-1 mix (plus one factorized
// aggregate) served over a loopback net::SocketServer vs straight
// in-process runtime::Server submission.
//
// Both transports drive the SAME runtime::Server instance, so the diff
// is the wire path alone: frame encode/decode, the bounded send queue,
// and two copies across the kernel loopback. Reported per transport:
// wall clock, queries/s, p50/p99 round-trip latency, and the row total
// (which must be identical — the bench exits nonzero on a mismatch).
//
// Usage: bench_net [--transport=both|socket|in-process] [--retry]
//                  [--scale=0.2] [--seed=42] [--iters=3] [--timeout=60]
//                  [--listen=127.0.0.1:0]      # or unix:/tmp/wf.sock
//                  [--rows_per_batch=1024] [--send_buffer_kb=1024]
//                  [--threads=0] [--json=<path>]
//
// --retry adds a third pass driving the SAME socket server through
// net::RetryingClient with no faults armed, so the recorded
// `socket-retry` cell is the pure bookkeeping overhead of the retry
// layer (budget arithmetic, the counting batch hook) — it must sit
// within noise of the plain `socket` cell. meta.retry joins the
// bench_diff comparability keys so retry recordings only diff against
// retry recordings.
//
// The CI bench-smoke leg runs this tiny (--scale=0.05 --iters=2) and
// self-diffs the JSON with scripts/bench_diff.py; meta.transport is a
// comparability key there, so socket recordings never get diffed
// against in-process ones by accident.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "catalog/catalog.h"
#include "datagen/yago_like.h"
#include "net/client.h"
#include "net/retry_client.h"
#include "net/server.h"
#include "runtime/server.h"
#include "util/flags.h"
#include "util/span_kernels.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

/// Nearest-rank percentile of `values` (p in [0, 100]).
double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

struct TransportResult {
  std::vector<double> latencies_ms;    // one per query run, end to end
  std::vector<uint64_t> rows_by_slot;  // first pass, for the cross-check
  uint64_t total_rows = 0;
  uint64_t ok = 0;
  double wall_seconds = 0.0;
};

/// Closed-loop in-process pass: Submit + Wait per query, like a caller
/// embedding the runtime directly.
TransportResult RunInProcess(runtime::Server& server,
                             const std::vector<std::string>& workload,
                             int iters) {
  TransportResult result;
  result.rows_by_slot.assign(workload.size(), 0);
  Stopwatch wall;
  for (int it = 0; it < iters; ++it) {
    for (size_t i = 0; i < workload.size(); ++i) {
      CountingSink sink;
      Stopwatch one;
      auto session = server.Submit(workload[i], &sink);
      if (!session.ok()) {
        std::cerr << "in-process submit: " << session.status().ToString()
                  << "\n";
        result.latencies_ms.push_back(one.ElapsedMillis());
        continue;
      }
      (*session)->Wait();
      result.latencies_ms.push_back(one.ElapsedMillis());
      if ((*session)->outcome() == runtime::QueryOutcome::kCompleted) {
        ++result.ok;
        result.total_rows += sink.count();
        if (it == 0) result.rows_by_slot[i] = sink.count();
      }
    }
  }
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

/// Closed-loop socket pass: one blocking client on one connection, the
/// whole stream buffered client-side like net_e2e_driver does.
Result<TransportResult> RunSocket(const std::string& address,
                                  const std::vector<std::string>& workload,
                                  int iters) {
  WF_ASSIGN_OR_RETURN(std::unique_ptr<net::Client> client,
                      net::Client::Connect(address));
  TransportResult result;
  result.rows_by_slot.assign(workload.size(), 0);
  Stopwatch wall;
  for (int it = 0; it < iters; ++it) {
    for (size_t i = 0; i < workload.size(); ++i) {
      Stopwatch one;
      auto streamed = client->Run(workload[i]);
      result.latencies_ms.push_back(one.ElapsedMillis());
      if (!streamed.ok()) return streamed.status();  // wire fault: abort
      if (streamed->report.outcome == runtime::QueryOutcome::kCompleted) {
        ++result.ok;
        const uint64_t rows = streamed->report.has_aggregate
                                  ? streamed->report.rows
                                  : streamed->rows.size();
        result.total_rows += rows;
        if (it == 0) result.rows_by_slot[i] = rows;
      }
    }
  }
  result.wall_seconds = wall.ElapsedSeconds();
  WF_RETURN_NOT_OK(client->Goodbye());
  return result;
}

/// Closed-loop retrying-client pass: same workload, same server, but
/// through the RetryingClient wrapper with nothing to retry — what the
/// retry layer costs when the network behaves.
Result<TransportResult> RunSocketRetry(
    const std::string& address,
    const std::vector<std::string>& workload, int iters) {
  net::RetryingClient client(address);
  TransportResult result;
  result.rows_by_slot.assign(workload.size(), 0);
  Stopwatch wall;
  for (int it = 0; it < iters; ++it) {
    for (size_t i = 0; i < workload.size(); ++i) {
      Stopwatch one;
      auto streamed = client.Run(workload[i]);
      result.latencies_ms.push_back(one.ElapsedMillis());
      if (!streamed.ok()) return streamed.status();  // wire fault: abort
      if (streamed->report.outcome == runtime::QueryOutcome::kCompleted) {
        ++result.ok;
        const uint64_t rows = streamed->report.has_aggregate
                                  ? streamed->report.rows
                                  : streamed->rows.size();
        result.total_rows += rows;
        if (it == 0) result.rows_by_slot[i] = rows;
      }
    }
  }
  result.wall_seconds = wall.ElapsedSeconds();
  // The fault-free path must never have burned a retry.
  if (client.stats().transport_retries != 0 ||
      client.stats().rejection_retries != 0 ||
      client.stats().connect_failures != 0) {
    return Status::Internal("retry layer retried on a clean network");
  }
  WF_RETURN_NOT_OK(client.Goodbye());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string transport = flags.GetString("transport", "both");
  const bool want_socket = transport == "both" || transport == "socket";
  const bool want_inproc = transport == "both" || transport == "in-process";
  const bool want_retry = flags.GetBool("retry", false);
  if (!want_socket && !want_inproc) {
    std::cerr << "unknown --transport=" << transport
              << " (both|socket|in-process)\n";
    return 2;
  }
  if (want_retry && !want_socket) {
    std::cerr << "--retry needs the socket transport\n";
    return 2;
  }
  const double scale = flags.GetDouble("scale", 0.2);
  const double timeout = flags.GetDouble("timeout", 60.0);
  const int iters = static_cast<int>(flags.GetInt("iters", 3));
  const uint32_t threads = static_cast<uint32_t>(flags.GetInt("threads", 0));

  YagoLikeConfig config;
  config.scale = scale;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());

  // Table-1 plus one aggregate, so the AGGREGATE frame is on the path.
  std::vector<std::string> workload = Table1Queries();
  workload.push_back(
      "select (count(*) as ?n) where { ?x livesIn ?c . "
      "?c isLocatedIn ?k . }");

  runtime::ServerOptions server_options;
  server_options.runtime.pool_threads = threads;
  server_options.timeout_seconds = timeout;
  runtime::Server server(db, catalog, server_options);

  net::SocketServerOptions net_options;
  net_options.listen = flags.GetString("listen", "127.0.0.1:0");
  net_options.rows_per_batch =
      static_cast<uint32_t>(flags.GetInt("rows_per_batch", 1024));
  net_options.send_buffer_bytes =
      static_cast<uint64_t>(flags.GetInt("send_buffer_kb", 1024)) << 10;
  net::SocketServer net_server(&server, net_options);
  if (want_socket) {
    Status started = net_server.Start();
    if (!started.ok()) {
      std::cerr << started.ToString() << "\n";
      return 1;
    }
  }

  const uint32_t pool_threads = ThreadPool::ResolveThreads(threads);
  std::cout << "=== Socket vs in-process: " << workload.size()
            << " queries x " << iters << " pass(es), scale " << scale
            << " (" << db.store().NumTriples() << " triples), pool threads "
            << pool_threads;
  if (want_socket) {
    std::cout << ", listening on " << net_server.address().ToString();
  }
  std::cout << " ===\n\n";

  TransportResult inproc;
  TransportResult socket_side;
  TransportResult retry_side;
  if (want_inproc) inproc = RunInProcess(server, workload, iters);
  if (want_socket) {
    auto streamed =
        RunSocket(net_server.address().ToString(), workload, iters);
    if (!streamed.ok()) {
      std::cerr << streamed.status().ToString() << "\n";
      net_server.Stop();
      return 1;
    }
    socket_side = std::move(streamed).value();
  }
  if (want_retry) {
    auto streamed =
        RunSocketRetry(net_server.address().ToString(), workload, iters);
    if (!streamed.ok()) {
      std::cerr << streamed.status().ToString() << "\n";
      net_server.Stop();
      return 1;
    }
    retry_side = std::move(streamed).value();
  }
  if (want_socket) net_server.Stop();

  // Correctness gate: neither the wire nor the retry wrapper may change
  // any result.
  bool rows_match = true;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (want_socket && want_inproc &&
        inproc.rows_by_slot[i] != socket_side.rows_by_slot[i]) {
      rows_match = false;
      std::cerr << "MISMATCH query " << i << ": in-process rows "
                << inproc.rows_by_slot[i] << " vs socket rows "
                << socket_side.rows_by_slot[i] << "\n";
    }
    if (want_retry &&
        socket_side.rows_by_slot[i] != retry_side.rows_by_slot[i]) {
      rows_match = false;
      std::cerr << "MISMATCH query " << i << ": socket rows "
                << socket_side.rows_by_slot[i] << " vs socket-retry rows "
                << retry_side.rows_by_slot[i] << "\n";
    }
  }

  JsonResultWriter json;
  char scale_meta[32];
  std::snprintf(scale_meta, sizeof(scale_meta), "%g", config.scale);
  json.SetMeta("bench", "bench_net");
  json.SetMeta("transport", transport);
  json.SetMeta("retry", want_retry ? "on" : "off");
  json.SetMeta("hardware_threads",
               std::to_string(ThreadPool::ResolveThreads(0)));
  json.SetMeta("cpu_features", KernelCpuFeaturesMeta());
  json.SetMeta("pool_threads", std::to_string(pool_threads));
  json.SetMeta("scale", scale_meta);
  json.SetMeta("iters", std::to_string(iters));
  json.SetMeta("rows_per_batch",
               std::to_string(net_options.rows_per_batch));

  TablePrinter table({"transport", "queries", "wall (s)", "q/s",
                      "p50 (ms)", "p99 (ms)", "ok", "rows"});
  const size_t runs = workload.size() * static_cast<size_t>(iters);
  auto report = [&](const std::string& name, const TransportResult& r) {
    const double qps =
        r.wall_seconds > 0.0
            ? static_cast<double>(runs) / r.wall_seconds
            : 0.0;
    const double p50 = Percentile(r.latencies_ms, 50);
    const double p99 = Percentile(r.latencies_ms, 99);
    table.AddRow({name, std::to_string(runs),
                  TablePrinter::FormatSeconds(r.wall_seconds),
                  TablePrinter::FormatSeconds(qps), FormatMs(p50),
                  FormatMs(p99),
                  std::to_string(r.ok) + "/" + std::to_string(runs),
                  TablePrinter::FormatCount(r.total_rows)});
    BenchRecord record;
    record.engine = "WF";
    record.query = name + ":table1-mix";
    record.ok = rows_match && r.ok == runs;
    record.seconds = r.wall_seconds;
    record.output_tuples = r.total_rows;
    record.threads = pool_threads;
    record.p50_seconds = p50 / 1e3;
    record.p99_seconds = p99 / 1e3;
    json.Add(record);
  };
  if (want_inproc) report("in-process", inproc);
  if (want_socket) report("socket", socket_side);
  if (want_retry) report("socket-retry", retry_side);
  table.Print(std::cout);

  if (want_socket && want_inproc && inproc.wall_seconds > 0.0 &&
      socket_side.wall_seconds > 0.0) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\nsocket wall vs in-process: %.2fx; rows identical: %s\n",
                  socket_side.wall_seconds / inproc.wall_seconds,
                  rows_match ? "yes" : "NO");
    std::cout << buf;
  }
  if (want_retry && socket_side.wall_seconds > 0.0 &&
      retry_side.wall_seconds > 0.0) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "socket-retry wall vs socket: %.2fx (fault-free retry "
                  "overhead)\n",
                  retry_side.wall_seconds / socket_side.wall_seconds);
    std::cout << buf;
  }
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return rows_match ? 0 : 1;
}
