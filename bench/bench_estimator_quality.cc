// Cardinality-estimation quality: the planners run on the catalog's
// 1-/2-gram model (paper §4); this bench measures how close the modeled
// per-step extension sizes come to the sizes the generator actually
// materializes, as q-errors (max(est/actual, actual/est)) over the ten
// Table-1 queries.
//
// Usage: bench_estimator_quality [--scale=0.5]

#include <algorithm>
#include <cmath>
#include <iostream>

#include "catalog/estimator.h"
#include "core/generator.h"
#include "datagen/yago_like.h"
#include "planner/cost_model.h"
#include "planner/edgifier.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.5);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "=== Cardinality model quality (planner 2-grams) ===\n";
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "data: " << db.store().NumTriples() << " triples\n\n";

  TablePrinter table(
      {"#", "steps", "q-error median", "q-error max", "est |AG|", "real |AG|"});
  std::vector<std::string> texts = Table1Queries();
  for (size_t i = 0; i < texts.size(); ++i) {
    auto q = SparqlParser::ParseAndBind(texts[i], db);
    if (!q.ok()) return 1;
    CardinalityEstimator est(catalog);
    Edgifier edgifier(*q, est);
    auto plan = edgifier.PlanEdgeOrder();
    if (!plan.ok()) return 1;

    // Modeled per-step sizes.
    PlanCost modeled = SimulateAgPlan(*q, est, plan->edge_order);

    // Actual per-step sizes (pre-burnback adds), via the trace hook.
    std::vector<double> actual;
    GeneratorOptions options;
    options.trace = [&](const GeneratorTraceStep& step) {
      if (step.kind == GeneratorTraceStep::Kind::kExtension) {
        actual.push_back(static_cast<double>(step.pairs_added));
      }
    };
    AgGenerator gen(db, catalog);
    auto result = gen.Generate(*q, *plan, options);
    if (!result.ok()) return 1;

    std::vector<double> qerrors;
    for (size_t s = 0; s < actual.size() && s < modeled.step_edges.size();
         ++s) {
      const double est_size = std::max(modeled.step_edges[s], 1.0);
      const double act_size = std::max(actual[s], 1.0);
      qerrors.push_back(std::max(est_size / act_size, act_size / est_size));
    }
    std::sort(qerrors.begin(), qerrors.end());
    const double median =
        qerrors.empty() ? 0.0 : qerrors[qerrors.size() / 2];
    const double worst = qerrors.empty() ? 0.0 : qerrors.back();

    char med[32], mx[32];
    std::snprintf(med, sizeof(med), "%.2f", median);
    std::snprintf(mx, sizeof(mx), "%.2f", worst);
    table.AddRow({std::to_string(i + 1), std::to_string(qerrors.size()),
                  med, mx,
                  TablePrinter::FormatCount(
                      static_cast<uint64_t>(modeled.ag_edges)),
                  TablePrinter::FormatCount(
                      result->ag->TotalQueryEdgePairs() +
                      result->pairs_burned)});
  }
  table.Print(std::cout);
  std::cout << "(q-error = max(est/actual, actual/est) per extension step;\n"
               " 'real |AG|' counts pre-burnback adds, the quantity the\n"
               " model predicts. Zipf-correlated data keeps q-errors above\n"
               " 1 — the classic estimation gap cost-based planners face)\n";
  return 0;
}
