// Frozen-CSR ablation: phase 2 over the frozen AnswerGraph (CSR spans)
// vs the mutable hash-indexed build form, on defactorization-dominated
// workloads — exactly the cells where the read path is the bill. Records
// per-phase wall times (phase1 / burnback / freeze / phase2) so
// scripts/bench_diff.py can attribute the delta; run once with
// --frozen=0 and once with --frozen=1 into two JSON files and diff them:
//
//   ./bench_csr_freeze --frozen=0 --json=BENCH_pr5_csr_baseline.json
//   ./bench_csr_freeze --frozen=1 --json=BENCH_pr5_csr.json
//   scripts/bench_diff.py BENCH_pr5_csr_baseline.json BENCH_pr5_csr.json
//
// Usage: bench_csr_freeze [--frozen=1] [--scale=1.0] [--reps=3]
//                         [--threads_list=1,0] [--timeout=60]
//                         [--json=<path>]

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/json_writer.h"
#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/span_kernels.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace wireframe;

namespace {

struct Workload {
  std::string id;
  Database db;
  Catalog catalog;
  QueryGraph query;
};

std::vector<uint32_t> ParseThreads(const std::string& csv) {
  std::vector<uint32_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const uint32_t resolved = ThreadPool::ResolveThreads(
        static_cast<uint32_t>(std::atoi(item.c_str())));
    // Dedup after resolution: the default "1,0" collapses to one cell on
    // a single-core host, instead of recording two identical cell keys.
    bool seen = false;
    for (uint32_t t : out) seen |= t == resolved;
    if (!seen) out.push_back(resolved);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool frozen = flags.GetBool("frozen", true);
  const double scale = flags.GetDouble("scale", 1.0);
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const double timeout = flags.GetDouble("timeout", 60.0);
  const std::vector<uint32_t> thread_counts =
      ParseThreads(flags.GetString("threads_list", "1,0"));

  std::cout << "=== Frozen-CSR AnswerGraph vs mutable hash form ("
            << (frozen ? "frozen" : "unfrozen") << ") ===\n\n";

  // Defactorization-dominated cells: small AGs, large embedding sets.
  std::vector<Workload> workloads;
  {
    // Acyclic chain blowup: |iAG| ~ 2n+1 pairs, n^2 embeddings — phase 2
    // re-reads the same spans n times each.
    const uint32_t fan = static_cast<uint32_t>(600 * scale);
    Database db = MakeChainBlowupGraph(std::max(8u, fan),
                                       std::max(8u, fan), /*noise=*/50);
    Catalog cat = Catalog::Build(db.store());
    auto q = SparqlParser::ParseAndBind(
        "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
    if (!q.ok()) return 1;
    workloads.push_back(
        {"chain", std::move(db), std::move(cat), std::move(*q)});
  }
  {
    // Cyclic dense square: phase 2 additionally probes the chord set per
    // candidate binding (Contains — a hash probe unfrozen, a span binary
    // search frozen).
    const uint64_t edges = static_cast<uint64_t>(6000 * scale);
    Database db = MakeRandomGraph(80, 3, std::max<uint64_t>(256, edges),
                                  777);
    Catalog cat = Catalog::Build(db.store());
    auto q = SparqlParser::ParseAndBind(
        "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }",
        db);
    if (!q.ok()) return 1;
    workloads.push_back(
        {"square", std::move(db), std::move(cat), std::move(*q)});
  }
  {
    // Bushy phase 2 over the same square: leaf scans materialize whole
    // edge sets (ForEachPair — a slot scan unfrozen, a dense array walk
    // frozen).
    const uint64_t edges = static_cast<uint64_t>(6000 * scale);
    Database db = MakeRandomGraph(80, 3, std::max<uint64_t>(256, edges),
                                  778);
    Catalog cat = Catalog::Build(db.store());
    auto q = SparqlParser::ParseAndBind(
        "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }",
        db);
    if (!q.ok()) return 1;
    workloads.push_back(
        {"square-bushy", std::move(db), std::move(cat), std::move(*q)});
  }

  JsonResultWriter json;
  json.SetMeta("bench", "bench_csr_freeze");
  json.SetMeta("hardware_threads",
               std::to_string(ThreadPool::ResolveThreads(0)));
  json.SetMeta("cpu_features", KernelCpuFeaturesMeta());
  json.SetMeta("frozen", frozen ? "1" : "0");
  {
    char scale_meta[32];
    std::snprintf(scale_meta, sizeof(scale_meta), "%g", scale);
    json.SetMeta("scale", scale_meta);
  }

  TablePrinter table({"cell", "threads", "total (s)", "phase1 (s)",
                      "burnback (s)", "freeze (s)", "phase2 (s)", "|AG|",
                      "|Embeddings|"});

  for (const Workload& w : workloads) {
    WireframeOptions wf_options;
    wf_options.freeze_ag = frozen;
    wf_options.bushy_phase2 = w.id == "square-bushy";
    for (uint32_t threads : thread_counts) {
      WireframeEngine engine(wf_options);
      double seconds = 0.0, phase1 = 0.0, burnback = 0.0, freeze = 0.0,
             phase2 = 0.0;
      int timed_runs = 0;
      BenchRecord record;
      record.engine = "WF";
      record.query = w.id;
      record.threads = threads;
      bool failed = false;
      for (int rep = 0; rep < std::max(1, reps); ++rep) {
        EngineOptions options;
        options.deadline = Deadline::AfterSeconds(timeout);
        options.threads = threads;
        CountingSink sink;
        auto detail =
            engine.RunDetailed(w.db, w.catalog, w.query, options, &sink);
        if (!detail.ok()) {
          record.timed_out = detail.status().IsTimedOut();
          failed = true;
          break;
        }
        if (rep > 0 || reps == 1) {
          seconds += detail->stats.seconds;
          phase1 += detail->stats.phase1_seconds;
          burnback += detail->stats.burnback_seconds;
          freeze += detail->stats.freeze_seconds;
          phase2 += detail->stats.phase2_seconds;
          ++timed_runs;
        }
        record.edge_walks = detail->stats.edge_walks;
        record.output_tuples = detail->stats.output_tuples;
        record.ag_pairs = detail->stats.ag_pairs;
      }
      if (!failed) {
        const int divisor = std::max(1, timed_runs);
        record.ok = true;
        record.seconds = seconds / divisor;
        record.phase1_seconds = phase1 / divisor;
        record.burnback_seconds = burnback / divisor;
        record.freeze_seconds = freeze / divisor;
        record.phase2_seconds = phase2 / divisor;
        table.AddRow({w.id, std::to_string(threads),
                      TablePrinter::FormatSeconds(record.seconds),
                      TablePrinter::FormatSeconds(record.phase1_seconds),
                      TablePrinter::FormatSeconds(record.burnback_seconds),
                      TablePrinter::FormatSeconds(record.freeze_seconds),
                      TablePrinter::FormatSeconds(record.phase2_seconds),
                      TablePrinter::FormatCount(record.ag_pairs),
                      TablePrinter::FormatCount(record.output_tuples)});
      } else {
        table.AddRow({w.id, std::to_string(threads),
                      TablePrinter::Timeout(), "-", "-", "-", "-", "-",
                      "-"});
      }
      json.Add(record);
    }
  }
  table.Print(std::cout);
  std::cout << "(phase2 is where the frozen CSR pays: identical embeddings"
               " and |AG|,\n read path scans sorted spans instead of"
               " probing hash tables)\n";
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
