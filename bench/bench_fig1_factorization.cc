// Reproduces Fig. 1's claim quantitatively: on the chain query CQ_C the
// answer graph (the factorized result) is dramatically smaller than the
// embedding set, and the gap widens with fan-in x fan-out ("such
// differences are greatly magnified when on a larger scale").
//
// Part 1 checks the figure's exact example (8 AG edges vs 12 embeddings).
// Part 2 sweeps the fan parameters and reports |iAG|, |Embeddings|, the
// factorization ratio, and WF-vs-baseline times.
//
// Usage: bench_fig1_factorization [--max_fan=512] [--timeout=20]
//                                 [--threads=1] [--json=<path>]

#include <iostream>

#include "benchlib/harness.h"
#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/figures.h"
#include "datagen/synthetic.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t max_fan =
      static_cast<uint32_t>(flags.GetInt("max_fan", 512));
  const double timeout = flags.GetDouble("timeout", 20.0);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 1));
  JsonResultWriter json;

  std::cout << "=== Fig. 1: factorization on the chain query CQ_C ===\n\n";

  // Part 1: the paper's exact example graph.
  {
    Database db = MakeFig1Graph();
    Catalog catalog = Catalog::Build(db.store());
    auto q = MakeFig1Query(db);
    if (!q.ok()) return 1;
    WireframeEngine engine;
    CountingSink sink;
    auto stats = engine.Run(db, catalog, *q, EngineOptions{}, &sink);
    if (!stats.ok()) return 1;
    std::cout << "paper example: |iAG| = " << stats->ag_pairs
              << " (paper: 8), |Embeddings| = " << stats->output_tuples
              << " (paper: 12)\n\n";
  }

  // Part 2: parametric sweep.
  TablePrinter table({"fan_in x fan_out", "|iAG|", "|Embeddings|", "ratio",
                      "WF (s)", "NJ (s)", "PG (s)"});
  for (uint32_t fan = 8; fan <= max_fan; fan *= 4) {
    Database db = MakeChainBlowupGraph(fan, fan, /*noise=*/fan / 2);
    Catalog catalog = Catalog::Build(db.store());
    auto q = SparqlParser::ParseAndBind(
        "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
    if (!q.ok()) return 1;

    BenchConfig bench;
    bench.timeout_seconds = timeout;
    bench.repetitions = 2;
    bench.threads = threads;
    Table1Harness harness(db, catalog, bench);

    BenchCell wf = harness.RunCell(*q, "WF");
    BenchCell nj = harness.RunCell(*q, "NJ");
    BenchCell pg = harness.RunCell(*q, "PG");
    if (flags.Has("json")) {
      const std::string id = "fan" + std::to_string(fan);
      json.Add(ToRecord("WF", id, wf));
      json.Add(ToRecord("NJ", id, nj));
      json.Add(ToRecord("PG", id, pg));
    }

    auto cell = [](const BenchCell& c) {
      return c.ok ? TablePrinter::FormatSeconds(c.seconds)
                  : TablePrinter::Timeout();
    };
    const double ratio =
        wf.ok && wf.stats.ag_pairs > 0
            ? static_cast<double>(wf.stats.output_tuples) / wf.stats.ag_pairs
            : 0.0;
    table.AddRow({std::to_string(fan) + " x " + std::to_string(fan),
                  wf.ok ? TablePrinter::FormatCount(wf.stats.ag_pairs) : "?",
                  wf.ok ? TablePrinter::FormatCount(wf.stats.output_tuples)
                        : "?",
                  TablePrinter::FormatSeconds(ratio), cell(wf), cell(nj),
                  cell(pg)});
  }
  table.Print(std::cout);
  std::cout << "(|iAG| grows linearly in the fans; |Embeddings| grows as\n"
               " their product — factorization matters.)\n";
  if (flags.Has("json")) json.WriteTo(flags.GetString("json", ""));
  return 0;
}
