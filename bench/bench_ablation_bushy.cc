// Ablation for the paper's first §6 future-work item: "one has a richer
// plan space when considering bushy plans for both our first and second
// phases." Compares phase 2 of Wireframe in three configurations on all
// ten Table-1 queries:
//   - pipelined left-deep defactorization (the prototype's design),
//   - pipelined + chord filters (cyclic only),
//   - bushy hash-join tree chosen by the subset DP over exact AG stats.
//
// Usage: bench_ablation_bushy [--scale=1.0] [--timeout=30]

#include <iostream>

#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double timeout = flags.GetDouble("timeout", 30.0);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 1.0);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "=== Ablation: bushy vs pipelined defactorization (§6) ===\n";
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "data: " << db.store().NumTriples() << " triples\n\n";

  struct Mode {
    const char* name;
    WireframeOptions options;
  };
  Mode modes[3];
  modes[0].name = "pipelined";
  modes[0].options.chords_in_phase2 = false;
  modes[1].name = "pipelined+chords";
  modes[1].options.chords_in_phase2 = true;
  modes[2].name = "bushy";
  modes[2].options.bushy_phase2 = true;

  TablePrinter table({"#", "mode", "phase2 (s)", "work", "|Embeddings|"});
  std::vector<std::string> texts = Table1Queries();
  for (size_t i = 0; i < texts.size(); ++i) {
    auto q = SparqlParser::ParseAndBind(texts[i], db);
    if (!q.ok()) return 1;
    uint64_t reference = 0;
    for (const Mode& mode : modes) {
      WireframeEngine engine(mode.options);
      CountingSink sink;
      EngineOptions run;
      run.deadline = Deadline::AfterSeconds(timeout);
      auto detail = engine.RunDetailed(db, catalog, *q, run, &sink);
      if (!detail.ok()) {
        table.AddRow({std::to_string(i + 1), mode.name,
                      TablePrinter::Timeout(), "", ""});
        continue;
      }
      if (reference == 0) {
        reference = detail->phase2_stats.emitted;
      } else if (reference != detail->phase2_stats.emitted) {
        std::cerr << "BUG: phase-2 modes disagree on query " << (i + 1)
                  << "\n";
        return 1;
      }
      table.AddRow(
          {std::to_string(i + 1), mode.name,
           TablePrinter::FormatSeconds(detail->stats.phase2_seconds),
           TablePrinter::FormatCount(detail->phase2_stats.extensions),
           TablePrinter::FormatCount(detail->phase2_stats.emitted)});
    }
  }
  table.Print(std::cout);
  std::cout << "('work' = tuple extensions (pipelined) / materialized rows\n"
               " (bushy); pipelined over the iAG is already output-optimal\n"
               " for acyclic CQs — bushy pays where intermediates shrink)\n";
  return 0;
}
