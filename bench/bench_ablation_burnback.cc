// Ablation for the paper's §6 future-work question: is edge burnback
// worth it? "The additional overhead of edge burnback must be balanced
// off against the benefit of obtaining the iAG versus a larger, non-ideal
// AG." Measures, for each Table-1 diamond, phase-1 time with/without
// triangulation and edge burnback against phase-2 (defactorization) time
// over the resulting AG.
//
// Usage: bench_ablation_burnback [--scale=0.2] [--timeout=60]

#include <iostream>

#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/yago_like.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace wireframe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double timeout = flags.GetDouble("timeout", 60.0);
  YagoLikeConfig config;
  config.scale = flags.GetDouble("scale", 0.2);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "=== Ablation: triangulation & edge burnback (paper §6) ===\n";
  Database db = MakeYagoLike(config);
  Catalog catalog = Catalog::Build(db.store());
  std::cout << "data: " << db.store().NumTriples() << " triples\n\n";

  struct Mode {
    const char* name;
    bool triangulate;
    bool edge_burnback;
  };
  const Mode kModes[] = {
      {"node-bb", false, false},
      {"chords", true, false},
      {"chords+edge-bb", true, true},
  };

  TablePrinter table({"#", "mode", "|AG|", "phase1 (s)", "phase2 (s)",
                      "total (s)", "burned"});
  std::vector<std::string> texts = Table1Queries();
  for (size_t i = 5; i < 10; ++i) {
    auto q = SparqlParser::ParseAndBind(texts[i], db);
    if (!q.ok()) return 1;
    for (const Mode& mode : kModes) {
      WireframeOptions options;
      options.triangulate = mode.triangulate;
      options.edge_burnback = mode.edge_burnback;
      WireframeEngine engine(options);
      CountingSink sink;
      EngineOptions run;
      run.deadline = Deadline::AfterSeconds(timeout);
      auto detail = engine.RunDetailed(db, catalog, *q, run, &sink);
      if (!detail.ok()) {
        table.AddRow({std::to_string(i + 1), mode.name,
                      TablePrinter::Timeout(), TablePrinter::Timeout(),
                      TablePrinter::Timeout(), TablePrinter::Timeout(),
                      TablePrinter::Timeout()});
        continue;
      }
      table.AddRow(
          {std::to_string(i + 1), mode.name,
           TablePrinter::FormatCount(detail->stats.ag_pairs),
           TablePrinter::FormatSeconds(detail->stats.phase1_seconds),
           TablePrinter::FormatSeconds(detail->stats.phase2_seconds),
           TablePrinter::FormatSeconds(detail->stats.seconds),
           TablePrinter::FormatCount(detail->pairs_burned)});
    }
  }
  table.Print(std::cout);
  std::cout << "(trade-off: edge burnback adds phase-1 work to shrink |AG|\n"
               " and with it phase-2 work; the paper leaves this balance as\n"
               " future work — here both sides are measurable)\n";
  return 0;
}
