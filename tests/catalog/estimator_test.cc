#include "catalog/estimator.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace wireframe {
namespace {

// A: 10 edges from 10 subjects into 2 objects {x, y};
// B: x and y each start 3 B-edges to distinct targets (6 edges).
Database MakeFanGraph() {
  DatabaseBuilder b;
  LabelId A = b.labels().Intern("A");
  LabelId B = b.labels().Intern("B");
  NodeId x = b.nodes().Intern("x");
  NodeId y = b.nodes().Intern("y");
  for (int i = 0; i < 5; ++i) {
    b.Add(b.nodes().Intern("s" + std::to_string(i)), A, x);
  }
  for (int i = 5; i < 10; ++i) {
    b.Add(b.nodes().Intern("s" + std::to_string(i)), A, y);
  }
  for (int i = 0; i < 3; ++i) {
    b.Add(x, B, b.nodes().Intern("tx" + std::to_string(i)));
    b.Add(y, B, b.nodes().Intern("ty" + std::to_string(i)));
  }
  return std::move(b).Build();
}

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest()
      : db_(MakeFanGraph()),
        cat_(Catalog::Build(db_.store())),
        est_(cat_) {}
  Database db_;
  Catalog cat_;
  CardinalityEstimator est_;
  LabelId A() const { return *db_.LabelOf("A"); }
  LabelId B() const { return *db_.LabelOf("B"); }
};

TEST_F(EstimatorTest, ColdExtensionIsFullScan) {
  ExtensionEstimate e = est_.EstimateExtension(A(), VarEstimate::Unbound(),
                                               VarEstimate::Unbound());
  EXPECT_DOUBLE_EQ(e.matched_edges, 10.0);
  EXPECT_DOUBLE_EQ(e.probes, 1.0);
  EXPECT_DOUBLE_EQ(e.new_src_candidates, 10.0);
  EXPECT_DOUBLE_EQ(e.new_dst_candidates, 2.0);
}

TEST_F(EstimatorTest, AnchoredExtensionUsesExactTwoGram) {
  // Source var holds all distinct objects of A ({x, y}); every B edge
  // starts at one of them, so the 2-gram predicts all 6 B edges.
  VarEstimate src;
  src.bound = true;
  src.candidates = 2.0;
  src.anchor_label = A();
  src.anchor_end = End::kObject;
  ExtensionEstimate e =
      est_.EstimateExtension(B(), src, VarEstimate::Unbound());
  EXPECT_DOUBLE_EQ(e.matched_edges, 6.0);
  EXPECT_DOUBLE_EQ(e.probes, 2.0);
}

TEST_F(EstimatorTest, ShrunkenAnchorScalesLinearly) {
  VarEstimate src;
  src.bound = true;
  src.candidates = 1.0;  // half of A's distinct objects survive
  src.anchor_label = A();
  src.anchor_end = End::kObject;
  ExtensionEstimate e =
      est_.EstimateExtension(B(), src, VarEstimate::Unbound());
  EXPECT_DOUBLE_EQ(e.matched_edges, 3.0);
}

TEST_F(EstimatorTest, UnanchoredBoundVarUsesContainment) {
  VarEstimate src;
  src.bound = true;
  src.candidates = 1.0;  // no anchor: assume drawn from B's own subjects
  ExtensionEstimate e =
      est_.EstimateExtension(B(), src, VarEstimate::Unbound());
  // B has 2 distinct subjects; 1 candidate -> half the edges.
  EXPECT_DOUBLE_EQ(e.matched_edges, 3.0);
}

TEST_F(EstimatorTest, BothEndsBoundMultipliesSelectivities) {
  VarEstimate src, dst;
  src.bound = dst.bound = true;
  src.candidates = 1.0;  // of B's 2 subjects
  dst.candidates = 3.0;  // of B's 6 objects
  ExtensionEstimate e = est_.EstimateExtension(B(), src, dst);
  EXPECT_DOUBLE_EQ(e.matched_edges, 6.0 * 0.5 * 0.5);
  EXPECT_DOUBLE_EQ(e.probes, 1.0);  // probes from the smaller side
}

TEST_F(EstimatorTest, CandidatesNeverGrowWhenBound) {
  VarEstimate src;
  src.bound = true;
  src.candidates = 1.0;
  src.anchor_label = A();
  src.anchor_end = End::kObject;
  ExtensionEstimate e =
      est_.EstimateExtension(B(), src, VarEstimate::Unbound());
  EXPECT_LE(e.new_src_candidates, 1.0);
}

TEST_F(EstimatorTest, UnknownLabelYieldsZero) {
  // A label with no edges (use a fresh out-of-range-free id): emulate by
  // building a graph where label exists but has zero edges is impossible
  // through DatabaseBuilder, so check the zero-total guard via EdgeCount.
  VarEstimate unbound = VarEstimate::Unbound();
  ExtensionEstimate e = est_.EstimateExtension(A(), unbound, unbound);
  EXPECT_GT(e.matched_edges, 0.0);
}

TEST_F(EstimatorTest, JoinFanout) {
  // From A's object end into B's subject end: join count = 6 products
  // (x: 5*3? no — x has cnt_A^O=5, cnt_B^S=3 -> 15; y likewise) = 30;
  // divided by A's 2 distinct objects = 15 per node.
  EXPECT_DOUBLE_EQ(est_.JoinFanout(A(), End::kObject, B(), End::kSubject),
                   15.0);
}

}  // namespace
}  // namespace wireframe
