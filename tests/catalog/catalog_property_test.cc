// Property tests: catalog statistics against brute-force recomputation on
// random graphs, across seeds (parameterized).

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"

namespace wireframe {
namespace {

class CatalogPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CatalogPropertyTest, OneGramsMatchBruteForce) {
  Database db = MakeRandomGraph(40, 5, 600, GetParam());
  Catalog cat = Catalog::Build(db.store());
  for (LabelId p = 0; p < db.store().NumPredicates(); ++p) {
    std::set<NodeId> subjects, objects;
    uint64_t edges = 0;
    db.store().ForEachEdge(p, [&](NodeId s, NodeId o) {
      subjects.insert(s);
      objects.insert(o);
      ++edges;
    });
    EXPECT_EQ(cat.EdgeCount(p), edges);
    EXPECT_EQ(cat.DistinctCount(p, End::kSubject), subjects.size());
    EXPECT_EQ(cat.DistinctCount(p, End::kObject), objects.size());
  }
}

TEST_P(CatalogPropertyTest, TwoGramsMatchBruteForce) {
  Database db = MakeRandomGraph(30, 4, 400, GetParam() + 1000);
  Catalog cat = Catalog::Build(db.store());
  const uint32_t n = db.store().NumPredicates();

  // Brute force: per (label, end), node -> count.
  auto counts = [&](LabelId p, End end) {
    std::map<NodeId, uint64_t> m;
    db.store().ForEachEdge(p, [&](NodeId s, NodeId o) {
      ++m[end == End::kSubject ? s : o];
    });
    return m;
  };

  for (LabelId p = 0; p < n; ++p) {
    for (LabelId q = 0; q < n; ++q) {
      for (End ep : {End::kSubject, End::kObject}) {
        for (End eq : {End::kSubject, End::kObject}) {
          auto mp = counts(p, ep);
          auto mq = counts(q, eq);
          uint64_t join = 0, matched = 0, shared = 0;
          for (const auto& [node, cp] : mp) {
            auto it = mq.find(node);
            if (it == mq.end()) continue;
            join += cp * it->second;
            matched += cp;
            ++shared;
          }
          EXPECT_EQ(cat.JoinCount(p, ep, q, eq), join)
              << "p=" << p << " q=" << q;
          EXPECT_EQ(cat.MatchedEdges(p, ep, q, eq), matched);
          EXPECT_EQ(cat.SharedDistinct(p, ep, q, eq), shared);
        }
      }
    }
  }
}

TEST_P(CatalogPropertyTest, TwoGramSymmetries) {
  Database db = MakeRandomGraph(35, 4, 500, GetParam() + 2000);
  Catalog cat = Catalog::Build(db.store());
  const uint32_t n = db.store().NumPredicates();
  for (LabelId p = 0; p < n; ++p) {
    for (LabelId q = 0; q < n; ++q) {
      for (End ep : {End::kSubject, End::kObject}) {
        for (End eq : {End::kSubject, End::kObject}) {
          // JoinCount and SharedDistinct are symmetric in their two slots.
          EXPECT_EQ(cat.JoinCount(p, ep, q, eq), cat.JoinCount(q, eq, p, ep));
          EXPECT_EQ(cat.SharedDistinct(p, ep, q, eq),
                    cat.SharedDistinct(q, eq, p, ep));
          // Semijoin survivors never exceed either total.
          EXPECT_LE(cat.MatchedEdges(p, ep, q, eq), cat.EdgeCount(p));
          EXPECT_LE(cat.MatchedEdges(p, ep, q, eq),
                    cat.JoinCount(p, ep, q, eq));
          // Shared distinct bounded by both distinct counts.
          EXPECT_LE(cat.SharedDistinct(p, ep, q, eq),
                    cat.DistinctCount(p, ep));
          EXPECT_LE(cat.SharedDistinct(p, ep, q, eq),
                    cat.DistinctCount(q, eq));
        }
      }
    }
  }
}

TEST_P(CatalogPropertyTest, DiagonalIdentities) {
  Database db = MakeRandomGraph(25, 3, 300, GetParam() + 3000);
  Catalog cat = Catalog::Build(db.store());
  for (LabelId p = 0; p < db.store().NumPredicates(); ++p) {
    for (End end : {End::kSubject, End::kObject}) {
      // Against itself: every edge is matched; shared = distinct.
      EXPECT_EQ(cat.MatchedEdges(p, end, p, end), cat.EdgeCount(p));
      EXPECT_EQ(cat.SharedDistinct(p, end, p, end),
                cat.DistinctCount(p, end));
      // Σ c² >= (Σ c)² / n  (Cauchy–Schwarz sanity on the self-join).
      const double c = static_cast<double>(cat.EdgeCount(p));
      const double d = static_cast<double>(cat.DistinctCount(p, end));
      if (d > 0) {
        EXPECT_GE(static_cast<double>(cat.JoinCount(p, end, p, end)) + 1e-9,
                  c * c / d);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CatalogPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 1234, 9999));

}  // namespace
}  // namespace wireframe
