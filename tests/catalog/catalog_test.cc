#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace wireframe {
namespace {

// Graph:  A: 1->2, 1->3, 4->2 ;  B: 2->5, 3->5, 6->7
Database MakeGraph() {
  DatabaseBuilder b;
  for (int i = 1; i <= 7; ++i) b.nodes().Intern("n" + std::to_string(i));
  auto n = [&b](int i) -> NodeId {
    return b.nodes().Lookup("n" + std::to_string(i));
  };
  LabelId a = b.labels().Intern("A");
  LabelId bb = b.labels().Intern("B");
  b.Add(n(1), a, n(2));
  b.Add(n(1), a, n(3));
  b.Add(n(4), a, n(2));
  b.Add(n(2), bb, n(5));
  b.Add(n(3), bb, n(5));
  b.Add(n(6), bb, n(7));
  return std::move(b).Build();
}

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : db_(MakeGraph()), cat_(Catalog::Build(db_.store())) {}
  Database db_;
  Catalog cat_;
  LabelId A() const { return *db_.LabelOf("A"); }
  LabelId B() const { return *db_.LabelOf("B"); }
};

TEST_F(CatalogTest, OneGramEdgeCounts) {
  EXPECT_EQ(cat_.EdgeCount(A()), 3u);
  EXPECT_EQ(cat_.EdgeCount(B()), 3u);
  EXPECT_EQ(cat_.num_labels(), 2u);
  EXPECT_EQ(cat_.num_triples(), 6u);
}

TEST_F(CatalogTest, OneGramDistinctCounts) {
  EXPECT_EQ(cat_.DistinctCount(A(), End::kSubject), 2u);  // {1,4}
  EXPECT_EQ(cat_.DistinctCount(A(), End::kObject), 2u);   // {2,3}
  EXPECT_EQ(cat_.DistinctCount(B(), End::kSubject), 3u);  // {2,3,6}
  EXPECT_EQ(cat_.DistinctCount(B(), End::kObject), 2u);   // {5,7}
}

TEST_F(CatalogTest, AvgDegree) {
  EXPECT_DOUBLE_EQ(cat_.AvgDegree(A(), End::kSubject), 1.5);
  EXPECT_DOUBLE_EQ(cat_.AvgDegree(A(), End::kObject), 1.5);
  EXPECT_DOUBLE_EQ(cat_.AvgDegree(B(), End::kSubject), 1.0);
}

TEST_F(CatalogTest, TwoGramJoinCountObjectSubject) {
  // A.object ⋈ B.subject: shared nodes {2, 3};
  // node 2: cnt_A^O = 2 (1->2, 4->2), cnt_B^S = 1  -> 2
  // node 3: cnt_A^O = 1,               cnt_B^S = 1 -> 1
  EXPECT_EQ(cat_.JoinCount(A(), End::kObject, B(), End::kSubject), 3u);
  // Symmetric call flips roles but not the total product sum.
  EXPECT_EQ(cat_.JoinCount(B(), End::kSubject, A(), End::kObject), 3u);
}

TEST_F(CatalogTest, TwoGramMatchedEdges) {
  // A-edges whose object also starts a B-edge: all 3 (objects 2,2,3).
  EXPECT_EQ(cat_.MatchedEdges(A(), End::kObject, B(), End::kSubject), 3u);
  // B-edges whose subject is an A-object: 2->5 and 3->5 but not 6->7.
  EXPECT_EQ(cat_.MatchedEdges(B(), End::kSubject, A(), End::kObject), 2u);
}

TEST_F(CatalogTest, TwoGramSharedDistinct) {
  EXPECT_EQ(cat_.SharedDistinct(A(), End::kObject, B(), End::kSubject), 2u);
  EXPECT_EQ(cat_.SharedDistinct(A(), End::kSubject, B(), End::kSubject), 0u);
  // Diagonal: shared with itself = distinct count.
  EXPECT_EQ(cat_.SharedDistinct(A(), End::kObject, A(), End::kObject), 2u);
}

TEST_F(CatalogTest, DiagonalJoinCountIsSumOfSquares) {
  // A.object with itself: node 2 -> 2*2, node 3 -> 1*1.
  EXPECT_EQ(cat_.JoinCount(A(), End::kObject, A(), End::kObject), 5u);
  // Matched edges against itself: every edge.
  EXPECT_EQ(cat_.MatchedEdges(A(), End::kObject, A(), End::kObject), 3u);
}

TEST_F(CatalogTest, SubjectSubjectJoin) {
  // A.subject ⋈ B.subject: no shared node ({1,4} vs {2,3,6}).
  EXPECT_EQ(cat_.JoinCount(A(), End::kSubject, B(), End::kSubject), 0u);
}

TEST_F(CatalogTest, MemoryBytesIsPositive) {
  EXPECT_GT(cat_.MemoryBytes(), 0u);
}

TEST(CatalogEmptyTest, EmptyStore) {
  TripleStoreBuilder b;
  TripleStore store = std::move(b).Build();
  Catalog cat = Catalog::Build(store);
  EXPECT_EQ(cat.num_labels(), 0u);
  EXPECT_EQ(cat.num_triples(), 0u);
}

}  // namespace
}  // namespace wireframe
