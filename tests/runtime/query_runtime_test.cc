// Admission control and session lifecycle of the shared QueryRuntime:
// reject vs queue vs block policies, per-query row budgets and deadlines,
// and cooperative cancellation while queued and mid-phase. These run
// under the TSan CI job (smoke label): every test drives real engine Runs
// from multiple driver threads against one shared pool.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "query/parser.h"
#include "runtime/query_runtime.h"
#include "runtime/server.h"

namespace wireframe {
namespace runtime {
namespace {

/// Blocks the engine inside phase 2 on the first emitted row until the
/// test releases it — the deterministic way to hold a query "running"
/// while the test probes admission control or cancels mid-phase.
class GateSink : public Sink {
 public:
  bool Emit(const std::vector<NodeId>&) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) {
      started_ = true;
      started_cv_.notify_all();
    }
    release_cv_.wait(lock, [&] { return released_; });
    ++count_;
    return true;
  }
  uint64_t count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  /// Blocks until the engine delivered the first row.
  void WaitStarted() {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [&] { return started_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable started_cv_;
  std::condition_variable release_cv_;
  bool started_ = false;
  bool released_ = false;
  uint64_t count_ = 0;
};

/// Shared test workload: a chain query with a 40k-embedding blow-up, big
/// enough that cancellation and budgets land mid-enumeration.
class QueryRuntimeTest : public ::testing::Test {
 protected:
  QueryRuntimeTest()
      : db_(MakeChainBlowupGraph(200, 200, /*noise=*/20)),
        cat_(Catalog::Build(db_.store())) {
    auto q = SparqlParser::ParseAndBind(
        "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db_);
    EXPECT_TRUE(q.ok());
    query_ = std::move(q).value();
  }

  QueryRequest Request(Sink* sink = nullptr) const {
    QueryRequest request;
    request.db = &db_;
    request.catalog = &cat_;
    request.query = query_;
    request.sink = sink;
    return request;
  }

  Database db_;
  Catalog cat_;
  QueryGraph query_;
};

RuntimeOptions SmallRuntime(uint32_t max_inflight, uint32_t max_queued) {
  RuntimeOptions options;
  options.pool_threads = 2;
  options.admission.max_inflight = max_inflight;
  options.admission.max_queued = max_queued;
  return options;
}

TEST_F(QueryRuntimeTest, RunsOneQueryToCompletion) {
  QueryRuntime runtime(SmallRuntime(2, 4));
  auto session = runtime.Submit(Request());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCompleted);
  EXPECT_EQ((*session)->rows_emitted(), 200u * 200u);
  EXPECT_EQ((*session)->stats().output_tuples, 200u * 200u);
  EXPECT_TRUE((*session)->status().ok());
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(QueryRuntimeTest, UnknownEngineIsRejectedAtSubmit) {
  QueryRuntime runtime(SmallRuntime(1, 0));
  QueryRequest request = Request();
  request.engine = "nope";
  auto session = runtime.Submit(std::move(request));
  EXPECT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsInvalidArgument());
}

TEST_F(QueryRuntimeTest, SaturatedRuntimeRejectsWhenQueueIsZero) {
  QueryRuntime runtime(SmallRuntime(/*max_inflight=*/1, /*max_queued=*/0));
  GateSink gate;
  auto running = runtime.Submit(Request(&gate));
  ASSERT_TRUE(running.ok());
  gate.WaitStarted();  // the single driver slot is now provably occupied

  auto rejected = runtime.Submit(Request());
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_EQ(runtime.stats().rejected, 1u);

  gate.Release();
  (*running)->Wait();
  EXPECT_EQ((*running)->outcome(), QueryOutcome::kCompleted);
}

TEST_F(QueryRuntimeTest, SecondQueryQueuesThenRuns) {
  QueryRuntime runtime(SmallRuntime(/*max_inflight=*/1, /*max_queued=*/1));
  GateSink gate;
  auto first = runtime.Submit(Request(&gate));
  ASSERT_TRUE(first.ok());
  gate.WaitStarted();

  auto queued = runtime.Submit(Request());
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_FALSE((*queued)->done()) << "must wait behind the gated query";
  // A third submission overflows the queue and is shed.
  auto shed = runtime.Submit(Request());
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());

  gate.Release();
  (*queued)->Wait();
  EXPECT_EQ((*queued)->outcome(), QueryOutcome::kCompleted);
  EXPECT_GE((*queued)->queue_seconds(), 0.0);
}

TEST_F(QueryRuntimeTest, BlockWhenFullWaitsInsteadOfRejecting) {
  RuntimeOptions options = SmallRuntime(/*max_inflight=*/1, /*max_queued=*/0);
  options.admission.block_when_full = true;
  QueryRuntime runtime(options);
  GateSink gate;
  auto first = runtime.Submit(Request(&gate));
  ASSERT_TRUE(first.ok());
  gate.WaitStarted();

  std::atomic<bool> second_admitted{false};
  std::thread submitter([&] {
    auto second = runtime.Submit(Request());
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    second_admitted.store(true);
    (*second)->Wait();
    EXPECT_EQ((*second)->outcome(), QueryOutcome::kCompleted);
  });
  // The submitter must be blocked while the slot is held.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_admitted.load());
  gate.Release();
  submitter.join();
  EXPECT_EQ(runtime.stats().rejected, 0u);
}

TEST_F(QueryRuntimeTest, RowBudgetStopsTheRunAndReportsExhaustion) {
  RuntimeOptions options = SmallRuntime(2, 4);
  options.admission.default_row_budget = 100;
  QueryRuntime runtime(options);
  auto session = runtime.Submit(Request());
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kBudgetExhausted);
  EXPECT_EQ((*session)->rows_emitted(), 100u);
  EXPECT_TRUE((*session)->status().ok()) << "budget stop is not an error";
}

TEST_F(QueryRuntimeTest, ExactBudgetResultCompletesNaturally) {
  RuntimeOptions options = SmallRuntime(2, 4);
  QueryRuntime runtime(options);
  QueryRequest request = Request();
  request.row_budget = 200 * 200;  // exactly the result size
  auto session = runtime.Submit(std::move(request));
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCompleted)
      << "a budget equal to the result size is not exhaustion";
  EXPECT_EQ((*session)->rows_emitted(), 200u * 200u);
}

TEST_F(QueryRuntimeTest, PerRequestRowBudgetOverridesDefault) {
  RuntimeOptions options = SmallRuntime(2, 4);
  options.admission.default_row_budget = 100;
  QueryRuntime runtime(options);
  QueryRequest request = Request();
  request.row_budget = 0;  // explicit unlimited beats the default
  auto session = runtime.Submit(std::move(request));
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCompleted);
  EXPECT_EQ((*session)->rows_emitted(), 200u * 200u);
}

TEST_F(QueryRuntimeTest, DefaultDeadlineTimesOutTheRun) {
  RuntimeOptions options = SmallRuntime(1, 0);
  options.admission.default_timeout_seconds = 1e-4;
  QueryRuntime runtime(options);
  auto session = runtime.Submit(Request());
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kTimedOut);
  EXPECT_TRUE((*session)->status().IsTimedOut());
}

TEST_F(QueryRuntimeTest, CancelMidPhaseStopsTheQuery) {
  QueryRuntime runtime(SmallRuntime(1, 0));
  GateSink gate;
  auto session = runtime.Submit(Request(&gate));
  ASSERT_TRUE(session.ok());
  gate.WaitStarted();  // provably inside phase-2 enumeration
  (*session)->Cancel();
  gate.Release();
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCancelled);
  EXPECT_TRUE((*session)->status().IsCancelled())
      << (*session)->status().ToString();
  EXPECT_LT((*session)->rows_emitted(), 200u * 200u);
}

TEST_F(QueryRuntimeTest, CancelWhileQueuedNeverRuns) {
  QueryRuntime runtime(SmallRuntime(/*max_inflight=*/1, /*max_queued=*/1));
  GateSink gate;
  auto running = runtime.Submit(Request(&gate));
  ASSERT_TRUE(running.ok());
  gate.WaitStarted();
  auto queued = runtime.Submit(Request());
  ASSERT_TRUE(queued.ok());
  (*queued)->Cancel();

  // The cancelled session stops holding its admission slot: the next
  // Submit reaps it (finishing it with kCancelled) and takes the slot.
  auto replacement = runtime.Submit(Request());
  ASSERT_TRUE(replacement.ok()) << replacement.status().ToString();
  EXPECT_TRUE((*queued)->done());
  EXPECT_EQ((*queued)->outcome(), QueryOutcome::kCancelled);
  EXPECT_EQ((*queued)->rows_emitted(), 0u);

  gate.Release();
  (*running)->Wait();
  EXPECT_EQ((*running)->outcome(), QueryOutcome::kCompleted);
  (*replacement)->Wait();
  EXPECT_EQ((*replacement)->outcome(), QueryOutcome::kCompleted);
}

// Destroying the runtime while a submitter is parked in Submit
// (block_when_full) must hand that submitter a clean Cancelled-or-
// admitted outcome, never a use-after-free (TSan guards this).
TEST_F(QueryRuntimeTest, ShutdownReleasesBlockedSubmitter) {
  GateSink gate;
  std::thread submitter;
  Status second_status;
  std::shared_ptr<QuerySession> second_session;
  {
    RuntimeOptions options = SmallRuntime(/*max_inflight=*/1,
                                          /*max_queued=*/0);
    options.admission.block_when_full = true;
    QueryRuntime runtime(options);
    auto running = runtime.Submit(Request(&gate));
    ASSERT_TRUE(running.ok());
    gate.WaitStarted();
    submitter = std::thread([&] {
      auto second = runtime.Submit(Request());
      if (second.ok()) {
        second_session = std::move(second).value();
      } else {
        second_status = second.status();
      }
    });
    while (runtime.waiting_submitters() == 0) {
      std::this_thread::yield();  // provably parked before teardown
    }
    gate.Release();
    // Scope end: the destructor must drain the parked submitter before
    // members die, then cancel/finish whatever it still holds.
  }
  submitter.join();
  if (second_session != nullptr) {
    // Admitted in the race window before shutdown: must still be
    // finished by the destructor.
    EXPECT_TRUE(second_session->done());
  } else {
    EXPECT_TRUE(second_status.IsCancelled()) << second_status.ToString();
  }
}

TEST_F(QueryRuntimeTest, ShutdownFinishesEverySession) {
  std::vector<std::shared_ptr<QuerySession>> sessions;
  {
    QueryRuntime runtime(SmallRuntime(/*max_inflight=*/1, /*max_queued=*/8));
    for (int i = 0; i < 6; ++i) {
      auto session = runtime.Submit(Request());
      ASSERT_TRUE(session.ok());
      sessions.push_back(std::move(session).value());
    }
    // Destructor: cancels what is still queued, revokes what runs.
  }
  for (const auto& session : sessions) {
    EXPECT_TRUE(session->done());
    const QueryOutcome outcome = session->outcome();
    EXPECT_TRUE(outcome == QueryOutcome::kCompleted ||
                outcome == QueryOutcome::kCancelled)
        << QueryOutcomeName(outcome);
  }
}

TEST_F(QueryRuntimeTest, ServerBatchReportsMatchSequentialRuns) {
  ServerOptions options;
  options.runtime = SmallRuntime(/*max_inflight=*/3, /*max_queued=*/16);
  Server server(db_, cat_, options);
  const std::string text =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  std::vector<std::string> batch = {text, "select * where { broken",
                                    text, text};
  const std::vector<QueryReport> reports = server.RunBatch(batch);
  ASSERT_EQ(reports.size(), 4u);
  for (size_t i : {size_t{0}, size_t{2}, size_t{3}}) {
    EXPECT_TRUE(reports[i].admitted);
    EXPECT_EQ(reports[i].outcome, QueryOutcome::kCompleted) << "query " << i;
    EXPECT_EQ(reports[i].rows, 200u * 200u) << "query " << i;
  }
  EXPECT_FALSE(reports[1].admitted);
  EXPECT_FALSE(reports[1].status.ok());
}

}  // namespace
}  // namespace runtime
}  // namespace wireframe
