// Admission control and session lifecycle of the shared QueryRuntime:
// reject vs queue vs block policies, per-query row budgets and deadlines,
// and cooperative cancellation while queued and mid-phase. These run
// under the TSan CI job (smoke label): every test drives real engine Runs
// from multiple driver threads against one shared pool.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "query/parser.h"
#include "runtime/query_runtime.h"
#include "runtime/server.h"

namespace wireframe {
namespace runtime {
namespace {

/// Blocks the engine inside phase 2 on the first emitted row until the
/// test releases it — the deterministic way to hold a query "running"
/// while the test probes admission control or cancels mid-phase.
class GateSink : public Sink {
 public:
  bool Emit(const std::vector<NodeId>&) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) {
      started_ = true;
      started_cv_.notify_all();
    }
    release_cv_.wait(lock, [&] { return released_; });
    ++count_;
    return true;
  }
  uint64_t count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  /// Blocks until the engine delivered the first row.
  void WaitStarted() {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [&] { return started_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable started_cv_;
  std::condition_variable release_cv_;
  bool started_ = false;
  bool released_ = false;
  uint64_t count_ = 0;
};

/// Shared test workload: a chain query with a 40k-embedding blow-up, big
/// enough that cancellation and budgets land mid-enumeration.
class QueryRuntimeTest : public ::testing::Test {
 protected:
  QueryRuntimeTest()
      : db_(MakeChainBlowupGraph(200, 200, /*noise=*/20)),
        cat_(Catalog::Build(db_.store())) {
    auto q = SparqlParser::ParseAndBind(
        "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db_);
    EXPECT_TRUE(q.ok());
    query_ = std::move(q).value();
  }

  QueryRequest Request(Sink* sink = nullptr) const {
    QueryRequest request;
    request.db = &db_;
    request.catalog = &cat_;
    request.query = query_;
    request.sink = sink;
    return request;
  }

  Database db_;
  Catalog cat_;
  QueryGraph query_;
};

RuntimeOptions SmallRuntime(uint32_t max_inflight, uint32_t max_queued) {
  RuntimeOptions options;
  options.pool_threads = 2;
  options.admission.max_inflight = max_inflight;
  options.admission.max_queued = max_queued;
  return options;
}

TEST_F(QueryRuntimeTest, RunsOneQueryToCompletion) {
  QueryRuntime runtime(SmallRuntime(2, 4));
  auto session = runtime.Submit(Request());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCompleted);
  EXPECT_EQ((*session)->rows_emitted(), 200u * 200u);
  EXPECT_EQ((*session)->stats().output_tuples, 200u * 200u);
  EXPECT_TRUE((*session)->status().ok());
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(QueryRuntimeTest, UnknownEngineIsRejectedAtSubmit) {
  QueryRuntime runtime(SmallRuntime(1, 0));
  QueryRequest request = Request();
  request.engine = "nope";
  auto session = runtime.Submit(std::move(request));
  EXPECT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsInvalidArgument());
}

TEST_F(QueryRuntimeTest, SaturatedRuntimeRejectsWhenQueueIsZero) {
  QueryRuntime runtime(SmallRuntime(/*max_inflight=*/1, /*max_queued=*/0));
  GateSink gate;
  auto running = runtime.Submit(Request(&gate));
  ASSERT_TRUE(running.ok());
  gate.WaitStarted();  // the single driver slot is now provably occupied

  auto rejected = runtime.Submit(Request());
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_EQ(runtime.stats().rejected, 1u);

  gate.Release();
  (*running)->Wait();
  EXPECT_EQ((*running)->outcome(), QueryOutcome::kCompleted);
}

TEST_F(QueryRuntimeTest, SecondQueryQueuesThenRuns) {
  QueryRuntime runtime(SmallRuntime(/*max_inflight=*/1, /*max_queued=*/1));
  GateSink gate;
  auto first = runtime.Submit(Request(&gate));
  ASSERT_TRUE(first.ok());
  gate.WaitStarted();

  auto queued = runtime.Submit(Request());
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_FALSE((*queued)->done()) << "must wait behind the gated query";
  // A third submission overflows the queue and is shed.
  auto shed = runtime.Submit(Request());
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());

  gate.Release();
  (*queued)->Wait();
  EXPECT_EQ((*queued)->outcome(), QueryOutcome::kCompleted);
  EXPECT_GE((*queued)->queue_seconds(), 0.0);
}

TEST_F(QueryRuntimeTest, BlockWhenFullWaitsInsteadOfRejecting) {
  RuntimeOptions options = SmallRuntime(/*max_inflight=*/1, /*max_queued=*/0);
  options.admission.block_when_full = true;
  QueryRuntime runtime(options);
  GateSink gate;
  auto first = runtime.Submit(Request(&gate));
  ASSERT_TRUE(first.ok());
  gate.WaitStarted();

  std::atomic<bool> second_admitted{false};
  std::thread submitter([&] {
    auto second = runtime.Submit(Request());
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    second_admitted.store(true);
    (*second)->Wait();
    EXPECT_EQ((*second)->outcome(), QueryOutcome::kCompleted);
  });
  // The submitter must be blocked while the slot is held.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_admitted.load());
  gate.Release();
  submitter.join();
  EXPECT_EQ(runtime.stats().rejected, 0u);
}

TEST_F(QueryRuntimeTest, RowBudgetStopsTheRunAndReportsExhaustion) {
  RuntimeOptions options = SmallRuntime(2, 4);
  options.admission.default_row_budget = 100;
  QueryRuntime runtime(options);
  auto session = runtime.Submit(Request());
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kBudgetExhausted);
  EXPECT_EQ((*session)->rows_emitted(), 100u);
  EXPECT_TRUE((*session)->status().ok()) << "budget stop is not an error";
}

TEST_F(QueryRuntimeTest, ExactBudgetResultCompletesNaturally) {
  RuntimeOptions options = SmallRuntime(2, 4);
  QueryRuntime runtime(options);
  QueryRequest request = Request();
  request.row_budget = 200 * 200;  // exactly the result size
  auto session = runtime.Submit(std::move(request));
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCompleted)
      << "a budget equal to the result size is not exhaustion";
  EXPECT_EQ((*session)->rows_emitted(), 200u * 200u);
}

TEST_F(QueryRuntimeTest, PerRequestRowBudgetOverridesDefault) {
  RuntimeOptions options = SmallRuntime(2, 4);
  options.admission.default_row_budget = 100;
  QueryRuntime runtime(options);
  QueryRequest request = Request();
  request.row_budget = 0;  // explicit unlimited beats the default
  auto session = runtime.Submit(std::move(request));
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCompleted);
  EXPECT_EQ((*session)->rows_emitted(), 200u * 200u);
}

TEST_F(QueryRuntimeTest, DefaultDeadlineTimesOutTheRun) {
  RuntimeOptions options = SmallRuntime(1, 0);
  options.admission.default_timeout_seconds = 1e-4;
  QueryRuntime runtime(options);
  auto session = runtime.Submit(Request());
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kTimedOut);
  EXPECT_TRUE((*session)->status().IsTimedOut());
}

TEST_F(QueryRuntimeTest, CancelMidPhaseStopsTheQuery) {
  QueryRuntime runtime(SmallRuntime(1, 0));
  GateSink gate;
  auto session = runtime.Submit(Request(&gate));
  ASSERT_TRUE(session.ok());
  gate.WaitStarted();  // provably inside phase-2 enumeration
  (*session)->Cancel();
  gate.Release();
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCancelled);
  EXPECT_TRUE((*session)->status().IsCancelled())
      << (*session)->status().ToString();
  EXPECT_LT((*session)->rows_emitted(), 200u * 200u);
}

TEST_F(QueryRuntimeTest, CancelWhileQueuedNeverRuns) {
  QueryRuntime runtime(SmallRuntime(/*max_inflight=*/1, /*max_queued=*/1));
  GateSink gate;
  auto running = runtime.Submit(Request(&gate));
  ASSERT_TRUE(running.ok());
  gate.WaitStarted();
  auto queued = runtime.Submit(Request());
  ASSERT_TRUE(queued.ok());
  (*queued)->Cancel();

  // The cancelled session stops holding its admission slot: the next
  // Submit reaps it (finishing it with kCancelled) and takes the slot.
  auto replacement = runtime.Submit(Request());
  ASSERT_TRUE(replacement.ok()) << replacement.status().ToString();
  EXPECT_TRUE((*queued)->done());
  EXPECT_EQ((*queued)->outcome(), QueryOutcome::kCancelled);
  EXPECT_EQ((*queued)->rows_emitted(), 0u);

  gate.Release();
  (*running)->Wait();
  EXPECT_EQ((*running)->outcome(), QueryOutcome::kCompleted);
  (*replacement)->Wait();
  EXPECT_EQ((*replacement)->outcome(), QueryOutcome::kCompleted);
}

// Destroying the runtime while a submitter is parked in Submit
// (block_when_full) must hand that submitter a clean Cancelled-or-
// admitted outcome, never a use-after-free (TSan guards this).
TEST_F(QueryRuntimeTest, ShutdownReleasesBlockedSubmitter) {
  GateSink gate;
  std::thread submitter;
  Status second_status;
  std::shared_ptr<QuerySession> second_session;
  {
    RuntimeOptions options = SmallRuntime(/*max_inflight=*/1,
                                          /*max_queued=*/0);
    options.admission.block_when_full = true;
    QueryRuntime runtime(options);
    auto running = runtime.Submit(Request(&gate));
    ASSERT_TRUE(running.ok());
    gate.WaitStarted();
    submitter = std::thread([&] {
      auto second = runtime.Submit(Request());
      if (second.ok()) {
        second_session = std::move(second).value();
      } else {
        second_status = second.status();
      }
    });
    while (runtime.waiting_submitters() == 0) {
      std::this_thread::yield();  // provably parked before teardown
    }
    gate.Release();
    // Scope end: the destructor must drain the parked submitter before
    // members die, then cancel/finish whatever it still holds.
  }
  submitter.join();
  if (second_session != nullptr) {
    // Admitted in the race window before shutdown: must still be
    // finished by the destructor.
    EXPECT_TRUE(second_session->done());
  } else {
    EXPECT_TRUE(second_status.IsCancelled()) << second_status.ToString();
  }
}

TEST_F(QueryRuntimeTest, ShutdownFinishesEverySession) {
  std::vector<std::shared_ptr<QuerySession>> sessions;
  {
    QueryRuntime runtime(SmallRuntime(/*max_inflight=*/1, /*max_queued=*/8));
    for (int i = 0; i < 6; ++i) {
      auto session = runtime.Submit(Request());
      ASSERT_TRUE(session.ok());
      sessions.push_back(std::move(session).value());
    }
    // Destructor: cancels what is still queued, revokes what runs.
  }
  for (const auto& session : sessions) {
    EXPECT_TRUE(session->done());
    const QueryOutcome outcome = session->outcome();
    EXPECT_TRUE(outcome == QueryOutcome::kCompleted ||
                outcome == QueryOutcome::kCancelled)
        << QueryOutcomeName(outcome);
  }
}

// --- Service classes: weights, quotas, and queue policies. ---

/// Execution-order probe: records which query started running (first row
/// reached the sink) in what order.
class OrderSink : public Sink {
 public:
  OrderSink(std::vector<std::string>* log, std::mutex* mu, std::string tag)
      : log_(log), mu_(mu), tag_(std::move(tag)) {}
  bool Emit(const std::vector<NodeId>&) override {
    if (!recorded_) {
      recorded_ = true;
      std::lock_guard<std::mutex> lock(*mu_);
      log_->push_back(tag_);
    }
    ++count_;
    return true;
  }
  uint64_t count() const override { return count_; }

 private:
  std::vector<std::string>* log_;
  std::mutex* mu_;
  std::string tag_;
  bool recorded_ = false;
  uint64_t count_ = 0;
};

RuntimeOptions TenantRuntime(uint32_t max_inflight,
                             std::vector<TenantSpec> tenants) {
  RuntimeOptions options;
  options.pool_threads = 2;
  options.admission.max_inflight = max_inflight;
  options.admission.max_queued = 64;
  options.admission.tenants = std::move(tenants);
  return options;
}

TEST_F(QueryRuntimeTest, RejectQuotaShedsTenantButNotOthers) {
  TenantSpec batch;
  batch.name = "batch";
  batch.max_inflight = 1;
  batch.when_at_quota = QuotaPolicy::kReject;
  QueryRuntime runtime(TenantRuntime(/*max_inflight=*/3, {batch}));

  GateSink gate;
  QueryRequest first = Request(&gate);
  first.service_class = "batch";
  auto running = runtime.Submit(std::move(first));
  ASSERT_TRUE(running.ok());
  gate.WaitStarted();  // the tenant's one slot is provably occupied

  QueryRequest second = Request();
  second.service_class = "batch";
  auto shed = runtime.Submit(std::move(second));
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();

  // The runtime itself is far from saturated: other classes sail in.
  auto other = runtime.Submit(Request());
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  (*other)->Wait();
  EXPECT_EQ((*other)->outcome(), QueryOutcome::kCompleted);

  gate.Release();
  (*running)->Wait();
  EXPECT_EQ((*running)->outcome(), QueryOutcome::kCompleted);
  EXPECT_EQ((*running)->service_class(), "batch");

  const RuntimeStats stats = runtime.stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].tenant, "default");
  EXPECT_EQ(stats.tenants[1].tenant, "batch");
  EXPECT_EQ(stats.tenants[1].submitted, 2u);
  EXPECT_EQ(stats.tenants[1].rejected, 1u);
  EXPECT_EQ(stats.tenants[1].completed, 1u);
  EXPECT_EQ(stats.tenants[0].rejected, 0u);
}

TEST_F(QueryRuntimeTest, QueueQuotaWaitsForOwnSlotWhileOthersRun) {
  TenantSpec batch;
  batch.name = "batch";
  batch.max_inflight = 1;
  batch.when_at_quota = QuotaPolicy::kQueue;
  QueryRuntime runtime(TenantRuntime(/*max_inflight=*/2, {batch}));

  GateSink gate;
  QueryRequest first = Request(&gate);
  first.service_class = "batch";
  auto running = runtime.Submit(std::move(first));
  ASSERT_TRUE(running.ok());
  gate.WaitStarted();

  // Admitted, but must hold behind the tenant's own quota even though a
  // second driver sits idle.
  QueryRequest second = Request();
  second.service_class = "batch";
  auto queued = runtime.Submit(std::move(second));
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_FALSE((*queued)->done());

  // The idle driver still serves other classes meanwhile.
  auto other = runtime.Submit(Request());
  ASSERT_TRUE(other.ok());
  (*other)->Wait();
  EXPECT_EQ((*other)->outcome(), QueryOutcome::kCompleted);
  EXPECT_FALSE((*queued)->done()) << "still quota-blocked";

  gate.Release();
  (*running)->Wait();
  (*queued)->Wait();
  EXPECT_EQ((*queued)->outcome(), QueryOutcome::kCompleted);
}

TEST_F(QueryRuntimeTest, WeightedDispatchFavorsLatencyClass) {
  TenantSpec latency;
  latency.name = "latency";
  latency.weight = 4;
  TenantSpec batch;
  batch.name = "batch";
  batch.weight = 1;
  // One driver: dispatch order is the stride schedule, observable via
  // each query's first emitted row.
  QueryRuntime runtime(TenantRuntime(/*max_inflight=*/1, {latency, batch}));

  GateSink gate;
  auto gate_session = runtime.Submit(Request(&gate));
  ASSERT_TRUE(gate_session.ok());
  gate.WaitStarted();  // driver busy: everything below queues up

  std::vector<std::string> order;
  std::mutex order_mu;
  std::vector<std::unique_ptr<OrderSink>> sinks;
  std::vector<std::shared_ptr<QuerySession>> sessions;
  auto enqueue = [&](const std::string& service_class) {
    sinks.push_back(
        std::make_unique<OrderSink>(&order, &order_mu, service_class));
    QueryRequest request = Request(sinks.back().get());
    request.service_class = service_class;
    auto session = runtime.Submit(std::move(request));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    sessions.push_back(std::move(session).value());
  };
  // Batch floods the queue first; latency arrives last and must still
  // dominate the head of the dispatch schedule.
  for (int i = 0; i < 5; ++i) enqueue("batch");
  for (int i = 0; i < 5; ++i) enqueue("latency");

  gate.Release();
  (*gate_session)->Wait();
  for (auto& session : sessions) session->Wait();

  ASSERT_EQ(order.size(), 10u);
  const size_t latency_in_first_five =
      static_cast<size_t>(std::count(order.begin(), order.begin() + 5,
                                     std::string("latency")));
  EXPECT_GE(latency_in_first_five, 3u)
      << "weight 4:1 must front-load the latency class";
  // FIFO within a class is preserved, and nothing is lost.
  EXPECT_EQ(std::count(order.begin(), order.end(), std::string("batch")), 5);
}

TEST_F(QueryRuntimeTest, ExtremeWeightsStarveNoTenant) {
  TenantSpec latency;
  latency.name = "latency";
  latency.weight = 1000;
  TenantSpec batch;
  batch.name = "batch";
  batch.weight = 1;
  QueryRuntime runtime(TenantRuntime(/*max_inflight=*/2, {latency, batch}));

  std::vector<std::shared_ptr<QuerySession>> sessions;
  for (int i = 0; i < 12; ++i) {
    QueryRequest request = Request();
    request.service_class = i % 3 == 0 ? "batch" : "latency";
    auto session = runtime.Submit(std::move(request));
    ASSERT_TRUE(session.ok());
    sessions.push_back(std::move(session).value());
  }
  for (auto& session : sessions) {
    session->Wait();
    EXPECT_EQ(session->outcome(), QueryOutcome::kCompleted)
        << session->service_class() << ": " << session->status().ToString();
  }
  const RuntimeStats stats = runtime.stats();
  ASSERT_EQ(stats.tenants.size(), 3u);
  EXPECT_EQ(stats.tenants[1].completed, 8u);  // latency
  EXPECT_EQ(stats.tenants[2].completed, 4u);  // batch: never starved
}

// Several kReject-tenant submitters parked on a full runtime
// (block_when_full) may wake together; only as many as the quota allows
// may enqueue — the rest must shed on the post-wait re-check.
TEST_F(QueryRuntimeTest, RejectQuotaHoldsAcrossBlockedSubmitters) {
  TenantSpec batch;
  batch.name = "batch";
  batch.max_inflight = 1;
  batch.when_at_quota = QuotaPolicy::kReject;
  RuntimeOptions options = TenantRuntime(/*max_inflight=*/2, {batch});
  options.admission.max_queued = 0;
  options.admission.block_when_full = true;
  QueryRuntime runtime(options);

  // Two gated default-class queries occupy both drivers and the whole
  // admission capacity.
  GateSink gate_a;
  GateSink gate_b;
  auto running_a = runtime.Submit(Request(&gate_a));
  auto running_b = runtime.Submit(Request(&gate_b));
  ASSERT_TRUE(running_a.ok());
  ASSERT_TRUE(running_b.ok());
  gate_a.WaitStarted();
  gate_b.WaitStarted();

  // Two batch submitters both pass the pre-wait quota check (the tenant
  // is empty) and park on the saturated runtime. The batch query itself
  // is gated so the first admission provably still holds the tenant's
  // one slot when the second submitter re-checks.
  GateSink batch_gate;
  std::atomic<int> admitted{0};
  std::atomic<int> shed{0};
  auto submit_batch = [&] {
    QueryRequest request = Request(&batch_gate);
    request.service_class = "batch";
    auto session = runtime.Submit(std::move(request));
    if (session.ok()) {
      ++admitted;
      (*session)->Wait();
    } else {
      EXPECT_TRUE(session.status().IsResourceExhausted())
          << session.status().ToString();
      ++shed;
    }
  };
  std::thread first(submit_batch);
  std::thread second(submit_batch);
  while (runtime.waiting_submitters() < 2) {
    std::this_thread::yield();  // both provably parked before the wake
  }
  gate_a.Release();
  gate_b.Release();
  (*running_a)->Wait();
  (*running_b)->Wait();

  // One submitter wins the tenant's slot; the other must shed on wake,
  // not enqueue past the quota.
  while (admitted.load() + shed.load() < 1) std::this_thread::yield();
  while (shed.load() < 1 && admitted.load() < 2) std::this_thread::yield();
  batch_gate.Release();
  first.join();
  second.join();
  EXPECT_EQ(admitted.load(), 1);
  EXPECT_EQ(shed.load(), 1);
  EXPECT_EQ(runtime.stats().tenants[1].rejected, 1u);
}

TEST_F(QueryRuntimeTest, UnknownClassRunsAsDefaultTenant) {
  QueryRuntime runtime(SmallRuntime(2, 4));
  QueryRequest request = Request();
  request.service_class = "no-such-class";
  auto session = runtime.Submit(std::move(request));
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCompleted);
  EXPECT_EQ((*session)->service_class(), "default");
  const RuntimeStats stats = runtime.stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].tenant, "default");
  EXPECT_EQ(stats.tenants[0].submitted, 1u);
}

TEST_F(QueryRuntimeTest, DefaultSpecOverridesImplicitTenant) {
  TenantSpec strict;
  strict.name = "default";
  strict.max_inflight = 1;
  strict.when_at_quota = QuotaPolicy::kReject;
  QueryRuntime runtime(TenantRuntime(/*max_inflight=*/3, {strict}));

  GateSink gate;
  auto running = runtime.Submit(Request(&gate));
  ASSERT_TRUE(running.ok());
  gate.WaitStarted();
  auto shed = runtime.Submit(Request());
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
  gate.Release();
  (*running)->Wait();
  EXPECT_EQ((*running)->outcome(), QueryOutcome::kCompleted);
}

TEST_F(QueryRuntimeTest, ServerBatchReportsMatchSequentialRuns) {
  ServerOptions options;
  options.runtime = SmallRuntime(/*max_inflight=*/3, /*max_queued=*/16);
  Server server(db_, cat_, options);
  const std::string text =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  std::vector<std::string> batch = {text, "select * where { broken",
                                    text, text};
  const std::vector<QueryReport> reports = server.RunBatch(batch);
  ASSERT_EQ(reports.size(), 4u);
  for (size_t i : {size_t{0}, size_t{2}, size_t{3}}) {
    EXPECT_TRUE(reports[i].admitted);
    EXPECT_EQ(reports[i].outcome, QueryOutcome::kCompleted) << "query " << i;
    EXPECT_EQ(reports[i].rows, 200u * 200u) << "query " << i;
  }
  EXPECT_FALSE(reports[1].admitted);
  EXPECT_FALSE(reports[1].status.ok());
}

// A report shed at admission used to come back default-initialized; it
// must carry the tenant the query would have run as and an explicit
// ResourceExhausted status.
TEST_F(QueryRuntimeTest, RejectedBatchReportCarriesClassAndStatus) {
  TenantSpec batch;
  batch.name = "batch";
  batch.max_inflight = 1;
  batch.when_at_quota = QuotaPolicy::kReject;
  ServerOptions options;
  options.runtime = TenantRuntime(/*max_inflight=*/3, {batch});
  Server server(db_, cat_, options);

  const std::string text =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  GateSink gate;
  std::vector<Sink*> sinks = {&gate, nullptr};
  std::vector<std::string> classes = {"batch", "batch"};
  // RunBatch blocks this thread until the whole batch finished, so the
  // gate is released from the side — only once the second query was
  // provably shed against the first one's held slot.
  std::thread releaser([&] {
    gate.WaitStarted();
    while (server.runtime().stats().tenants[1].rejected < 1) {
      std::this_thread::yield();
    }
    gate.Release();
  });
  const std::vector<QueryReport> reports =
      server.RunBatch({text, text}, &sinks, &classes);
  releaser.join();

  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].admitted);
  EXPECT_EQ(reports[0].outcome, QueryOutcome::kCompleted);
  EXPECT_EQ(reports[0].service_class, "batch");
  // The regression: the shed report names its tenant and says why.
  EXPECT_FALSE(reports[1].admitted);
  EXPECT_EQ(reports[1].service_class, "batch");
  EXPECT_TRUE(reports[1].status.IsResourceExhausted())
      << reports[1].status.ToString();
}

// --- Answer-graph cache (runtime::AgCache). ---

TEST_F(QueryRuntimeTest, CacheHitSkipsPhaseOneAndMatchesRows) {
  RuntimeOptions options = SmallRuntime(2, 4);
  options.admission.ag_cache_bytes = 32ull << 20;
  QueryRuntime runtime(options);

  auto cold = runtime.Submit(Request());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  (*cold)->Wait();
  EXPECT_EQ((*cold)->outcome(), QueryOutcome::kCompleted);
  EXPECT_FALSE((*cold)->cache_hit());
  EXPECT_GT((*cold)->stats().phase1_seconds, 0.0);
  EXPECT_EQ((*cold)->rows_emitted(), 200u * 200u);

  auto hit = runtime.Submit(Request());
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  (*hit)->Wait();
  EXPECT_EQ((*hit)->outcome(), QueryOutcome::kCompleted);
  EXPECT_TRUE((*hit)->cache_hit());
  // The cached frozen AG is reused: no generation, no burnback.
  EXPECT_EQ((*hit)->stats().phase1_seconds, 0.0);
  EXPECT_EQ((*hit)->stats().burnback_seconds, 0.0);
  EXPECT_EQ((*hit)->rows_emitted(), 200u * 200u);

  const RuntimeStats stats = runtime.stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].cache_misses, 1u);
  EXPECT_EQ(stats.tenants[0].cache_hits, 1u);
  EXPECT_EQ(stats.tenants[0].cache_inserts, 1u);
  EXPECT_EQ(stats.tenants[0].cache_entries, 1u);
  EXPECT_GT(stats.tenants[0].cache_bytes, 0u);
}

TEST_F(QueryRuntimeTest, IsomorphicRenamingHitsTheCache) {
  RuntimeOptions options = SmallRuntime(2, 4);
  options.admission.ag_cache_bytes = 32ull << 20;
  QueryRuntime runtime(options);

  auto cold = runtime.Submit(Request());
  ASSERT_TRUE(cold.ok());
  (*cold)->Wait();
  ASSERT_EQ((*cold)->outcome(), QueryOutcome::kCompleted);

  // Same shape under renamed variables: different text, same canonical
  // key — and the remapped rows land in the original variable order.
  auto renamed = SparqlParser::ParseAndBind(
      "select * where { ?a A ?b . ?b B ?c . ?c C ?d . }", db_);
  ASSERT_TRUE(renamed.ok());
  QueryRequest request = Request();
  request.query = std::move(renamed).value();
  auto hit = runtime.Submit(std::move(request));
  ASSERT_TRUE(hit.ok());
  (*hit)->Wait();
  EXPECT_EQ((*hit)->outcome(), QueryOutcome::kCompleted);
  EXPECT_TRUE((*hit)->cache_hit());
  EXPECT_EQ((*hit)->rows_emitted(), 200u * 200u);
}

// Satellite of the factorized-aggregate PR: the cache key ignores the
// aggregate clause, so the AG a plain SELECT filled serves a later
// COUNT(*) of the same shape — no phase 1, no burnback, and (because
// the count runs as the DP over the cached frozen CSR) no enumeration.
TEST_F(QueryRuntimeTest, CachedSelectAgServesLaterCountWithoutPhaseOne) {
  RuntimeOptions options = SmallRuntime(2, 4);
  options.admission.ag_cache_bytes = 32ull << 20;
  QueryRuntime runtime(options);

  auto cold = runtime.Submit(Request());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  (*cold)->Wait();
  ASSERT_EQ((*cold)->outcome(), QueryOutcome::kCompleted);
  ASSERT_EQ((*cold)->rows_emitted(), 200u * 200u);

  auto count = SparqlParser::ParseAndBind(
      "select (count(*) as ?c) where { ?w A ?x . ?x B ?y . ?y C ?z . }",
      db_);
  ASSERT_TRUE(count.ok());
  CountingSink rows;
  QueryRequest request = Request(&rows);
  request.query = std::move(count).value();
  auto hit = runtime.Submit(std::move(request));
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  (*hit)->Wait();
  EXPECT_EQ((*hit)->outcome(), QueryOutcome::kCompleted);
  EXPECT_TRUE((*hit)->cache_hit());
  EXPECT_EQ((*hit)->stats().phase1_seconds, 0.0);
  EXPECT_EQ((*hit)->stats().burnback_seconds, 0.0);
  ASSERT_TRUE((*hit)->has_aggregate());
  const AggregateResult aggregate = (*hit)->aggregate();
  EXPECT_TRUE(aggregate.factorized) << aggregate.fallback_reason;
  EXPECT_EQ(aggregate.value, AggregateValue::FromU64(200u * 200u));
  EXPECT_EQ(rows.count(), 0u) << "the count must not enumerate rows";
  EXPECT_EQ((*hit)->stats().output_tuples, 1u);
  EXPECT_EQ(runtime.stats().tenants[0].cache_hits, 1u);
}

// The renamed-isomorphic flavor: the COUNT arrives under different
// variable names and with a GROUP BY, whose key variable must be mapped
// into the cached entry's variable space. Aggregate answers are keyed
// by data nodes, so they need no per-row remap — the groups must be
// bit-identical to an uncached run of the renamed query itself.
TEST_F(QueryRuntimeTest, RenamedGroupByCountHitsTheCache) {
  const std::string renamed_text =
      "select ?a (count(*) as ?c) where "
      "{ ?a A ?b . ?b B ?c . ?c C ?d . } group by ?a";
  auto renamed = SparqlParser::ParseAndBind(renamed_text, db_);
  ASSERT_TRUE(renamed.ok());

  // Reference: the renamed query on a cache-less runtime.
  AggregateResult reference;
  {
    QueryRuntime runtime(SmallRuntime(2, 4));
    QueryRequest request = Request();
    request.query = *renamed;
    auto session = runtime.Submit(std::move(request));
    ASSERT_TRUE(session.ok());
    (*session)->Wait();
    ASSERT_EQ((*session)->outcome(), QueryOutcome::kCompleted);
    ASSERT_TRUE((*session)->has_aggregate());
    reference = (*session)->aggregate();
  }

  RuntimeOptions options = SmallRuntime(2, 4);
  options.admission.ag_cache_bytes = 32ull << 20;
  QueryRuntime runtime(options);
  auto cold = runtime.Submit(Request());  // the plain SELECT fills
  ASSERT_TRUE(cold.ok());
  (*cold)->Wait();
  ASSERT_EQ((*cold)->outcome(), QueryOutcome::kCompleted);

  QueryRequest request = Request();
  request.query = std::move(renamed).value();
  auto hit = runtime.Submit(std::move(request));
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  (*hit)->Wait();
  EXPECT_EQ((*hit)->outcome(), QueryOutcome::kCompleted);
  EXPECT_TRUE((*hit)->cache_hit());
  EXPECT_EQ((*hit)->stats().phase1_seconds, 0.0);
  EXPECT_EQ((*hit)->stats().burnback_seconds, 0.0);
  ASSERT_TRUE((*hit)->has_aggregate());
  const AggregateResult aggregate = (*hit)->aggregate();
  EXPECT_EQ(aggregate.value, reference.value);
  EXPECT_EQ(aggregate.groups, reference.groups);
}

TEST_F(QueryRuntimeTest, CacheOffByDefaultNeverHits) {
  QueryRuntime runtime(SmallRuntime(2, 4));
  for (int i = 0; i < 2; ++i) {
    auto session = runtime.Submit(Request());
    ASSERT_TRUE(session.ok());
    (*session)->Wait();
    EXPECT_EQ((*session)->outcome(), QueryOutcome::kCompleted);
    EXPECT_FALSE((*session)->cache_hit());
    EXPECT_GT((*session)->stats().phase1_seconds, 0.0);
  }
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.tenants[0].cache_hits, 0u);
  EXPECT_EQ(stats.tenants[0].cache_misses, 0u);
  EXPECT_EQ(stats.tenants[0].cache_entries, 0u);
}

TEST_F(QueryRuntimeTest, TenantCanOptOutOfTheCache) {
  TenantSpec nocache;
  nocache.name = "nocache";
  nocache.ag_cache_bytes = 0;  // opts out of the admission default
  RuntimeOptions options = TenantRuntime(/*max_inflight=*/2, {nocache});
  options.admission.ag_cache_bytes = 32ull << 20;
  QueryRuntime runtime(options);

  for (int i = 0; i < 2; ++i) {
    QueryRequest request = Request();
    request.service_class = "nocache";
    auto session = runtime.Submit(std::move(request));
    ASSERT_TRUE(session.ok());
    (*session)->Wait();
    EXPECT_EQ((*session)->outcome(), QueryOutcome::kCompleted);
    EXPECT_FALSE((*session)->cache_hit()) << "run " << i;
  }
  // The default tenant still inherits the admission quota and caches.
  for (int i = 0; i < 2; ++i) {
    auto session = runtime.Submit(Request());
    ASSERT_TRUE(session.ok());
    (*session)->Wait();
    EXPECT_EQ((*session)->cache_hit(), i == 1) << "run " << i;
  }
  const RuntimeStats stats = runtime.stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].cache_hits, 1u);
  EXPECT_EQ(stats.tenants[1].cache_hits, 0u);
  EXPECT_EQ(stats.tenants[1].cache_misses, 0u);
}

// The server surfaces cache hits per report; serialized by a one-driver
// runtime so the second identical query deterministically hits.
TEST_F(QueryRuntimeTest, ServerReportsCarryCacheHits) {
  ServerOptions options;
  options.runtime = SmallRuntime(/*max_inflight=*/1, /*max_queued=*/16);
  options.runtime.admission.ag_cache_bytes = 32ull << 20;
  Server server(db_, cat_, options);
  const std::string text =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  const std::vector<QueryReport> reports =
      server.RunBatch({text, text, text});
  ASSERT_EQ(reports.size(), 3u);
  for (const QueryReport& report : reports) {
    EXPECT_EQ(report.outcome, QueryOutcome::kCompleted);
    EXPECT_EQ(report.rows, 200u * 200u);
    EXPECT_EQ(report.cache_hit, report.index != 0);
    if (report.cache_hit) {
      EXPECT_EQ(report.stats.phase1_seconds, 0.0);
    }
  }
}

// Burnback diagnostics (pairs_burned, cascade depth, handoffs) ride
// EngineStats into the session and the server's per-query reports, and
// match a direct engine run exactly.
TEST(QueryRuntimeBurnbackStatsTest, ReportsCarryBurnbackCounters) {
  // Sparse cyclic square: constrained extensions strand endpoint nodes,
  // so node burnback provably erases pairs (asserted below, not
  // assumed — the lookahead filter cannot see joint constraints).
  Database db = MakeRandomGraph(200, 3, 1200, 42);
  Catalog cat = Catalog::Build(db.store());
  const std::string text =
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }";
  auto q = SparqlParser::ParseAndBind(text, db);
  ASSERT_TRUE(q.ok());

  auto direct_engine = MakeEngine("WF");
  CountingSink direct_sink;
  auto direct =
      direct_engine->Run(db, cat, *q, EngineOptions{}, &direct_sink);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_GT(direct->pairs_burned, 0u) << "fixture must exercise burnback";
  EXPECT_GT(direct->burnback_depth, 0u);

  ServerOptions options;
  options.runtime.pool_threads = 2;
  Server server(db, cat, options);
  const std::vector<QueryReport> reports = server.RunBatch({text});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].outcome, QueryOutcome::kCompleted);
  EXPECT_EQ(reports[0].stats.pairs_burned, direct->pairs_burned);
  // Depth and handoffs are schedule-dependent diagnostics (the runtime
  // run may drain in parallel); the invariant part is the erase count,
  // already asserted. The fields must simply be populated sanely.
  EXPECT_GT(reports[0].stats.burnback_depth, 0u);
  EXPECT_LE(reports[0].stats.burnback_handoffs,
            reports[0].stats.pairs_burned);
}

}  // namespace
}  // namespace runtime
}  // namespace wireframe
