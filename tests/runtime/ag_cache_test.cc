#include "runtime/ag_cache.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/answer_graph.h"
#include "query/query_graph.h"

namespace wireframe {
namespace runtime {
namespace {

/// A cache value holding a frozen one-edge AG with `pairs` pairs (its
/// byte size scales with `pairs`, which is what the quota tests need).
std::shared_ptr<const CachedAg> MakeAg(uint32_t pairs) {
  QueryGraph q;
  const VarId x = q.AddVar("x"), y = q.AddVar("y");
  q.AddEdge(x, 0, y);
  auto ag = std::make_shared<AnswerGraph>(q);
  for (uint32_t i = 0; i < pairs; ++i) ag->Set(0).Add(i, i + 1);
  ag->MarkMaterialized(0);
  ag->Freeze();
  auto value = std::make_shared<CachedAg>();
  value->ag = std::move(ag);
  value->query = q;
  value->to_canonical = {0, 1};
  return value;
}

TEST(AgCacheTest, LookupMissThenFillThenHit) {
  AgCache cache({1 << 20});
  EXPECT_TRUE(cache.enabled(0));
  EXPECT_EQ(cache.Lookup(0, "k"), nullptr);
  EXPECT_TRUE(cache.BeginFill(0, "k"));
  cache.EndFill(0, "k", MakeAg(10), 0.5);
  const auto hit = cache.Lookup(0, "k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->ag->TotalQueryEdgePairs(), 10u);
  const AgCache::Counters c = cache.counters(0);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.inserts, 1u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_GT(c.bytes, 0u);
}

TEST(AgCacheTest, SingleFlightFillClaim) {
  AgCache cache({1 << 20});
  EXPECT_TRUE(cache.BeginFill(0, "k"));
  EXPECT_FALSE(cache.BeginFill(0, "k"));  // second claimant runs cold
  cache.EndFill(0, "k", nullptr, 0.0);    // aborted fill releases the key
  EXPECT_TRUE(cache.BeginFill(0, "k"));
  cache.EndFill(0, "k", MakeAg(4), 0.1);
  EXPECT_FALSE(cache.BeginFill(0, "k"));  // resident: no fill needed
}

TEST(AgCacheTest, TenantsArePartitioned) {
  AgCache cache({1 << 20, 1 << 20, 0});
  EXPECT_TRUE(cache.BeginFill(0, "k"));
  cache.EndFill(0, "k", MakeAg(4), 0.1);
  EXPECT_NE(cache.Lookup(0, "k"), nullptr);
  EXPECT_EQ(cache.Lookup(1, "k"), nullptr);  // other tenant: miss
  EXPECT_FALSE(cache.enabled(2));
  EXPECT_EQ(cache.counters(1).misses, 1u);
  EXPECT_EQ(cache.counters(0).hits, 1u);
}

TEST(AgCacheTest, EvictionIsCostTimesFrequency) {
  // Quota fits roughly two of the three entries; the cheap, never-hit
  // one must leave first.
  const uint64_t one = MakeAg(64)->ag->FrozenByteSize();
  AgCache cache({2 * one + one / 2});
  ASSERT_TRUE(cache.BeginFill(0, "cheap"));
  cache.EndFill(0, "cheap", MakeAg(64), 0.001);
  ASSERT_TRUE(cache.BeginFill(0, "hot"));
  cache.EndFill(0, "hot", MakeAg(64), 0.002);
  for (int i = 0; i < 5; ++i) EXPECT_NE(cache.Lookup(0, "hot"), nullptr);
  ASSERT_TRUE(cache.BeginFill(0, "expensive"));
  cache.EndFill(0, "expensive", MakeAg(64), 10.0);
  const AgCache::Counters c = cache.counters(0);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(cache.Lookup(0, "cheap"), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(0, "hot"), nullptr);
  EXPECT_NE(cache.Lookup(0, "expensive"), nullptr);
}

TEST(AgCacheTest, OversizedAgIsNeverInserted) {
  AgCache cache({64});  // quota far below any frozen AG
  ASSERT_TRUE(cache.BeginFill(0, "big"));
  cache.EndFill(0, "big", MakeAg(1000), 1.0);
  EXPECT_EQ(cache.Lookup(0, "big"), nullptr);
  const AgCache::Counters c = cache.counters(0);
  EXPECT_EQ(c.inserts, 0u);
  EXPECT_EQ(c.bytes, 0u);
}

TEST(AgCacheTest, EvictedAgStaysValidForHolders) {
  const uint64_t one = MakeAg(64)->ag->FrozenByteSize();
  AgCache cache({one + one / 2});
  ASSERT_TRUE(cache.BeginFill(0, "a"));
  cache.EndFill(0, "a", MakeAg(64), 1.0);
  const auto held = cache.Lookup(0, "a");  // reader holds a reference
  ASSERT_TRUE(cache.BeginFill(0, "b"));
  cache.EndFill(0, "b", MakeAg(64), 1.0);  // evicts "a"
  EXPECT_EQ(cache.Lookup(0, "a"), nullptr);
  // The held AG is still fully readable: shared ownership outlives the
  // cache entry.
  EXPECT_EQ(held->ag->TotalQueryEdgePairs(), 64u);
  EXPECT_TRUE(held->ag->IsFrozen());
}

}  // namespace
}  // namespace runtime
}  // namespace wireframe
